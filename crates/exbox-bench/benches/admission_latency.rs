//! §5.3 latency benchmark: time per admission decision.
//!
//! The paper measures "the time interval between the instant a new
//! flow arrives and the admission decision": ≤2 ms median for
//! RateBased/MaxClient, ≈5 ms for ExBox's Python SVM. The shape to
//! reproduce is the ordering (baselines ≪ ExBox) — our Rust SMO is
//! orders of magnitude faster than their Python in absolute terms.
//!
//! A batch scenario (`ExBoxBatch/…`) scores a whole block of traffic
//! matrices through `exbox-par`, the path the ExCR surface dumps and
//! offline audits take; on one core it degrades to the serial loop.
//!
//! Hand-rolled timing harness (the offline sandbox has no crates.io
//! access, so no Criterion). Default output is CSV; `--json` emits
//! the document `scripts/bench_compare.sh` consumes, `--quick`
//! shrinks iteration counts for the CI smoke job.

use std::hint::black_box;

use exbox_bench::{bench_args, emit_records, measure, BenchRecord};
use exbox_core::prelude::*;
use exbox_ml::Label;
use exbox_net::AppClass;
use exbox_obs::buckets;

fn matrix(total: u32) -> TrafficMatrix {
    let mut m = TrafficMatrix::empty();
    for i in 0..total {
        let class = AppClass::from_index((i % 3) as usize);
        m.add(FlowKind::new(class, SnrLevel::High));
    }
    m
}

/// Deterministic LCG (no rand dependency) for the noisy steady-state
/// scenarios.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A mixed-class, mixed-SNR matrix drawn deterministically from `seed`.
fn noisy_matrix(seed: u64) -> TrafficMatrix {
    let mut rng = Lcg(seed.wrapping_add(0x9e37_79b9));
    let mut m = TrafficMatrix::empty();
    for _ in 0..(rng.next() % 12) {
        let class = AppClass::from_index((rng.next() % 3) as usize);
        let snr = SnrLevel::from_index((rng.next() % 2) as usize);
        m.add(FlowKind::new(class, snr));
    }
    m
}

/// An Admittance Classifier trained to steady state on a noisy
/// boundary (~12% label noise keeps the support-vector count high, so
/// the uncached scenario pays a realistic kernel expansion), with the
/// given decision-cache capacity (0 disables it).
fn steady_classifier(cache_size: usize) -> AdmittanceClassifier {
    let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
        batch_size: 400, // no retrain mid-measurement
        bootstrap_min_samples: 160,
        bootstrap_accuracy: 0.5, // labels are noisy; accept the fit
        decision_cache_size: cache_size,
        ..AdmittanceConfig::default()
    });
    let mut rng = Lcg(7);
    for i in 0..240u64 {
        let m = noisy_matrix(i);
        let truth = m.total() <= 6;
        let noisy = if rng.next() % 100 < 12 { !truth } else { truth };
        ac.observe(m, if noisy { Label::Pos } else { Label::Neg });
    }
    assert_eq!(ac.phase(), Phase::Online, "steady scenario must be online");
    ac
}

fn request(total_after: u32) -> FlowRequest {
    FlowRequest {
        kind: FlowKind::new(AppClass::Streaming, SnrLevel::High),
        demand_bps: 2_500_000.0,
        resulting_matrix: matrix(total_after),
    }
}

/// ExBox controller trained online on `n` observations of a simple
/// capacity region (total ≤ 12 flows).
fn trained_exbox(n: u32) -> ExBoxController {
    let mut ex = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
        bootstrap_min_samples: 50,
        ..AdmittanceConfig::default()
    }));
    for i in 0..n {
        let total = i % 20;
        let label = if total <= 12 { Label::Pos } else { Label::Neg };
        ex.on_observation(matrix(total), label);
    }
    ex
}

fn main() {
    let args = bench_args();
    let mut records: Vec<BenchRecord> = Vec::new();
    // Decisions are tens of ns; the default latency_ns() floor (1 µs)
    // would swallow every sample into the first bucket.
    let bounds = buckets::exponential(10.0, 2.0, 28);
    let scale = if args.quick { 10 } else { 1 };

    let mut rate_based = RateBased::new(20_000_000.0);
    records.push(measure(
        "RateBased",
        1,
        1_000,
        100_000 / scale,
        &bounds,
        || {
            black_box(rate_based.decide(black_box(&request(5))));
        },
    ));

    let mut max_client = MaxClient::new(10);
    records.push(measure(
        "MaxClient",
        1,
        1_000,
        100_000 / scale,
        &bounds,
        || {
            black_box(max_client.decide(black_box(&request(5))));
        },
    ));

    for n in [50u32, 200, 1000] {
        let mut exbox = trained_exbox(n);
        records.push(measure(
            format!("ExBox/{n}-samples"),
            n as usize,
            100,
            10_000 / scale,
            &bounds,
            || {
                black_box(exbox.decide(black_box(&request(5))));
            },
        ));
    }

    // Batch prediction: score a block of matrices through the
    // exbox-par pool (chunks of rows, deterministic order), as the
    // ExCR surface dump does.
    let exbox = trained_exbox(1000);
    let batch: Vec<TrafficMatrix> = (0..256).map(|i| matrix(i % 24)).collect();
    let pool = exbox_par::ThreadPool::global();
    let classifier = exbox.classifier();
    records.push(measure(
        format!("ExBoxBatch/{}", batch.len()),
        batch.len(),
        10,
        1_000 / scale,
        &bounds,
        || {
            let verdicts: Vec<bool> = pool.parallel_map(batch.len(), |i| {
                classifier.classify(&batch[i]) == Label::Pos
            });
            black_box(verdicts);
        },
    ));

    // Steady-state serving: a working set of 16 recurring matrices,
    // decided over and over — the regime the matrix-keyed decision
    // cache targets. `cached` runs the default cache, `uncached` the
    // same model with the cache disabled; `scripts/bench_compare.sh`
    // asserts cached p50 is at least 2x better within one run.
    let working_set: Vec<TrafficMatrix> = (1000..1016).map(noisy_matrix).collect();
    for (label, cache_size) in [("cached", 4096usize), ("uncached", 0)] {
        let mut ac = steady_classifier(cache_size);
        let mut i = 0usize;
        records.push(measure(
            format!("AdmissionSteady/{label}"),
            working_set.len(),
            1_000,
            100_000 / scale,
            &bounds,
            || {
                let m = &working_set[i % working_set.len()];
                i += 1;
                black_box(ac.decide(black_box(m)));
            },
        ));
    }

    // Raw model evaluation: the flattened CompactSvm against the
    // Vec-of-Vecs SvmModel it was converted from, on the same queries.
    {
        use exbox_ml::prelude::*;
        let mut ds = Dataset::new(TrafficMatrix::DIMS);
        let mut rng_state = 1u64;
        let mut rng = move || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng_state >> 33
        };
        for i in 0..240u64 {
            let m = noisy_matrix(i);
            let truth = m.total() <= 6;
            let noisy = if rng() % 100 < 12 { !truth } else { truth };
            ds.push(m.features(), if noisy { Label::Pos } else { Label::Neg });
        }
        let model = SvmTrainer::new(Kernel::poly(1.0 / TrafficMatrix::DIMS as f64, 1.0, 2))
            .c(10.0)
            .train(&ds);
        let compact = model.compact();
        let queries: Vec<Vec<f64>> = (1000..1016).map(|s| noisy_matrix(s).features()).collect();
        let mut i = 0usize;
        records.push(measure(
            "ModelEval/naive",
            model.num_support_vectors(),
            1_000,
            100_000 / scale,
            &bounds,
            || {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(model.decision_value(black_box(q)));
            },
        ));
        let mut i = 0usize;
        records.push(measure(
            "ModelEval/compact",
            compact.num_support_vectors(),
            1_000,
            100_000 / scale,
            &bounds,
            || {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(compact.decision_value(black_box(q)));
            },
        ));

        // Kernel-engine shoot-out on the same fixture: the flattened
        // CompactSvm with the engine forced to the scalar loop vs the
        // 4-wide lane loop (what `--features simd` selects by
        // default). Forcing the engine makes the comparison valid on
        // any build; `scripts/bench_compare.sh` gates the lane engine
        // at >= 2x scalar p50 in release.
        for (label, engine) in [
            ("scalar", KernelEngine::Scalar),
            ("simd", KernelEngine::Lanes),
        ] {
            let forced = CompactSvm::from_model_with_engine(&model, engine);
            let mut i = 0usize;
            records.push(measure(
                format!("AdmissionSteady/{label}"),
                forced.num_support_vectors(),
                1_000,
                100_000 / scale,
                &bounds,
                || {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    black_box(forced.decision_value(black_box(q)));
                },
            ));
        }
    }

    emit_records("admission_latency", &records, args);
}
