//! §5.3 latency benchmark: time per admission decision.
//!
//! The paper measures "the time interval between the instant a new
//! flow arrives and the admission decision": ≤2 ms median for
//! RateBased/MaxClient, ≈5 ms for ExBox's Python SVM. The shape to
//! reproduce is the ordering (baselines ≪ ExBox) — our Rust SMO is
//! orders of magnitude faster than their Python in absolute terms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use exbox_core::prelude::*;
use exbox_ml::Label;
use exbox_net::AppClass;

fn matrix(total: u32) -> TrafficMatrix {
    let mut m = TrafficMatrix::empty();
    for i in 0..total {
        let class = AppClass::from_index((i % 3) as usize);
        m.add(FlowKind::new(class, SnrLevel::High));
    }
    m
}

fn request(total_after: u32) -> FlowRequest {
    FlowRequest {
        kind: FlowKind::new(AppClass::Streaming, SnrLevel::High),
        demand_bps: 2_500_000.0,
        resulting_matrix: matrix(total_after),
    }
}

/// ExBox controller trained online on `n` observations of a simple
/// capacity region (total ≤ 12 flows).
fn trained_exbox(n: u32) -> ExBoxController {
    let mut ex = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
        bootstrap_min_samples: 50,
        ..AdmittanceConfig::default()
    }));
    for i in 0..n {
        let total = i % 20;
        let label = if total <= 12 { Label::Pos } else { Label::Neg };
        ex.on_observation(matrix(total), label);
    }
    ex
}

fn bench_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission_decision");

    let mut rate_based = RateBased::new(20_000_000.0);
    group.bench_function("RateBased", |b| {
        b.iter(|| black_box(rate_based.decide(black_box(&request(5)))))
    });

    let mut max_client = MaxClient::new(10);
    group.bench_function("MaxClient", |b| {
        b.iter(|| black_box(max_client.decide(black_box(&request(5)))))
    });

    for n in [50u32, 200, 1000] {
        let mut exbox = trained_exbox(n);
        group.bench_with_input(
            BenchmarkId::new("ExBox", format!("{n}-samples")),
            &n,
            |b, _| b.iter(|| black_box(exbox.decide(black_box(&request(5))))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
