//! §5.3 latency benchmark: time per admission decision.
//!
//! The paper measures "the time interval between the instant a new
//! flow arrives and the admission decision": ≤2 ms median for
//! RateBased/MaxClient, ≈5 ms for ExBox's Python SVM. The shape to
//! reproduce is the ordering (baselines ≪ ExBox) — our Rust SMO is
//! orders of magnitude faster than their Python in absolute terms.
//!
//! Hand-rolled timing harness (the offline sandbox has no crates.io
//! access, so no Criterion): each configuration runs warm-up
//! iterations, then records an `exbox-obs` latency histogram and
//! prints `name,iters,mean_ns,p50_ns,p95_ns,max_ns` CSV.

use std::hint::black_box;

use exbox_core::prelude::*;
use exbox_ml::Label;
use exbox_net::AppClass;
use exbox_obs::{buckets, Histogram};

fn matrix(total: u32) -> TrafficMatrix {
    let mut m = TrafficMatrix::empty();
    for i in 0..total {
        let class = AppClass::from_index((i % 3) as usize);
        m.add(FlowKind::new(class, SnrLevel::High));
    }
    m
}

fn request(total_after: u32) -> FlowRequest {
    FlowRequest {
        kind: FlowKind::new(AppClass::Streaming, SnrLevel::High),
        demand_bps: 2_500_000.0,
        resulting_matrix: matrix(total_after),
    }
}

/// ExBox controller trained online on `n` observations of a simple
/// capacity region (total ≤ 12 flows).
fn trained_exbox(n: u32) -> ExBoxController {
    let mut ex = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
        bootstrap_min_samples: 50,
        ..AdmittanceConfig::default()
    }));
    for i in 0..n {
        let total = i % 20;
        let label = if total <= 12 { Label::Pos } else { Label::Neg };
        ex.on_observation(matrix(total), label);
    }
    ex
}

/// Time `iters` calls of `f` after `warmup` unrecorded calls.
fn bench(name: &str, warmup: u32, iters: u32, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    // Decisions are tens of ns; the default latency_ns() floor (1 µs)
    // would swallow every sample into the first bucket.
    let hist = Histogram::new(&buckets::exponential(10.0, 2.0, 28));
    for _ in 0..iters {
        let ((), ns) = exbox_obs::time_ns(&mut f);
        hist.record(ns);
    }
    let s = hist.snapshot();
    println!(
        "{name},{iters},{:.0},{:.0},{:.0},{:.0}",
        s.mean(),
        s.quantile(0.50),
        s.quantile(0.95),
        s.max
    );
}

fn main() {
    println!("name,iters,mean_ns,p50_ns,p95_ns,max_ns");

    let mut rate_based = RateBased::new(20_000_000.0);
    bench("RateBased", 1_000, 100_000, || {
        black_box(rate_based.decide(black_box(&request(5))));
    });

    let mut max_client = MaxClient::new(10);
    bench("MaxClient", 1_000, 100_000, || {
        black_box(max_client.decide(black_box(&request(5))));
    });

    for n in [50u32, 200, 1000] {
        let mut exbox = trained_exbox(n);
        bench(&format!("ExBox/{n}-samples"), 100, 10_000, || {
            black_box(exbox.decide(black_box(&request(5))));
        });
    }
}
