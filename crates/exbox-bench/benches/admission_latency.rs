//! §5.3 latency benchmark: time per admission decision.
//!
//! The paper measures "the time interval between the instant a new
//! flow arrives and the admission decision": ≤2 ms median for
//! RateBased/MaxClient, ≈5 ms for ExBox's Python SVM. The shape to
//! reproduce is the ordering (baselines ≪ ExBox) — our Rust SMO is
//! orders of magnitude faster than their Python in absolute terms.
//!
//! A batch scenario (`ExBoxBatch/…`) scores a whole block of traffic
//! matrices through `exbox-par`, the path the ExCR surface dumps and
//! offline audits take; on one core it degrades to the serial loop.
//!
//! Hand-rolled timing harness (the offline sandbox has no crates.io
//! access, so no Criterion). Default output is CSV; `--json` emits
//! the document `scripts/bench_compare.sh` consumes, `--quick`
//! shrinks iteration counts for the CI smoke job.

use std::hint::black_box;

use exbox_bench::{bench_args, emit_records, measure, BenchRecord};
use exbox_core::prelude::*;
use exbox_ml::Label;
use exbox_net::AppClass;
use exbox_obs::buckets;

fn matrix(total: u32) -> TrafficMatrix {
    let mut m = TrafficMatrix::empty();
    for i in 0..total {
        let class = AppClass::from_index((i % 3) as usize);
        m.add(FlowKind::new(class, SnrLevel::High));
    }
    m
}

fn request(total_after: u32) -> FlowRequest {
    FlowRequest {
        kind: FlowKind::new(AppClass::Streaming, SnrLevel::High),
        demand_bps: 2_500_000.0,
        resulting_matrix: matrix(total_after),
    }
}

/// ExBox controller trained online on `n` observations of a simple
/// capacity region (total ≤ 12 flows).
fn trained_exbox(n: u32) -> ExBoxController {
    let mut ex = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
        bootstrap_min_samples: 50,
        ..AdmittanceConfig::default()
    }));
    for i in 0..n {
        let total = i % 20;
        let label = if total <= 12 { Label::Pos } else { Label::Neg };
        ex.on_observation(matrix(total), label);
    }
    ex
}

fn main() {
    let args = bench_args();
    let mut records: Vec<BenchRecord> = Vec::new();
    // Decisions are tens of ns; the default latency_ns() floor (1 µs)
    // would swallow every sample into the first bucket.
    let bounds = buckets::exponential(10.0, 2.0, 28);
    let scale = if args.quick { 10 } else { 1 };

    let mut rate_based = RateBased::new(20_000_000.0);
    records.push(measure(
        "RateBased",
        1,
        1_000,
        100_000 / scale,
        &bounds,
        || {
            black_box(rate_based.decide(black_box(&request(5))));
        },
    ));

    let mut max_client = MaxClient::new(10);
    records.push(measure(
        "MaxClient",
        1,
        1_000,
        100_000 / scale,
        &bounds,
        || {
            black_box(max_client.decide(black_box(&request(5))));
        },
    ));

    for n in [50u32, 200, 1000] {
        let mut exbox = trained_exbox(n);
        records.push(measure(
            format!("ExBox/{n}-samples"),
            n as usize,
            100,
            10_000 / scale,
            &bounds,
            || {
                black_box(exbox.decide(black_box(&request(5))));
            },
        ));
    }

    // Batch prediction: score a block of matrices through the
    // exbox-par pool (chunks of rows, deterministic order), as the
    // ExCR surface dump does.
    let exbox = trained_exbox(1000);
    let batch: Vec<TrafficMatrix> = (0..256).map(|i| matrix(i % 24)).collect();
    let pool = exbox_par::ThreadPool::global();
    let classifier = exbox.classifier();
    records.push(measure(
        format!("ExBoxBatch/{}", batch.len()),
        batch.len(),
        10,
        1_000 / scale,
        &bounds,
        || {
            let verdicts: Vec<bool> = pool.parallel_map(batch.len(), |i| {
                classifier.classify(&batch[i]) == Label::Pos
            });
            black_box(verdicts);
        },
    ));

    emit_records("admission_latency", &records, args);
}
