//! Million-flow state engine: slab flow-table churn, incremental
//! polling, and the streamed flash-crowd soak.
//!
//! * `FlowSoak/rss_kb` — a 10⁵-user [`ScaledWorkload`] flash-crowd
//!   stream driven end-to-end through a `Middlebox` (admission,
//!   delivery reports, polls, departures). No timing: the record's
//!   `n` is the process peak RSS in kB afterwards, which
//!   `scripts/bench_compare.sh` checks against a ceiling — streaming
//!   must stay O(users + concurrent flows), never O(total events).
//!   Runs **first** so the churn arenas below don't inflate the
//!   high-water mark.
//! * `FlowScale/{10k,100k,1M}` — raw `FlowMap` churn at three
//!   populations: insert all, probe half, remove half, re-insert.
//!   One rep is a whole pass, so `p50_ns / n` approximates the
//!   per-operation cost as the table crosses its growth thresholds.
//! * `PollSteady/{scan,wheel}` — the tentpole: a steady 100k-flow
//!   cell where each 2 s poll window dirties only 1,024 flows. The
//!   scan path walks the whole arena; the timer-wheel path visits
//!   only the due flows. `scripts/bench_compare.sh` holds the wheel
//!   to ≥ 5× faster at the median (it is typically far more).
//!
//! Hand-rolled harness (offline sandbox, no Criterion). `--json` for
//! `scripts/bench_compare.sh`, `--quick` for the CI smoke job.

use std::hint::black_box;
use std::net::Ipv4Addr;

use exbox_bench::{
    bench_args, emit_records, measure, peak_rss_kb, run_soak, BenchRecord, SoakConfig,
};
use exbox_core::prelude::*;
use exbox_core::FlowMap;
use exbox_net::{AppClass, Direction, Duration, FlowKey, Instant, Packet, Protocol};
use exbox_obs::buckets;

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        exbox_core::qoe::QosScale::new(1e3, 1e8),
    )
}

/// Unique key for the `i`-th flow (`FlowKey::synthetic` folds its ids
/// to 16 bits / 20,000 ports, so the index is split across both).
fn key(i: u64) -> FlowKey {
    FlowKey::synthetic((i % 65_536) as u32, (i / 65_536) as u32, 1, Protocol::Tcp)
}

fn main() {
    let args = bench_args();
    let mut records: Vec<BenchRecord> = Vec::new();

    // Streamed soak first — VmHWM is a process-lifetime high-water
    // mark, so it must be read before the million-entry arenas below.
    {
        let cfg = SoakConfig {
            users: if args.quick { 20_000 } else { 100_000 },
            ..SoakConfig::default()
        };
        let report = run_soak(cfg, estimator());
        let rss_kb = peak_rss_kb().unwrap_or(0);
        eprintln!(
            "FlowSoak: {} users, {} events, {} arrivals, peak {} flows, \
             {} polls, {} left open, peak RSS {} kB",
            cfg.users,
            report.events,
            report.arrivals,
            report.peak_flows,
            report.polls,
            report.final_flows,
            rss_kb,
        );
        // Pseudo-record: `n` carries the peak RSS; the zero timings
        // keep the compare script's latency regression guard off it.
        records.push(BenchRecord {
            name: "FlowSoak/rss_kb".into(),
            n: rss_kb as usize,
            reps: 1,
            mean_ns: 0.0,
            p50_ns: 0.0,
            p95_ns: 0.0,
            max_ns: 0.0,
        });
    }

    // One rep is a whole pass over the population (~ms), not one op.
    let bounds = buckets::exponential(10_000.0, 2.0, 32);

    // Raw slab churn across the growth thresholds.
    {
        let sizes: &[(usize, &str)] = if args.quick {
            &[(10_000, "10k"), (100_000, "100k")]
        } else {
            &[(10_000, "10k"), (100_000, "100k"), (1_000_000, "1M")]
        };
        let reps = if args.quick { 3 } else { 10 };
        for &(n, label) in sizes {
            records.push(measure(
                format!("FlowScale/{label}"),
                n,
                1,
                reps,
                &bounds,
                || {
                    let mut map: FlowMap<u64> = FlowMap::new();
                    for i in 0..n as u64 {
                        map.insert(key(i), i);
                    }
                    let mut hits = 0u64;
                    for i in (0..n as u64).step_by(2) {
                        hits += u64::from(map.contains_key(&key(i)));
                    }
                    for i in (0..n as u64).step_by(2) {
                        map.remove(&key(i));
                    }
                    for i in (0..n as u64).step_by(2) {
                        map.insert(key(i), i);
                    }
                    black_box((hits, map.len()));
                },
            ));
        }
    }

    // Steady-state polling: a big admitted set where only a small
    // dirty fraction saw traffic since the last window. The pinned
    // bootstrap classifier keeps region re-evaluation out of the
    // measurement — this isolates the flow-walk itself.
    {
        let flows_n: usize = if args.quick { 10_000 } else { 100_000 };
        let dirty_n: usize = if args.quick { 256 } else { 1_024 };
        let reps = if args.quick { 3 } else { 15 };
        for (label, wheel) in [("scan", false), ("wheel", true)] {
            let mut mb = Middlebox::new(
                MiddleboxConfig {
                    poll_wheel: wheel,
                    ..MiddleboxConfig::default()
                },
                estimator(),
                AdmittanceClassifier::new(AdmittanceConfig {
                    bootstrap_min_samples: usize::MAX,
                    ..AdmittanceConfig::default()
                }),
            );
            // Endpoint hint: every flow admits on its first packet.
            mb.learn_server_hint(Ipv4Addr::new(192, 168, 1, 1), AppClass::Streaming);
            for i in 0..flows_n as u64 {
                let k = key(i);
                let pkt = Packet::new(Instant::from_nanos(i), 1200, k, Direction::Downlink, 0);
                assert_eq!(mb.process_packet(&pkt, SnrLevel::High), Action::Forward);
            }
            assert_eq!(mb.admitted_flows(), flows_n);
            let stride = (flows_n / dirty_n).max(1) as u64;
            let dirty: Vec<FlowKey> = (0..dirty_n as u64).map(|j| key(j * stride)).collect();
            let mut now = Instant::from_secs(10);
            records.push(measure(
                format!("PollSteady/{label}"),
                flows_n,
                2,
                reps,
                &bounds,
                || {
                    for k in &dirty {
                        mb.record_delivery(k, now, now + Duration::from_millis(5), 1400);
                    }
                    now += Duration::from_secs(2);
                    black_box(mb.poll(now).len());
                },
            ));
        }
    }

    emit_records("flow_scale", &records, args);
}
