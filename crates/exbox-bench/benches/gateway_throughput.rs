//! Closed-loop serving throughput of the concurrent sharded gateway.
//!
//! `GatewayThroughput/{1,2,4,8}shard` replays the same flow-arrival
//! storm through a serving-only [`ConcurrentGateway`] with 1/2/4/8
//! shards, each shard driven by its own pinned `exbox-par`
//! [`WorkerPool`] worker. Every flow sends 10 packets (classified at
//! the 8th, decided against the shared matrix, admitted, then
//! departed), so the run exercises the full packet path: rejected-set
//! check, flow table, early classification, lock-free snapshot pin,
//! shared-matrix update and departure.
//!
//! One rep = serving the whole storm; the record's `n` is total
//! packets, so `p50_ns / n` is the per-packet serving cost. On a
//! multi-core runner the 4-shard scenario must beat 1-shard by ≥ 2.5x
//! (`scripts/bench_compare.sh` gates this when `nproc ≥ 4`); on one
//! core the scenarios mostly measure sharding overhead.
//!
//! `PipelineThroughput/{1,2,4,8}core` drives the same gateway through
//! the single-ingress pipeline (`start_pipeline`/`ingest`): one
//! dispatcher, per-lane SPSC rings, globally ordered verdict merge.
//! Unlike `GatewayThroughput` (pre-partitioned, one driver per shard)
//! this measures the *real* deployment shape — one packet stream in,
//! one verdict stream out — including dispatch, ring hand-off and
//! reorder cost. Gated at 4core ≥ 2.5x 1core on `nproc ≥ 4` runners.
//!
//! Hand-rolled harness (offline sandbox, no Criterion). `--json` for
//! `scripts/bench_compare.sh`, `--quick` for the CI smoke job.

use std::hint::black_box;
use std::sync::Arc;

use exbox_bench::{bench_args, emit_records, measure, BenchRecord};
use exbox_core::gateway::{ConcurrentGateway, GatewayConfig, ModelSnapshot};
use exbox_core::prelude::*;
use exbox_ml::Label;
use exbox_net::{AppClass, Direction, FlowKey, Instant, Packet, Protocol};
use exbox_obs::buckets;
use exbox_par::WorkerPool;

/// A classifier trained to a roomy streaming region (<= 32 flows), so
/// the storm below keeps admitting and departing rather than
/// saturating into pure rejections.
fn trained_classifier() -> AdmittanceClassifier {
    let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
        batch_size: 4096, // static during the run (serving-only anyway)
        bootstrap_min_samples: 128,
        ..AdmittanceConfig::default()
    });
    for n in 0..256u32 {
        let total = n % 64;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 32 { Label::Pos } else { Label::Neg };
        ac.observe(mat, y);
    }
    assert_eq!(ac.phase(), Phase::Online, "fixture must go online");
    ac
}

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        exbox_core::qoe::QosScale::new(1e3, 1e8),
    )
}

const PKTS_PER_FLOW: usize = 10;

fn flow_packets(id: u32) -> (FlowKey, Vec<Packet>) {
    let key = FlowKey::synthetic(id, id, 1, Protocol::Tcp);
    let pkts = (0..PKTS_PER_FLOW)
        .map(|i| {
            Packet::new(
                Instant::from_millis(2 * i as u64),
                1400,
                key,
                Direction::Downlink,
                i as u64,
            )
        })
        .collect();
    (key, pkts)
}

fn main() {
    let args = bench_args();
    let mut records: Vec<BenchRecord> = Vec::new();
    // One rep is a whole storm (~ms..s), not a single call.
    let bounds = buckets::exponential(10_000.0, 2.0, 32);
    let flows: u32 = if args.quick { 2_048 } else { 16_384 };
    let reps: u32 = if args.quick { 3 } else { 15 };

    let classifier = trained_classifier();
    let est = estimator();

    for shards in [1usize, 2, 4, 8] {
        let cfg = GatewayConfig {
            shards,
            ..GatewayConfig::default()
        };
        // Partition the storm by owner shard once (the hash is fixed,
        // so this is identical for every rep).
        let probe = ConcurrentGateway::serving_only(
            cfg.clone(),
            est.clone(),
            ModelSnapshot::from_classifier(1, &classifier),
        );
        let mut partition: Vec<Vec<(FlowKey, Vec<Packet>)>> = vec![Vec::new(); shards];
        for id in 1..=flows {
            let (key, pkts) = flow_packets(id);
            partition[probe.shard_for(&key)].push((key, pkts));
        }
        drop(probe);
        let partition = Arc::new(partition);
        let total_pkts = flows as usize * PKTS_PER_FLOW;

        let pool = WorkerPool::new(shards);
        records.push(measure(
            format!("GatewayThroughput/{shards}shard"),
            total_pkts,
            2,
            reps,
            &bounds,
            || {
                let mut gw = ConcurrentGateway::serving_only(
                    cfg.clone(),
                    est.clone(),
                    ModelSnapshot::from_classifier(1, &classifier),
                );
                let gw_shards = gw.take_shards();
                for (idx, mut shard) in gw_shards.into_iter().enumerate() {
                    let chunk = Arc::clone(&partition);
                    pool.submit(idx, move || {
                        let mut served = 0u64;
                        for (key, pkts) in &chunk[shard.id()] {
                            for p in pkts {
                                shard.process_packet(p, SnrLevel::High);
                                served += 1;
                            }
                            shard.flow_departed(key);
                        }
                        black_box(served);
                    });
                }
                pool.barrier();
                black_box(gw.matrix());
            },
        ));
    }

    // Batched ingest vs per-packet driving on one shard (sequential
    // driver, same storm, identical verdicts): the batch path pins the
    // model snapshot once per chunk, run-length-caches consecutive
    // same-flow verdicts and flushes counters per batch. The storm is
    // an overload burst — each flow arrives as 32 back-to-back packets
    // and the region saturates early, so most of the stream is the
    // post-verdict fast path the run-length cache targets. The
    // record's `n` is total packets, so `n / (p50_ns / 1e9)` is the
    // packets/sec headline `scripts/bench_compare.sh` reports.
    {
        const BURST: usize = 32;
        let cfg = GatewayConfig {
            shards: 1,
            ..GatewayConfig::default()
        };
        let burst_flows = flows / (BURST / PKTS_PER_FLOW) as u32;
        let mut stream: Vec<(Packet, SnrLevel)> = Vec::with_capacity(burst_flows as usize * BURST);
        for id in 1..=burst_flows {
            let key = FlowKey::synthetic(id, id, 1, Protocol::Tcp);
            for i in 0..BURST {
                let p = Packet::new(
                    Instant::from_millis(2 * i as u64),
                    1400,
                    key,
                    Direction::Downlink,
                    i as u64,
                );
                stream.push((p, SnrLevel::High));
            }
        }
        let batch = cfg.batch.max(1);
        for (label, batched) in [("per-packet", false), ("batched", true)] {
            records.push(measure(
                format!("GatewayBatch/{label}"),
                stream.len(),
                2,
                reps,
                &bounds,
                || {
                    let mut gw = ConcurrentGateway::serving_only(
                        cfg.clone(),
                        est.clone(),
                        ModelSnapshot::from_classifier(1, &classifier),
                    );
                    if batched {
                        for chunk in stream.chunks(batch) {
                            black_box(gw.process_packets(chunk));
                        }
                    } else {
                        for (p, snr) in &stream {
                            black_box(gw.process_packet(p, *snr));
                        }
                    }
                    black_box(gw.matrix());
                },
            ));
        }
    }

    // Multi-core pipeline data plane: one dispatcher flow-hashing an
    // interleaved storm into per-lane SPSC rings, 1/2/4/8 run-to-
    // completion workers, verdicts merged back into global ingress
    // order (byte-identical to sequential driving — DESIGN.md §10).
    // The storm interleaves flows round-robin so consecutive packets
    // land on different lanes and the run-length cache rarely hits:
    // per-packet worker cost (flow table + classify + amortised
    // decisions) dominates the dispatcher, which is what makes the
    // scenario scale. `scripts/bench_compare.sh` gates 4core ≥ 2.5x
    // 1core when `nproc ≥ 4` and reports `n / (p50_ns / 1e9)` as the
    // packets/sec headline.
    {
        const ROUNDS: u64 = 32;
        let pipe_flows: u32 = if args.quick { 128 } else { 512 };
        let mut stream: Vec<(Packet, SnrLevel)> =
            Vec::with_capacity(pipe_flows as usize * ROUNDS as usize);
        let mut t = 0u64;
        for s in 0..ROUNDS {
            for id in 1..=pipe_flows {
                let key = FlowKey::synthetic(id, id, 1, Protocol::Tcp);
                stream.push((
                    Packet::new(
                        Instant::from_millis(2 * t),
                        1400,
                        key,
                        Direction::Downlink,
                        s,
                    ),
                    SnrLevel::High,
                ));
                t += 1;
            }
        }
        for cores in [1usize, 2, 4, 8] {
            let cfg = GatewayConfig {
                shards: cores,
                ..GatewayConfig::default()
            };
            records.push(measure(
                format!("PipelineThroughput/{cores}core"),
                stream.len(),
                2,
                reps,
                &bounds,
                || {
                    let mut gw = ConcurrentGateway::serving_only(
                        cfg.clone(),
                        est.clone(),
                        ModelSnapshot::from_classifier(1, &classifier),
                    );
                    let mut pipe = gw.start_pipeline();
                    let mut verdicts = Vec::with_capacity(stream.len());
                    for chunk in stream.chunks(256) {
                        pipe.ingest(chunk);
                        pipe.drain_verdicts(&mut verdicts);
                    }
                    verdicts.extend(gw.finish_pipeline(pipe));
                    assert_eq!(verdicts.len(), stream.len());
                    black_box(&verdicts);
                    black_box(gw.matrix());
                },
            ));
        }
    }

    emit_records("gateway_throughput", &records, args);
}
