//! §5.3 latency benchmark: Admittance Classifier training time vs
//! training-set size, plus the online-retrain scenarios the parallel
//! training pipeline targets.
//!
//! The paper: "Training the Admittance Classifier for ExBox with 50
//! samples takes ≈360 ms median latency. The training latency
//! increases to more than 2 seconds when 1000 samples are
//! considered", and cites primal optimisation as the fix. Shape to
//! reproduce: superlinear growth for the kernel-SMO path, near-linear
//! for the Pegasos primal path (the paper's suggested remedy).
//!
//! On top of the paper's cold-fit sweep, two retrain scenarios
//! measure what ExBox actually pays online:
//!
//! * `rbf_2000_cold` — a from-zero 2,000-sample RBF fit, the cost the
//!   middlebox paid per batch before warm starting.
//! * `rbf_2000_retrain` — the same fit warm-started from its own
//!   converged dual state, i.e. a steady-state periodic retrain. The
//!   committed `BENCH_BASELINE.json` pins the cold cost; the
//!   acceptance bar is retrain p50 at least 2× below it.
//!
//! Hand-rolled timing harness (the offline sandbox has no crates.io
//! access, so no Criterion). Default output is CSV; `--json` emits
//! the document `scripts/bench_compare.sh` consumes, `--quick`
//! shrinks sizes/reps for the CI smoke job.

use std::hint::black_box;

use exbox_bench::{bench_args, emit_records, measure, BenchRecord};
use exbox_ml::prelude::*;
use exbox_obs::buckets;

/// A noisy two-region dataset in traffic-matrix-like feature space.
fn dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(6);
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for _ in 0..n {
        let x: Vec<f64> = (0..6).map(|_| (next() % 12) as f64).collect();
        let total: f64 = x.iter().sum();
        let label = if total <= 30.0 {
            Label::Pos
        } else {
            Label::Neg
        };
        ds.push(x, label);
    }
    ds
}

fn main() {
    let args = bench_args();
    let mut records: Vec<BenchRecord> = Vec::new();
    let bounds = buckets::latency_ns();
    let sizes: &[usize] = if args.quick {
        &[50, 200]
    } else {
        &[50, 200, 1000]
    };
    let reps = if args.quick { 3 } else { 10 };

    for &n in sizes {
        let ds = dataset(n);
        let scaler = StandardScaler::fit(&ds);
        let scaled = scaler.transform_dataset(&ds);

        records.push(measure(
            format!("smo_poly2/{n}"),
            n,
            1,
            reps,
            &bounds,
            || {
                let t = SvmTrainer::new(Kernel::poly(1.0 / 6.0, 1.0, 2)).c(10.0);
                black_box(t.train(black_box(&scaled)));
            },
        ));
        records.push(measure(format!("smo_rbf/{n}"), n, 1, reps, &bounds, || {
            let t = SvmTrainer::new(Kernel::rbf_default(6)).c(10.0);
            black_box(t.train(black_box(&scaled)));
        }));
        records.push(measure(
            format!("pegasos_linear/{n}"),
            n,
            1,
            reps,
            &bounds,
            || {
                let t = LinearSvmTrainer::new();
                black_box(t.train(black_box(&scaled)));
            },
        ));
        records.push(measure(
            format!("logistic/{n}"),
            n,
            1,
            reps,
            &bounds,
            || {
                let t = LogisticRegressionTrainer::new();
                black_box(t.train(black_box(&scaled)));
            },
        ));
    }

    // Online-retrain scenarios: cold from-zero fit vs the same fit
    // warm-started from its own converged dual state (what a
    // steady-state periodic retrain costs the middlebox).
    let n = if args.quick { 400 } else { 2000 };
    let reps = if args.quick { 2 } else { 5 };
    let ds = dataset(n);
    let scaler = StandardScaler::fit(&ds);
    let scaled = scaler.transform_dataset(&ds);
    let trainer = SvmTrainer::new(Kernel::rbf_default(6)).c(10.0);
    records.push(measure(
        format!("rbf_{n}_cold"),
        n,
        1,
        reps,
        &bounds,
        || {
            black_box(trainer.fit_warm(black_box(&scaled), None));
        },
    ));
    let fit = trainer.fit_warm(&scaled, None);
    records.push(measure(
        format!("rbf_{n}_retrain"),
        n,
        1,
        reps,
        &bounds,
        || {
            black_box(trainer.fit_warm(black_box(&scaled), Some(fit.warm_start())));
        },
    ));

    emit_records("training_latency", &records, args);
}
