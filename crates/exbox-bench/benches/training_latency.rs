//! §5.3 latency benchmark: Admittance Classifier training time vs
//! training-set size.
//!
//! The paper: "Training the Admittance Classifier for ExBox with 50
//! samples takes ≈360 ms median latency. The training latency
//! increases to more than 2 seconds when 1000 samples are
//! considered", and cites primal optimisation as the fix. Shape to
//! reproduce: superlinear growth for the kernel-SMO path, near-linear
//! for the Pegasos primal path (the paper's suggested remedy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use exbox_ml::prelude::*;

/// A noisy two-region dataset in traffic-matrix-like feature space.
fn dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(6);
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for _ in 0..n {
        let x: Vec<f64> = (0..6).map(|_| (next() % 12) as f64).collect();
        let total: f64 = x.iter().sum();
        let label = if total <= 30.0 { Label::Pos } else { Label::Neg };
        ds.push(x, label);
    }
    ds
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_latency");
    group.sample_size(10);

    for n in [50usize, 200, 1000] {
        let ds = dataset(n);
        let scaler = StandardScaler::fit(&ds);
        let scaled = scaler.transform_dataset(&ds);

        group.bench_with_input(BenchmarkId::new("smo_poly2", n), &n, |b, _| {
            let t = SvmTrainer::new(Kernel::poly(1.0 / 6.0, 1.0, 2)).c(10.0);
            b.iter(|| black_box(t.train(black_box(&scaled))))
        });
        group.bench_with_input(BenchmarkId::new("smo_rbf", n), &n, |b, _| {
            let t = SvmTrainer::new(Kernel::rbf_default(6)).c(10.0);
            b.iter(|| black_box(t.train(black_box(&scaled))))
        });
        group.bench_with_input(BenchmarkId::new("pegasos_linear", n), &n, |b, _| {
            let t = LinearSvmTrainer::new();
            b.iter(|| black_box(t.train(black_box(&scaled))))
        });
        group.bench_with_input(BenchmarkId::new("logistic", n), &n, |b, _| {
            let t = LogisticRegressionTrainer::new();
            b.iter(|| black_box(t.train(black_box(&scaled))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
