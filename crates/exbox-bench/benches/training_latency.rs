//! §5.3 latency benchmark: Admittance Classifier training time vs
//! training-set size, plus the online-retrain scenarios the parallel
//! training pipeline targets.
//!
//! The paper: "Training the Admittance Classifier for ExBox with 50
//! samples takes ≈360 ms median latency. The training latency
//! increases to more than 2 seconds when 1000 samples are
//! considered", and cites primal optimisation as the fix. Shape to
//! reproduce: superlinear growth for the kernel-SMO path, near-linear
//! for the Pegasos primal path (the paper's suggested remedy).
//!
//! On top of the paper's cold-fit sweep, two retrain scenarios
//! measure what ExBox actually pays online:
//!
//! * `rbf_2000_cold` — a from-zero 2,000-sample RBF fit, the cost the
//!   middlebox paid per batch before warm starting.
//! * `rbf_2000_retrain` — the same fit warm-started from its own
//!   converged dual state, i.e. a steady-state periodic retrain. The
//!   committed `BENCH_BASELINE.json` pins the cold cost; the
//!   acceptance bar is retrain p50 at least 2× below it.
//!
//! The retrain fast path (DESIGN.md §8) adds:
//!
//! * `GramBuild/{scalar,simd}` — the kernel-matrix build under each
//!   engine, forced explicitly so both run on every build config, with
//!   an in-process bit-identity assertion.
//! * `RetrainSteady/{cold,warm,incremental}` — the same store retrained
//!   from zero, warm-started with a full Gram rebuild, and
//!   warm-started through the persistent kernel cache after a Δ = 20
//!   row append (`bench_compare.sh` holds incremental to ≥2× under
//!   warm).
//!
//! Hand-rolled timing harness (the offline sandbox has no crates.io
//! access, so no Criterion). Default output is CSV; `--json` emits
//! the document `scripts/bench_compare.sh` consumes, `--quick`
//! shrinks sizes/reps for the CI smoke job.

use std::hint::black_box;

use exbox_bench::{bench_args, emit_records, measure, BenchRecord};
use exbox_ml::prelude::*;
use exbox_ml::{gram_matrix_with_engine, PersistentKernelCache};
use exbox_obs::buckets;

/// A noisy two-region dataset in traffic-matrix-like feature space.
fn dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(6);
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for _ in 0..n {
        let x: Vec<f64> = (0..6).map(|_| (next() % 12) as f64).collect();
        let total: f64 = x.iter().sum();
        let label = if total <= 30.0 {
            Label::Pos
        } else {
            Label::Neg
        };
        ds.push(x, label);
    }
    ds
}

fn main() {
    let args = bench_args();
    let mut records: Vec<BenchRecord> = Vec::new();
    let bounds = buckets::latency_ns();
    let sizes: &[usize] = if args.quick {
        &[50, 200]
    } else {
        &[50, 200, 1000]
    };
    let reps = if args.quick { 3 } else { 10 };

    for &n in sizes {
        let ds = dataset(n);
        let scaler = StandardScaler::fit(&ds);
        let scaled = scaler.transform_dataset(&ds);

        records.push(measure(
            format!("smo_poly2/{n}"),
            n,
            1,
            reps,
            &bounds,
            || {
                let t = SvmTrainer::new(Kernel::poly(1.0 / 6.0, 1.0, 2)).c(10.0);
                black_box(t.train(black_box(&scaled)));
            },
        ));
        records.push(measure(format!("smo_rbf/{n}"), n, 1, reps, &bounds, || {
            let t = SvmTrainer::new(Kernel::rbf_default(6)).c(10.0);
            black_box(t.train(black_box(&scaled)));
        }));
        records.push(measure(
            format!("pegasos_linear/{n}"),
            n,
            1,
            reps,
            &bounds,
            || {
                let t = LinearSvmTrainer::new();
                black_box(t.train(black_box(&scaled)));
            },
        ));
        records.push(measure(
            format!("logistic/{n}"),
            n,
            1,
            reps,
            &bounds,
            || {
                let t = LogisticRegressionTrainer::new();
                black_box(t.train(black_box(&scaled)));
            },
        ));
    }

    // Online-retrain scenarios: cold from-zero fit vs the same fit
    // warm-started from its own converged dual state (what a
    // steady-state periodic retrain costs the middlebox).
    let n = if args.quick { 400 } else { 2000 };
    let reps = if args.quick { 2 } else { 5 };
    let ds = dataset(n);
    let scaler = StandardScaler::fit(&ds);
    let scaled = scaler.transform_dataset(&ds);
    let trainer = SvmTrainer::new(Kernel::rbf_default(6)).c(10.0);
    records.push(measure(
        format!("rbf_{n}_cold"),
        n,
        1,
        reps,
        &bounds,
        || {
            black_box(trainer.fit_warm(black_box(&scaled), None));
        },
    ));
    let fit = trainer.fit_warm(&scaled, None);
    records.push(measure(
        format!("rbf_{n}_retrain"),
        n,
        1,
        reps,
        &bounds,
        || {
            black_box(trainer.fit_warm(black_box(&scaled), Some(fit.warm_start())));
        },
    ));

    // Gram-build engines, forced explicitly so both run on every build
    // config (the lanes code is always compiled; the `simd` feature
    // only changes the default selection). The outputs are
    // bit-identical by the DESIGN.md §6 contract — asserted here, not
    // just in tests, so the speedup bar can never be won by drift.
    // Measured at 1,000 rows: a 2,000² Gram is 32 MB of writes and
    // memory bandwidth swallows the lane win; 1,000² (8 MB) keeps the
    // build compute-bound, which is also the regime the classifier's
    // periodic retrains live in.
    let pool = exbox_par::ThreadPool::global();
    let gram_reps = if args.quick { 3 } else { 8 };
    let gn = if args.quick { n } else { 1000 };
    let gram_ds = dataset(gn);
    let gram_scaled = StandardScaler::fit(&gram_ds).transform_dataset(&gram_ds);
    records.push(measure(
        "GramBuild/scalar",
        gn,
        1,
        gram_reps,
        &bounds,
        || {
            black_box(gram_matrix_with_engine(
                Kernel::rbf_default(6),
                black_box(&gram_scaled),
                &pool,
                KernelEngine::Scalar,
            ));
        },
    ));
    records.push(measure("GramBuild/simd", gn, 1, gram_reps, &bounds, || {
        black_box(gram_matrix_with_engine(
            Kernel::rbf_default(6),
            black_box(&gram_scaled),
            &pool,
            KernelEngine::Lanes,
        ));
    }));
    let g_scalar = gram_matrix_with_engine(
        Kernel::rbf_default(6),
        &gram_scaled,
        &pool,
        KernelEngine::Scalar,
    );
    let g_lanes = gram_matrix_with_engine(
        Kernel::rbf_default(6),
        &gram_scaled,
        &pool,
        KernelEngine::Lanes,
    );
    assert!(
        g_scalar
            .iter()
            .zip(&g_lanes)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "engine Grams must be bit-identical"
    );

    // Steady-state retrain triptych at the same store size:
    //   cold        — from-zero fit, full Gram + full SMO;
    //   warm        — warm-started dual state, but the Gram is still
    //                 rebuilt from scratch (the pre-cache behaviour);
    //   incremental — warm start + persistent kernel cache: each rep
    //                 replays a store that grew by Δ = 20 rows, so
    //                 only those rows' Gram entries are evaluated.
    let delta = 20.min(n / 2);
    records.push(measure("RetrainSteady/cold", n, 1, reps, &bounds, || {
        black_box(trainer.fit_warm(black_box(&scaled), None));
    }));
    records.push(measure("RetrainSteady/warm", n, 1, reps, &bounds, || {
        black_box(trainer.fit_warm(black_box(&scaled), Some(fit.warm_start())));
    }));
    let mut cache = PersistentKernelCache::new();
    trainer.fit_warm_cached(&scaled, None, &mut cache);
    records.push(measure(
        "RetrainSteady/incremental",
        n,
        1,
        reps,
        &bounds,
        || {
            // Rewind the cache by Δ rows: the fit then pays exactly
            // one incremental append (Δ fresh Gram rows) plus the
            // warm-started SMO replay.
            cache.truncate(n - delta);
            black_box(trainer.fit_warm_cached(
                black_box(&scaled),
                Some(fit.warm_start()),
                &mut cache,
            ));
        },
    ));

    emit_records("training_latency", &records, args);
}
