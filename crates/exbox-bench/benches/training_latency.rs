//! §5.3 latency benchmark: Admittance Classifier training time vs
//! training-set size.
//!
//! The paper: "Training the Admittance Classifier for ExBox with 50
//! samples takes ≈360 ms median latency. The training latency
//! increases to more than 2 seconds when 1000 samples are
//! considered", and cites primal optimisation as the fix. Shape to
//! reproduce: superlinear growth for the kernel-SMO path, near-linear
//! for the Pegasos primal path (the paper's suggested remedy).
//!
//! Hand-rolled timing harness (the offline sandbox has no crates.io
//! access, so no Criterion): each trainer/size pair records an
//! `exbox-obs` histogram over repeated fits and prints
//! `trainer,n,reps,mean_ns,p50_ns,max_ns` CSV.

use std::hint::black_box;

use exbox_ml::prelude::*;
use exbox_obs::{buckets, Histogram};

/// A noisy two-region dataset in traffic-matrix-like feature space.
fn dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(6);
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for _ in 0..n {
        let x: Vec<f64> = (0..6).map(|_| (next() % 12) as f64).collect();
        let total: f64 = x.iter().sum();
        let label = if total <= 30.0 {
            Label::Pos
        } else {
            Label::Neg
        };
        ds.push(x, label);
    }
    ds
}

fn bench_trainer(name: &str, n: usize, scaled: &Dataset, reps: u32, train: impl Fn(&Dataset)) {
    train(scaled); // warm-up
    let hist = Histogram::new(&buckets::latency_ns());
    for _ in 0..reps {
        let ((), ns) = exbox_obs::time_ns(|| train(scaled));
        hist.record(ns);
    }
    let s = hist.snapshot();
    println!(
        "{name},{n},{reps},{:.0},{:.0},{:.0}",
        s.mean(),
        s.quantile(0.50),
        s.max
    );
}

fn main() {
    println!("trainer,n,reps,mean_ns,p50_ns,max_ns");

    for n in [50usize, 200, 1000] {
        let ds = dataset(n);
        let scaler = StandardScaler::fit(&ds);
        let scaled = scaler.transform_dataset(&ds);
        let reps = 10;

        bench_trainer("smo_poly2", n, &scaled, reps, |d| {
            let t = SvmTrainer::new(Kernel::poly(1.0 / 6.0, 1.0, 2)).c(10.0);
            black_box(t.train(black_box(d)));
        });
        bench_trainer("smo_rbf", n, &scaled, reps, |d| {
            let t = SvmTrainer::new(Kernel::rbf_default(6)).c(10.0);
            black_box(t.train(black_box(d)));
        });
        bench_trainer("pegasos_linear", n, &scaled, reps, |d| {
            let t = LinearSvmTrainer::new();
            black_box(t.train(black_box(d)));
        });
        bench_trainer("logistic", n, &scaled, reps, |d| {
            let t = LogisticRegressionTrainer::new();
            black_box(t.train(black_box(d)));
        });
    }
}
