//! Ablation: the learning backend behind the Admittance Classifier.
//!
//! The paper claims "the actual learning technique is not central to
//! the concept of ExBox" (§3). This ablation runs the same workload
//! through every backend this reproduction ships — kernel SVMs
//! (poly-2, RBF, linear), logistic regression and the Pegasos primal
//! SVM — and reports their admission metrics side by side.
//!
//! Expected: the nonlinear backends (poly/RBF) lead, the linear
//! family trails slightly on curved regions, and nothing collapses —
//! supporting the paper's modularity claim.
//!
//! Output: `backend,precision,recall,accuracy,f1`.

use exbox_bench::{csv_header, f, wifi_testbed_labeler};
use exbox_core::prelude::*;
use exbox_testbed::{build_samples, evaluate_online, SnrPolicy};
use exbox_traffic::RandomPattern;

fn main() {
    csv_header(&["backend", "precision", "recall", "accuracy", "f1"]);
    let mixes = RandomPattern::new(4, 10, 0xAB1A).matrices(220);
    eprintln!("labelling ground truth...");
    let mut labeler = wifi_testbed_labeler(0xAB1A);
    let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, None);
    eprintln!("{} samples", samples.len());

    let backends = [
        (
            "svm_poly2",
            ClassifierBackend::SvmPoly { c: 10.0, degree: 2 },
        ),
        (
            "svm_rbf",
            ClassifierBackend::SvmRbf {
                c: 10.0,
                gamma: None,
            },
        ),
        ("svm_linear", ClassifierBackend::SvmLinear { c: 10.0 }),
        ("logistic", ClassifierBackend::Logistic),
        ("pegasos", ClassifierBackend::PegasosLinear),
    ];
    for (name, backend) in backends {
        let mut ex = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
            backend,
            batch_size: 20,
            bootstrap_min_samples: 50,
            ..AdmittanceConfig::default()
        }));
        let m = evaluate_online(&mut ex, &samples, 50).metrics();
        println!(
            "{name},{},{},{},{}",
            f(m.precision),
            f(m.recall),
            f(m.accuracy),
            f(m.f1)
        );
    }

    exbox_bench::dump_metrics();
}
