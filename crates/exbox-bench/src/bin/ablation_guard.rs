//! Ablation: the monotonicity guard (an extension beyond the paper).
//!
//! Capacity regions are downward closed — adding flows never improves
//! anyone's QoE — so a matrix dominating a known-inadmissible matrix
//! must be inadmissible. The guard enforces this before consulting
//! the model. This ablation measures its effect under clean and noisy
//! labels: with clean labels it should help (or at least not hurt);
//! with label noise it makes the controller more conservative —
//! higher precision, lower recall — because one noisy negative label
//! vetoes its whole dominance cone until re-observed.
//!
//! Output: `labels,guard,precision,recall,accuracy`.

use exbox_bench::{csv_header, f, wifi_fluid_labeler};
use exbox_core::prelude::*;
use exbox_testbed::{build_samples, evaluate_online, SnrPolicy};
use exbox_traffic::RandomPattern;

fn main() {
    csv_header(&["labels", "guard", "precision", "recall", "accuracy"]);
    let mixes = RandomPattern::new(25, 60, 0xAB1B).matrices(260);

    for (labels, noise) in [("clean", 0.0), ("noisy", 0.25)] {
        let mut labeler = wifi_fluid_labeler(noise, 0xAB1B);
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, None);
        for guard in [false, true] {
            let mut ex = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
                monotone_guard: guard,
                batch_size: 20,
                bootstrap_min_samples: 60,
                ..AdmittanceConfig::default()
            }));
            let m = evaluate_online(&mut ex, &samples, 50).metrics();
            println!(
                "{labels},{guard},{},{},{}",
                f(m.precision),
                f(m.recall),
                f(m.accuracy)
            );
        }
    }

    exbox_bench::dump_metrics();
}
