//! Checkpoint/restore determinism demo: the same Fig.-7-style WiFi
//! workload replayed straight through versus killed at the halfway
//! point, checkpointed, restored and continued. The two CSV outputs
//! must be **byte-identical** — the `exbox-ckpt` round-trip is
//! decision-bit-exact, so a crash costs nothing but the restart.
//!
//! ```sh
//! cargo run --release -p exbox-bench --bin ckpt_restore_demo -- --straight    > straight.csv
//! cargo run --release -p exbox-bench --bin ckpt_restore_demo -- --interrupted > interrupted.csv
//! cmp straight.csv interrupted.csv
//! ```
//!
//! Output: `fed,predicted,correct,cum_accuracy` every 20 arrivals.

use exbox_bench::{csv_header, f, wifi_testbed_labeler};
use exbox_core::prelude::*;
use exbox_core::qoe::QosScale;
use exbox_obs::MetricsRegistry;
use exbox_testbed::{build_samples, Sample, SnrPolicy};
use exbox_traffic::{ClassMix, RandomPattern};

fn acfg() -> AdmittanceConfig {
    AdmittanceConfig {
        batch_size: 20,
        bootstrap_min_samples: 50,
        ..AdmittanceConfig::default()
    }
}

/// A deterministic synthetic estimator (the checkpoint also carries
/// the IQX fits; the demo asserts they survive the round-trip).
fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        QosScale::new(1e3, 1e8),
    )
}

/// Replay `samples` through the classifier, printing one CSV row per
/// 20 arrivals. Returns (correct, fed) so a resumed run can continue
/// the running tally exactly where it stopped.
fn replay(
    classifier: &mut AdmittanceClassifier,
    samples: &[Sample],
    mut fed: usize,
    mut correct: usize,
) -> (usize, usize) {
    for s in samples {
        let predicted = classifier.classify(&s.matrix);
        if predicted == s.truth {
            correct += 1;
        }
        classifier.observe(s.matrix, s.observed);
        fed += 1;
        if fed.is_multiple_of(20) {
            println!(
                "{fed},{},{},{}",
                if predicted.is_pos() { 1 } else { 0 },
                u8::from(predicted == s.truth),
                f(correct as f64 / fed as f64)
            );
        }
    }
    (fed, correct)
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let interrupted = match mode.as_str() {
        "--interrupted" => true,
        "--straight" | "" => false,
        other => {
            eprintln!("usage: ckpt_restore_demo [--straight|--interrupted], got {other:?}");
            std::process::exit(2);
        }
    };

    eprintln!("building ground truth on the WiFi DES...");
    let mixes: Vec<ClassMix> = RandomPattern::new(4, 10, 0xF167).matrices(160);
    let mut labeler = wifi_testbed_labeler(0x71F1);
    let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, None);
    eprintln!("{} arrival samples", samples.len());

    csv_header(&["fed", "predicted", "correct", "cum_accuracy"]);

    let reg = MetricsRegistry::new();
    let mut classifier = AdmittanceClassifier::with_registry(acfg(), &reg);

    if !interrupted {
        replay(&mut classifier, &samples, 0, 0);
    } else {
        let half = samples.len() / 2;
        let (fed, correct) = replay(&mut classifier, &samples[..half], 0, 0);

        // The crash: snapshot, drop the live state, restore.
        let mut ckpt = Vec::new();
        save_checkpoint(&classifier, &estimator(), &mut ckpt).expect("checkpoint must write");
        drop(classifier);
        eprintln!(
            "interrupted after {fed} samples; checkpoint is {} bytes; restoring...",
            ckpt.len()
        );
        let restore_reg = MetricsRegistry::new();
        let (mut restored, _est) =
            load_checkpoint(&ckpt[..], acfg(), &restore_reg).expect("checkpoint must load");
        // This workload (50-sample bootstrap, killed halfway through
        // >150 samples) must come back online, not re-bootstrapping.
        assert_eq!(
            restored.phase(),
            Phase::Online,
            "restore lost the learnt region"
        );

        replay(&mut restored, &samples[half..], fed, correct);
    }

    exbox_bench::dump_metrics();
}
