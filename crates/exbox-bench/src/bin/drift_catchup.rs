//! Staleness-bounded catch-up under capacity drift (ROADMAP item 4).
//!
//! A [`ConcurrentGateway`] trainer is fed seeded observation rounds
//! labelled by a synthetic capacity truth (`total flows <= cap`). Mid
//! run the truth shifts to a smaller capacity — the shaped-network
//! event of Fig. 11, but driven through the concurrent trainer so the
//! `gateway.snapshot_staleness` gauge and the retrain fast path
//! (persistent kernel cache + sticky scaler, DESIGN.md §8) are the
//! thing under test. Every round flushes the trainer, then reads the
//! *served* snapshot the way a shard would (`ModelSnapshot::decide`)
//! against a fixed probe set.
//!
//! Output: one CSV row per round of logical quantities only —
//! `round,truth_cap,observations,distinct,staleness,publishes,retrains,compactions,accuracy`
//! — so the committed `results/drift_catchup.csv` regenerates
//! byte-identically (no wall times in the CSV; `--assert` measures
//! them separately and only asserts bounds).
//!
//! ```sh
//! cargo run --release -p exbox-bench --bin drift_catchup \
//!     > results/drift_catchup.csv 2> results/drift_catchup.log
//! # CI bounded-store soak: 10x store churn must keep retrains flat
//! cargo run --release -p exbox-bench --bin drift_catchup -- --assert
//! ```
//!
//! `--assert` switches to a bounded-store soak: the sample cap is set
//! (default 100, `--max-samples`/`EXBOX_MAX_SAMPLES` override), the
//! draw space is widened so the store churns through ≥ 10× the cap in
//! distinct matrices, and the run asserts (a) per-round trainer wall
//! time stays flat (late median ≤ 1.5× early median + scheduling
//! slack), (b) the post-shift accuracy catches back up to the
//! pre-shift baseline in finitely many rounds, and (c) the staleness
//! gauge returns to its pre-shift steady-state bound.

use std::collections::HashSet;
use std::time::Instant as WallInstant;

use exbox_core::gateway::{ConcurrentGateway, GatewayConfig};
use exbox_core::prelude::*;
use exbox_core::qoe::QosScale;
use exbox_ml::Label;
use exbox_net::AppClass;
use exbox_obs::{MetricsRegistry, MetricsSnapshot};

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        QosScale::new(1e3, 1e8),
    )
}

/// xorshift64* — the repo's seeded-workload generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..=max`.
    fn count(&mut self, max: u64) -> u32 {
        (self.next() % (max + 1)) as u32
    }
}

fn mix(web: u32, stream: u32, conf: u32) -> TrafficMatrix {
    let mut m = TrafficMatrix::empty();
    for _ in 0..web {
        m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
    }
    for _ in 0..stream {
        m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
    }
    for _ in 0..conf {
        m.add(FlowKind::new(AppClass::Conferencing, SnrLevel::High));
    }
    m
}

/// Ground truth: the network admits a mix iff its total flow count is
/// within the (drifting) capacity.
fn truth(m: &TrafficMatrix, cap: u32) -> Label {
    if m.total() <= cap {
        Label::Pos
    } else {
        Label::Neg
    }
}

struct Round {
    staleness: f64,
    accuracy: f64,
    wall_ns: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: drift_catchup [--rounds N] [--round-obs N] [--shift N] [--max-samples N] [--assert]\n\
         defaults: 72 rounds x 48 observations, shift after round 24, unbounded store;\n\
         --assert: bounded-store soak (30 rounds, cap 100, widened draw space) with\n\
         flat-retrain / finite-catch-up / staleness assertions"
    );
    std::process::exit(2);
}

fn main() {
    let mut do_assert = false;
    let mut rounds: usize = 0; // 0 = per-mode default
    let mut round_obs: usize = 48;
    let mut shift: usize = 0; // 0 = rounds / 2
    let mut max_samples: Option<usize> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> u64 {
            argv.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a numeric value");
                usage();
            })
        };
        match flag.as_str() {
            "--rounds" => rounds = value("--rounds") as usize,
            "--round-obs" => round_obs = value("--round-obs") as usize,
            "--shift" => shift = value("--shift") as usize,
            "--max-samples" => max_samples = Some(value("--max-samples") as usize),
            "--assert" => do_assert = true,
            _ => usage(),
        }
    }
    if rounds == 0 {
        rounds = if do_assert { 30 } else { 72 };
    }
    if shift == 0 {
        shift = rounds / 3;
    }
    if round_obs == 0 || shift >= rounds {
        usage();
    }
    // Plain mode draws from a small mix space (counts 0..=8 per app)
    // so repeats re-label and the learnt boundary is crisp; assert
    // mode widens the space (0..=24) so nearly every draw is a fresh
    // distinct matrix and the bounded store genuinely churns.
    let (draw_max, cap_pre, cap_post) = if do_assert { (24, 36, 24) } else { (8, 10, 6) };
    let cap = max_samples.unwrap_or(if do_assert { 100 } else { 0 });

    let reg = MetricsRegistry::new();
    let classifier = AdmittanceClassifier::with_registry(
        AdmittanceConfig {
            max_samples: cap,
            // The drift soak is the fast path's showcase: keep the
            // bootstrap scaler across warm retrains so post-shift
            // catch-up pays incremental Gram appends, not rebuilds.
            sticky_scaler: true,
            ..AdmittanceConfig::default()
        },
        &reg,
    );
    let mut gw = ConcurrentGateway::new(GatewayConfig::default(), estimator(), classifier);
    let mut reader = gw.snapshot_reader();

    // Fixed probe set, disjoint seed: accuracy is always "how does the
    // *served* snapshot score fresh mixes against the current truth".
    let mut probe_rng = Rng(0x00D2_1F7A_11CE_0001);
    let probes: Vec<TrafficMatrix> = (0..256)
        .map(|_| {
            mix(
                probe_rng.count(draw_max),
                probe_rng.count(draw_max),
                probe_rng.count(draw_max),
            )
        })
        .collect();

    exbox_bench::csv_header(&[
        "round",
        "truth_cap",
        "observations",
        "distinct",
        "staleness",
        "publishes",
        "retrains",
        "compactions",
        "accuracy",
    ]);

    let mut obs_rng = Rng(0x00D2_1F7A_0B5E_0002);
    let mut seen: HashSet<(u32, u32, u32)> = HashSet::new();
    let mut observations: u64 = 0;
    let mut history: Vec<Round> = Vec::with_capacity(rounds);
    for round in 1..=rounds {
        let truth_cap = if round <= shift { cap_pre } else { cap_post };
        let wall = WallInstant::now();
        for _ in 0..round_obs {
            let (w, s, c) = (
                obs_rng.count(draw_max),
                obs_rng.count(draw_max),
                obs_rng.count(draw_max),
            );
            seen.insert((w, s, c));
            let m = mix(w, s, c);
            let label = truth(&m, truth_cap);
            assert!(gw.inject_observation(m, label), "trainer exited mid-run");
            observations += 1;
        }
        assert!(gw.flush_trainer(), "trainer exited mid-run");
        let wall_ns = wall.elapsed().as_nanos() as u64;

        let trainer = gw.trainer_registry().snapshot();
        let staleness = trainer.gauge("gateway.snapshot_staleness").unwrap_or(0.0);
        let learnt = reg.snapshot();
        let retrains = learnt.counter("admittance.retrains").unwrap_or(0);
        let compactions = learnt.counter("admittance.store_compactions").unwrap_or(0);
        let guard = reader.pin();
        let correct = probes
            .iter()
            .filter(|m| guard.decide(m).0 == truth(m, truth_cap))
            .count();
        drop(guard);
        let accuracy = correct as f64 / probes.len() as f64;
        println!(
            "{round},{truth_cap},{observations},{},{staleness:.0},{},{retrains},{compactions},{}",
            seen.len(),
            gw.publish_count(),
            exbox_bench::f(accuracy),
        );
        history.push(Round {
            staleness,
            accuracy,
            wall_ns,
        });
    }

    // Catch-up: rounds after the shift until the served accuracy is
    // back within two probe errors of the last pre-shift round.
    let baseline = history[shift - 1].accuracy;
    let tolerance = 2.0 / probes.len() as f64;
    let caught_up = history[shift..]
        .iter()
        .position(|r| r.accuracy >= baseline - tolerance)
        .map(|i| i + 1);
    let pre_staleness_max = history[..shift]
        .iter()
        .map(|r| r.staleness)
        .fold(0.0f64, f64::max);
    match caught_up {
        Some(n) => eprintln!(
            "caught up {n} round(s) after the shift (baseline accuracy {}, final {})",
            exbox_bench::f(baseline),
            exbox_bench::f(history[rounds - 1].accuracy),
        ),
        None => eprintln!(
            "NOT caught up within {} post-shift rounds (baseline accuracy {})",
            rounds - shift,
            exbox_bench::f(baseline),
        ),
    }

    if do_assert {
        let distinct = seen.len();
        assert!(
            cap > 0 && distinct >= 10 * cap,
            "soak must churn >= 10x the {cap}-sample cap; saw only {distinct} distinct mixes"
        );
        assert!(
            caught_up.is_some(),
            "served accuracy never returned to the pre-shift baseline"
        );
        let last = &history[rounds - 1];
        assert!(
            last.staleness <= pre_staleness_max,
            "staleness {} did not return to the pre-shift bound {}",
            last.staleness,
            pre_staleness_max
        );
        // Flat-retrain bound: with the store capped, a late round
        // costs what an early online round cost. Medians over 6-round
        // windows; 500 µs absolute slack absorbs scheduler jitter on
        // loaded CI runners without masking unbounded growth (an
        // uncapped store is several times slower by the last window).
        let median = |w: &[Round]| -> u64 {
            let mut ns: Vec<u64> = w.iter().map(|r| r.wall_ns).collect();
            ns.sort_unstable();
            ns[ns.len() / 2]
        };
        let early = median(&history[2..8]);
        let late = median(&history[rounds - 6..]);
        eprintln!("round wall time: early median {early} ns, late median {late} ns");
        assert!(
            late <= early * 3 / 2 + 500_000,
            "late rounds ({late} ns) are not within 1.5x of early rounds ({early} ns): \
             the bounded store did not keep retrains flat"
        );
        eprintln!("bounded-store soak ok: {distinct} distinct mixes through a {cap}-sample cap");
    }

    // Full metrics to stderr: the learnt-state registry (retrains,
    // gram_incremental_rows, store_compactions, ...) merged with the
    // gateway's trainer/shard registries.
    let parts = [reg.snapshot(), gw.merged_metrics()];
    eprintln!("{}", MetricsSnapshot::merged(&parts).render());
    gw.shutdown();
}
