//! Dump the *learnt* Experiential Capacity Region as a Fig.-2c-style
//! slice (companion to `fig02_heatmaps`, which plots the *true*
//! region; comparing the two CSVs shows how faithfully the Admittance
//! Classifier reconstructed the boundary).
//!
//! Output: `conf,stream,admissible,score` for the (streaming ×
//! conferencing) plane at zero web flows, after training ExBox on the
//! scale-up workload.

use exbox_bench::{csv_header, exbox_controller, f, standard_estimator, wifi_fluid_labeler};
use exbox_core::excr::region_slice;
use exbox_core::matrix::{FlowKind, SnrLevel, TrafficMatrix};
use exbox_net::AppClass;
use exbox_testbed::{build_samples, evaluate_online, SnrPolicy};
use exbox_traffic::RandomPattern;

fn main() {
    eprintln!("fitting the IQX estimator...");
    let (estimator, _, _) = standard_estimator();

    // Train on a random scale-up workload covering the plane.
    let mixes = RandomPattern::new(40, 80, 0xE8C2).matrices(600);
    let mut labeler = wifi_fluid_labeler(0.05, 0xE8C2);
    let mut samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, Some(&estimator));
    for s in &mut samples {
        s.truth = s.observed; // simulation-mode labels (§6.4)
    }
    eprintln!("training on {} samples...", samples.len());
    let mut exbox = exbox_controller(100, 300);
    let report = evaluate_online(&mut exbox, &samples, 200);
    eprintln!("online metrics while learning: {}", report.metrics());

    // Extract the learnt slice.
    let stream = FlowKind::new(AppClass::Streaming, SnrLevel::High);
    let conf = FlowKind::new(AppClass::Conferencing, SnrLevel::High);
    let cells = region_slice(
        exbox.classifier(),
        &TrafficMatrix::empty(),
        stream,
        40,
        conf,
        40,
    );
    csv_header(&["conf", "stream", "admissible", "score"]);
    for c in &cells {
        println!(
            "{},{},{},{}",
            c.y,
            c.x,
            u8::from(c.admissible),
            c.score.map_or("".to_string(), f)
        );
    }
    // Per-axis capacities, the numbers the paper quotes off Fig. 2c.
    let cap_stream =
        exbox_core::excr::max_admissible(exbox.classifier(), &TrafficMatrix::empty(), stream, 60);
    let cap_conf =
        exbox_core::excr::max_admissible(exbox.classifier(), &TrafficMatrix::empty(), conf, 60);
    eprintln!("learnt per-axis capacity: {cap_stream} streaming, {cap_conf} conferencing");

    exbox_bench::dump_metrics();
}
