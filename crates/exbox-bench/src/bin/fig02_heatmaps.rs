//! Figure 2 (a/b/c): QoE as a function of the number of flows of two
//! applications in a simulated WiFi network.
//!
//! Method follows the paper's §2 exactly: "QoS is modeled as the
//! ratio of average throughput to delay. We use the IQX model to map
//! such QoS values to corresponding QoE values. The QoE values are
//! normalized for comparison purposes and also to calculate the
//! average QoE of the network." The IQX models come from the same
//! training-device sweep the real system fits (Fig. 12 machinery).
//!
//! Expected shape: streaming QoE collapses as streaming count grows
//! but tolerates conferencing peers (Fig. 2a); conferencing QoE has a
//! different, larger region (Fig. 2b); the overall network region is
//! multi-dimensional — no single flow count bounds it (Fig. 2c).
//!
//! Output: `conf,stream,qoe_streaming,qoe_conferencing,qoe_network`.

use exbox_bench::{csv_header, f, standard_estimator};
use exbox_core::qoe::QoeEstimator;
use exbox_net::AppClass;
use exbox_sim::fluid::{FluidFlow, FluidWifi};
use exbox_sim::SnrLevel;
use exbox_testbed::cell::nominal_demand_bps;

/// Normalise a per-class QoE metric to [0, 1].
fn normalize_qoe(class: AppClass, metric: f64) -> f64 {
    match class {
        // Startup delay: 1 s or less is perfect, 20 s unusable.
        AppClass::Streaming => ((20.0 - metric) / 19.0).clamp(0.0, 1.0),
        // PSNR: 10 dB unusable, 42 dB pristine.
        AppClass::Conferencing => ((metric - 10.0) / 32.0).clamp(0.0, 1.0),
        // Page load time: 1 s perfect, 15 s unusable.
        AppClass::Web => ((15.0 - metric) / 14.0).clamp(0.0, 1.0),
    }
}

fn median(v: &mut [f64]) -> f64 {
    if v.is_empty() {
        return 1.0;
    }
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    eprintln!("fitting IQX models from the training sweep...");
    let (estimator, _, _) = standard_estimator();
    let cell = FluidWifi::default();
    csv_header(&[
        "conf",
        "stream",
        "qoe_streaming",
        "qoe_conferencing",
        "qoe_network",
    ]);

    // Every (conf, stream) cell simulates an independent fluid cell:
    // fan the flattened grid out over the exbox-par pool and print in
    // grid order, so the CSV is byte-identical for any EXBOX_THREADS.
    let grid: Vec<(u32, u32)> = (0..=50u32)
        .step_by(2)
        .flat_map(|conf| (0..=50u32).step_by(2).map(move |stream| (conf, stream)))
        .collect();
    let pool = exbox_par::ThreadPool::global();
    let rows = pool.parallel_map(grid.len(), |i| {
        let (conf, stream) = grid[i];
        grid_point(&estimator, &cell, conf, stream)
    });
    for ((conf, stream), (qs, qc, qn)) in grid.iter().zip(&rows) {
        println!("{conf},{stream},{},{},{}", f(*qs), f(*qc), f(*qn));
    }

    exbox_bench::dump_metrics();
}

fn grid_point(
    estimator: &QoeEstimator,
    cell: &FluidWifi,
    conf: u32,
    stream: u32,
) -> (f64, f64, f64) {
    if conf == 0 && stream == 0 {
        return (1.0, 1.0, 1.0);
    }
    let mut flows = Vec::new();
    for _ in 0..stream {
        flows.push(FluidFlow::new(
            AppClass::Streaming,
            SnrLevel::High,
            nominal_demand_bps(AppClass::Streaming),
            1400,
        ));
    }
    for _ in 0..conf {
        flows.push(FluidFlow::new(
            AppClass::Conferencing,
            SnrLevel::High,
            nominal_demand_bps(AppClass::Conferencing),
            1400,
        ));
    }
    let qos = cell.predict(&flows);
    let mut stream_qoes = Vec::new();
    let mut conf_qoes = Vec::new();
    for (fl, q) in flows.iter().zip(&qos) {
        let sample = q.as_qos_sample();
        let metric = estimator.estimate(fl.class, &sample);
        let norm = normalize_qoe(fl.class, metric);
        match fl.class {
            AppClass::Streaming => stream_qoes.push(norm),
            AppClass::Conferencing => conf_qoes.push(norm),
            AppClass::Web => unreachable!("no web flows in this grid"),
        }
    }
    let qs = median(&mut stream_qoes.clone());
    let qc = median(&mut conf_qoes.clone());
    let mut all: Vec<f64> = stream_qoes.into_iter().chain(conf_qoes).collect();
    let qn = median(&mut all);
    (qs, qc, qn)
}
