//! Figure 3: impact of SNR on video-streaming QoE.
//!
//! Four clients stream simultaneously on one WiFi AP. The split of
//! (high-SNR, low-SNR) placements sweeps (4,0) → (0,4); per split we
//! report the mean startup delay of each group against the 5 s
//! threshold. Expected shape: all-high satisfies the threshold;
//! mixing in low-SNR clients pushes *everyone* over (the 802.11 rate
//! anomaly: "the QoE of clients in high SNR location is also impacted
//! when some clients move to a low SNR location"); all-low may not
//! even start (reported as the 30 s ceiling).
//!
//! Output: `high_clients,low_clients,startup_high_s,startup_low_s`.

use exbox_bench::{csv_header, f};
use exbox_net::{AppClass, Duration, FlowKey, Instant, Protocol};
use exbox_sim::appqoe::startup_delay;
use exbox_sim::wifi::{run_wifi, OfferedFlow, WifiClient, WifiConfig};
use exbox_traffic::{StreamingModel, TrafficModel};

fn main() {
    let model = StreamingModel::default();
    let duration = Duration::from_secs(20);
    csv_header(&[
        "high_clients",
        "low_clients",
        "startup_high_s",
        "startup_low_s",
    ]);

    for high in (0..=4u32).rev() {
        let low = 4 - high;
        let mut clients = Vec::new();
        let mut flows = Vec::new();
        for i in 0..4u32 {
            // Fig. 3 placements are physical: −30 dBm RSS near the AP
            // (≈53 dB SNR) vs −80 dBm far away (≈14 dB SNR at a
            // −94 dBm noise floor) — weaker than the §6.3 sim's
            // nominal "low" level.
            let snr_db = if i < high { 53.0 } else { 14.0 };
            clients.push(WifiClient::at_snr(snr_db));
            let key = FlowKey::synthetic(i + 1, i + 1, 1, Protocol::Tcp);
            flows.push(OfferedFlow {
                key,
                class: AppClass::Streaming,
                client: i as usize,
                packets: model.generate(
                    key,
                    Instant::from_millis(i as u64 * 100),
                    duration,
                    0xF163 ^ (i as u64) << 8,
                ),
            });
        }
        let outcomes = run_wifi(&WifiConfig::default(), &clients, &flows);
        let mut high_delays = Vec::new();
        let mut low_delays = Vec::new();
        for (i, out) in outcomes.iter().enumerate() {
            let d = startup_delay(out, model.startup_bytes())
                .map(|d| d.as_secs_f64())
                .unwrap_or(30.0); // "the video does not even play"
            if (i as u32) < high {
                high_delays.push(d);
            } else {
                low_delays.push(d);
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        println!(
            "{high},{low},{},{}",
            f(mean(&high_delays)),
            f(mean(&low_delays))
        );
    }
    eprintln!("threshold: 5.0 s (paper Fig. 3 dashed line)");

    exbox_bench::dump_metrics();
}
