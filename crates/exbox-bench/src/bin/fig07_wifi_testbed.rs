//! Figure 7: WiFi testbed results for Random traffic and LiveLab
//! traces, compared with baselines.
//!
//! The 10-UE WiFi cell (packet-level DES stands in for the hostapd
//! laptop testbed): traffic matrices capped at 10 total flows, all
//! clients in high-SNR placements, observed labels = ground truth
//! (the paper's phones measured QoE directly). ExBox bootstraps on
//! ≈50 samples and updates in batches of 20.
//!
//! Expected shape (paper): ExBox precision ≥0.8 and accuracy ≥0.85
//! mostly, above RateBased/MaxClient; recall starts lower (≤0.85)
//! and catches up with training; Random trains faster than LiveLab.
//!
//! Output: `pattern,controller,fed,precision,recall,accuracy`.

use exbox_bench::{
    csv_header, print_series, run_three_controllers, wifi_testbed_labeler, WIFI_CAPACITY_BPS,
};
use exbox_testbed::{build_samples, SnrPolicy};
use exbox_traffic::{ClassMix, LiveLabGenerator, RandomPattern};

fn main() {
    csv_header(&[
        "pattern",
        "controller",
        "fed",
        "precision",
        "recall",
        "accuracy",
    ]);

    // Random pattern: drastic jumps, total <= 10 (testbed size).
    let random: Vec<ClassMix> = RandomPattern::new(4, 10, 0xF167).matrices(180);
    // LiveLab: chronological +/-1 transitions, capped at 10 flows.
    // Busy-hours activity level so the capped trace actually visits
    // the capacity boundary (an idle trace teaches nothing — and the
    // paper notes admission control matters "in networks with
    // diverse and active users").
    let livelab: Vec<ClassMix> = LiveLabGenerator {
        sessions_per_user_day: 40.0,
        ..LiveLabGenerator::default()
    }
    .matrices_capped(10);

    for (pattern, mixes) in [("random", &random), ("livelab", &livelab)] {
        eprintln!("building {pattern} ground truth on the WiFi DES...");
        let mut labeler = wifi_testbed_labeler(0x71F1);
        let samples = build_samples(mixes, SnrPolicy::AllHigh, &mut labeler, None);
        eprintln!("{pattern}: {} arrival samples", samples.len());
        for (name, report) in run_three_controllers(&samples, 20, 20, 50, WIFI_CAPACITY_BPS) {
            eprintln!(
                "{pattern}/{name}: bootstrap {} overall {}",
                report.bootstrap_used,
                report.metrics()
            );
            print_series(pattern, name, &report);
        }
    }

    exbox_bench::dump_metrics();
}
