//! Figure 8: LTE testbed results for Random traffic and LiveLab
//! traces, compared with baselines.
//!
//! The 8-UE LTE cell (TTI/PRB DES stands in for the ip.access E-40 +
//! OpenEPC testbed): matrices capped at 8 total flows (the eNodeB's
//! limit), batch size 10 (the paper's LTE batch), observed labels =
//! ground truth.
//!
//! Expected shape: same ordering as Fig. 7 with ExBox ahead on
//! precision/accuracy; the paper notes the classifier "performs
//! better in LTE than in WiFi".
//!
//! Output: `pattern,controller,fed,precision,recall,accuracy`.

use exbox_bench::{
    csv_header, lte_testbed_labeler, print_series, run_three_controllers, LTE_CAPACITY_BPS,
};
use exbox_testbed::{build_samples, SnrPolicy};
use exbox_traffic::{ClassMix, LiveLabGenerator, RandomPattern};

fn main() {
    csv_header(&[
        "pattern",
        "controller",
        "fed",
        "precision",
        "recall",
        "accuracy",
    ]);

    let random: Vec<ClassMix> = RandomPattern::new(4, 8, 0xF168).matrices(120);
    // Busy-hours LiveLab (see fig07) capped at the eNodeB's 8 UEs.
    let livelab: Vec<ClassMix> = LiveLabGenerator {
        sessions_per_user_day: 40.0,
        ..LiveLabGenerator::default()
    }
    .matrices_capped(8);

    for (pattern, mixes) in [("random", &random), ("livelab", &livelab)] {
        eprintln!("building {pattern} ground truth on the LTE DES...");
        let mut labeler = lte_testbed_labeler(0x17E8);
        let samples = build_samples(mixes, SnrPolicy::AllHigh, &mut labeler, None);
        eprintln!("{pattern}: {} arrival samples", samples.len());
        for (name, report) in run_three_controllers(&samples, 15, 10, 50, LTE_CAPACITY_BPS) {
            eprintln!(
                "{pattern}/{name}: bootstrap {} overall {}",
                report.bootstrap_used,
                report.metrics()
            );
            print_series(pattern, name, &report);
        }
    }

    exbox_bench::dump_metrics();
}
