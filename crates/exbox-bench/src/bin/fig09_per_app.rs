//! Figure 9 (a/b): per-application accuracy on WiFi and LTE,
//! Random traffic.
//!
//! "Accuracy is computed as the fraction of flows of each application
//! which were correctly admitted or rejected." Expected shape: ExBox
//! beats both baselines for every class; its streaming accuracy is
//! closest to RateBased (streaming is rate-sensitive) while the gap
//! is largest for delay-sensitive web and conferencing.
//!
//! Output: `network,controller,class,accuracy`.

use exbox_bench::{
    csv_header, f, lte_testbed_labeler, run_three_controllers, wifi_testbed_labeler,
    LTE_CAPACITY_BPS, WIFI_CAPACITY_BPS,
};
use exbox_net::AppClass;
use exbox_testbed::{build_samples, SnrPolicy};
use exbox_traffic::RandomPattern;

fn main() {
    csv_header(&["network", "controller", "class", "accuracy"]);

    // WiFi.
    let mixes = RandomPattern::new(4, 10, 0xF169).matrices(180);
    let mut labeler = wifi_testbed_labeler(0x91F1);
    eprintln!("labelling WiFi ground truth...");
    let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, None);
    for (name, report) in run_three_controllers(&samples, 50, 20, 50, WIFI_CAPACITY_BPS) {
        for class in AppClass::ALL {
            println!("wifi,{name},{class},{}", f(report.class_accuracy(class)));
        }
    }

    // LTE.
    let mixes = RandomPattern::new(4, 8, 0xF16A).matrices(150);
    let mut labeler = lte_testbed_labeler(0x917E);
    eprintln!("labelling LTE ground truth...");
    let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, None);
    for (name, report) in run_three_controllers(&samples, 50, 10, 50, LTE_CAPACITY_BPS) {
        for class in AppClass::ALL {
            println!("lte,{name},{class},{}", f(report.class_accuracy(class)));
        }
    }

    exbox_bench::dump_metrics();
}
