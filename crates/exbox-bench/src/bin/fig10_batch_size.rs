//! Figure 10: sensitivity to the online batch size.
//!
//! Precision vs samples fed online for batch sizes 10 / 20 / 40 on
//! both testbeds, with the (batch-insensitive) baselines for
//! reference. Expected shape: the Admittance Classifier is sensitive
//! to batch size — 20 works best for WiFi and 10 for LTE in the paper
//! — and dominates the baselines at every batch size.
//!
//! Output: `network,series,fed,precision`.

use exbox_bench::{
    csv_header, exbox_controller, f, lte_testbed_labeler, wifi_testbed_labeler, LTE_CAPACITY_BPS,
    MAX_CLIENT_CAP, WIFI_CAPACITY_BPS,
};
use exbox_core::prelude::*;
use exbox_testbed::{build_samples, evaluate_online, SnrPolicy};
use exbox_traffic::RandomPattern;

fn main() {
    csv_header(&["network", "series", "fed", "precision"]);

    for (network, cap_total, capacity) in [
        ("wifi", 10u32, WIFI_CAPACITY_BPS),
        ("lte", 8, LTE_CAPACITY_BPS),
    ] {
        let mixes = RandomPattern::new(4, cap_total, 0xF1610).matrices(200);
        eprintln!("labelling {network} ground truth...");
        let mut labeler = if network == "wifi" {
            wifi_testbed_labeler(0xA1F1)
        } else {
            lte_testbed_labeler(0xA17E)
        };
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, None);
        eprintln!("{network}: {} samples", samples.len());

        for batch in [10usize, 20, 40] {
            let mut ex = exbox_controller(batch, 50);
            let report = evaluate_online(&mut ex, &samples, 25);
            for p in &report.points {
                println!("{network},batch{batch},{},{}", p.fed, f(p.window.precision));
            }
        }
        let mut rb = RateBased::new(capacity);
        for p in &evaluate_online(&mut rb, &samples, 25).points {
            println!("{network},RateBased,{},{}", p.fed, f(p.window.precision));
        }
        let mut mc = MaxClient::new(MAX_CLIENT_CAP);
        for p in &evaluate_online(&mut mc, &samples, 25).points {
            println!("{network},MaxClient,{},{}", p.fed, f(p.window.precision));
        }
    }

    exbox_bench::dump_metrics();
}
