//! Figure 11: Admittance Classifier performance when network
//! behaviour changes (WiFi and LTE testbeds).
//!
//! Protocol follows §5.3: the classifier bootstraps on data from the
//! *unthrottled* network (10% of the dataset), then the network is
//! traffic-shaped to 200 ms added latency (the paper's `tc` step) and
//! every subsequent arrival is scored against the throttled ground
//! truth. Expected shape: initial precision collapses to ≈0.5 (the
//! learnt region is stale), then online batch updates re-learn the
//! smaller region and precision climbs back to ≈0.8 within ≈200
//! samples on WiFi, faster on LTE. Baselines are flat — RateBased
//! still sees the same declared rates, MaxClient the same counts —
//! and stay wrong about the throttled capacity.
//!
//! Output: `network,controller,fed,precision,recall,accuracy`.

use exbox_bench::{
    csv_header, exbox_controller, lte_testbed_labeler, print_series, wifi_testbed_labeler,
    LTE_CAPACITY_BPS, MAX_CLIENT_CAP, WIFI_CAPACITY_BPS,
};
use exbox_core::prelude::*;
use exbox_net::Duration;
use exbox_sim::lte::LteConfig;
use exbox_sim::wifi::{Backhaul, WifiConfig};
use exbox_testbed::cell::{AppModelSet, CellModel};
use exbox_testbed::{build_samples, evaluate_online, SnrPolicy};
use exbox_traffic::RandomPattern;

fn main() {
    csv_header(&[
        "network",
        "controller",
        "fed",
        "precision",
        "recall",
        "accuracy",
    ]);

    for network in ["wifi", "lte"] {
        let (cap_total, capacity, batch) = match network {
            "wifi" => (10u32, WIFI_CAPACITY_BPS, 20usize),
            _ => (8, LTE_CAPACITY_BPS, 10),
        };
        let mixes = RandomPattern::new(4, cap_total, 0xF1611).matrices(220);

        // Phase 1: unthrottled ground truth (10% of the run).
        let mut clean_labeler = if network == "wifi" {
            wifi_testbed_labeler(0xB1F1)
        } else {
            lte_testbed_labeler(0xB17E)
        };
        let n_bootstrap_mixes = mixes.len() / 10;
        eprintln!("{network}: labelling unthrottled bootstrap slice...");
        let bootstrap_samples = build_samples(
            &mixes[..n_bootstrap_mixes],
            SnrPolicy::AllHigh,
            &mut clean_labeler,
            None,
        );

        // Phase 2: the same workload on the throttled network
        // (200 ms added latency through the gateway, as with tc).
        eprintln!("{network}: labelling throttled phase...");
        let mut throttled_labeler = match network {
            "wifi" => exbox_testbed::cell::CellLabeler::new(
                CellModel::WifiDes {
                    cfg: WifiConfig {
                        per_tx_overhead: Duration::from_micros(450),
                        backhaul: Backhaul::throttled_200ms(15_000_000),
                        ..WifiConfig::default()
                    },
                    duration: Duration::from_secs(12),
                    models: AppModelSet::testbed(),
                },
                0xB1F2,
            ),
            _ => exbox_testbed::cell::CellLabeler::new(
                CellModel::LteDes {
                    cfg: LteConfig {
                        backhaul: Backhaul {
                            rate_bps: 12_000_000,
                            delay: Duration::from_millis(230),
                            loss: 0.0,
                        },
                        ..LteConfig::default()
                    },
                    duration: Duration::from_secs(12),
                    models: AppModelSet::testbed(),
                },
                0xB17F,
            ),
        };
        let throttled_samples = build_samples(
            &mixes[n_bootstrap_mixes..],
            SnrPolicy::AllHigh,
            &mut throttled_labeler,
            None,
        );
        eprintln!(
            "{network}: {} bootstrap + {} throttled samples",
            bootstrap_samples.len(),
            throttled_samples.len()
        );

        // ExBox: bootstrap on the clean slice, then score on the
        // throttled stream (stale model forced online first).
        let mut exbox = exbox_controller(batch, bootstrap_samples.len().min(50));
        for s in &bootstrap_samples {
            exbox.on_observation(s.matrix, s.observed);
        }
        let report = evaluate_online(&mut exbox, &throttled_samples, 25);
        print_series(network, "ExBox", &report);
        eprintln!("{network}/ExBox: overall {}", report.metrics());

        let mut rb = RateBased::new(capacity);
        print_series(
            network,
            "RateBased",
            &evaluate_online(&mut rb, &throttled_samples, 25),
        );
        let mut mc = MaxClient::new(MAX_CLIENT_CAP);
        print_series(
            network,
            "MaxClient",
            &evaluate_online(&mut mc, &throttled_samples, 25),
        );
    }

    exbox_bench::dump_metrics();
}
