//! Figure 12 (a/b/c): fitting the IQX equation for web, video
//! streaming and video conferencing.
//!
//! The training-device methodology of §5.3: shape the link over the
//! paper's grid (100 kbps–20 Mbps × 10–250 ms), run each app per
//! profile, record (normalised QoS, QoE), and least-squares fit
//! `QoE = α + β·e^(−γ·QoS)` per class. Expected shape: decaying
//! exponentials for page-load time and startup delay (β > 0), a
//! rising saturating curve for PSNR (β < 0); the paper reports RMSEs
//! of 1.37 s (web), 3.64 s (streaming), 4.462 dB (conferencing).
//!
//! Output: scatter points `class,norm_qos,qoe` on stdout; fitted
//! parameters and RMSE per class on stderr.

use exbox_bench::{csv_header, f, standard_estimator};
use exbox_net::AppClass;

fn main() {
    eprintln!("running the rate x latency training sweep...");
    let (estimator, rmse, sweep) = standard_estimator();

    csv_header(&["class", "norm_qos", "qoe"]);
    for class in AppClass::ALL {
        for &(q, e) in &sweep.points[class.index()] {
            println!("{class},{},{}", f(q), f(e));
        }
    }
    for class in AppClass::ALL {
        let m = estimator.model(class).iqx;
        eprintln!(
            "{class}: alpha={:.3} beta={:.3} gamma={:.3} rmse={:.3} ({})",
            m.alpha,
            m.beta,
            m.gamma,
            rmse[class.index()],
            match class {
                AppClass::Web => "page load time, s — paper RMSE 1.37 s",
                AppClass::Streaming => "startup delay, s — paper RMSE 3.64 s",
                AppClass::Conferencing => "PSNR, dB — paper RMSE 4.462 dB",
            }
        );
    }

    exbox_bench::dump_metrics();
}
