//! Figure 13: ExBox performance with diverse SNR, compared with
//! baselines (scale-up study, §6.3).
//!
//! The LiveLab trace runs over the simulated 802.11n WLAN with every
//! arriving client placed randomly in a high-SNR (≈53 dB) or low-SNR
//! (≈23 dB) location, producing ≈21 000 samples in the full
//! `<a_{web,high}, a_{web,low}, …, (c, ℓ)>` space. Observed labels
//! come from the IQX estimate on network-side QoS (the paper: "The
//! Y_m ∈ {−1,+1} is computed by using the IQX model"), while scoring
//! uses app-level ground truth. Batch sizes are larger than the
//! testbed's (100/200/400 — "implying less frequent updates").
//!
//! Expected shape: ExBox precision ≥0.8 from the larger bootstrap and
//! rising toward ≈0.95 with batch updates; RateBased stuck ≈0.65.
//!
//! Output: `series,fed,precision`.

use exbox_bench::{
    csv_header, exbox_controller, f, standard_estimator, wifi_fluid_labeler, MAX_CLIENT_CAP,
    SCALEUP_WIFI_CAPACITY_BPS,
};
use exbox_core::prelude::*;
use exbox_testbed::cell::scaleup_fluid_demands;
use exbox_testbed::eval::evaluate_online_with_demand;
use exbox_testbed::{build_samples, SnrPolicy};
use exbox_traffic::LiveLabGenerator;

/// Declared demand per class under the trace-replay profile.
fn demand(class: exbox_net::AppClass) -> f64 {
    scaleup_fluid_demands()[class.index()]
}

fn main() {
    csv_header(&["series", "fed", "precision"]);

    eprintln!("fitting the IQX estimator...");
    let (estimator, _, _) = standard_estimator();

    // ~21k samples: 34 users, 8 days, enterprise-busy activity so
    // the concurrency (≈25 simultaneous flows) straddles the
    // mixed-SNR capacity boundary — admission control's operating
    // point (an idle cell teaches and tests nothing).
    let workload = LiveLabGenerator {
        days: 8,
        sessions_per_user_day: 110.0,
        session_length_scale: 2.0,
        ..LiveLabGenerator::default()
    };
    let mixes = workload.matrices();
    eprintln!("workload: {} matrices", mixes.len());
    let mut labeler = wifi_fluid_labeler(0.10, 0xF1613);
    let mut samples = build_samples(
        &mixes,
        SnrPolicy::RandomMix {
            p_low: 0.5,
            seed: 0x5412,
        },
        &mut labeler,
        Some(&estimator),
    );
    // In the paper's simulation studies the IQX estimate IS the label
    // (§6.4: "Y_m represents the QoE (calculated from IQX)") — both
    // for training and for scoring. Only the testbed figures have an
    // independent on-device ground truth.
    for s in &mut samples {
        s.truth = s.observed;
    }
    eprintln!("{} mixed-SNR samples", samples.len());

    // Larger bootstrap, as in populous networks.
    for batch in [100usize, 200, 400] {
        let mut ex = exbox_controller(batch, 400);
        let report = evaluate_online_with_demand(&mut ex, &samples, 400, &demand);
        eprintln!(
            "batch{batch}: bootstrap {} overall {}",
            report.bootstrap_used,
            report.metrics()
        );
        for p in &report.points {
            println!("batch{batch},{},{}", p.fed, f(p.window.precision));
        }
    }
    let mut rb = RateBased::new(SCALEUP_WIFI_CAPACITY_BPS);
    let report = evaluate_online_with_demand(&mut rb, &samples, 400, &demand);
    eprintln!("RateBased: overall {}", report.metrics());
    for p in &report.points {
        println!("RateBased,{},{}", p.fed, f(p.window.precision));
    }
    let mut mc = MaxClient::new(MAX_CLIENT_CAP);
    let report = evaluate_online_with_demand(&mut mc, &samples, 400, &demand);
    eprintln!("MaxClient: overall {}", report.metrics());
    for p in &report.points {
        println!("MaxClient,{},{}", p.fed, f(p.window.precision));
    }

    exbox_bench::dump_metrics();
}
