//! Figure 14: precision, accuracy and recall for admission control in
//! populous ns-3-scale WiFi and LTE networks (§6.4).
//!
//! * **WiFi** — traffic matrices with more than 20 simultaneous flows
//!   (a_web, a_streaming, a_conferencing ∈ [0, 50]); random sets of
//!   800 (X_m, Y_m) samples; 10% initial training; batch 10.
//! * **LTE** — all matrices of the LiveLab trace (no ≤8 cap); batch
//!   10.
//!
//! Observed labels come from the IQX estimate (as in the paper's
//! simulations); ground truth from app-level QoE. Expected shape:
//! ExBox precision ≈0.9 on WiFi and 0.8→0.9 on LTE with recall
//! ≈0.75, both above the baselines.
//!
//! Output: `network,controller,fed,precision,recall,accuracy`.

use exbox_bench::{
    csv_header, exbox_controller, lte_fluid_labeler, print_series, standard_estimator,
    wifi_fluid_labeler, MAX_CLIENT_CAP, SCALEUP_LTE_CAPACITY_BPS, SCALEUP_WIFI_CAPACITY_BPS,
};
use exbox_core::matrix::{FlowKind, SnrLevel, TrafficMatrix};
use exbox_core::prelude::*;
use exbox_net::AppClass;
use exbox_testbed::cell::scaleup_fluid_demands;
use exbox_testbed::eval::evaluate_online_with_demand;
use exbox_testbed::{build_samples, Sample, SnrPolicy};

/// Declared demand per class under the trace-replay profile.
fn demand(class: AppClass) -> f64 {
    scaleup_fluid_demands()[class.index()]
}
use exbox_traffic::dist::Rng;
use exbox_traffic::LiveLabGenerator;

/// IQX label of one matrix on the labeler.
fn outcome_label(
    labeler: &mut exbox_testbed::CellLabeler,
    m: &TrafficMatrix,
    estimator: &QoeEstimator,
) -> exbox_ml::Label {
    labeler.label(m).estimated_label(estimator)
}

/// Build one WiFi populous sample: a random matrix with > 20 flows,
/// the arriving flow being a random occupied cell.
fn wifi_populous_samples(
    n: usize,
    labeler: &mut exbox_testbed::CellLabeler,
    estimator: &QoeEstimator,
    seed: u64,
) -> Vec<Sample> {
    let mut rng = Rng::new(seed).derive(0xF1614);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mut m = TrafficMatrix::empty();
        for class in AppClass::ALL {
            let count = rng.index(51) as u32;
            for _ in 0..count {
                m.add(FlowKind::new(class, SnrLevel::High));
            }
        }
        if m.total() <= 20 {
            continue; // populous networks only
        }
        // The arriving flow: a random occupied cell of the matrix.
        let kinds: Vec<FlowKind> = m.iter_kinds().map(|(k, _)| k).collect();
        let kind = kinds[rng.index(kinds.len())];
        // As in the paper's simulations, the IQX estimate is the
        // label for both training and scoring (§6.4).
        let label = outcome_label(labeler, &m, estimator);
        out.push(Sample {
            kind,
            matrix: m,
            truth: label,
            observed: label,
        });
    }
    out
}

fn main() {
    csv_header(&[
        "network",
        "controller",
        "fed",
        "precision",
        "recall",
        "accuracy",
    ]);
    eprintln!("fitting the IQX estimator...");
    let (estimator, _, _) = standard_estimator();

    // --- WiFi populous ---
    let mut wifi_labeler = wifi_fluid_labeler(0.10, 0x14F1);
    let samples = wifi_populous_samples(800, &mut wifi_labeler, &estimator, 0x800);
    eprintln!("wifi: {} populous samples", samples.len());
    let mut ex = exbox_controller(10, 80); // 10% initial training
    let report = evaluate_online_with_demand(&mut ex, &samples, 60, &demand);
    eprintln!("wifi/ExBox overall {}", report.metrics());
    print_series("wifi", "ExBox", &report);
    let mut rb = RateBased::new(SCALEUP_WIFI_CAPACITY_BPS);
    print_series(
        "wifi",
        "RateBased",
        &evaluate_online_with_demand(&mut rb, &samples, 60, &demand),
    );
    let mut mc = MaxClient::new(MAX_CLIENT_CAP);
    print_series(
        "wifi",
        "MaxClient",
        &evaluate_online_with_demand(&mut mc, &samples, 60, &demand),
    );

    // --- LTE: all LiveLab matrices, uncapped ---
    // Raw (uncapped) LiveLab concurrency: streaming/conferencing
    // sessions run long on phones, so the populous cell regularly
    // holds tens of simultaneous flows.
    let mixes = LiveLabGenerator {
        sessions_per_user_day: 60.0,
        session_length_scale: 4.0,
        ..LiveLabGenerator::default()
    }
    .matrices();
    let mut lte_labeler = lte_fluid_labeler(0.10, 0x147E);
    let mut samples = build_samples(
        &mixes,
        SnrPolicy::AllHigh,
        &mut lte_labeler,
        Some(&estimator),
    );
    for s in &mut samples {
        s.truth = s.observed;
    }
    eprintln!("lte: {} LiveLab samples (uncapped)", samples.len());
    let mut ex = exbox_controller(10, samples.len() / 10);
    let report = evaluate_online_with_demand(&mut ex, &samples, 60, &demand);
    eprintln!("lte/ExBox overall {}", report.metrics());
    print_series("lte", "ExBox", &report);
    let mut rb = RateBased::new(SCALEUP_LTE_CAPACITY_BPS);
    print_series(
        "lte",
        "RateBased",
        &evaluate_online_with_demand(&mut rb, &samples, 60, &demand),
    );
    let mut mc = MaxClient::new(MAX_CLIENT_CAP);
    print_series(
        "lte",
        "MaxClient",
        &evaluate_online_with_demand(&mut mc, &samples, 60, &demand),
    );

    exbox_bench::dump_metrics();
}
