//! CI smoke for the streamed flow-state soak: drive a large-user
//! [`exbox_traffic::ScaledWorkload`] flash-crowd stream through a
//! `Middlebox` and assert the process peak RSS stayed under a
//! ceiling. Guards the streaming contract — memory O(users +
//! concurrent flows), never O(total events) — without needing the
//! full bench run.
//!
//! ```sh
//! cargo run --release -p exbox-bench --bin flow_scale_soak -- \
//!     --users 100000 --days 1 --assert-rss-kb 786432
//! ```

use exbox_bench::{peak_rss_kb, run_soak, SoakConfig};
use exbox_core::prelude::*;
use exbox_core::qoe::QosScale;

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        QosScale::new(1e3, 1e8),
    )
}

fn usage() -> ! {
    eprintln!(
        "usage: flow_scale_soak [--users N] [--days N] [--assert-rss-kb N]\n\
         defaults: 100000 users, 1 day, no RSS assertion"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = SoakConfig::default();
    let mut ceiling_kb: Option<u64> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> u64 {
            argv.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a numeric value");
                usage();
            })
        };
        match flag.as_str() {
            "--users" => cfg.users = value("--users") as usize,
            "--days" => cfg.days = value("--days") as u32,
            "--assert-rss-kb" => ceiling_kb = Some(value("--assert-rss-kb")),
            _ => usage(),
        }
    }
    if cfg.users == 0 || cfg.days == 0 {
        usage();
    }

    eprintln!(
        "streaming {} users x {} day(s) through the middlebox...",
        cfg.users, cfg.days
    );
    let report = run_soak(cfg, estimator());
    let rss_kb = peak_rss_kb().unwrap_or(0);
    println!(
        "events={} arrivals={} peak_flows={} polls={} final_flows={} peak_rss_kb={}",
        report.events, report.arrivals, report.peak_flows, report.polls, report.final_flows, rss_kb,
    );
    assert!(report.arrivals > 0, "the stream produced no sessions");
    assert_eq!(
        report.final_flows, 0,
        "every session must depart by the horizon"
    );

    if let Some(ceiling) = ceiling_kb {
        if rss_kb == 0 {
            eprintln!("VmHWM unavailable on this platform; RSS assertion skipped");
        } else if rss_kb > ceiling {
            eprintln!("peak RSS {rss_kb} kB exceeds the {ceiling} kB ceiling");
            std::process::exit(1);
        } else {
            eprintln!("peak RSS {rss_kb} kB <= {ceiling} kB ceiling — ok");
        }
    }
}
