//! Pipeline determinism demo: the DESIGN.md §10 contract as an
//! executable gate.
//!
//! Replays a seeded multi-wave storm — interleaved flow arrivals, then
//! seeded departures between waves — through either the sequential
//! batch path (`--mode sequential`) or the multi-core pipeline
//! (`--mode pipeline --cores N`), and prints the full verdict stream
//! as CSV (`seq,flow,action`, one row per packet, global ingress
//! order). The CI `pipeline-smoke` leg runs both modes at several core
//! counts and `cmp`s the outputs: any byte difference means the
//! ordered merge, the decision gate or the shard routing broke the
//! determinism contract.
//!
//! ```sh
//! cargo run --release -p exbox-bench --bin pipeline_demo -- \
//!     --mode sequential > /tmp/seq.csv
//! cargo run --release -p exbox-bench --bin pipeline_demo -- \
//!     --mode pipeline --cores 4 > /tmp/pipe4.csv
//! cmp /tmp/seq.csv /tmp/pipe4.csv
//! ```
//!
//! Departures are applied between waves (the pipeline owns the shards
//! while it runs, so flow lifecycle events quiesce at wave
//! boundaries), and the departure set is derived from the verdict
//! stream itself — flows whose last wave verdict was `forward` and
//! whose id hashes into the seeded third — so both modes compute it
//! from data they both have, not from shared mutable state.

use std::io::{BufWriter, Write};

use exbox_core::gateway::{ConcurrentGateway, GatewayConfig, ModelSnapshot};
use exbox_core::prelude::*;
use exbox_ml::Label;
use exbox_net::{AppClass, Direction, FlowKey, Instant, Packet, Protocol};

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        exbox_core::qoe::QosScale::new(1e3, 1e8),
    )
}

/// A tight region (at most two streaming flows), so a 24-flow wave
/// rejects most arrivals and the seeded departures genuinely change
/// later verdicts.
fn trained_classifier() -> AdmittanceClassifier {
    let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
        batch_size: 8,
        ..AdmittanceConfig::default()
    });
    for n in 0..80u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 2 { Label::Pos } else { Label::Neg };
        ac.observe(mat, y);
    }
    assert_eq!(ac.phase(), Phase::Online, "fixture must go online");
    ac
}

fn flow_key(id: u32) -> FlowKey {
    FlowKey::synthetic(id, id, 1, Protocol::Tcp)
}

/// One wave: `flows` flows interleaved round-robin for `rounds`
/// packets each. Timestamps and sequence numbers are per-flow clocks
/// continuing across waves (2 ms inter-arrival, the streaming
/// signature the early classifier keys on) — only the *arrival order*
/// is interleaved, which is what spreads consecutive packets across
/// pipeline lanes.
fn wave(flows: u32, rounds: u64, w: u64) -> Vec<(Packet, SnrLevel)> {
    let mut out = Vec::with_capacity(flows as usize * rounds as usize);
    for s in 0..rounds {
        let tick = w * rounds + s;
        for id in 1..=flows {
            out.push((
                Packet::new(
                    Instant::from_millis(2 * tick),
                    1400,
                    flow_key(id),
                    Direction::Downlink,
                    tick,
                ),
                SnrLevel::High,
            ));
        }
    }
    out
}

/// Recover the synthetic flow id from its key (ids < 20 000 only).
fn flow_id(key: &FlowKey) -> u32 {
    u32::from(key.client_port - 40_000)
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

fn main() {
    let mut mode = String::from("sequential");
    let mut cores = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mode" => mode = args.next().expect("--mode needs a value"),
            "--cores" => {
                cores = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cores needs a number")
            }
            other => panic!("unknown arg {other} (use --mode sequential|pipeline [--cores N])"),
        }
    }

    let flows = 24u32;
    let rounds = 12u64;
    let waves = 3usize;
    let shards = if mode == "pipeline" { cores } else { 1 };
    let cfg = GatewayConfig {
        shards,
        ..GatewayConfig::default()
    };
    let mut gw = ConcurrentGateway::serving_only(
        cfg,
        estimator(),
        ModelSnapshot::from_classifier(1, &trained_classifier()),
    );

    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    writeln!(out, "seq,flow,action").unwrap();

    let mut seq = 0u64;
    for w in 0..waves {
        let stream = wave(flows, rounds, w as u64);
        let verdicts: Vec<Action> = match mode.as_str() {
            "sequential" => stream
                .iter()
                .map(|(p, snr)| gw.process_packet(p, *snr))
                .collect(),
            "pipeline" => {
                let mut pipe = gw.start_pipeline();
                let mut got = Vec::with_capacity(stream.len());
                for chunk in stream.chunks(97) {
                    pipe.ingest(chunk);
                    pipe.drain_verdicts(&mut got);
                }
                got.extend(gw.finish_pipeline(pipe));
                got
            }
            other => panic!("unknown mode {other}"),
        };
        assert_eq!(verdicts.len(), stream.len());

        // Last verdict per flow this wave, from the stream itself.
        let mut last = vec![Action::Drop; flows as usize + 1];
        for ((pkt, _), act) in stream.iter().zip(&verdicts) {
            last[flow_id(&pkt.flow) as usize] = *act;
            let action = match act {
                Action::Forward => "forward",
                Action::Drop => "drop",
            };
            writeln!(out, "{seq},{},{action}", flow_id(&pkt.flow)).unwrap();
            seq += 1;
        }
        // Seeded departures between waves: a third of the flows whose
        // last verdict was forward leave, freeing region capacity.
        for id in 1..=flows {
            if last[id as usize] == Action::Forward
                && xorshift((u64::from(id) << 8) | (w as u64 + 1)).is_multiple_of(3)
            {
                gw.flow_departed(&flow_key(id));
            }
        }
    }
    out.flush().unwrap();
    eprintln!(
        "pipeline_demo: mode={mode} shards={shards} waves={waves} packets={seq} admitted={}",
        gw.admitted_flows()
    );
}
