//! # exbox-bench — figure regeneration and benchmark harness
//!
//! One binary per table/figure in the paper's evaluation (see
//! `DESIGN.md` §4 for the experiment index), plus Criterion benches
//! for the §5.3 latency study and `ablation_*` binaries for the
//! design choices DESIGN.md calls out. Every binary prints a CSV
//! series matching the paper's axes to stdout and progress notes to
//! stderr; `EXPERIMENTS.md` records paper-vs-measured shape for each.
//!
//! Run e.g.:
//! ```sh
//! cargo run --release -p exbox-bench --bin fig07_wifi_testbed
//! ```

pub mod soak;
pub use soak::{peak_rss_kb, run_soak, SoakConfig, SoakReport};

use exbox_core::prelude::*;
use exbox_net::Duration;
use exbox_sim::fluid::{FluidLte, FluidWifi};
use exbox_sim::lte::LteConfig;
use exbox_sim::wifi::{Backhaul, WifiConfig};
use exbox_testbed::cell::{AppModelSet, CellLabeler, CellModel};
use exbox_testbed::training::{
    fit_estimator_from_sweep, paper_grid, run_training_sweep, TrainingSweep,
};

/// The paper's measured WiFi testbed capacity: "20 Mbps iperf UDP
/// throughput" (§5.1) — the `C` used by the RateBased baseline.
pub const WIFI_CAPACITY_BPS: f64 = 20_000_000.0;
/// The paper's measured LTE capacity: "more than 30 Mbps" (§5.1).
pub const LTE_CAPACITY_BPS: f64 = 30_000_000.0;
/// MaxClient cap used by the paper (Aruba/IBM defaults).
pub const MAX_CLIENT_CAP: u32 = 10;

/// Run the §5.3 training sweep once and fit the QoE estimator.
/// Returns (estimator, per-class RMSE, the sweep itself).
pub fn standard_estimator() -> (QoeEstimator, [f64; 3], TrainingSweep) {
    let (rates, delays) = paper_grid();
    let sweep = run_training_sweep(&rates, &delays, 3, 0x1F12);
    let (est, rmse) = fit_estimator_from_sweep(&sweep, QoeEstimator::paper_thresholds());
    (est, rmse, sweep)
}

/// The WiFi testbed cell: packet-level DES, 12 s per matrix (long
/// enough for pages, startups and PSNR to settle; the paper's ns-3
/// runs use 16 s). Calibrated to the paper's laptop AP: the raised
/// per-transmission overhead caps saturated goodput at ≈18 Mbps
/// (their measured "20 Mbps iperf UDP throughput … an artifact of
/// the WiFi driver on the laptop"), and the heavier testbed app
/// profile reflects what real phones pulled.
pub fn wifi_testbed_labeler(seed: u64) -> CellLabeler {
    CellLabeler::new(
        CellModel::WifiDes {
            cfg: WifiConfig {
                per_tx_overhead: Duration::from_micros(450),
                ..WifiConfig::default()
            },
            duration: Duration::from_secs(12),
            models: AppModelSet::testbed(),
        },
        seed,
    )
}

/// The LTE testbed cell: packet-level DES. The radio (50 PRB ≈
/// 35 Mbps at CQI 15) matches the paper's ">30 Mbps" measurement;
/// the lab-grade OpenEPC core — "each component runs in a
/// Linux-based virtual machine" — is modelled as a shared 18 Mbps /
/// 30 ms backhaul (the paper measured "≈30–40 ms latency" through
/// it; lab-grade VM chains forward well below the radio's iperf
/// ceiling under real multi-flow load), whose FIFO is what congests
/// first under bursty traffic.
pub fn lte_testbed_labeler(seed: u64) -> CellLabeler {
    CellLabeler::new(
        CellModel::LteDes {
            cfg: LteConfig {
                backhaul: Backhaul {
                    rate_bps: 18_000_000,
                    delay: Duration::from_millis(30),
                    loss: 0.0,
                },
                ..LteConfig::default()
            },
            duration: Duration::from_secs(12),
            models: AppModelSet::testbed(),
        },
        seed,
    )
}

/// Fluid WiFi cell for scale-up sweeps, running the trace-replay
/// demand profile (see `scaleup_fluid_demands`).
pub fn wifi_fluid_labeler(label_noise: f64, seed: u64) -> CellLabeler {
    CellLabeler::new(
        CellModel::WifiFluid {
            cfg: FluidWifi::default(),
            label_noise,
            demands: exbox_testbed::cell::scaleup_fluid_demands(),
        },
        seed,
    )
}

/// Fluid LTE cell for scale-up sweeps (trace-replay demands).
pub fn lte_fluid_labeler(label_noise: f64, seed: u64) -> CellLabeler {
    CellLabeler::new(
        CellModel::LteFluid {
            cfg: FluidLte::default(),
            label_noise,
            demands: exbox_testbed::cell::scaleup_fluid_demands(),
        },
        seed,
    )
}

/// The scale-up cell's measured saturation capacity (the `C` a
/// network admin would measure with iperf on the simulated 802.11n
/// cell), used by RateBased in the §6 studies.
pub const SCALEUP_WIFI_CAPACITY_BPS: f64 = 28_000_000.0;
/// LTE scale-up capacity (50 PRB at CQI 15).
pub const SCALEUP_LTE_CAPACITY_BPS: f64 = 35_000_000.0;

/// A fresh ExBox controller with the given online batch size and
/// bootstrap length.
pub fn exbox_controller(batch_size: usize, bootstrap_min: usize) -> ExBoxController {
    ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
        batch_size,
        bootstrap_min_samples: bootstrap_min,
        ..AdmittanceConfig::default()
    }))
}

/// Print a CSV header line.
pub fn csv_header(cols: &[&str]) {
    println!("{}", cols.join(","));
}

/// Format a float compactly for CSV.
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Run ExBox + the two baselines over the same samples; returns
/// `(name, report)` triples in the paper's legend order.
pub fn run_three_controllers(
    samples: &[exbox_testbed::Sample],
    eval_every: usize,
    batch_size: usize,
    bootstrap_min: usize,
    capacity_bps: f64,
) -> Vec<(&'static str, exbox_testbed::EvalReport)> {
    let mut exbox = exbox_controller(batch_size, bootstrap_min);
    let mut rate = RateBased::new(capacity_bps);
    let mut maxc = MaxClient::new(MAX_CLIENT_CAP);
    vec![
        (
            "ExBox",
            exbox_testbed::evaluate_online(&mut exbox, samples, eval_every),
        ),
        (
            "RateBased",
            exbox_testbed::evaluate_online(&mut rate, samples, eval_every),
        ),
        (
            "MaxClient",
            exbox_testbed::evaluate_online(&mut maxc, samples, eval_every),
        ),
    ]
}

/// Print one learning-curve series in the standard CSV layout
/// (`pattern,controller,fed,precision,recall,accuracy` — window
/// metrics, as the paper's fluctuating curves suggest).
pub fn print_series(pattern: &str, name: &str, report: &exbox_testbed::EvalReport) {
    for p in &report.points {
        println!(
            "{pattern},{name},{},{},{},{}",
            p.fed,
            f(p.window.precision),
            f(p.window.recall),
            f(p.window.accuracy)
        );
    }
}

/// Print the process-wide metrics snapshot to stderr. Every bench
/// binary calls this as its final statement, so the regeneration
/// loop's `2> results/<bin>.log` redirect captures an instrumentation
/// audit alongside each figure's CSV.
pub fn dump_metrics() {
    eprintln!("{}", exbox_obs::global().snapshot().render());
}

// ---- latency-bench harness ------------------------------------------
//
// The two `benches/` binaries share this machinery: a scenario is
// measured into a `BenchRecord`, and the collected records are
// emitted either as the historical CSV (default) or as a JSON
// document keyed by scenario name, which `scripts/bench_compare.sh`
// diffs against the committed `BENCH_BASELINE.json`.

/// One measured benchmark scenario: nanosecond latency quantiles over
/// `reps` recorded runs.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Scenario name, e.g. `smo_rbf/200`.
    pub name: String,
    /// Problem size (samples, flows, …) the scenario ran at.
    pub n: usize,
    /// Recorded repetitions.
    pub reps: u32,
    /// Mean latency in ns.
    pub mean_ns: f64,
    /// Median latency in ns.
    pub p50_ns: f64,
    /// 95th-percentile latency in ns.
    pub p95_ns: f64,
    /// Worst recorded latency in ns.
    pub max_ns: f64,
}

/// Command-line switches shared by the bench binaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchArgs {
    /// Emit a JSON document instead of CSV (`--json`).
    pub json: bool,
    /// Reduced sizes/repetitions for CI smoke runs (`--quick`).
    pub quick: bool,
}

/// Parse `--json` / `--quick` from the process arguments; anything
/// else aborts with a usage note (benches take no positional args).
pub fn bench_args() -> BenchArgs {
    let mut args = BenchArgs::default();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => args.json = true,
            "--quick" => args.quick = true,
            // `cargo bench` appends this to every harness invocation.
            "--bench" => {}
            other => {
                eprintln!("unknown argument `{other}` (expected --json / --quick)");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Run `f` `warmup` times unrecorded, then `reps` recorded times,
/// returning the latency record. `bounds` picks the histogram
/// resolution (decisions are tens of ns, training runs are ms — one
/// bucket layout cannot serve both).
pub fn measure(
    name: impl Into<String>,
    n: usize,
    warmup: u32,
    reps: u32,
    bounds: &[f64],
    mut f: impl FnMut(),
) -> BenchRecord {
    for _ in 0..warmup {
        f();
    }
    let hist = exbox_obs::Histogram::new(bounds);
    for _ in 0..reps {
        let ((), ns) = exbox_obs::time_ns(&mut f);
        hist.record(ns);
    }
    let s = hist.snapshot();
    BenchRecord {
        name: name.into(),
        n,
        reps,
        mean_ns: s.mean(),
        p50_ns: s.quantile(0.50),
        p95_ns: s.quantile(0.95),
        max_ns: s.max,
    }
}

/// Emit collected records: CSV rows (`name,n,reps,mean_ns,p50_ns,
/// p95_ns,max_ns`) by default, or — with `--json` — one JSON object
/// `{"bench": …, "scenarios": {name: {…}}}` for `bench_compare.sh`.
pub fn emit_records(bench: &str, records: &[BenchRecord], args: BenchArgs) {
    if args.json {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"bench\":\"{bench}\",\"quick\":{},\"scenarios\":{{",
            args.quick
        ));
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"n\":{},\"reps\":{},\"mean_ns\":{:.0},\"p50_ns\":{:.0},\
                 \"p95_ns\":{:.0},\"max_ns\":{:.0}}}",
                r.name, r.n, r.reps, r.mean_ns, r.p50_ns, r.p95_ns, r.max_ns
            ));
        }
        out.push_str("}}");
        println!("{out}");
    } else {
        println!("name,n,reps,mean_ns,p50_ns,p95_ns,max_ns");
        for r in records {
            println!(
                "{},{},{},{:.0},{:.0},{:.0},{:.0}",
                r.name, r.n, r.reps, r.mean_ns, r.p50_ns, r.p95_ns, r.max_ns
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_paper() {
        assert_eq!(WIFI_CAPACITY_BPS, 20e6);
        assert_eq!(LTE_CAPACITY_BPS, 30e6);
        assert_eq!(MAX_CLIENT_CAP, 10);
    }

    #[test]
    fn controllers_construct() {
        let ex = exbox_controller(20, 50);
        assert!(ex.is_bootstrapping());
    }
}
