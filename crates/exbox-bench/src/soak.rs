//! Streamed large-population soak driver (shared by the `flow_scale`
//! bench and the `flow_scale_soak` CI binary).
//!
//! Drives a [`ScaledWorkload`] event stream — 10⁵–10⁶ users, never
//! materialised — through a single [`Middlebox`]: every arrival
//! becomes a synthetic flow classified by endpoint hint on its first
//! packet, gets one delivery report (so polls have QoS evidence), and
//! departs when its class's oldest open session ends. Memory must
//! stay O(users + concurrent flows); the caller checks the process
//! peak RSS ([`peak_rss_kb`]) against a ceiling to catch accidental
//! materialisation of the trace or unbounded per-flow state.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use exbox_core::admittance::{AdmittanceClassifier, AdmittanceConfig};
use exbox_core::matrix::SnrLevel;
use exbox_core::middlebox::{Action, Middlebox, MiddleboxConfig};
use exbox_core::qoe::QoeEstimator;
use exbox_net::{AppClass, Direction, Duration, FlowKey, Packet, Protocol};
use exbox_traffic::{LiveLabGenerator, Regime, ScaledWorkload, WorkloadEvent};

/// Parameters of one soak run.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Population size (the paper's LiveLab trace has 34 users; the
    /// flow-state layer is sized for 10⁵–10⁶).
    pub users: usize,
    /// Simulated span in days.
    pub days: u32,
    /// Arrival/departure regime driven through the cell.
    pub regime: Regime,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        // A stadium letting out at noon of day one: the flash crowd
        // spikes concurrency well above the steady plateau, which is
        // exactly the moment a flow-table regression would blow the
        // RSS ceiling.
        SoakConfig {
            users: 100_000,
            days: 1,
            regime: Regime::FlashCrowd {
                start_secs: 43_200.0,
                duration_secs: 1_800.0,
                boost: 8.0,
            },
            seed: 0x11FE,
        }
    }
}

/// What one soak run did, for reporting and assertions.
#[derive(Debug, Clone, Copy)]
pub struct SoakReport {
    /// Total workload events consumed from the stream.
    pub events: u64,
    /// Session arrivals driven through admission.
    pub arrivals: u64,
    /// Most flows admitted at any instant.
    pub peak_flows: usize,
    /// Admitted flows left when the stream ended (should be ~0 —
    /// every session departs by the horizon).
    pub final_flows: usize,
    /// Executed polls (interval elapsed).
    pub polls: u64,
}

/// Peak resident-set size of this process in kB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux or if the field is missing.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Unique synthetic key for the `id`-th session. `FlowKey::synthetic`
/// folds `client_id` to 16 bits and `flow_id` to a 20,000-port range,
/// so the id is split across both fields — unique for any population
/// this side of a billion sessions.
fn session_key(id: u64, class: AppClass) -> FlowKey {
    FlowKey::synthetic(
        (id % 65_536) as u32,
        (id / 65_536) as u32,
        class.index() as u8 + 1,
        Protocol::Tcp,
    )
}

/// Run one soak: stream the workload through a fresh middlebox and
/// report. The classifier is pinned in bootstrap (admit-everything)
/// so the admitted set tracks the workload's session concurrency —
/// the quantity the flow table must hold — rather than a learnt
/// region's whims.
pub fn run_soak(cfg: SoakConfig, estimator: QoeEstimator) -> SoakReport {
    let workload = ScaledWorkload::new(
        LiveLabGenerator {
            users: cfg.users,
            days: cfg.days,
            seed: cfg.seed,
            ..LiveLabGenerator::default()
        },
        cfg.regime,
    );
    // Isolated registry: the poll count below must be this run's, not
    // the process's.
    let reg = exbox_obs::MetricsRegistry::new();
    let mut mb = Middlebox::with_registry(
        MiddleboxConfig::default(),
        estimator,
        AdmittanceClassifier::with_registry(
            AdmittanceConfig {
                bootstrap_min_samples: usize::MAX,
                ..AdmittanceConfig::default()
            },
            &reg,
        ),
        &reg,
    );
    // Endpoint hints classify every flow on its first packet, so one
    // packet per arrival exercises the full admission path.
    for class in AppClass::ALL {
        mb.learn_server_hint(Ipv4Addr::new(192, 168, 1, class.index() as u8 + 1), class);
    }

    // Departure events carry only the class; sessions of one class
    // end oldest-first, which preserves the per-class concurrency the
    // stream encodes.
    let mut open: [VecDeque<FlowKey>; 3] = [VecDeque::new(), VecDeque::new(), VecDeque::new()];
    let mut report = SoakReport {
        events: 0,
        arrivals: 0,
        peak_flows: 0,
        final_flows: 0,
        polls: 0,
    };
    let mut next_id: u64 = 0;
    for (t, event) in workload.stream() {
        report.events += 1;
        match event {
            WorkloadEvent::Arrival(class) => {
                report.arrivals += 1;
                let key = session_key(next_id, class);
                next_id += 1;
                let pkt = Packet::new(t, 1200, key, Direction::Downlink, 0);
                // The pinned-bootstrap classifier admits everything;
                // the guard keeps the departure FIFOs honest anyway.
                if mb.process_packet(&pkt, SnrLevel::High) == Action::Forward {
                    // One healthy delivery so the next poll has
                    // evidence for this flow (and the timer wheel a
                    // deadline).
                    mb.record_delivery(&key, t, t + Duration::from_millis(5), 1200);
                    open[class.index()].push_back(key);
                }
            }
            WorkloadEvent::Departure(class) => {
                if let Some(key) = open[class.index()].pop_front() {
                    mb.flow_departed(&key);
                }
            }
        }
        report.peak_flows = report.peak_flows.max(mb.admitted_flows());
        let _ = mb.poll(t);
    }
    report.polls = reg.snapshot().counter("middlebox.polls").unwrap_or(0);
    report.final_flows = mb.admitted_flows();
    report
}
