//! The Admittance Classifier (paper §3.1, Fig. 4).
//!
//! A binary classifier over traffic matrices that learns the ExCR
//! boundary online:
//!
//! * **Bootstrap phase** — every flow is admitted; observed
//!   `(X_m, Y_m)` tuples accumulate. Periodic n-fold cross-validation
//!   gates the exit: once held-out accuracy crosses the configured
//!   threshold, the classifier goes online.
//! * **Online phase** — each arrival is classified admissible /
//!   inadmissible; after every batch of `B` recorded outcomes the
//!   model retrains on the sample store, with repeated traffic
//!   matrices taking their *latest* observed label (the paper's
//!   freshness rule, which is what lets ExBox adapt when the network
//!   itself changes — Fig. 11). The store is append-only with
//!   in-place label replacement; with
//!   [`AdmittanceConfig::max_samples`] set (`EXBOX_MAX_SAMPLES`) it is
//!   bounded by deterministic seeded stratified-reservoir compaction,
//!   so steady-state retrain cost is O(cap) rather than growing with
//!   everything ever observed.
//!
//! ## Training fast path
//!
//! Retrains are engineered to cost O(Δ·n) in kernel evaluations, not
//! O(n²), in the steady state (DESIGN.md §8):
//!
//! * A [`PersistentKernelCache`] is carried across warm retrains; it
//!   validates the stored feature rows bit-exactly against the new
//!   (scaled) dataset and recomputes only the Gram rows/columns for
//!   fresh samples. `admittance.gram_incremental_rows` records how
//!   many rows each retrain actually evaluated.
//! * [`AdmittanceConfig::sticky_scaler`] keeps the fitted
//!   [`StandardScaler`] across retrains (refitting only after
//!   compaction), which is what keeps previously-scaled rows
//!   bit-stable so the cache can reuse them. Off by default: the
//!   per-retrain refit matches the paper's batch procedure exactly.
//! * Gram evaluation routes through the lane-blocked engine of
//!   DESIGN.md §6 when the `simd` feature (or
//!   `EXBOX_KERNEL_ENGINE=lanes`) selects it — bit-identical to the
//!   scalar path by the ordered-reduction contract, so cached, SIMD
//!   and cold scalar retrains all produce the same model bits.
//!
//! ## Serving fast path
//!
//! The classifier sits on the gateway's per-arrival datapath, so the
//! online decision is engineered around three observations:
//!
//! 1. A trained [`SvmModel`] is converted into a [`CompactSvm`]
//!    (flattened support vectors, pruned zero coefficients, linear
//!    kernel collapsed to one dot product) after every retrain.
//! 2. [`AdmittanceClassifier::decide`] computes the margin **once**
//!    and derives the label from its sign — callers that need both no
//!    longer pay two kernel expansions.
//! 3. Traffic matrices live on a small discrete lattice and recur
//!    constantly under steady load, so decisions are memoised in a
//!    bounded, generation-stamped cache keyed by the matrix itself.
//!    Every retrain (and, when the monotonicity guard is on, every
//!    `observe`) bumps the generation, so a stale verdict can never be
//!    served. `admittance.cache_hits` / `admittance.cache_misses`
//!    count the traffic.

use std::collections::HashMap;
use std::sync::Arc;

use exbox_ml::prelude::*;
use exbox_obs::{buckets, Counter, Gauge, Histogram, MetricsRegistry};

use crate::matrix::TrafficMatrix;
use crate::recovery::{FaultKind, FaultPlan, RetryBackoff};

/// Instrumentation handles for the classifier, resolved once at
/// construction so the hot paths touch only atomics.
#[derive(Debug)]
struct AdmittanceMetrics {
    /// `admittance.observations` — total `(X_m, Y_m)` tuples fed in.
    observations: Arc<Counter>,
    /// `admittance.retrains` — model (re)trainings.
    retrains: Arc<Counter>,
    /// `admittance.bootstrap_exits` — transitions bootstrap → online.
    bootstrap_exits: Arc<Counter>,
    /// `admittance.retrain_wall_ns` — wall time per retrain.
    retrain_wall_ns: Arc<Histogram>,
    /// `admittance.train_batch_samples` — store size at each retrain.
    train_batch_samples: Arc<Histogram>,
    /// `admittance.gram_incremental_rows` — kernel-matrix rows the
    /// persistent cache actually evaluated per retrain (Δ for an
    /// append, the full store after an invalidation, 0 for a replay).
    gram_incremental_rows: Arc<Histogram>,
    /// `admittance.store_compactions` — stratified-reservoir
    /// compactions of the bounded sample store.
    store_compactions: Arc<Counter>,
    /// `admittance.smo_iterations` — SMO α-pair optimisation steps per
    /// SVM retrain (absent for non-SVM backends).
    smo_iterations: Arc<Histogram>,
    /// `admittance.warm_start_alphas` — multipliers carried over into
    /// each warm-started retrain (0 for cold fits).
    warm_start_alphas: Arc<Histogram>,
    /// `svm.shrunk_fraction` — peak fraction of multipliers the
    /// shrinking heuristic removed from the working set per retrain.
    shrunk_fraction: Arc<Histogram>,
    /// `admittance.nonconverged_retrains` — retrains that stopped at
    /// the SMO `max_iters` backstop instead of reaching quiescence.
    nonconverged_retrains: Arc<Counter>,
    /// `admittance.cv_accuracy` — latest bootstrap cross-validation
    /// accuracy.
    cv_accuracy: Arc<Gauge>,
    /// `admittance.cache_hits` — decisions served from the
    /// matrix-keyed cache.
    cache_hits: Arc<Counter>,
    /// `admittance.cache_misses` — decisions that ran the model (or
    /// found a stale-generation entry).
    cache_misses: Arc<Counter>,
    /// `recovery.retrain_failures` — retrain attempts that failed
    /// (today only injectable via [`FaultPlan`]; the hook is where a
    /// real trainer error would land).
    retrain_failures: Arc<Counter>,
    /// `recovery.retrain_retries` — retrain attempts made after one or
    /// more failures, once the backoff window elapsed.
    retrain_retries: Arc<Counter>,
}

impl AdmittanceMetrics {
    fn bind(reg: &MetricsRegistry) -> Self {
        AdmittanceMetrics {
            observations: reg.counter("admittance.observations"),
            retrains: reg.counter("admittance.retrains"),
            bootstrap_exits: reg.counter("admittance.bootstrap_exits"),
            retrain_wall_ns: reg.histogram("admittance.retrain_wall_ns", &buckets::latency_ns()),
            train_batch_samples: reg
                .histogram("admittance.train_batch_samples", &buckets::counts_wide()),
            gram_incremental_rows: reg
                .histogram("admittance.gram_incremental_rows", &buckets::counts_wide()),
            store_compactions: reg.counter("admittance.store_compactions"),
            smo_iterations: reg.histogram("admittance.smo_iterations", &buckets::counts()),
            warm_start_alphas: reg.histogram("admittance.warm_start_alphas", &buckets::counts()),
            shrunk_fraction: reg.histogram("svm.shrunk_fraction", &buckets::unit()),
            nonconverged_retrains: reg.counter("admittance.nonconverged_retrains"),
            cv_accuracy: reg.gauge("admittance.cv_accuracy"),
            cache_hits: reg.counter("admittance.cache_hits"),
            cache_misses: reg.counter("admittance.cache_misses"),
            retrain_failures: reg.counter("recovery.retrain_failures"),
            retrain_retries: reg.counter("recovery.retrain_retries"),
        }
    }
}

/// Which learning backend drives the classifier. The paper uses an
/// RBF-kernel SVM but stresses the module is swappable; the
/// alternatives here power the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClassifierBackend {
    /// SMO-trained SVM with an RBF kernel (`gamma = None` ⇒ 1/dims).
    SvmRbf {
        /// Soft-margin cost.
        c: f64,
        /// Kernel width; `None` selects `1/dims`.
        gamma: Option<f64>,
    },
    /// SMO-trained SVM with a linear kernel.
    SvmLinear {
        /// Soft-margin cost.
        c: f64,
    },
    /// SMO-trained SVM with a polynomial kernel. Degree 2 is the
    /// default backend: capacity-region boundaries are smooth and
    /// near-convex in count space (paper Fig. 2c), and polynomial
    /// decision functions extrapolate monotonically — unlike RBF,
    /// whose decision collapses to the bias far outside the training
    /// hull and can admit absurdly large matrices.
    SvmPoly {
        /// Soft-margin cost.
        c: f64,
        /// Polynomial degree (2 recommended).
        degree: u32,
    },
    /// Logistic regression (full-batch gradient descent).
    Logistic,
    /// Pegasos linear SVM (fast primal path for large stores).
    PegasosLinear,
}

/// Configuration of the Admittance Classifier.
#[derive(Debug, Clone)]
pub struct AdmittanceConfig {
    /// Learning backend.
    pub backend: ClassifierBackend,
    /// Online batch size `B` (paper: 20 WiFi / 10 LTE testbed,
    /// 100–400 at scale).
    pub batch_size: usize,
    /// Monotonicity guard (extension beyond the paper): capacity
    /// regions are downward closed — adding flows never improves
    /// anyone's QoE — so a query matrix that componentwise dominates
    /// a stored inadmissible matrix must be inadmissible, and one
    /// dominated by a stored admissible matrix must be admissible.
    /// Applied before the model; makes the controller conservative
    /// under label noise (the `ablation_guard` bench quantifies it).
    pub monotone_guard: bool,
    /// Minimum samples before bootstrap exit is considered (paper:
    /// "bootstrapping can be done with ≈50 samples").
    pub bootstrap_min_samples: usize,
    /// Held-out accuracy needed to leave bootstrap.
    pub bootstrap_accuracy: f64,
    /// Folds for the bootstrap cross-validation.
    pub cv_folds: usize,
    /// Warm-start SVM retrains from the previous fit's dual state
    /// (α per stored sample plus bias). Sample-store indices are
    /// stable — repeats replace in place — so multipliers stay aligned
    /// across retrains; a sample whose label flipped restarts at
    /// α = 0. Steady-state retrains then re-verify KKT conditions
    /// instead of re-optimising from scratch. No effect on non-SVM
    /// backends.
    pub warm_start: bool,
    /// Training seed.
    pub seed: u64,
    /// Capacity of the matrix-keyed decision cache (distinct
    /// matrices); `0` disables caching entirely. The environment
    /// variable `EXBOX_DECISION_CACHE` overrides this at
    /// construction, which is how the CI determinism check runs the
    /// figure binaries cache-off without a code change.
    pub decision_cache_size: usize,
    /// Bound on the sample store (distinct matrices); `0` keeps the
    /// store unbounded (the paper's "all observed so far"). When the
    /// store exceeds the bound, deterministic seeded
    /// stratified-reservoir compaction shrinks it to ¾ of the cap
    /// (hysteresis, so compaction is amortised rather than
    /// per-observation), keeping at least one sample of each present
    /// label so the monotonicity guard can still fire in both
    /// directions. `EXBOX_MAX_SAMPLES` overrides at construction.
    pub max_samples: usize,
    /// Reuse the fitted feature scaler across retrains instead of
    /// refitting on every batch (it is still refitted after a
    /// compaction, which changes the store distribution). Keeping the
    /// scaler fixed keeps previously-scaled rows bit-stable, which is
    /// what lets the persistent kernel cache reuse its Gram block —
    /// the enabler for O(Δ·n) incremental retrains. Off by default to
    /// match the paper's batch procedure (and the committed CSVs)
    /// exactly.
    pub sticky_scaler: bool,
}

impl Default for AdmittanceConfig {
    fn default() -> Self {
        AdmittanceConfig {
            backend: ClassifierBackend::SvmPoly { c: 10.0, degree: 2 },
            batch_size: 20,
            monotone_guard: false,
            bootstrap_min_samples: 50,
            bootstrap_accuracy: 0.7,
            cv_folds: 5,
            warm_start: true,
            seed: 0xADB0,
            decision_cache_size: 4096,
            max_samples: 0,
            sticky_scaler: false,
        }
    }
}

/// Operating phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Observing only; all flows admitted.
    Bootstrap,
    /// Classifying arrivals; batch retraining.
    Online,
}

/// A trained model of whichever backend. SVM fits are stored in their
/// compact serving form — the full [`SvmModel`] is only a training
/// intermediate (the warm-start state lives in [`WarmState`]).
#[derive(Debug, Clone)]
enum Model {
    Svm(CompactSvm),
    Logistic(LogisticRegression),
    Pegasos(LinearSvm),
}

/// Raw training output before metrics extraction; SVM fits keep the
/// full dual state for the next warm start.
enum Fitted {
    Svm(SvmFit),
    Logistic(LogisticRegression),
    Pegasos(LinearSvm),
}

impl Model {
    fn decision_value(&self, x: &[f64]) -> f64 {
        match self {
            Model::Svm(m) => m.decision_value(x),
            Model::Logistic(m) => m.decision_value(x),
            Model::Pegasos(m) => m.decision_value(x),
        }
    }
}

/// An opaque, immutable handle to the classifier's served model of
/// whichever backend — the unit the concurrent gateway publishes
/// inside an epoch-stamped [`crate::gateway::ModelSnapshot`].
///
/// Decisions through a `ServingModel` are bit-exact with
/// [`AdmittanceClassifier::decision_value`] on the same scaled input:
/// it wraps the very same backend value the classifier serves. It is
/// `Send + Sync` (the compact SVM, logistic and Pegasos forms are all
/// plain owned data), so many shards can evaluate one shared snapshot
/// concurrently through `&self`.
#[derive(Debug, Clone)]
pub struct ServingModel(Model);

impl ServingModel {
    /// Signed decision score for an already-scaled feature vector;
    /// positive ⇒ inside the learnt ExCR.
    pub fn decision_value(&self, scaled: &[f64]) -> f64 {
        self.0.decision_value(scaled)
    }
}

// The whole serving pair must be shareable across shard threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServingModel>();
    assert_send_sync::<StandardScaler>();
};

/// Dual state carried between SVM retrains: per-sample (label at the
/// time of the fit, α) plus the bias. Aligned to sample-store indices,
/// which are stable because repeats replace in place.
#[derive(Debug, Clone)]
struct WarmState {
    alphas: Vec<(Label, f64)>,
    bias: f64,
}

/// Bounded, generation-stamped memo of `(label, margin)` verdicts
/// keyed by traffic matrix. Entries from an older generation are
/// treated as misses; [`DecisionCache::invalidate`] (called on every
/// retrain, and on every `observe` when the monotonicity guard reads
/// the sample store) is therefore O(1). Capacity pressure first drops
/// the stale generations, then — if the live working set alone
/// overflows — clears outright, so memory stays bounded by `cap` live
/// entries plus whatever stale ones the next insert sweeps.
#[derive(Debug)]
struct DecisionCache {
    cap: usize,
    generation: u64,
    map: HashMap<TrafficMatrix, (u64, Label, f64)>,
}

impl DecisionCache {
    fn new(cap: usize) -> Self {
        DecisionCache {
            cap,
            generation: 0,
            map: HashMap::new(),
        }
    }

    fn get(&self, key: &TrafficMatrix) -> Option<(Label, f64)> {
        match self.map.get(key) {
            Some(&(gen, label, margin)) if gen == self.generation => Some((label, margin)),
            _ => None,
        }
    }

    fn insert(&mut self, key: TrafficMatrix, label: Label, margin: f64) {
        if self.cap == 0 {
            return;
        }
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            let gen = self.generation;
            self.map.retain(|_, &mut (g, _, _)| g == gen);
            if self.map.len() >= self.cap {
                self.map.clear();
            }
        }
        self.map.insert(key, (self.generation, label, margin));
    }

    fn invalidate(&mut self) {
        self.generation += 1;
    }
}

/// The Admittance Classifier.
#[derive(Debug)]
pub struct AdmittanceClassifier {
    cfg: AdmittanceConfig,
    phase: Phase,
    /// Insertion-ordered sample store; the map gives the index of the
    /// latest entry for each distinct matrix so repeats *replace*.
    samples: Vec<(TrafficMatrix, Label)>,
    index: HashMap<TrafficMatrix, usize>,
    pending: usize,
    observations: u64,
    retrain_count: u64,
    scaler: Option<StandardScaler>,
    /// Sticky-scaler mode only: set by compaction to force a scaler
    /// refit at the next retrain (the store distribution changed).
    scaler_stale: bool,
    model: Option<Model>,
    warm: Option<WarmState>,
    /// Gram matrix carried across warm retrains (rebuildable —
    /// deliberately not checkpointed).
    kernel_cache: PersistentKernelCache,
    cache: DecisionCache,
    metrics: AdmittanceMetrics,
    faults: FaultPlan,
    backoff: RetryBackoff,
}

/// The classifier's complete learnt state, as captured into and
/// restored from an `exbox-ckpt` checkpoint (see [`crate::persist`]).
/// Everything needed to resume decision-making bit-exactly: phase,
/// sample store, counters, scaler statistics, the served model and the
/// warm-start dual state.
#[derive(Debug, Clone)]
pub(crate) struct ClassifierState {
    pub phase: Phase,
    pub samples: Vec<(TrafficMatrix, Label)>,
    pub pending: usize,
    pub observations: u64,
    pub retrain_count: u64,
    /// `(means, stds)` of the fitted scaler.
    pub scaler: Option<(Vec<f64>, Vec<f64>)>,
    pub model: Option<ModelState>,
    /// `(per-sample (label, alpha), bias)` warm-start dual state.
    pub warm: Option<(Vec<(Label, f64)>, f64)>,
}

/// Serialisable form of [`Model`]. SVMs travel as a full [`SvmModel`]
/// (the checkpoint embeds the existing `exbox-svm v1` document);
/// linear-family models are just weights and a bias.
#[derive(Debug, Clone)]
pub(crate) enum ModelState {
    Svm(SvmModel),
    Logistic(Vec<f64>, f64),
    Pegasos(Vec<f64>, f64),
}

impl ModelState {
    /// Feature dimensionality the restored model expects. The serving
    /// path evaluates models from stack buffers sized by
    /// [`TrafficMatrix::DIMS`], so restore rejects any other value —
    /// see the cross-check in [`crate::persist::load_checkpoint`].
    pub(crate) fn dims(&self) -> usize {
        match self {
            ModelState::Svm(m) => exbox_ml::Classifier::dims(m),
            ModelState::Logistic(w, _) | ModelState::Pegasos(w, _) => w.len(),
        }
    }
}

impl AdmittanceClassifier {
    /// New classifier in the bootstrap phase, reporting metrics to the
    /// process-wide [`exbox_obs::global`] registry.
    ///
    /// # Panics
    /// Panics on nonsensical configuration (zero batch, folds < 2,
    /// accuracy outside (0, 1]).
    pub fn new(cfg: AdmittanceConfig) -> Self {
        Self::with_registry(cfg, exbox_obs::global())
    }

    /// Like [`AdmittanceClassifier::new`] but reporting to an explicit
    /// registry (tests and side-by-side controller comparisons).
    ///
    /// # Panics
    /// Panics on nonsensical configuration (zero batch, folds < 2,
    /// accuracy outside (0, 1]).
    pub fn with_registry(cfg: AdmittanceConfig, registry: &MetricsRegistry) -> Self {
        assert!(cfg.batch_size >= 1, "batch size must be at least 1");
        assert!(cfg.cv_folds >= 2, "cross-validation needs >= 2 folds");
        assert!(
            cfg.bootstrap_accuracy > 0.0 && cfg.bootstrap_accuracy <= 1.0,
            "bootstrap accuracy must be in (0, 1]"
        );
        let mut cfg = cfg;
        if let Ok(v) = std::env::var("EXBOX_DECISION_CACHE") {
            // Zero is a valid setting here (cache off), so any usize
            // passes; garbage warns and keeps the configured size.
            if let Some(n) =
                exbox_par::parse_env_knob::<usize>("EXBOX_DECISION_CACHE", &v, |_| true)
            {
                cfg.decision_cache_size = n;
            }
        }
        if let Ok(v) = std::env::var("EXBOX_MAX_SAMPLES") {
            // Zero is valid (unbounded), so any usize passes; garbage
            // warns and keeps the configured bound.
            if let Some(n) = exbox_par::parse_env_knob::<usize>("EXBOX_MAX_SAMPLES", &v, |_| true) {
                cfg.max_samples = n;
            }
        }
        let cache = DecisionCache::new(cfg.decision_cache_size);
        AdmittanceClassifier {
            cfg,
            phase: Phase::Bootstrap,
            samples: Vec::new(),
            index: HashMap::new(),
            pending: 0,
            observations: 0,
            retrain_count: 0,
            scaler: None,
            scaler_stale: false,
            model: None,
            warm: None,
            kernel_cache: PersistentKernelCache::new(),
            cache,
            metrics: AdmittanceMetrics::bind(registry),
            faults: FaultPlan::disabled(),
            backoff: RetryBackoff::default(),
        }
    }

    /// Install a fault-injection plan (see [`FaultPlan`]); the default
    /// is [`FaultPlan::disabled`]. The middlebox forwards its own plan
    /// here so one `EXBOX_FAULTS` spec drives both components.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// `true` when a trained model (and its scaler) is loaded, i.e.
    /// [`AdmittanceClassifier::decision_value`] can produce a margin.
    /// `false` during bootstrap-before-first-train and after a failed
    /// restore — the states the middlebox serves in degraded mode.
    pub fn model_available(&self) -> bool {
        self.model.is_some() && self.scaler.is_some()
    }

    /// Failed retrain attempts since the last success (0 in healthy
    /// operation).
    pub fn consecutive_retrain_failures(&self) -> u32 {
        self.backoff.consecutive_failures()
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Number of distinct traffic matrices stored (repeats replace).
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Total observations fed in, counting repeats — the paper's
    /// notion of "samples".
    pub fn num_observations(&self) -> u64 {
        self.observations
    }

    /// How many times the model has been (re)trained.
    pub fn retrain_count(&self) -> u64 {
        self.retrain_count
    }

    /// Record one observation: the matrix that resulted from an
    /// admission and whether all flows' QoE stayed acceptable
    /// (`Label::Pos`) or not. Repeated matrices replace their stored
    /// label. Returns `true` if this observation triggered a phase
    /// change or a retrain.
    pub fn observe(&mut self, matrix: TrafficMatrix, label: Label) -> bool {
        self.observations += 1;
        self.metrics.observations.inc();
        match self.index.get(&matrix) {
            Some(&i) => self.samples[i].1 = label,
            None => {
                self.index.insert(matrix, self.samples.len());
                self.samples.push((matrix, label));
                self.maybe_compact();
            }
        }
        // The monotonicity guard reads the sample store directly, so
        // with it enabled every observation can change a verdict —
        // not just retrains.
        if self.cfg.monotone_guard {
            self.cache.invalidate();
        }
        match self.phase {
            Phase::Bootstrap => self.try_exit_bootstrap(),
            Phase::Online => {
                self.pending += 1;
                if self.pending >= self.cfg.batch_size {
                    self.pending = 0;
                    if self.backoff.ready() {
                        if self.backoff.consecutive_failures() > 0 {
                            self.metrics.retrain_retries.inc();
                        }
                        self.retrain();
                        true
                    } else {
                        // A recent retrain failure armed the backoff:
                        // skip this trigger rather than hammering a
                        // failing trainer every batch.
                        self.backoff.tick();
                        false
                    }
                } else {
                    false
                }
            }
        }
    }

    /// Attempt the bootstrap-exit check: enough samples, both classes
    /// present, and CV accuracy above threshold.
    fn try_exit_bootstrap(&mut self) -> bool {
        if self.observations < self.cfg.bootstrap_min_samples as u64 {
            return false;
        }
        let ds = self.dataset();
        if !ds.has_both_classes() || ds.len() < self.cfg.cv_folds {
            return false;
        }
        let acc = self.cv_accuracy(&ds);
        self.metrics.cv_accuracy.set(acc);
        if acc >= self.cfg.bootstrap_accuracy {
            self.retrain();
            self.phase = Phase::Online;
            self.metrics.bootstrap_exits.inc();
            true
        } else {
            false
        }
    }

    /// The SMO trainer for SVM backends (`None` for the others); the
    /// single construction point shared by cross-validation and
    /// (re)training.
    fn svm_trainer(cfg: &AdmittanceConfig, dims: usize) -> Option<SvmTrainer> {
        let (kernel, c) = match cfg.backend {
            ClassifierBackend::SvmRbf { c, gamma } => {
                let kernel = match gamma {
                    Some(g) => Kernel::rbf(g),
                    None => Kernel::rbf_default(dims),
                };
                (kernel, c)
            }
            ClassifierBackend::SvmLinear { c } => (Kernel::Linear, c),
            ClassifierBackend::SvmPoly { c, degree } => {
                (Kernel::poly(1.0 / dims as f64, 1.0, degree), c)
            }
            ClassifierBackend::Logistic | ClassifierBackend::PegasosLinear => return None,
        };
        Some(SvmTrainer::new(kernel).c(c).seed(cfg.seed))
    }

    /// Cross-validated accuracy on the (scaled) sample store.
    fn cv_accuracy(&self, ds: &Dataset) -> f64 {
        let scaler = StandardScaler::fit(ds);
        let scaled = scaler.transform_dataset(ds);
        if let Some(t) = Self::svm_trainer(&self.cfg, scaled.dims()) {
            return cross_validate(&t, &scaled, self.cfg.cv_folds, self.cfg.seed).accuracy();
        }
        match self.cfg.backend {
            ClassifierBackend::Logistic => {
                let t = LogisticRegressionTrainer::new();
                cross_validate(&t, &scaled, self.cfg.cv_folds, self.cfg.seed).accuracy()
            }
            ClassifierBackend::PegasosLinear => {
                let t = LinearSvmTrainer::new().seed(self.cfg.seed);
                cross_validate(&t, &scaled, self.cfg.cv_folds, self.cfg.seed).accuracy()
            }
            _ => unreachable!("SVM backends handled above"),
        }
    }

    /// Sample store as an ML dataset.
    fn dataset(&self) -> Dataset {
        let mut ds = Dataset::new(TrafficMatrix::DIMS);
        for (m, y) in &self.samples {
            ds.push(m.features(), *y);
        }
        ds
    }

    /// Compact the sample store when it exceeds
    /// [`AdmittanceConfig::max_samples`]: a deterministic seeded
    /// stratified reservoir keeps ¾ of the cap (hysteresis),
    /// allocating survivors proportionally per label with at least one
    /// sample of each present label, so the monotonicity guard can
    /// still fire in both directions and retrain cost is O(cap) in the
    /// steady state.
    ///
    /// Determinism: the draw is seeded by `cfg.seed ^ observations`,
    /// both of which are checkpointed — a restored classifier compacts
    /// identically, and no thread pool is involved so `EXBOX_THREADS`
    /// cannot change the outcome (property-tested).
    fn maybe_compact(&mut self) {
        let cap = self.cfg.max_samples;
        let n = self.samples.len();
        if cap == 0 || n <= cap {
            return;
        }
        let target = (cap * 3 / 4).clamp(2, n);
        let pos: Vec<usize> = (0..n)
            .filter(|&i| self.samples[i].1 == Label::Pos)
            .collect();
        let neg: Vec<usize> = (0..n)
            .filter(|&i| self.samples[i].1 == Label::Neg)
            .collect();
        // Proportional allocation, ≥1 per non-empty stratum, spare
        // capacity rebalanced to whichever stratum can absorb it.
        let mut keep_pos = ((pos.len() * target + n / 2) / n)
            .clamp(usize::from(!pos.is_empty()), pos.len())
            .min(target);
        let mut keep_neg = (target - keep_pos).clamp(usize::from(!neg.is_empty()), neg.len());
        let spare = target.saturating_sub(keep_pos + keep_neg);
        keep_pos = (keep_pos + spare).min(pos.len());
        let spare = target.saturating_sub(keep_pos + keep_neg);
        keep_neg = (keep_neg + spare).min(neg.len());

        let mut state = self.cfg.seed ^ self.observations ^ 0x5EED_C0DE;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        // Partial Fisher-Yates: an exact uniform k-of-n draw per
        // stratum.
        let mut pick = |stratum: &[usize], k: usize| -> Vec<usize> {
            let mut v = stratum.to_vec();
            let m = v.len();
            for i in 0..k.min(m) {
                let j = i + (next() % (m - i) as u64) as usize;
                v.swap(i, j);
            }
            v.truncate(k.min(m));
            v
        };
        let mut retained = pick(&pos, keep_pos);
        retained.extend(pick(&neg, keep_neg));
        // Ascending store order: survivors keep their relative
        // insertion order, so a compaction that happens to retain a
        // pure prefix stays reusable by the persistent kernel cache.
        retained.sort_unstable();

        let old = std::mem::take(&mut self.samples);
        let old_warm = self.warm.take();
        self.index.clear();
        self.samples.reserve(retained.len());
        for &i in &retained {
            let (m, y) = old[i];
            self.index.insert(m, self.samples.len());
            self.samples.push((m, y));
        }
        // Subset the warm-start duals to the survivors; the Σαy = 0
        // constraint is repaired inside the next fit_warm.
        if let Some(w) = old_warm {
            self.warm = Some(WarmState {
                alphas: retained
                    .iter()
                    .map(|&i| w.alphas.get(i).copied().unwrap_or((old[i].1, 0.0)))
                    .collect(),
                bias: w.bias,
            });
        }
        // Dropped rows change what the monotonicity guard and the next
        // scaler fit see.
        self.cache.invalidate();
        self.scaler_stale = true;
        self.metrics.store_compactions.inc();
    }

    /// Previous dual state aligned to the *current* store: the carried
    /// α for each sample whose label is unchanged since the last fit,
    /// 0 for flipped or new samples. `None` when warm starting is off
    /// or there is no previous SVM fit.
    fn carried_warm(&self) -> Option<(Vec<f64>, f64)> {
        if !self.cfg.warm_start {
            return None;
        }
        let warm = self.warm.as_ref()?;
        let alpha = self
            .samples
            .iter()
            .enumerate()
            .map(|(i, (_, label))| match warm.alphas.get(i) {
                Some((prev_label, a)) if prev_label == label => *a,
                _ => 0.0,
            })
            .collect();
        Some((alpha, warm.bias))
    }

    /// Retrain the model from the full store (paper: "re-computes the
    /// Admittance Classifier with all the (X_m, Y_m) observed so far").
    /// SVM backends warm-start from the previous fit's dual state when
    /// [`AdmittanceConfig::warm_start`] is on.
    pub fn retrain(&mut self) {
        let ds = self.dataset();
        if ds.is_empty() {
            return;
        }
        // Fault hook: a forced training failure leaves the previous
        // model (possibly none) serving and arms the retry backoff.
        if self.faults.should_inject(FaultKind::RetrainFail) {
            self.metrics.retrain_failures.inc();
            self.backoff.on_failure();
            return;
        }
        // Drawn before the timing closure so the injector sees a
        // stable draw order regardless of trainer internals.
        let sabotage_convergence = self.faults.should_inject(FaultKind::RetrainNonConverge);
        let batch = ds.len();
        let cfg = &self.cfg;
        let carried = self.carried_warm();
        // Sticky-scaler mode reuses the fitted scaler so the scaled
        // rows stay bit-stable across retrains — the enabler for the
        // persistent cache's incremental Gram reuse. A compaction
        // marks it stale (the store distribution changed).
        let prev_scaler = (cfg.sticky_scaler && !self.scaler_stale)
            .then(|| self.scaler.clone())
            .flatten();
        let kcache = &mut self.kernel_cache;
        let (fitted, wall_ns) = exbox_obs::time_ns(move || {
            let scaler = prev_scaler.unwrap_or_else(|| StandardScaler::fit(&ds));
            let scaled = scaler.transform_dataset(&ds);
            let fit = match Self::svm_trainer(cfg, scaled.dims()) {
                Some(trainer) => {
                    let trainer = if sabotage_convergence {
                        // One SMO step, then the max_iters backstop
                        // fires: the fit reports converged() == false
                        // exactly like a genuinely stuck solver.
                        trainer.max_iters(1)
                    } else {
                        trainer
                    };
                    let warm = carried
                        .as_ref()
                        .map(|(alpha, bias)| WarmStart { alpha, bias: *bias });
                    Fitted::Svm(trainer.fit_warm_cached(&scaled, warm, kcache))
                }
                None => match cfg.backend {
                    ClassifierBackend::Logistic => {
                        Fitted::Logistic(LogisticRegressionTrainer::new().train(&scaled))
                    }
                    ClassifierBackend::PegasosLinear => {
                        Fitted::Pegasos(LinearSvmTrainer::new().seed(cfg.seed).train(&scaled))
                    }
                    _ => unreachable!("SVM backends handled above"),
                },
            };
            (scaler, fit)
        });
        let (scaler, fit) = fitted;
        let model = match fit {
            Fitted::Svm(fit) => {
                self.metrics
                    .smo_iterations
                    .record(fit.model.smo_iterations() as f64);
                self.metrics
                    .warm_start_alphas
                    .record(fit.warm_carried as f64);
                self.metrics.shrunk_fraction.record(fit.shrunk_fraction);
                if !fit.model.converged() {
                    self.metrics.nonconverged_retrains.inc();
                }
                self.warm = Some(WarmState {
                    alphas: self
                        .samples
                        .iter()
                        .map(|(_, label)| *label)
                        .zip(fit.alpha.iter().copied())
                        .collect(),
                    bias: fit.model.bias(),
                });
                Model::Svm(fit.model.compact())
            }
            Fitted::Logistic(m) => Model::Logistic(m),
            Fitted::Pegasos(m) => Model::Pegasos(m),
        };
        self.metrics.retrain_wall_ns.record(wall_ns);
        self.metrics.train_batch_samples.record(batch as f64);
        if self.kernel_cache.len() == batch {
            // The cached path ran: record how much of the Gram this
            // retrain actually had to evaluate.
            self.metrics
                .gram_incremental_rows
                .record(self.kernel_cache.last_fresh_rows() as f64);
        }
        self.metrics.retrains.inc();
        self.scaler = Some(scaler);
        self.scaler_stale = false;
        self.model = Some(model);
        self.retrain_count += 1;
        self.backoff.on_success();
        self.cache.invalidate();
    }

    /// Capture the complete learnt state for checkpointing. The SVM
    /// variant re-expands the served [`CompactSvm`] into a full
    /// [`SvmModel`]: the served coefficients are all non-zero (exact
    /// zeros were pruned at compaction), so re-compacting on restore
    /// rebuilds identical rows, coefficients and cached norms —
    /// decisions round-trip bit-exactly.
    pub(crate) fn export_state(&self) -> ClassifierState {
        let model = self.model.as_ref().map(|m| match m {
            Model::Svm(compact) => {
                let mut support = Vec::with_capacity(compact.num_support_vectors());
                let mut coef = Vec::with_capacity(compact.num_support_vectors());
                for (c, row) in compact.support_iter() {
                    coef.push(c);
                    support.push(row.to_vec());
                }
                ModelState::Svm(SvmModel::from_parts(
                    compact.kernel(),
                    support,
                    coef,
                    compact.bias(),
                    compact.dims(),
                ))
            }
            Model::Logistic(m) => ModelState::Logistic(m.weights().to_vec(), m.bias()),
            Model::Pegasos(m) => ModelState::Pegasos(m.weights().to_vec(), m.bias()),
        });
        ClassifierState {
            phase: self.phase,
            samples: self.samples.clone(),
            pending: self.pending,
            observations: self.observations,
            retrain_count: self.retrain_count,
            scaler: self
                .scaler
                .as_ref()
                .map(|s| (s.means().to_vec(), s.stds().to_vec())),
            model,
            warm: self.warm.as_ref().map(|w| (w.alphas.clone(), w.bias)),
        }
    }

    /// Rebuild a classifier from a restored [`ClassifierState`]. The
    /// fault plan and backoff start fresh (they are runtime policy,
    /// not learnt state); the decision cache starts cold.
    pub(crate) fn import_state(
        cfg: AdmittanceConfig,
        state: ClassifierState,
        registry: &MetricsRegistry,
    ) -> Self {
        let mut ac = Self::with_registry(cfg, registry);
        ac.phase = state.phase;
        ac.index = state
            .samples
            .iter()
            .enumerate()
            .map(|(i, (m, _))| (*m, i))
            .collect();
        ac.samples = state.samples;
        ac.pending = state.pending;
        ac.observations = state.observations;
        ac.retrain_count = state.retrain_count;
        ac.scaler = state
            .scaler
            .map(|(mean, std)| StandardScaler::from_parts(mean, std));
        ac.model = state.model.map(|m| match m {
            ModelState::Svm(model) => Model::Svm(model.compact()),
            ModelState::Logistic(w, b) => Model::Logistic(LogisticRegression::from_parts(w, b)),
            ModelState::Pegasos(w, b) => Model::Pegasos(LinearSvm::from_parts(w, b)),
        });
        ac.warm = state.warm.map(|(alphas, bias)| WarmState { alphas, bias });
        ac
    }

    /// Signed distance-like score for the matrix that would result
    /// from an admission: positive ⇒ inside the learnt ExCR. `None`
    /// until a model exists (bootstrap before first training).
    ///
    /// Allocation-free: features and scaled features live in stack
    /// arrays sized by [`TrafficMatrix::DIMS`].
    pub fn decision_value(&self, resulting: &TrafficMatrix) -> Option<f64> {
        let scaler = self.scaler.as_ref()?;
        let model = self.model.as_ref()?;
        let mut raw = [0.0f64; TrafficMatrix::DIMS];
        resulting.features_into(&mut raw);
        let mut scaled = [0.0f64; TrafficMatrix::DIMS];
        scaler.transform_into(&raw, &mut scaled);
        Some(model.decision_value(&scaled))
    }

    /// Export the current serving view — phase plus, once trained, the
    /// fitted scaler and model — for publication as an immutable
    /// [`crate::gateway::ModelSnapshot`]. The clones are taken once
    /// per retrain (off the packet path), never per decision.
    pub fn serving_state(&self) -> (Phase, Option<(StandardScaler, ServingModel)>) {
        let pair = match (&self.scaler, &self.model) {
            (Some(s), Some(m)) => Some((s.clone(), ServingModel(m.clone()))),
            _ => None,
        };
        (self.phase, pair)
    }

    /// Classify an arrival (by the matrix it would produce). During
    /// bootstrap every flow is admissible by definition.
    ///
    /// Shared-reference and cache-free — safe to fan out across
    /// threads. Callers holding `&mut self` that want the label *and*
    /// the margin (or the memoised steady-state path) should use
    /// [`AdmittanceClassifier::decide`] instead.
    pub fn classify(&self, resulting: &TrafficMatrix) -> Label {
        self.decide_uncached(resulting).0
    }

    /// Single-pass decision: label and margin from one model
    /// evaluation, memoised in the matrix-keyed cache. The margin is
    /// `None` until a model exists (bootstrap before first training) —
    /// such decisions are never cached.
    ///
    /// # Examples
    ///
    /// ```
    /// use exbox_core::prelude::*;
    /// use exbox_ml::Label;
    ///
    /// let mut ac = AdmittanceClassifier::new(AdmittanceConfig::default());
    /// // Bootstrap: every matrix is admissible by definition, and
    /// // there is no model yet, hence no margin.
    /// let (label, margin) = ac.decide(&TrafficMatrix::empty());
    /// assert_eq!(label, Label::Pos);
    /// assert!(margin.is_none());
    /// ```
    ///
    /// Once online, repeated decisions on a recurring matrix are
    /// served from the matrix-keyed cache with an identical margin:
    ///
    /// ```
    /// use exbox_core::prelude::*;
    /// use exbox_ml::Label;
    /// use exbox_net::AppClass;
    ///
    /// let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
    ///     batch_size: 8,
    ///     ..AdmittanceConfig::default()
    /// });
    /// for n in 0..80u32 {
    ///     let total = n % 8;
    ///     let mut m = TrafficMatrix::empty();
    ///     for _ in 0..total {
    ///         m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
    ///     }
    ///     let y = if total <= 2 { Label::Pos } else { Label::Neg };
    ///     ac.observe(m, y);
    /// }
    /// assert_eq!(ac.phase(), Phase::Online);
    ///
    /// let mut m = TrafficMatrix::empty();
    /// m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
    /// let first = ac.decide(&m);
    /// let again = ac.decide(&m); // cache hit — bit-identical
    /// assert_eq!(first.0, Label::Pos);
    /// assert_eq!(first.1.unwrap().to_bits(), again.1.unwrap().to_bits());
    /// ```
    pub fn decide(&mut self, resulting: &TrafficMatrix) -> (Label, Option<f64>) {
        if self.model.is_none() {
            return self.decide_uncached(resulting);
        }
        if let Some((label, margin)) = self.cache.get(resulting) {
            self.metrics.cache_hits.inc();
            return (label, Some(margin));
        }
        self.metrics.cache_misses.inc();
        let (label, margin) = self.decide_uncached(resulting);
        if let Some(m) = margin {
            self.cache.insert(*resulting, label, m);
        }
        (label, margin)
    }

    /// The uncached decision: one margin evaluation, label derived
    /// from its sign (after the phase rule and the optional
    /// monotonicity guard).
    fn decide_uncached(&self, resulting: &TrafficMatrix) -> (Label, Option<f64>) {
        let margin = self.decision_value(resulting);
        let label = match self.phase {
            Phase::Bootstrap => Label::Pos,
            Phase::Online => {
                let guarded = if self.cfg.monotone_guard {
                    self.dominance_label(resulting)
                } else {
                    None
                };
                match (guarded, margin) {
                    (Some(l), _) => l,
                    (None, Some(v)) => Label::from_signum(v),
                    (None, None) => Label::Pos,
                }
            }
        };
        (label, margin)
    }

    /// Downward-closure check against the stored samples: `Neg` when
    /// the query dominates a known-inadmissible matrix, `Pos` when a
    /// known-admissible matrix dominates the query. Exact matches are
    /// covered by both rules (dominance is reflexive), so a stored
    /// matrix returns its stored label, negatives winning ties.
    fn dominance_label(&self, query: &TrafficMatrix) -> Option<Label> {
        let qf = query.features();
        let dominates = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| x >= y);
        let mut dominated_by_pos = false;
        for (m, y) in &self.samples {
            let mf = m.features();
            match y {
                Label::Neg if dominates(&qf, &mf) => return Some(Label::Neg),
                Label::Pos if dominates(&mf, &qf) => dominated_by_pos = true,
                _ => {}
            }
        }
        dominated_by_pos.then_some(Label::Pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{FlowKind, SnrLevel};
    use exbox_net::AppClass;

    /// Synthetic ground truth: the network supports total ≤ 6 flows
    /// (a simple ExCR).
    fn truth(m: &TrafficMatrix) -> Label {
        if m.total() <= 6 {
            Label::Pos
        } else {
            Label::Neg
        }
    }

    fn matrix(web: u32, stream: u32, conf: u32) -> TrafficMatrix {
        let mut m = TrafficMatrix::empty();
        for _ in 0..web {
            m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
        }
        for _ in 0..stream {
            m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        for _ in 0..conf {
            m.add(FlowKind::new(AppClass::Conferencing, SnrLevel::High));
        }
        m
    }

    fn feed_bootstrap(ac: &mut AdmittanceClassifier) {
        // Diverse grid of observations spanning both labels.
        for w in 0..4 {
            for s in 0..4 {
                for c in 0..4 {
                    let m = matrix(w, s, c);
                    ac.observe(m, truth(&m));
                }
            }
        }
    }

    #[test]
    fn starts_in_bootstrap_and_admits_everything() {
        let ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        assert_eq!(ac.phase(), Phase::Bootstrap);
        assert_eq!(ac.classify(&matrix(30, 30, 30)), Label::Pos);
    }

    #[test]
    fn exits_bootstrap_when_learnable() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        feed_bootstrap(&mut ac);
        assert_eq!(ac.phase(), Phase::Online, "should have gone online");
        assert!(ac.retrain_count() >= 1);
    }

    #[test]
    fn online_classification_matches_simple_excr() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        feed_bootstrap(&mut ac);
        assert_eq!(ac.phase(), Phase::Online);
        assert_eq!(ac.classify(&matrix(1, 1, 1)), Label::Pos);
        assert_eq!(ac.classify(&matrix(4, 4, 4)), Label::Neg);
    }

    #[test]
    fn bootstrap_requires_min_samples() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
            bootstrap_min_samples: 1_000,
            ..AdmittanceConfig::default()
        });
        feed_bootstrap(&mut ac);
        assert_eq!(ac.phase(), Phase::Bootstrap);
    }

    #[test]
    fn repeated_matrix_replaces_label() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        let m = matrix(1, 0, 0);
        ac.observe(m, Label::Pos);
        assert_eq!(ac.num_samples(), 1);
        ac.observe(m, Label::Neg);
        assert_eq!(ac.num_samples(), 1, "repeat must replace, not append");
    }

    #[test]
    fn online_retrains_every_batch() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
            batch_size: 5,
            ..AdmittanceConfig::default()
        });
        feed_bootstrap(&mut ac);
        let base = ac.retrain_count();
        // 5 new distinct observations => exactly one retrain.
        for w in 10..15 {
            let m = matrix(w, 0, 0);
            ac.observe(m, truth(&m));
        }
        assert_eq!(ac.retrain_count(), base + 1);
    }

    #[test]
    fn adapts_to_relabelled_world() {
        // The Fig. 11 mechanism: after the network changes, fresh
        // labels replace stale ones and retraining moves the boundary.
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
            batch_size: 10,
            ..AdmittanceConfig::default()
        });
        feed_bootstrap(&mut ac);
        assert_eq!(ac.classify(&matrix(2, 2, 1)), Label::Pos);
        // Network throttled: now only total <= 2 is acceptable.
        let new_truth = |m: &TrafficMatrix| {
            if m.total() <= 2 {
                Label::Pos
            } else {
                Label::Neg
            }
        };
        // The workload revisits the whole grid under the new regime;
        // the freshness rule replaces every stale label.
        for _round in 0..3 {
            for w in 0..4 {
                for s in 0..4 {
                    for c in 0..4 {
                        let m = matrix(w, s, c);
                        ac.observe(m, new_truth(&m));
                    }
                }
            }
        }
        assert_eq!(ac.classify(&matrix(2, 2, 1)), Label::Neg, "failed to adapt");
        assert_eq!(ac.classify(&matrix(1, 0, 0)), Label::Pos);
    }

    #[test]
    fn decision_value_orders_by_depth_in_region() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        feed_bootstrap(&mut ac);
        let shallow = ac.decision_value(&matrix(2, 2, 2)).unwrap();
        let deep = ac.decision_value(&matrix(0, 0, 1)).unwrap();
        assert!(
            deep > shallow,
            "deeper inside the ExCR should score higher: {deep} vs {shallow}"
        );
    }

    #[test]
    fn all_backends_learn_the_simple_excr() {
        for backend in [
            ClassifierBackend::SvmRbf {
                c: 10.0,
                gamma: None,
            },
            ClassifierBackend::SvmLinear { c: 10.0 },
            ClassifierBackend::SvmPoly { c: 10.0, degree: 2 },
            ClassifierBackend::Logistic,
            ClassifierBackend::PegasosLinear,
        ] {
            let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
                backend,
                ..AdmittanceConfig::default()
            });
            feed_bootstrap(&mut ac);
            assert_eq!(ac.phase(), Phase::Online, "{backend:?} stuck in bootstrap");
            assert_eq!(
                ac.classify(&matrix(1, 1, 0)),
                Label::Pos,
                "{backend:?} rejects tiny matrix"
            );
            // Query inside the observed range (RBF cannot be trusted
            // outside the training hull — that is why SvmPoly is the
            // default backend).
            assert_eq!(
                ac.classify(&matrix(3, 3, 3)),
                Label::Neg,
                "{backend:?} admits overloaded matrix"
            );
        }
    }

    #[test]
    fn decide_matches_classify_and_decision_value() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        feed_bootstrap(&mut ac);
        for w in 0..5 {
            for s in 0..5 {
                let m = matrix(w, s, 1);
                let (label, margin) = ac.decide(&m);
                assert_eq!(label, ac.classify(&m));
                assert_eq!(margin, ac.decision_value(&m));
            }
        }
    }

    #[test]
    fn decide_caches_and_retrain_invalidates() {
        let reg = MetricsRegistry::new();
        let mut ac = AdmittanceClassifier::with_registry(AdmittanceConfig::default(), &reg);
        feed_bootstrap(&mut ac);
        let m = matrix(2, 1, 1);
        let first = ac.decide(&m);
        let counter = |reg: &MetricsRegistry, name: &str| reg.snapshot().counter(name).unwrap_or(0);
        let misses_after_first = counter(&reg, "admittance.cache_misses");
        assert!(misses_after_first >= 1);
        assert_eq!(counter(&reg, "admittance.cache_hits"), 0);
        // Repeat decisions hit the cache and return identical results.
        for _ in 0..5 {
            assert_eq!(ac.decide(&m), first);
        }
        assert_eq!(counter(&reg, "admittance.cache_hits"), 5);
        assert_eq!(counter(&reg, "admittance.cache_misses"), misses_after_first);
        // A retrain bumps the generation: same matrix misses again.
        ac.retrain();
        let again = ac.decide(&m);
        assert_eq!(
            counter(&reg, "admittance.cache_misses"),
            misses_after_first + 1
        );
        // And the refreshed entry still agrees with the uncached path.
        assert_eq!(again.0, ac.classify(&m));
        assert_eq!(again.1, ac.decision_value(&m));
    }

    #[test]
    fn bootstrap_decisions_are_not_cached() {
        let reg = MetricsRegistry::new();
        let mut ac = AdmittanceClassifier::with_registry(AdmittanceConfig::default(), &reg);
        let m = matrix(3, 3, 3);
        for _ in 0..3 {
            assert_eq!(ac.decide(&m), (Label::Pos, None));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("admittance.cache_hits").unwrap_or(0), 0);
        assert_eq!(snap.counter("admittance.cache_misses").unwrap_or(0), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let reg = MetricsRegistry::new();
        let mut ac = AdmittanceClassifier::with_registry(
            AdmittanceConfig {
                decision_cache_size: 0,
                ..AdmittanceConfig::default()
            },
            &reg,
        );
        feed_bootstrap(&mut ac);
        let m = matrix(1, 1, 1);
        let first = ac.decide(&m);
        for _ in 0..4 {
            assert_eq!(ac.decide(&m), first);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("admittance.cache_hits").unwrap_or(0), 0);
        assert!(snap.counter("admittance.cache_misses").unwrap() >= 5);
    }

    #[test]
    fn cache_stays_bounded_under_many_distinct_matrices() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
            decision_cache_size: 8,
            ..AdmittanceConfig::default()
        });
        feed_bootstrap(&mut ac);
        for w in 0..10 {
            for s in 0..10 {
                let _ = ac.decide(&matrix(w, s, 2));
            }
        }
        assert!(
            ac.cache.map.len() <= 8,
            "cache exceeded its bound: {}",
            ac.cache.map.len()
        );
        // Bounded eviction must not corrupt verdicts.
        let m = matrix(9, 9, 2);
        assert_eq!(ac.decide(&m).0, ac.classify(&m));
    }

    #[test]
    fn monotone_guard_observe_invalidates_cache() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
            monotone_guard: true,
            // Huge batch so the observes below never retrain — only
            // the guard invalidation can keep the verdict fresh.
            batch_size: 100_000,
            ..AdmittanceConfig::default()
        });
        feed_bootstrap(&mut ac);
        let probe = matrix(2, 2, 2);
        let (before, _) = ac.decide(&probe);
        assert_eq!(before, ac.classify(&probe));
        // A dominated inadmissible observation flips the guard verdict
        // for the probe without any retrain.
        ac.observe(matrix(1, 1, 1), Label::Neg);
        assert_eq!(ac.classify(&probe), Label::Neg);
        assert_eq!(
            ac.decide(&probe).0,
            Label::Neg,
            "cached verdict survived a guard-relevant observation"
        );
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        let _ = AdmittanceClassifier::new(AdmittanceConfig {
            batch_size: 0,
            ..AdmittanceConfig::default()
        });
    }

    /// Replay one scripted middlebox workload into a classifier:
    /// bootstrap grid, then three online batches — load growth, a
    /// quiet period of repeats, and a partial relabelling after a
    /// (synthetic) capacity drop to `total <= 5`.
    fn run_trace(ac: &mut AdmittanceClassifier) {
        feed_bootstrap(ac);
        assert_eq!(ac.phase(), Phase::Online);
        for w in 4..8 {
            for s in 0..3 {
                let m = matrix(w, s, 0);
                ac.observe(m, truth(&m));
            }
        }
        for _ in 0..2 {
            for w in 0..4 {
                for s in 0..4 {
                    let m = matrix(w, s, 1);
                    ac.observe(m, truth(&m));
                }
            }
        }
        let drop_truth = |m: &TrafficMatrix| {
            if m.total() <= 5 {
                Label::Pos
            } else {
                Label::Neg
            }
        };
        for w in 0..4 {
            for c in 0..4 {
                let m = matrix(w, 2, c);
                ac.observe(m, drop_truth(&m));
            }
        }
    }

    #[test]
    fn warm_start_matches_cold_predictions_on_trace() {
        // Warm starting changes the optimisation path, not the
        // problem: after the same scripted trace, warm and cold
        // classifiers must agree on (nearly all of) the query grid.
        let mut warm = AdmittanceClassifier::new(AdmittanceConfig {
            batch_size: 8,
            ..AdmittanceConfig::default()
        });
        let mut cold = AdmittanceClassifier::new(AdmittanceConfig {
            batch_size: 8,
            warm_start: false,
            ..AdmittanceConfig::default()
        });
        run_trace(&mut warm);
        run_trace(&mut cold);
        assert!(warm.retrain_count() >= 3, "trace must retrain repeatedly");
        assert_eq!(warm.retrain_count(), cold.retrain_count());
        let mut agree = 0u32;
        let mut total = 0u32;
        for w in 0..5 {
            for s in 0..5 {
                for c in 0..5 {
                    total += 1;
                    if warm.classify(&matrix(w, s, c)) == cold.classify(&matrix(w, s, c)) {
                        agree += 1;
                    }
                }
            }
        }
        assert!(
            agree * 100 >= total * 95,
            "warm/cold disagree on {} of {total} grid points",
            total - agree
        );
    }

    #[test]
    fn warm_retrain_uses_fewer_smo_iterations_than_cold() {
        // Steady state: a retrain over a store that barely changed
        // must mostly *verify* the carried dual state rather than
        // re-optimise from zero. Asserted through the metrics the
        // middlebox exports, as an operator would see it.
        let reg = MetricsRegistry::new();
        // Batch larger than the trace so only the bootstrap exit and
        // the explicit retrain below ever train.
        let mut ac = AdmittanceClassifier::with_registry(
            AdmittanceConfig {
                batch_size: 1_000,
                ..AdmittanceConfig::default()
            },
            &reg,
        );
        feed_bootstrap(&mut ac);
        assert_eq!(ac.phase(), Phase::Online);
        assert_eq!(ac.retrain_count(), 1, "bootstrap exit trains cold once");
        let smo_sum = |reg: &MetricsRegistry| {
            reg.snapshot()
                .histogram("admittance.smo_iterations")
                .expect("smo_iterations recorded")
                .sum
        };
        let cold_iters = smo_sum(&reg);
        assert!(cold_iters > 0.0, "cold fit must report SMO work");

        // The bootstrap exit trained mid-feed, so the store has grown
        // since: this retrain absorbs the growth (and the scaler
        // shift that comes with it) into the carried dual state.
        ac.retrain();
        let absorb_iters = smo_sum(&reg);

        // Steady state: the store is unchanged since the last fit, so
        // the warm retrain merely verifies the carried state instead
        // of re-optimising from zero.
        ac.retrain();
        assert_eq!(ac.retrain_count(), 3);
        let warm_iters = smo_sum(&reg) - absorb_iters;
        assert!(
            warm_iters < cold_iters / 2.0,
            "steady-state warm retrain should need far fewer SMO updates: \
             warm {warm_iters} vs cold {cold_iters}"
        );
        let carried = reg
            .snapshot()
            .histogram("admittance.warm_start_alphas")
            .expect("warm_start_alphas recorded")
            .clone();
        assert_eq!(carried.count, 3, "every retrain records carried alphas");
        assert!(
            carried.sum > 0.0,
            "warm retrains must carry multipliers over"
        );
    }

    #[test]
    fn injected_retrain_failure_arms_backoff_and_keeps_old_model() {
        let reg = MetricsRegistry::new();
        let mut ac = AdmittanceClassifier::with_registry(
            AdmittanceConfig {
                batch_size: 1,
                ..AdmittanceConfig::default()
            },
            &reg,
        );
        feed_bootstrap(&mut ac);
        assert_eq!(ac.phase(), Phase::Online);
        let trained = ac.retrain_count();
        assert!(ac.model_available());

        ac.set_fault_plan(FaultPlan::with_registry(
            &[(FaultKind::RetrainFail, 1.0)],
            11,
            &reg,
        ));
        let m = matrix(1, 1, 0);
        // batch_size 1: each observation is a retrain trigger. With
        // every attempt failing, the backoff schedule (1, 2, 4, …)
        // spaces the attempts out: 8 triggers see attempts at
        // trigger 1, 3, 6 and skips elsewhere.
        for _ in 0..8 {
            ac.observe(m, truth(&m));
        }
        assert_eq!(ac.retrain_count(), trained, "no failed retrain may count");
        assert!(ac.model_available(), "old model must keep serving");
        assert!(ac.consecutive_retrain_failures() >= 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("recovery.retrain_failures"), Some(3));
        assert_eq!(snap.counter("recovery.retrain_retries"), Some(2));
        assert_eq!(snap.counter("faults.injected"), Some(3));

        // Heal the trainer: the next ready trigger retrains and the
        // backoff resets.
        ac.set_fault_plan(FaultPlan::disabled());
        for _ in 0..8 {
            ac.observe(m, truth(&m));
        }
        assert!(ac.retrain_count() > trained);
        assert_eq!(ac.consecutive_retrain_failures(), 0);
    }

    #[test]
    fn injected_nonconvergence_surfaces_in_metrics() {
        let reg = MetricsRegistry::new();
        // Cold fits only: a warm steady-state verify could finish
        // inside even a sabotaged iteration budget.
        let mut ac = AdmittanceClassifier::with_registry(
            AdmittanceConfig {
                warm_start: false,
                ..AdmittanceConfig::default()
            },
            &reg,
        );
        feed_bootstrap(&mut ac);
        let base = reg
            .snapshot()
            .counter("admittance.nonconverged_retrains")
            .unwrap_or(0);
        ac.set_fault_plan(FaultPlan::with_registry(
            &[(FaultKind::RetrainNonConverge, 1.0)],
            5,
            &reg,
        ));
        ac.retrain();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("admittance.nonconverged_retrains"),
            Some(base + 1),
            "sabotaged fit must report nonconvergence"
        );
        // A capped fit still produces a (bad) model; serving continues.
        assert!(ac.model_available());
    }

    #[test]
    fn state_roundtrip_preserves_decisions_and_counters() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
            batch_size: 8,
            ..AdmittanceConfig::default()
        });
        run_trace(&mut ac);
        let reg = MetricsRegistry::new();
        let restored = AdmittanceClassifier::import_state(
            AdmittanceConfig {
                batch_size: 8,
                ..AdmittanceConfig::default()
            },
            ac.export_state(),
            &reg,
        );
        assert_eq!(restored.phase(), ac.phase());
        assert_eq!(restored.num_samples(), ac.num_samples());
        assert_eq!(restored.num_observations(), ac.num_observations());
        assert_eq!(restored.retrain_count(), ac.retrain_count());
        for w in 0..6 {
            for s in 0..6 {
                for c in 0..4 {
                    let m = matrix(w, s, c);
                    assert_eq!(restored.classify(&m), ac.classify(&m));
                    let (a, b) = (ac.decision_value(&m), restored.decision_value(&m));
                    assert_eq!(
                        a.map(f64::to_bits),
                        b.map(f64::to_bits),
                        "margin not bit-exact at {m:?}"
                    );
                }
            }
        }
    }

    /// Feed `n` distinct matrices (spanning both labels) on top of the
    /// bootstrap grid.
    fn feed_distinct(ac: &mut AdmittanceClassifier, n: u32) {
        for i in 0..n {
            let m = matrix(i % 9, (i / 9) % 9, i / 81);
            ac.observe(m, truth(&m));
        }
    }

    #[test]
    fn bounded_store_compacts_deterministically() {
        let build = || {
            let reg = MetricsRegistry::new();
            let mut ac = AdmittanceClassifier::with_registry(
                AdmittanceConfig {
                    batch_size: 25,
                    max_samples: 60,
                    ..AdmittanceConfig::default()
                },
                &reg,
            );
            feed_bootstrap(&mut ac);
            feed_distinct(&mut ac, 300);
            (ac, reg)
        };
        let (a, reg) = build();
        assert!(
            a.num_samples() <= 60,
            "store must stay within the bound, got {}",
            a.num_samples()
        );
        let compactions = reg
            .snapshot()
            .counter("admittance.store_compactions")
            .unwrap_or(0);
        assert!(compactions > 0, "the bound must have forced compactions");
        // Both labels survive every compaction so the monotone guard
        // and the trainer keep working in both directions.
        let has = |ac: &AdmittanceClassifier, l: Label| ac.samples.iter().any(|&(_, y)| y == l);
        assert!(has(&a, Label::Pos) && has(&a, Label::Neg));
        // Same feed ⇒ bit-identical store, independent of environment.
        let (b, _) = build();
        assert_eq!(a.samples, b.samples, "compaction must be deterministic");
        // The index stays consistent with the compacted store.
        for (i, (m, _)) in a.samples.iter().enumerate() {
            assert_eq!(a.index.get(m), Some(&i));
        }
    }

    #[test]
    fn compaction_keeps_classifier_learnable() {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
            batch_size: 25,
            max_samples: 80,
            monotone_guard: true,
            ..AdmittanceConfig::default()
        });
        feed_bootstrap(&mut ac);
        assert_eq!(ac.phase(), Phase::Online);
        feed_distinct(&mut ac, 400);
        // The boundary is still learnt despite the bounded store.
        assert_eq!(ac.classify(&matrix(1, 1, 0)), Label::Pos);
        assert_eq!(ac.classify(&matrix(8, 8, 8)), Label::Neg);
        // Guard verdicts only ever derive from retained samples, all
        // of which carry their observed labels — a dominated-by-Pos
        // query stays Pos, a dominating-a-Neg query stays Neg.
        assert_eq!(ac.dominance_label(&matrix(0, 0, 0)), Some(Label::Pos));
        assert_eq!(ac.dominance_label(&matrix(20, 20, 20)), Some(Label::Neg));
    }

    #[test]
    fn sticky_scaler_enables_incremental_gram_reuse() {
        let reg = MetricsRegistry::new();
        let mut ac = AdmittanceClassifier::with_registry(
            AdmittanceConfig {
                batch_size: 1_000,
                sticky_scaler: true,
                ..AdmittanceConfig::default()
            },
            &reg,
        );
        feed_bootstrap(&mut ac);
        assert_eq!(ac.retrain_count(), 1, "bootstrap exit trains cold once");
        let fresh_rows = |reg: &MetricsRegistry| {
            reg.snapshot()
                .histogram("admittance.gram_incremental_rows")
                .expect("cached retrains record fresh rows")
                .sum
        };
        // The bootstrap exit trained mid-feed; absorb the growth since
        // so the store matches the cache exactly.
        ac.retrain();
        let cold_rows = fresh_rows(&reg);
        assert!(cold_rows > 0.0, "cold fit evaluates the full Gram");
        // Grow the store by a handful of rows: with the scaler held
        // fixed, the cached retrain evaluates only the fresh rows.
        let n0 = ac.num_samples();
        for w in 4..8 {
            let m = matrix(w, 4, 4);
            ac.observe(m, truth(&m));
        }
        let delta = ac.num_samples() - n0;
        assert!(delta > 0);
        ac.retrain();
        let grown = fresh_rows(&reg) - cold_rows;
        assert_eq!(
            grown, delta as f64,
            "sticky-scaler retrain must be incremental: {grown} rows for Δ = {delta}"
        );
        // Unchanged store ⇒ zero fresh rows.
        ac.retrain();
        assert_eq!(
            fresh_rows(&reg) - cold_rows,
            grown,
            "replay evaluates nothing"
        );
    }

    mod compaction_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Bounded-store invariants under arbitrary feeds: the
            /// store never exceeds the cap, identical feeds compact
            /// bit-identically (no thread pool is ever consulted, so
            /// `EXBOX_THREADS` cannot perturb it), every survivor is a
            /// genuine observation carrying its latest label — which
            /// is what keeps monotone-guard verdicts sound — and both
            /// labels survive whenever the history produced both.
            #[test]
            fn compaction_is_deterministic_bounded_and_sound(
                feed in prop::collection::vec((0u32..10, 0u32..10, 0u32..6), 60..220),
                cap in 30usize..80,
            ) {
                let build = || {
                    let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
                        batch_size: 50,
                        max_samples: cap,
                        monotone_guard: true,
                        ..AdmittanceConfig::default()
                    });
                    let mut latest: HashMap<TrafficMatrix, Label> = HashMap::new();
                    for &(w, s, c) in &feed {
                        let m = matrix(w, s, c);
                        let y = truth(&m);
                        latest.insert(m, y);
                        ac.observe(m, y);
                    }
                    (ac, latest)
                };
                let (a, latest) = build();
                let (b, _) = build();
                prop_assert_eq!(&a.samples, &b.samples, "compaction must be deterministic");
                prop_assert!(a.num_samples() <= cap, "store exceeded its bound");
                for (m, y) in &a.samples {
                    prop_assert_eq!(latest.get(m), Some(y), "survivor not a genuine observation");
                }
                for (i, (m, _)) in a.samples.iter().enumerate() {
                    prop_assert_eq!(a.index.get(m), Some(&i), "index out of sync");
                }
                // Labels never flip under the fixed truth, so each
                // compaction's ≥1-per-stratum rule guarantees both
                // labels survive to the end whenever both occurred.
                for want in [Label::Pos, Label::Neg] {
                    if latest.values().any(|&y| y == want) {
                        prop_assert!(
                            a.samples.iter().any(|&(_, y)| y == want),
                            "label {want:?} lost by compaction"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn default_refit_scaler_still_matches_uncached_decisions() {
        // Without sticky_scaler the per-retrain scaler refit rescales
        // every row, so the persistent cache rebuilds — but decisions
        // must stay bit-exact with the history before the cache
        // existed (the committed CSVs pin this globally; this is the
        // local version).
        let mut cached = AdmittanceClassifier::new(AdmittanceConfig::default());
        run_trace(&mut cached);
        let mut direct = AdmittanceClassifier::new(AdmittanceConfig::default());
        run_trace(&mut direct);
        for w in 0..8 {
            for s in 0..4 {
                let m = matrix(w, s, 1);
                assert_eq!(
                    cached.decision_value(&m).map(f64::to_bits),
                    direct.decision_value(&m).map(f64::to_bits)
                );
            }
        }
    }
}
