//! App-based admission control (paper §4.5).
//!
//! "Many modern applications use multiple flows in the same app. For
//! example, YouTube uses separate flows to play the main video and to
//! load video recommendations. … The admission control now can use a
//! heuristic that admits all flows for that app if the dominant flows
//! are admitted." The paper leaves this as future work; this module
//! implements that heuristic:
//!
//! * flows are grouped into *apps* by `(client address, application
//!   class)` — the granularity a gateway can observe without device
//!   cooperation,
//! * the first classified flow of an app is its **dominant** flow: it
//!   goes through real admission control and its decision sticks,
//! * subsequent flows of the same app (analytics, ads, control
//!   channels) **inherit** the dominant decision without consuming an
//!   additional admission slot,
//! * when an app's last flow departs, the group dissolves and the slot
//!   is released.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use exbox_net::{AppClass, FlowKey};

use crate::baselines::{AdmissionController, Decision, FlowRequest};
use crate::matrix::{FlowKind, TrafficMatrix};

/// Identity of an app session at gateway granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppKey {
    /// The client device.
    pub client: Ipv4Addr,
    /// The application class.
    pub class: AppClass,
}

impl AppKey {
    /// Derive the app key for a flow of a known class.
    pub fn of(flow: &FlowKey, class: AppClass) -> Self {
        AppKey {
            client: flow.client_ip,
            class,
        }
    }
}

#[derive(Debug)]
struct AppState {
    decision: Decision,
    kind: FlowKind,
    demand_bps: f64,
    /// Live flows of this app (the dominant flow is the first).
    flows: Vec<FlowKey>,
}

/// Per-app admission layered over any [`AdmissionController`].
#[derive(Debug, Default)]
pub struct AppAdmission {
    apps: HashMap<AppKey, AppState>,
}

impl AppAdmission {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live app groups.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Decide for one classified flow.
    ///
    /// The first flow of an app is dominant: the wrapped controller
    /// decides and (on admit) is notified via
    /// [`AdmissionController::on_admitted`]. Later flows of the same
    /// app inherit the stored decision without touching the
    /// controller — they ride the dominant flow's slot.
    pub fn decide_flow(
        &mut self,
        controller: &mut dyn AdmissionController,
        flow: &FlowKey,
        req: &FlowRequest,
    ) -> Decision {
        let key = AppKey::of(flow, req.kind.class);
        if let Some(app) = self.apps.get_mut(&key) {
            if !app.flows.contains(flow) {
                app.flows.push(*flow);
            }
            return app.decision;
        }
        let decision = controller.decide(req);
        if decision == Decision::Admit {
            controller.on_admitted(req);
        }
        self.apps.insert(
            key,
            AppState {
                decision,
                kind: req.kind,
                demand_bps: req.demand_bps,
                flows: vec![*flow],
            },
        );
        decision
    }

    /// A flow ended. When it was the app's last flow, the app group
    /// dissolves and (if it had been admitted) the wrapped controller
    /// is told the slot is free. Returns `true` when the app ended.
    pub fn flow_departed(
        &mut self,
        controller: &mut dyn AdmissionController,
        flow: &FlowKey,
        class: AppClass,
    ) -> bool {
        let key = AppKey::of(flow, class);
        let Some(app) = self.apps.get_mut(&key) else {
            return false;
        };
        app.flows.retain(|f| f != flow);
        if !app.flows.is_empty() {
            return false;
        }
        let app = self.apps.remove(&key).expect("checked above");
        if app.decision == Decision::Admit {
            controller.on_departure(app.kind, app.demand_bps);
        }
        true
    }

    /// The decision currently standing for an app, if any.
    pub fn decision_for(&self, flow: &FlowKey, class: AppClass) -> Option<Decision> {
        self.apps.get(&AppKey::of(flow, class)).map(|a| a.decision)
    }

    /// Traffic matrix counting *apps* (dominant flows), not raw flows
    /// — the X encoding the paper suggests for app-based control.
    pub fn app_matrix(&self) -> TrafficMatrix {
        let mut m = TrafficMatrix::empty();
        for app in self.apps.values() {
            if app.decision == Decision::Admit {
                m.add(app.kind);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::MaxClient;
    use crate::matrix::SnrLevel;
    use exbox_net::Protocol;

    fn flow(client: u32, flow_id: u32) -> FlowKey {
        FlowKey::synthetic(client, flow_id, 1, Protocol::Tcp)
    }

    fn req(class: AppClass, total_after: u32) -> FlowRequest {
        let kind = FlowKind::new(class, SnrLevel::High);
        let mut m = TrafficMatrix::empty();
        for _ in 0..total_after {
            m.add(kind);
        }
        FlowRequest {
            kind,
            demand_bps: 1_000_000.0,
            resulting_matrix: m,
        }
    }

    #[test]
    fn subsidiary_flows_inherit_admit_without_slots() {
        let mut mc = MaxClient::new(2);
        let mut apps = AppAdmission::new();
        // YouTube app on client 1: video flow + recommendations flow.
        let video = flow(1, 1);
        let recs = flow(1, 2);
        assert_eq!(
            apps.decide_flow(&mut mc, &video, &req(AppClass::Streaming, 1)),
            Decision::Admit
        );
        assert_eq!(
            apps.decide_flow(&mut mc, &recs, &req(AppClass::Streaming, 1)),
            Decision::Admit
        );
        // Only ONE MaxClient slot consumed by the whole app.
        assert_eq!(mc.active(), 1);
        assert_eq!(apps.num_apps(), 1);
    }

    #[test]
    fn subsidiary_flows_inherit_reject() {
        let mut mc = MaxClient::new(1); // cap 1
        let mut apps = AppAdmission::new();
        // Fill the only slot with client 1's app.
        apps.decide_flow(&mut mc, &flow(1, 1), &req(AppClass::Web, 1));
        // Client 2's app is rejected; its second flow inherits that.
        let d1 = apps.decide_flow(&mut mc, &flow(2, 5), &req(AppClass::Web, 2));
        let d2 = apps.decide_flow(&mut mc, &flow(2, 6), &req(AppClass::Web, 2));
        assert_eq!(d1, Decision::Reject);
        assert_eq!(d2, Decision::Reject);
    }

    #[test]
    fn different_classes_on_one_client_are_different_apps() {
        let mut mc = MaxClient::new(10);
        let mut apps = AppAdmission::new();
        apps.decide_flow(&mut mc, &flow(1, 1), &req(AppClass::Web, 1));
        apps.decide_flow(&mut mc, &flow(1, 2), &req(AppClass::Streaming, 2));
        assert_eq!(apps.num_apps(), 2);
        assert_eq!(mc.active(), 2);
    }

    #[test]
    fn app_slot_released_when_last_flow_departs() {
        let mut mc = MaxClient::new(1);
        let mut apps = AppAdmission::new();
        let f1 = flow(1, 1);
        let f2 = flow(1, 2);
        apps.decide_flow(&mut mc, &f1, &req(AppClass::Streaming, 1));
        apps.decide_flow(&mut mc, &f2, &req(AppClass::Streaming, 1));
        assert_eq!(mc.active(), 1);
        // First flow leaves: app persists.
        assert!(!apps.flow_departed(&mut mc, &f1, AppClass::Streaming));
        assert_eq!(mc.active(), 1);
        // Last flow leaves: slot released.
        assert!(apps.flow_departed(&mut mc, &f2, AppClass::Streaming));
        assert_eq!(mc.active(), 0);
        assert_eq!(apps.num_apps(), 0);
    }

    #[test]
    fn rejected_app_departure_releases_nothing() {
        let mut mc = MaxClient::new(1);
        let mut apps = AppAdmission::new();
        apps.decide_flow(&mut mc, &flow(1, 1), &req(AppClass::Web, 1));
        let f = flow(2, 9);
        assert_eq!(
            apps.decide_flow(&mut mc, &f, &req(AppClass::Web, 2)),
            Decision::Reject
        );
        apps.flow_departed(&mut mc, &f, AppClass::Web);
        // The admitted app still holds its slot.
        assert_eq!(mc.active(), 1);
    }

    #[test]
    fn app_matrix_counts_admitted_apps() {
        let mut mc = MaxClient::new(1);
        let mut apps = AppAdmission::new();
        apps.decide_flow(&mut mc, &flow(1, 1), &req(AppClass::Streaming, 1));
        apps.decide_flow(&mut mc, &flow(1, 2), &req(AppClass::Streaming, 1));
        apps.decide_flow(&mut mc, &flow(2, 3), &req(AppClass::Web, 2)); // rejected
        let m = apps.app_matrix();
        assert_eq!(m.total(), 1, "one admitted app, counted once");
    }

    #[test]
    fn decision_lookup() {
        let mut mc = MaxClient::new(5);
        let mut apps = AppAdmission::new();
        let f = flow(1, 1);
        assert_eq!(apps.decision_for(&f, AppClass::Web), None);
        apps.decide_flow(&mut mc, &f, &req(AppClass::Web, 1));
        assert_eq!(apps.decision_for(&f, AppClass::Web), Some(Decision::Admit));
    }
}
