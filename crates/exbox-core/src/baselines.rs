//! Admission controllers: ExBox and the two industry baselines.
//!
//! The paper compares against the approaches real products ship
//! (§5.3):
//!
//! * **RateBased** — "used exclusively by many vendors (Cisco,
//!   Ruckus) and industry software (Microsoft)": admit flow `g` only
//!   while `C − Σ c_f ≥ c_g` for capacity `C` and per-flow declared
//!   rates `c_f`.
//! * **MaxClient** — Aruba/IBM-style: admit up to a fixed number of
//!   flows, reject the rest.
//!
//! All controllers implement [`AdmissionController`], so the
//! evaluation harness and the figure binaries swap them freely.

use exbox_ml::Label;
use exbox_net::AppClass;

use crate::admittance::{AdmittanceClassifier, Phase};
use crate::matrix::{FlowKind, TrafficMatrix};

/// An admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Let the flow through.
    Admit,
    /// Discontinue / deprioritise the flow.
    Reject,
}

impl Decision {
    /// As a classifier label (+1 admit).
    pub fn as_label(self) -> Label {
        match self {
            Decision::Admit => Label::Pos,
            Decision::Reject => Label::Neg,
        }
    }
}

/// One arriving flow as the controller sees it.
#[derive(Debug, Clone, Copy)]
pub struct FlowRequest {
    /// The flow's (class, SNR-level) cell.
    pub kind: FlowKind,
    /// Declared/estimated rate demand in bits/s (used by RateBased).
    pub demand_bps: f64,
    /// The traffic matrix that would result from admitting it.
    pub resulting_matrix: TrafficMatrix,
}

/// Common interface for admission controllers.
pub trait AdmissionController {
    /// Stable controller name for reporting (matches the paper's
    /// figure legends).
    fn name(&self) -> &'static str;

    /// Decide on an arriving flow.
    fn decide(&mut self, req: &FlowRequest) -> Decision;

    /// Notify that the flow was actually admitted (e.g. during
    /// another controller's bootstrap, or because policy overrode the
    /// decision).
    fn on_admitted(&mut self, _req: &FlowRequest) {}

    /// Notify that a flow departed.
    fn on_departure(&mut self, _kind: FlowKind, _demand_bps: f64) {}

    /// Feed an observed outcome: the matrix that was in effect and
    /// whether every flow's QoE remained acceptable. Learning
    /// controllers train on this; baselines ignore it.
    fn on_observation(&mut self, _matrix: TrafficMatrix, _label: Label) {}

    /// `true` while the controller admits everything to gather
    /// training data (ExBox's bootstrap phase).
    fn is_bootstrapping(&self) -> bool {
        false
    }

    /// Re-synchronise internal load state to an externally observed
    /// traffic matrix (trace-based evaluation replays matrices rather
    /// than individual departures). `demand` maps a class to its
    /// declared per-flow rate. Stateless controllers ignore this.
    fn sync_load(&mut self, _matrix: &TrafficMatrix, _demand: &dyn Fn(AppClass) -> f64) {}
}

/// Pure rate-based admission control.
#[derive(Debug, Clone)]
pub struct RateBased {
    capacity_bps: f64,
    committed_bps: f64,
}

impl RateBased {
    /// Capacity `C` — the paper sets it to the maximum UDP throughput
    /// measured on the testbed.
    ///
    /// # Panics
    /// Panics unless the capacity is positive.
    pub fn new(capacity_bps: f64) -> Self {
        assert!(
            capacity_bps > 0.0 && capacity_bps.is_finite(),
            "capacity must be positive"
        );
        RateBased {
            capacity_bps,
            committed_bps: 0.0,
        }
    }

    /// Currently committed bandwidth.
    pub fn committed_bps(&self) -> f64 {
        self.committed_bps
    }
}

impl AdmissionController for RateBased {
    fn name(&self) -> &'static str {
        "RateBased"
    }

    fn decide(&mut self, req: &FlowRequest) -> Decision {
        if self.capacity_bps - self.committed_bps >= req.demand_bps {
            Decision::Admit
        } else {
            Decision::Reject
        }
    }

    fn on_admitted(&mut self, req: &FlowRequest) {
        self.committed_bps += req.demand_bps;
    }

    fn on_departure(&mut self, _kind: FlowKind, demand_bps: f64) {
        self.committed_bps = (self.committed_bps - demand_bps).max(0.0);
    }

    fn sync_load(&mut self, matrix: &TrafficMatrix, demand: &dyn Fn(AppClass) -> f64) {
        self.committed_bps = AppClass::ALL
            .iter()
            .map(|&c| matrix.class_total(c) as f64 * demand(c))
            .sum();
    }
}

/// Maximum-client-count admission control.
#[derive(Debug, Clone)]
pub struct MaxClient {
    max_flows: u32,
    active: u32,
}

impl MaxClient {
    /// Cap on simultaneous flows (the paper uses 10, following Aruba
    /// and IBM defaults).
    ///
    /// # Panics
    /// Panics if `max_flows == 0`.
    pub fn new(max_flows: u32) -> Self {
        assert!(max_flows > 0, "flow cap must be positive");
        MaxClient {
            max_flows,
            active: 0,
        }
    }

    /// Currently counted flows.
    pub fn active(&self) -> u32 {
        self.active
    }
}

impl AdmissionController for MaxClient {
    fn name(&self) -> &'static str {
        "MaxClient"
    }

    fn decide(&mut self, _req: &FlowRequest) -> Decision {
        if self.active < self.max_flows {
            Decision::Admit
        } else {
            Decision::Reject
        }
    }

    fn on_admitted(&mut self, _req: &FlowRequest) {
        self.active += 1;
    }

    fn on_departure(&mut self, _kind: FlowKind, _demand_bps: f64) {
        self.active = self.active.saturating_sub(1);
    }

    fn sync_load(&mut self, matrix: &TrafficMatrix, _demand: &dyn Fn(AppClass) -> f64) {
        self.active = matrix.total();
    }
}

/// ExBox as an [`AdmissionController`]: wraps the Admittance
/// Classifier; admits everything while bootstrapping, then classifies.
#[derive(Debug)]
pub struct ExBoxController {
    classifier: AdmittanceClassifier,
}

impl ExBoxController {
    /// Wrap a configured Admittance Classifier.
    pub fn new(classifier: AdmittanceClassifier) -> Self {
        ExBoxController { classifier }
    }

    /// Access the underlying classifier (e.g. for decision values in
    /// network selection).
    pub fn classifier(&self) -> &AdmittanceClassifier {
        &self.classifier
    }
}

impl AdmissionController for ExBoxController {
    fn name(&self) -> &'static str {
        "ExBox"
    }

    fn decide(&mut self, req: &FlowRequest) -> Decision {
        // Single-pass, cache-served decision (label identical to
        // `classify`, so sweep CSVs are byte-stable cache on or off).
        match self.classifier.decide(&req.resulting_matrix).0 {
            Label::Pos => Decision::Admit,
            Label::Neg => Decision::Reject,
        }
    }

    fn on_observation(&mut self, matrix: TrafficMatrix, label: Label) {
        self.classifier.observe(matrix, label);
    }

    fn is_bootstrapping(&self) -> bool {
        self.classifier.phase() == Phase::Bootstrap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admittance::AdmittanceConfig;
    use crate::matrix::SnrLevel;
    use exbox_net::AppClass;

    fn req(demand_bps: f64, total_after: u32) -> FlowRequest {
        let kind = FlowKind::new(AppClass::Streaming, SnrLevel::High);
        let mut m = TrafficMatrix::empty();
        for _ in 0..total_after {
            m.add(kind);
        }
        FlowRequest {
            kind,
            demand_bps,
            resulting_matrix: m,
        }
    }

    #[test]
    fn rate_based_tracks_commitments() {
        let mut rb = RateBased::new(10_000_000.0);
        let r = req(4_000_000.0, 1);
        assert_eq!(rb.decide(&r), Decision::Admit);
        rb.on_admitted(&r);
        assert_eq!(rb.decide(&r), Decision::Admit);
        rb.on_admitted(&r);
        // 8 of 10 Mbps committed; a third 4 Mbps flow exceeds C.
        assert_eq!(rb.decide(&r), Decision::Reject);
        rb.on_departure(r.kind, 4_000_000.0);
        assert_eq!(rb.decide(&r), Decision::Admit);
    }

    #[test]
    fn rate_based_ignores_qoe_feedback() {
        let mut rb = RateBased::new(10_000_000.0);
        rb.on_observation(TrafficMatrix::empty(), Label::Neg);
        assert_eq!(rb.decide(&req(1.0, 1)), Decision::Admit);
    }

    #[test]
    fn rate_based_never_negative_commitment() {
        let mut rb = RateBased::new(1e6);
        rb.on_departure(FlowKind::new(AppClass::Web, SnrLevel::Low), 5e6);
        assert_eq!(rb.committed_bps(), 0.0);
    }

    #[test]
    fn max_client_caps_count() {
        let mut mc = MaxClient::new(2);
        let r = req(1.0, 1);
        assert_eq!(mc.decide(&r), Decision::Admit);
        mc.on_admitted(&r);
        mc.on_admitted(&r);
        assert_eq!(mc.decide(&r), Decision::Reject);
        mc.on_departure(r.kind, 1.0);
        assert_eq!(mc.decide(&r), Decision::Admit);
        assert_eq!(mc.active(), 1);
    }

    #[test]
    fn exbox_admits_all_during_bootstrap() {
        let mut ex = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig::default()));
        assert!(ex.is_bootstrapping());
        assert_eq!(ex.decide(&req(1e9, 100)), Decision::Admit);
    }

    #[test]
    fn exbox_learns_and_then_rejects() {
        let mut ex = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig::default()));
        // Ground truth: <= 4 flows OK.
        for n in 0..70u32 {
            let total = n % 9;
            let label = if total <= 4 { Label::Pos } else { Label::Neg };
            ex.on_observation(req(1.0, total).resulting_matrix, label);
        }
        assert!(!ex.is_bootstrapping(), "should be online");
        assert_eq!(ex.decide(&req(1.0, 2)), Decision::Admit);
        assert_eq!(ex.decide(&req(1.0, 8)), Decision::Reject);
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(RateBased::new(1.0).name(), "RateBased");
        assert_eq!(MaxClient::new(1).name(), "MaxClient");
        let ex = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig::default()));
        assert_eq!(ex.name(), "ExBox");
    }
}
