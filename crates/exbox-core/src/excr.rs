//! Experiential Capacity Region exploration.
//!
//! The Admittance Classifier stores the ExCR implicitly — a decision
//! function over traffic matrices. Operators, however, think in
//! Fig. 2c pictures: "how many streaming flows can I still take with
//! 10 conferencing flows up?" This module extracts that view:
//!
//! * [`region_slice`] — evaluate the learnt region over a 2-D grid of
//!   two flow kinds (the other counts fixed), yielding a heatmap like
//!   the paper's Fig. 2.
//! * [`max_admissible`] — the largest admissible count of one kind on
//!   top of a fixed background matrix (the per-axis capacity the
//!   paper quotes: "maximum count of admissible conferencing flows is
//!   ≈40, but … streaming … only ≈25").
//! * [`boundary_points`] — the frontier cells of a slice, i.e. the
//!   last admissible count per row — a compact description of the
//!   learnt surface for monitoring/diffing between retrains.

use exbox_ml::Label;

use crate::admittance::AdmittanceClassifier;
use crate::matrix::{FlowKind, TrafficMatrix};

/// One evaluated grid cell of a region slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionCell {
    /// Count of the first (x-axis) kind.
    pub x: u32,
    /// Count of the second (y-axis) kind.
    pub y: u32,
    /// Classifier verdict for the resulting matrix.
    pub admissible: bool,
    /// Decision value (depth inside the region; `None` while the
    /// classifier has no trained model).
    pub score: Option<f64>,
}

/// Evaluate the learnt region over the grid
/// `background + x·kind_x + y·kind_y` for `x ∈ 0..=max_x`,
/// `y ∈ 0..=max_y`. Row-major (y outer) order.
///
/// Rows are evaluated concurrently on the
/// [`exbox_par::ThreadPool::global`] pool (kernel-expansion SVM
/// scoring dominates for RBF/poly models); results are spliced back
/// in row order, so the returned grid is identical for every thread
/// count.
pub fn region_slice(
    classifier: &AdmittanceClassifier,
    background: &TrafficMatrix,
    kind_x: FlowKind,
    max_x: u32,
    kind_y: FlowKind,
    max_y: u32,
) -> Vec<RegionCell> {
    let pool = exbox_par::ThreadPool::global();
    let rows: Vec<Vec<RegionCell>> = pool.parallel_map((max_y + 1) as usize, |yi| {
        let y = yi as u32;
        let mut row_base = *background;
        for _ in 0..y {
            row_base.add(kind_y);
        }
        (0..=max_x)
            .map(|x| {
                let mut m = row_base;
                for _ in 0..x {
                    m.add(kind_x);
                }
                RegionCell {
                    x,
                    y,
                    admissible: classifier.classify(&m) == Label::Pos,
                    score: classifier.decision_value(&m),
                }
            })
            .collect()
    });
    rows.into_iter().flatten().collect()
}

/// The largest `n ≤ limit` such that `background + n·kind` is
/// admissible — 0 when even one flow of `kind` is rejected.
pub fn max_admissible(
    classifier: &AdmittanceClassifier,
    background: &TrafficMatrix,
    kind: FlowKind,
    limit: u32,
) -> u32 {
    let mut m = *background;
    for n in 1..=limit {
        m.add(kind);
        if classifier.classify(&m) != Label::Pos {
            return n - 1;
        }
    }
    limit
}

/// For each `y` row of a slice, the largest admissible `x` (or `None`
/// when the row starts inadmissible) — the learnt frontier.
pub fn boundary_points(cells: &[RegionCell], max_x: u32) -> Vec<Option<u32>> {
    let width = (max_x + 1) as usize;
    cells
        .chunks(width)
        .map(|row| {
            let mut last = None;
            for c in row {
                if c.admissible {
                    last = Some(c.x);
                } else {
                    break;
                }
            }
            last
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admittance::AdmittanceConfig;
    use crate::matrix::SnrLevel;
    use exbox_net::AppClass;

    fn web() -> FlowKind {
        FlowKind::new(AppClass::Web, SnrLevel::High)
    }
    fn stream() -> FlowKind {
        FlowKind::new(AppClass::Streaming, SnrLevel::High)
    }

    /// Train on: admissible iff web + 2*stream <= 8.
    fn trained() -> AdmittanceClassifier {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        for w in 0..10u32 {
            for s in 0..6u32 {
                let mut m = TrafficMatrix::empty();
                for _ in 0..w {
                    m.add(web());
                }
                for _ in 0..s {
                    m.add(stream());
                }
                let y = if w + 2 * s <= 8 {
                    Label::Pos
                } else {
                    Label::Neg
                };
                ac.observe(m, y);
            }
        }
        assert_eq!(ac.phase(), crate::admittance::Phase::Online);
        ac
    }

    #[test]
    fn slice_covers_full_grid() {
        let ac = trained();
        let cells = region_slice(&ac, &TrafficMatrix::empty(), web(), 7, stream(), 5);
        assert_eq!(cells.len(), 8 * 6);
        // Origin is always admissible, the far corner never.
        assert!(cells[0].admissible);
        assert!(!cells.last().expect("non-empty").admissible);
    }

    #[test]
    fn boundary_shrinks_along_expensive_axis() {
        let ac = trained();
        let cells = region_slice(&ac, &TrafficMatrix::empty(), web(), 7, stream(), 5);
        let frontier = boundary_points(&cells, 7);
        assert_eq!(frontier.len(), 6);
        // With more streams (cost 2), fewer web flows (cost 1) fit:
        // the frontier is non-increasing in y.
        let vals: Vec<i64> = frontier
            .iter()
            .map(|f| f.map_or(-1, |v| v as i64))
            .collect();
        for w in vals.windows(2) {
            assert!(w[1] <= w[0], "frontier not monotone: {vals:?}");
        }
        assert!(vals[0] >= 6, "row y=0 should admit ~8 web flows");
    }

    #[test]
    fn max_admissible_matches_trained_rule() {
        let ac = trained();
        let cap_web = max_admissible(&ac, &TrafficMatrix::empty(), web(), 20);
        let cap_stream = max_admissible(&ac, &TrafficMatrix::empty(), stream(), 20);
        // Rule: web <= 8 alone, stream <= 4 alone.
        assert!((7..=9).contains(&cap_web), "web cap {cap_web}");
        assert!((3..=5).contains(&cap_stream), "stream cap {cap_stream}");
        // On a background of 4 web flows, stream capacity shrinks.
        let mut bg = TrafficMatrix::empty();
        for _ in 0..4 {
            bg.add(web());
        }
        let cap_with_bg = max_admissible(&ac, &bg, stream(), 20);
        assert!(cap_with_bg < cap_stream, "{cap_with_bg} !< {cap_stream}");
    }

    #[test]
    fn bootstrapping_classifier_reports_everything_admissible() {
        let ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        let cap = max_admissible(&ac, &TrafficMatrix::empty(), web(), 10);
        assert_eq!(cap, 10, "bootstrap admits everything");
        let cells = region_slice(&ac, &TrafficMatrix::empty(), web(), 3, stream(), 3);
        assert!(cells.iter().all(|c| c.admissible && c.score.is_none()));
    }
}
