//! Slab-backed flow state for the million-flow gateway.
//!
//! The paper sizes ExBox for one cell (≈34 LiveLab users); the
//! roadmap's north star is 10⁵–10⁶ flows per gateway. At that scale
//! the per-flow layer — not the model evaluation — dominates, and the
//! stock `std::collections::HashMap<FlowKey, _>` has three problems:
//!
//! 1. SipHash is an order of magnitude slower than needed for a
//!    fixed-layout 13-byte key that attackers cannot choose (flow
//!    keys come from the operator's own packet path);
//! 2. iteration order is unspecified, so every poll had to collect
//!    and **sort** all keys (O(N log N) plus a fresh allocation) to
//!    stay deterministic;
//! 3. values move on rehash, so nothing outside the map can hold a
//!    stable reference to a flow (needed by the timer wheel).
//!
//! [`FlowMap`] replaces it: a dense slab arena (`Vec` + free list)
//! holding the flow states, addressed by stable [`FlowSlot`] handles,
//! indexed by an open-addressed table over [`hash_flow_key`] (an
//! FxHash-style multiply-xor hash — zero dependencies), and threaded
//! by an intrusive doubly-linked list so iteration is **insertion
//! order**: deterministic, allocation-free, and independent of
//! hash-table geometry. Determinism contract (DESIGN.md §6): the
//! iteration order seen by `run_poll` is part of the contract, and
//! insertion order is a pure function of the operation sequence.
//!
//! [`RejectedRing`] is the bounded rejected-flow set rebuilt on the
//! same hasher: a generation-stamped FIFO ring (stale entries are
//! skipped by stamp mismatch, never searched for) with occupancy and
//! capacity-pressure reporting.
//!
//! [`TimerWheel`] is a hierarchical timer wheel over poll ticks:
//! flows carry a next-evaluation deadline, so an incremental poll
//! visits only the flows due this window — O(due), not O(all) — which
//! is what turns the 100k-flow steady-state poll from milliseconds
//! into microseconds (`PollSteady/{scan,wheel}` in
//! `benches/flow_scale.rs`).

use std::collections::VecDeque;

use exbox_net::FlowKey;

/// Absent link / bucket marker for the intrusive lists and the index.
const NIL: u32 = u32::MAX;

/// FxHash-style hash of a [`FlowKey`]: the 13 significant bytes are
/// packed into two words and folded with the rotate-xor-multiply step
/// rustc's own hash tables use, plus a final avalanche so the low
/// bits (which pick the bucket) depend on every field. Not keyed —
/// flow keys on a gateway are operator-side data, not attacker-chosen
/// strings — and an order of magnitude cheaper than SipHash on this
/// fixed layout.
#[inline]
pub fn hash_flow_key(key: &FlowKey) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let a = (u32::from(key.client_ip) as u64) << 32 | u32::from(key.server_ip) as u64;
    let b = (key.client_port as u64) << 24
        | (key.server_port as u64) << 8
        | key.protocol.ip_proto() as u64;
    let mut h = 0u64;
    h = (h.rotate_left(5) ^ a).wrapping_mul(K);
    h = (h.rotate_left(5) ^ b).wrapping_mul(K);
    // Final avalanche (splitmix64 tail): FxHash concentrates entropy
    // in the high bits, the open-addressed index masks the low ones.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Stable handle to an occupied [`FlowMap`] slot: an arena index plus
/// a generation stamp. The index is reused after removal but the
/// generation is bumped, so a stale handle (e.g. a timer-wheel entry
/// for a departed flow) dereferences to `None` instead of aliasing
/// the slot's new tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowSlot {
    index: u32,
    gen: u32,
}

impl FlowSlot {
    /// The arena index (dense, `< capacity`); mainly for diagnostics.
    pub fn index(self) -> u32 {
        self.index
    }
}

/// Open-addressed `FlowKey → V` table: linear probing, backward-shift
/// deletion (no tombstones), power-of-two capacity, ≤ 7/8 load.
/// Shared by the [`FlowMap`] index (`V = u32` slot index) and the
/// [`RejectedRing`] index (`V = u64` stamp). Never iterated, so its
/// bucket order is invisible to the determinism contract.
#[derive(Debug, Clone)]
struct FxTable<V: Copy> {
    buckets: Vec<Option<(FlowKey, V)>>,
    len: usize,
}

impl<V: Copy> FxTable<V> {
    fn new() -> Self {
        FxTable {
            buckets: vec![None; 16],
            len: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }

    #[inline]
    fn get(&self, key: &FlowKey) -> Option<V> {
        let mask = self.mask();
        let mut i = (hash_flow_key(key) as usize) & mask;
        loop {
            match &self.buckets[i] {
                None => return None,
                Some((k, v)) if k == key => return Some(*v),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Insert or replace; returns the previous value if the key was
    /// already present.
    fn insert(&mut self, key: FlowKey, value: V) -> Option<V> {
        if (self.len + 1) * 8 >= self.buckets.len() * 7 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = (hash_flow_key(&key) as usize) & mask;
        loop {
            match &mut self.buckets[i] {
                slot @ None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => return Some(std::mem::replace(v, value)),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    fn remove(&mut self, key: &FlowKey) -> Option<V> {
        let mask = self.mask();
        let mut i = (hash_flow_key(key) as usize) & mask;
        loop {
            match &self.buckets[i] {
                None => return None,
                Some((k, _)) if k == key => break,
                Some(_) => i = (i + 1) & mask,
            }
        }
        let (_, value) = self.buckets[i].take().expect("probe stopped on Some");
        self.len -= 1;
        // Backward-shift deletion: pull displaced entries over the
        // hole so probe chains stay contiguous without tombstones.
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let Some((k, _)) = &self.buckets[j] else {
                break;
            };
            let home = (hash_flow_key(k) as usize) & mask;
            // Move the entry back iff its home does not lie in the
            // cyclic interval (hole, j] — i.e. the probe from `home`
            // passes through `hole`.
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.buckets[hole] = self.buckets[j].take();
                hole = j;
            }
        }
        Some(value)
    }

    fn grow(&mut self) {
        let doubled = self.buckets.len() * 2;
        let old = std::mem::replace(&mut self.buckets, vec![None; doubled]);
        let mask = self.mask();
        for entry in old.into_iter().flatten() {
            let mut i = (hash_flow_key(&entry.0) as usize) & mask;
            while self.buckets[i].is_some() {
                i = (i + 1) & mask;
            }
            self.buckets[i] = Some(entry);
        }
    }
}

#[derive(Debug)]
struct Slot<V> {
    /// Generation stamp; bumped on removal so stale [`FlowSlot`]s
    /// miss.
    gen: u32,
    /// Previous occupied slot in insertion order (`NIL` at head).
    prev: u32,
    /// Next occupied slot in insertion order; doubles as the
    /// free-list link while vacant.
    next: u32,
    /// `Some` while occupied.
    data: Option<(FlowKey, V)>,
}

/// Slab-backed flow store: dense arena + free list for the states, an
/// `FxTable` for key lookup, and an intrusive doubly-linked list
/// for deterministic insertion-order iteration. Drop-in replacement
/// for `HashMap<FlowKey, V>` on the packet path (property-tested
/// against exactly that reference model in `tests/flowtable_props.rs`).
///
/// Insertion-order rules (the part the determinism contract cares
/// about): a fresh key appends at the tail; overwriting an existing
/// key keeps its position; removing and re-inserting a key moves it
/// to the tail. Iteration never allocates and never observes
/// hash-table geometry.
#[derive(Debug)]
pub struct FlowMap<V> {
    slots: Vec<Slot<V>>,
    index: FxTable<u32>,
    free_head: u32,
    head: u32,
    tail: u32,
    len: usize,
}

impl<V> Default for FlowMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FlowMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        FlowMap {
            slots: Vec::new(),
            index: FxTable::new(),
            free_head: NIL,
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Live flows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no flow is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `key` is stored.
    pub fn contains_key(&self, key: &FlowKey) -> bool {
        self.index.get(key).is_some()
    }

    /// Shared access by key.
    pub fn get(&self, key: &FlowKey) -> Option<&V> {
        let idx = self.index.get(key)?;
        self.slots[idx as usize].data.as_ref().map(|(_, v)| v)
    }

    /// Mutable access by key.
    pub fn get_mut(&mut self, key: &FlowKey) -> Option<&mut V> {
        let idx = self.index.get(key)?;
        self.slots[idx as usize].data.as_mut().map(|(_, v)| v)
    }

    /// The stable handle for `key`, if stored.
    pub fn slot_of(&self, key: &FlowKey) -> Option<FlowSlot> {
        let idx = self.index.get(key)?;
        Some(FlowSlot {
            index: idx,
            gen: self.slots[idx as usize].gen,
        })
    }

    /// Dereference a handle; `None` if the flow departed (generation
    /// mismatch) — stale handles are safe, never aliased.
    pub fn get_slot(&self, slot: FlowSlot) -> Option<(&FlowKey, &V)> {
        let s = self.slots.get(slot.index as usize)?;
        if s.gen != slot.gen {
            return None;
        }
        s.data.as_ref().map(|(k, v)| (k, v))
    }

    /// Mutable [`FlowMap::get_slot`].
    pub fn get_slot_mut(&mut self, slot: FlowSlot) -> Option<(&FlowKey, &mut V)> {
        let s = self.slots.get_mut(slot.index as usize)?;
        if s.gen != slot.gen {
            return None;
        }
        s.data.as_mut().map(|(k, v)| (&*k, v))
    }

    /// Insert or overwrite, returning the stable handle. A fresh key
    /// appends at the iteration tail; an existing key keeps both its
    /// position and its handle.
    pub fn insert(&mut self, key: FlowKey, value: V) -> FlowSlot {
        if let Some(idx) = self.index.get(&key) {
            let s = &mut self.slots[idx as usize];
            s.data = Some((key, value));
            return FlowSlot {
                index: idx,
                gen: s.gen,
            };
        }
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.slots[idx as usize].next;
            idx
        } else {
            assert!(self.slots.len() < NIL as usize, "FlowMap slot overflow");
            self.slots.push(Slot {
                gen: 0,
                prev: NIL,
                next: NIL,
                data: None,
            });
            (self.slots.len() - 1) as u32
        };
        let gen = self.slots[idx as usize].gen;
        self.slots[idx as usize].data = Some((key, value));
        self.slots[idx as usize].prev = self.tail;
        self.slots[idx as usize].next = NIL;
        if self.tail != NIL {
            self.slots[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.index.insert(key, idx);
        self.len += 1;
        FlowSlot { index: idx, gen }
    }

    /// Remove by key, returning the value. Bumps the slot generation,
    /// invalidating every outstanding handle to it.
    pub fn remove(&mut self, key: &FlowKey) -> Option<V> {
        let idx = self.index.remove(key)?;
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let s = &mut self.slots[idx as usize];
        let (_, value) = s.data.take().expect("indexed slot must be occupied");
        s.gen = s.gen.wrapping_add(1);
        s.prev = NIL;
        s.next = self.free_head;
        self.free_head = idx;
        self.len -= 1;
        Some(value)
    }

    /// Insertion-order iteration (allocation-free).
    pub fn iter(&self) -> FlowIter<'_, V> {
        FlowIter {
            map: self,
            cursor: self.head,
        }
    }

    /// First flow in insertion order (the oldest admission).
    pub fn front(&self) -> Option<(&FlowKey, &V)> {
        if self.head == NIL {
            return None;
        }
        self.slots[self.head as usize]
            .data
            .as_ref()
            .map(|(k, v)| (k, v))
    }

    /// Mutable insertion-order pass over all values.
    pub fn for_each_value_mut(&mut self, mut f: impl FnMut(&mut V)) {
        let mut cursor = self.head;
        while cursor != NIL {
            let s = &mut self.slots[cursor as usize];
            let (_, v) = s.data.as_mut().expect("linked slot must be occupied");
            f(v);
            cursor = s.next;
        }
    }

    /// Append every live handle, in insertion order, to `out` —
    /// the poll path's scratch-buffer fill (no allocation once the
    /// buffer has grown to the high-water mark).
    pub fn collect_slots(&self, out: &mut Vec<FlowSlot>) {
        let mut cursor = self.head;
        while cursor != NIL {
            let s = &self.slots[cursor as usize];
            out.push(FlowSlot {
                index: cursor,
                gen: s.gen,
            });
            cursor = s.next;
        }
    }
}

/// Insertion-order iterator over a [`FlowMap`].
#[derive(Debug)]
pub struct FlowIter<'a, V> {
    map: &'a FlowMap<V>,
    cursor: u32,
}

impl<'a, V> Iterator for FlowIter<'a, V> {
    type Item = (&'a FlowKey, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let s = &self.map.slots[self.cursor as usize];
        self.cursor = s.next;
        s.data.as_ref().map(|(k, v)| (k, v))
    }
}

/// How one [`RejectedRing::insert`] went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingInsert {
    /// Old records evicted to stay within capacity (0 or 1).
    pub evicted: u64,
    /// True exactly once, when a full accounting window closed with
    /// the eviction rate caught up to the insertion rate — the set is
    /// thrashing at capacity and the operator should size it up.
    pub pressure: bool,
}

/// Accounting window (inserts) for the eviction-pressure warning.
const PRESSURE_WINDOW: u64 = 256;

/// Bounded rejected-flow set as a generation-stamped FIFO ring over
/// [`hash_flow_key`]. Each insert gets a fresh stamp recorded both in
/// the ring and the index; [`RejectedRing::remove`] only deletes from
/// the index, leaving a stale ring entry that eviction recognises by
/// stamp mismatch and skips for free — no linear search, ever. The
/// ring is swept wholesale once it outgrows twice the live set, so
/// memory stays O(capacity).
#[derive(Debug)]
pub struct RejectedRing {
    cap: usize,
    ring: VecDeque<(FlowKey, u64)>,
    index: FxTable<u64>,
    next_stamp: u64,
    inserts: u64,
    evictions: u64,
    window_started_at: (u64, u64),
    pressure_reported: bool,
}

impl RejectedRing {
    /// A ring remembering at most `cap` rejected flows (minimum 1).
    pub fn new(cap: usize) -> Self {
        RejectedRing {
            cap: cap.max(1),
            ring: VecDeque::new(),
            index: FxTable::new(),
            next_stamp: 0,
            inserts: 0,
            evictions: 0,
            window_started_at: (0, 0),
            pressure_reported: false,
        }
    }

    /// True when `key` is currently remembered as rejected.
    pub fn contains(&self, key: &FlowKey) -> bool {
        self.index.get(key).is_some()
    }

    /// Forget a rejection record (the flow departed). O(1): the ring
    /// entry goes stale instead of being searched out.
    pub fn remove(&mut self, key: &FlowKey) {
        self.index.remove(key);
    }

    /// Live records (the `middlebox.rejected_occupancy` gauge).
    pub fn len(&self) -> usize {
        self.index.len
    }

    /// True when nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.index.len == 0
    }

    /// Lifetime inserts of fresh records.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Lifetime capacity evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Insert a rejection record; reports evictions and (once) the
    /// capacity-pressure condition.
    pub fn insert(&mut self, key: FlowKey) -> RingInsert {
        if self.contains(&key) {
            return RingInsert {
                evicted: 0,
                pressure: false,
            };
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.index.insert(key, stamp);
        self.ring.push_back((key, stamp));
        self.inserts += 1;
        let mut evicted = 0;
        while self.index.len > self.cap {
            match self.ring.pop_front() {
                Some((old, old_stamp)) => {
                    // Stale entries (removed or re-inserted since)
                    // don't count: the live record lives further back.
                    if self.index.get(&old) == Some(old_stamp) {
                        self.index.remove(&old);
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        self.evictions += evicted;
        if self.ring.len() > 2 * self.index.len.max(self.cap) {
            let index = &self.index;
            self.ring.retain(|(k, s)| index.get(k) == Some(*s));
        }
        RingInsert {
            evicted,
            pressure: self.check_pressure(),
        }
    }

    /// Close accounting windows of [`PRESSURE_WINDOW`] inserts; fire
    /// once when a window's evictions caught up with its inserts.
    fn check_pressure(&mut self) -> bool {
        let (win_ins, win_ev) = self.window_started_at;
        if self.inserts - win_ins < PRESSURE_WINDOW {
            return false;
        }
        let evicted_in_window = self.evictions - win_ev;
        self.window_started_at = (self.inserts, self.evictions);
        if !self.pressure_reported && evicted_in_window >= PRESSURE_WINDOW {
            self.pressure_reported = true;
            return true;
        }
        false
    }
}

/// Buckets per wheel level (64 ⇒ 6 bits of tick per level).
const WHEEL_BITS: u32 = 6;
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
/// Levels: 64⁴ ≈ 16.7 M ticks of horizon; with one tick per executed
/// poll (2 s default) that is a year of deadlines. Later deadlines
/// park in the top level and re-cascade.
const WHEEL_LEVELS: usize = 4;

/// Hierarchical timer wheel over poll ticks. One tick = one executed
/// poll; level `l` buckets cover `64^l` ticks each, and entries
/// cascade down as time advances, so [`TimerWheel::advance`] is O(new
/// due entries) amortised. Entries are [`FlowSlot`]s — a departed
/// flow's entry goes stale (generation mismatch) and the poll skips
/// it, so nothing ever cancels a timer.
#[derive(Debug)]
pub struct TimerWheel {
    levels: Vec<Vec<Vec<(FlowSlot, u64)>>>,
    now: u64,
    pending: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// A wheel at tick 0 with nothing scheduled.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..WHEEL_LEVELS)
                .map(|_| (0..WHEEL_SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            now: 0,
            pending: 0,
        }
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Scheduled entries (including stale ones not yet drained).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedule `flow` to come due at `deadline` (clamped to the next
    /// tick if already past). Duplicate scheduling is the *caller's*
    /// job to avoid — the flow-state layer keeps a next-deadline field
    /// per flow for exactly that.
    pub fn schedule(&mut self, flow: FlowSlot, deadline: u64) {
        let deadline = deadline.max(self.now + 1);
        let (level, slot) = self.place(deadline);
        self.levels[level][slot].push((flow, deadline));
        self.pending += 1;
    }

    /// Bucket coordinates for a deadline, relative to `self.now`.
    fn place(&self, deadline: u64) -> (usize, usize) {
        let delta = deadline - self.now;
        for level in 0..WHEEL_LEVELS {
            let span = 1u64 << (WHEEL_BITS * (level as u32 + 1));
            if delta < span || level == WHEEL_LEVELS - 1 {
                let slot = (deadline >> (WHEEL_BITS * level as u32)) as usize & (WHEEL_SLOTS - 1);
                return (level, slot);
            }
        }
        unreachable!("last level accepts any delta");
    }

    /// Advance to tick `to`, appending every due entry (deadline ≤
    /// `to`) to `due` in deadline order (FIFO within a tick).
    pub fn advance(&mut self, to: u64, due: &mut Vec<FlowSlot>) {
        while self.now < to {
            if self.pending == 0 {
                // Nothing scheduled anywhere: jump, don't spin.
                self.now = to;
                return;
            }
            self.now += 1;
            let t = self.now;
            // Level-0 bucket: everything here is due exactly now.
            let slot0 = t as usize & (WHEEL_SLOTS - 1);
            for (flow, _) in self.levels[0][slot0].drain(..) {
                self.pending -= 1;
                due.push(flow);
            }
            // Cascade higher levels whenever their cycle boundary is
            // crossed: re-place still-future entries, emit due ones.
            for level in 1..WHEEL_LEVELS {
                let shift = WHEEL_BITS * level as u32;
                if t & ((1u64 << shift) - 1) != 0 {
                    break;
                }
                let slot = (t >> shift) as usize & (WHEEL_SLOTS - 1);
                let entries = std::mem::take(&mut self.levels[level][slot]);
                for (flow, deadline) in entries {
                    self.pending -= 1;
                    if deadline <= t {
                        due.push(flow);
                    } else {
                        let (l, s) = self.place(deadline);
                        self.levels[l][s].push((flow, deadline));
                        self.pending += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exbox_net::Protocol;

    fn key(n: u32) -> FlowKey {
        FlowKey::synthetic(n, n, 1, Protocol::Tcp)
    }

    #[test]
    fn hash_differs_across_fields() {
        let base = key(1);
        let mut other = base;
        other.server_port = base.server_port.wrapping_add(1);
        assert_ne!(hash_flow_key(&base), hash_flow_key(&other));
        let mut udp = base;
        udp.protocol = Protocol::Udp;
        assert_ne!(hash_flow_key(&base), hash_flow_key(&udp));
    }

    #[test]
    fn flowmap_insert_get_remove_roundtrip() {
        let mut m: FlowMap<u32> = FlowMap::new();
        assert!(m.is_empty());
        for n in 0..1000 {
            m.insert(key(n), n);
        }
        assert_eq!(m.len(), 1000);
        for n in 0..1000 {
            assert_eq!(m.get(&key(n)), Some(&n));
        }
        for n in (0..1000).step_by(2) {
            assert_eq!(m.remove(&key(n)), Some(n));
        }
        assert_eq!(m.len(), 500);
        for n in 0..1000 {
            assert_eq!(m.contains_key(&key(n)), n % 2 == 1);
        }
    }

    #[test]
    fn flowmap_iterates_in_insertion_order_across_churn() {
        let mut m: FlowMap<u32> = FlowMap::new();
        for n in 0..10 {
            m.insert(key(n), n);
        }
        m.remove(&key(3));
        m.remove(&key(0));
        m.insert(key(42), 42); // reuses a freed slot, still appends
        m.insert(key(3), 33); // re-insert moves to the tail
        let order: Vec<u32> = m.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec![1, 2, 4, 5, 6, 7, 8, 9, 42, 33]);
        assert_eq!(m.front().map(|(_, v)| *v), Some(1));
    }

    #[test]
    fn flowmap_overwrite_keeps_position_and_slot() {
        let mut m: FlowMap<u32> = FlowMap::new();
        let s1 = m.insert(key(1), 10);
        m.insert(key(2), 20);
        let s1b = m.insert(key(1), 11);
        assert_eq!(s1, s1b, "overwrite must keep the handle");
        let order: Vec<u32> = m.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec![11, 20]);
    }

    #[test]
    fn stale_slots_miss_after_reuse() {
        let mut m: FlowMap<u32> = FlowMap::new();
        let s = m.insert(key(1), 10);
        assert!(m.get_slot(s).is_some());
        m.remove(&key(1));
        assert_eq!(m.get_slot(s), None, "stale handle must miss");
        let s2 = m.insert(key(2), 20); // reuses index 0, new gen
        assert_eq!(s2.index(), s.index());
        assert_eq!(m.get_slot(s), None, "old gen must still miss");
        assert_eq!(m.get_slot(s2).map(|(_, v)| *v), Some(20));
    }

    #[test]
    fn collect_slots_matches_iter() {
        let mut m: FlowMap<u32> = FlowMap::new();
        for n in 0..100 {
            m.insert(key(n), n);
        }
        for n in (0..100).step_by(3) {
            m.remove(&key(n));
        }
        let mut slots = Vec::new();
        m.collect_slots(&mut slots);
        let via_slots: Vec<u32> = slots
            .iter()
            .map(|&s| *m.get_slot(s).expect("fresh handles are live").1)
            .collect();
        let via_iter: Vec<u32> = m.iter().map(|(_, v)| *v).collect();
        assert_eq!(via_slots, via_iter);
    }

    #[test]
    fn rejected_ring_bounded_fifo_with_stale_skip() {
        let mut r = RejectedRing::new(2);
        assert_eq!(r.insert(key(1)).evicted, 0);
        assert_eq!(r.insert(key(2)).evicted, 0);
        // Departure: index drops the record, ring entry goes stale.
        r.remove(&key(1));
        assert!(!r.contains(&key(1)));
        assert_eq!(r.len(), 1);
        // Two more inserts: capacity 2, the stale entry for key 1 is
        // skipped at eviction time, key 2 (oldest live) is evicted.
        assert_eq!(r.insert(key(3)).evicted, 0);
        let ins = r.insert(key(4));
        assert_eq!(ins.evicted, 1);
        assert!(!r.contains(&key(2)));
        assert!(r.contains(&key(3)) && r.contains(&key(4)));
        assert_eq!(r.evictions(), 1);
    }

    #[test]
    fn rejected_ring_reinsert_after_eviction() {
        let mut r = RejectedRing::new(1);
        r.insert(key(1));
        r.insert(key(2)); // evicts 1
        assert!(!r.contains(&key(1)));
        r.insert(key(1)); // evicts 2
        assert!(r.contains(&key(1)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn rejected_ring_reports_pressure_once() {
        let mut r = RejectedRing::new(4);
        let mut fired = 0;
        // Thrash far past the window: every insert beyond capacity
        // evicts, so the first full window must fire, later ones not.
        for n in 0..3 * PRESSURE_WINDOW as u32 + 8 {
            if r.insert(key(n)).pressure {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "pressure must warn exactly once");
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn wheel_due_at_exact_ticks() {
        let mut w = TimerWheel::new();
        let mut m: FlowMap<u32> = FlowMap::new();
        let s1 = m.insert(key(1), 1);
        let s2 = m.insert(key(2), 2);
        let s3 = m.insert(key(3), 3);
        w.schedule(s1, 1);
        w.schedule(s2, 3);
        w.schedule(s3, 200); // level-1 territory
        let mut due = Vec::new();
        w.advance(1, &mut due);
        assert_eq!(due, vec![s1]);
        due.clear();
        w.advance(2, &mut due);
        assert!(due.is_empty());
        w.advance(3, &mut due);
        assert_eq!(due, vec![s2]);
        due.clear();
        w.advance(199, &mut due);
        assert!(due.is_empty());
        w.advance(200, &mut due);
        assert_eq!(due, vec![s3]);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn wheel_clamps_past_deadlines_forward() {
        let mut w = TimerWheel::new();
        let mut m: FlowMap<u32> = FlowMap::new();
        let s = m.insert(key(1), 1);
        let mut due = Vec::new();
        w.advance(10, &mut due);
        w.schedule(s, 4); // already past: clamps to tick 11
        w.advance(11, &mut due);
        assert_eq!(due, vec![s]);
    }

    #[test]
    fn wheel_far_deadlines_cascade() {
        let mut w = TimerWheel::new();
        let mut m: FlowMap<u32> = FlowMap::new();
        let mut due = Vec::new();
        // One deadline per level span, plus one past the horizon.
        let deadlines = [63u64, 64, 4_095, 4_096, 262_143, 20_000_000];
        let slots: Vec<FlowSlot> = deadlines
            .iter()
            .enumerate()
            .map(|(i, _)| m.insert(key(i as u32), i as u32))
            .collect();
        for (s, d) in slots.iter().zip(deadlines) {
            w.schedule(*s, d);
        }
        let mut fired: Vec<(u64, FlowSlot)> = Vec::new();
        let mut t = 0;
        while w.pending() > 0 {
            t += 1_000;
            due.clear();
            w.advance(t, &mut due);
            for s in &due {
                fired.push((t, *s));
            }
        }
        assert_eq!(fired.len(), deadlines.len());
        for ((at, s), d) in fired.iter().zip(deadlines) {
            assert_eq!(*s, slots[deadlines.iter().position(|&x| x == d).unwrap()]);
            assert!(
                *at >= d && at - d < 1_000,
                "deadline {d} fired at {at}, outside its advance window"
            );
        }
    }

    #[test]
    fn fxtable_backward_shift_keeps_probes_reachable() {
        // Dense churn at small capacity forces wraparound probes and
        // backward-shift deletions across the table boundary.
        let mut t: FxTable<u32> = FxTable::new();
        for round in 0u32..50 {
            for n in 0..12 {
                t.insert(key(round * 12 + n), n);
            }
            for n in 0..12 {
                if n % 3 != 0 {
                    assert_eq!(t.remove(&key(round * 12 + n)), Some(n));
                    assert_eq!(t.get(&key(round * 12 + n)), None);
                }
            }
            for n in 0..12 {
                if n % 3 == 0 {
                    assert_eq!(t.get(&key(round * 12 + n)), Some(n));
                }
            }
        }
    }
}
