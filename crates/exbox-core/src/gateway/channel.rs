//! Bounded MPSC channel for the shard → trainer observation queue.
//!
//! A drop-in for the `std::sync::mpsc::sync_channel` subset the
//! gateway uses (`send`, `try_send`, `recv`, `try_recv`, sender
//! cloning, disconnect-on-drop semantics — std's error types are
//! reused verbatim), built on the cfg-selected [`crate::sync`] layer so
//! the whole channel is model-checkable under `--cfg exbox_loom`: the
//! explorer drives every interleaving of senders, receiver and
//! shutdown, proving no message is lost or duplicated and that
//! `try_send` backpressure accounting is exact (see
//! `gateway::loom_models`).
//!
//! Semantics match `sync_channel` where the gateway relies on them:
//! FIFO per channel (single receiver), `try_send` fails `Full` at
//! capacity and `Disconnected` after the receiver dropped, `send`
//! blocks while full, `recv` blocks while empty and errors once every
//! sender is gone. Messages still queued when the receiver drops are
//! dropped with the channel (same as std).

use std::collections::VecDeque;
use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};
use std::sync::Arc;

use crate::sync::{Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    rx_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// Create a bounded channel with capacity `cap` (≥ 1).
pub(crate) fn bounded<T>(cap: usize) -> (BoundedSender<T>, BoundedReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(cap.max(1)),
            senders: 1,
            rx_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap: cap.max(1),
    });
    (
        BoundedSender {
            shared: Arc::clone(&shared),
        },
        BoundedReceiver { shared },
    )
}

/// Cloneable sending half.
pub(crate) struct BoundedSender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> BoundedSender<T> {
    /// Blocking send; `Err` returns the value once the receiver is
    /// gone (matching `SyncSender::send`).
    pub(crate) fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().expect("channel state poisoned");
        loop {
            if !st.rx_alive {
                return Err(SendError(value));
            }
            if st.queue.len() < self.shared.cap {
                st.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .shared
                .not_full
                .wait(st)
                .expect("channel state poisoned");
        }
    }

    /// Non-blocking send (the shard packet path): `Full` when at
    /// capacity, `Disconnected` once the receiver is gone.
    pub(crate) fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.state.lock().expect("channel state poisoned");
        if !st.rx_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if st.queue.len() >= self.shared.cap {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for BoundedSender<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .expect("channel state poisoned")
            .senders += 1;
        BoundedSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for BoundedSender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("channel state poisoned");
        st.senders -= 1;
        if st.senders == 0 {
            // Wake a receiver blocked in `recv` so it observes the
            // disconnect.
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for BoundedSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedSender").finish_non_exhaustive()
    }
}

/// The single receiving half.
pub(crate) struct BoundedReceiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> BoundedReceiver<T> {
    /// Blocking receive; `Err` once the queue is empty and every
    /// sender dropped (matching `Receiver::recv`).
    pub(crate) fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().expect("channel state poisoned");
        loop {
            if let Some(value) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .expect("channel state poisoned");
        }
    }

    /// Non-blocking receive (the shutdown drain path).
    pub(crate) fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().expect("channel state poisoned");
        match st.queue.pop_front() {
            Some(value) => {
                self.shared.not_full.notify_one();
                Ok(value)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Drop for BoundedReceiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("channel state poisoned");
        st.rx_alive = false;
        // Queued messages drop with the shared state; wake senders
        // blocked in `send` so they observe the disconnect.
        drop(st);
        self.shared.not_full.notify_all();
    }
}

impl<T> std::fmt::Debug for BoundedReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedReceiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_capacity() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn disconnect_semantics_match_sync_channel() {
        let (tx, rx) = bounded::<u32>(1);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 9);
        assert!(rx.recv().is_err());
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));

        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        assert!(tx.send(2).is_err());
    }

    #[test]
    fn blocking_send_recv_across_threads() {
        let (tx, rx) = bounded::<u32>(1);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
