//! Interleaving models for the gateway's load-bearing concurrency
//! primitives, driven by the vendored `exbox-loom` explorer.
//!
//! Only built under `--cfg exbox_loom`; run with
//! `RUSTFLAGS='--cfg exbox_loom' cargo test -p exbox-core --lib`
//! (or `scripts/loom_check.sh`). Every test here checks a *property*,
//! not just "no crash": eventual snapshot visibility, no
//! use-after-retire under a pinned guard (the `SnapshotGuard::deref`
//! canary), retired-list quiescence, channel no-loss/no-duplication,
//! exact `try_send` backpressure accounting, a lossless trainer
//! shutdown drain, and the pipeline's SPSC ring: lossless in-order
//! transfer with atomic batch publication, fresh values out of reused
//! slots across wraparound, and the close-after-publish protocol that
//! lets a worker exit without stranding packets.
//!
//! Bounds: every model runs under the explorer's default preemption
//! bound of 2 (documented in `DESIGN.md` §9) unless it passes an
//! explicit [`Config`]; `EXBOX_LOOM_EXHAUSTIVE=1` lifts the bound for
//! the nightly CI leg. Counterexamples dump replayable traces to
//! `EXBOX_LOOM_TRACE_DIR`; regression traces live in
//! `tests/loom-traces/` and are replayed against the fixed code below.

use std::sync::Arc;

use exbox_loom::{explore, model, replay, thread, Config};

use exbox_net::AppClass;

use crate::matrix::{FlowKind, SnrLevel};

use super::channel;
use super::shard::SharedMatrix;
use super::snapshot::SnapshotCell;
use super::spsc;

/// The ISSUE's acceptance model: ≥2 writers and ≥2 readers over one
/// `SnapshotCell`, explored to exhaustion within the preemption bound.
///
/// Properties checked on every schedule:
/// * a pinned guard's pointer is never freed under it (the
///   `SnapshotGuard::deref` canary panics on use-after-retire);
/// * a snapshot published before both writers joined is observed by a
///   subsequent pin — the final pin never sees the initial value;
/// * at quiescence (guards dropped, readers unregistered) the retired
///   list is fully drained (also a `debug_assert` inside `reclaim`).
#[test]
fn snapshot_two_writers_two_readers_exhaustive() {
    let report = explore(Config::default(), || {
        let cell = SnapshotCell::new(0u64);
        let mut writers = Vec::new();
        for v in 1..=2u64 {
            let cell = Arc::clone(&cell);
            writers.push(thread::spawn(move || cell.publish(v)));
        }
        let mut readers = Vec::new();
        for _ in 0..2 {
            let mut reader = cell.reader();
            readers.push(thread::spawn(move || {
                // Deref exercises the use-after-retire canary; the
                // value is one of the published states.
                let first = *reader.pin();
                let second = *reader.pin();
                assert!(first <= 2 && second <= 2);
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        // Both publishes retired their predecessors; with every reader
        // gone the grace period has passed for all of them.
        assert_eq!(cell.retired_len(), 0, "retired list leaked");
        // Eventual visibility: a fresh pin after both writers joined
        // must see one of the published snapshots, never epoch 0.
        let mut late = cell.reader();
        assert_ne!(*late.pin(), 0, "published snapshot never became visible");
        assert_eq!(cell.publish_count(), 2);
    })
    .unwrap_or_else(|cex| {
        panic!(
            "snapshot model failed: {}\nreplay: EXBOX_LOOM_REPLAY='{}'",
            cex.message, cex.trace
        )
    });
    assert!(
        report.exhausted,
        "schedule space not exhausted within bounds: {report:?}"
    );
}

/// Regression model for the PR-9 reader-leak fix: a reader that pins
/// across a publish and then *goes away* must release the retirements
/// its pin was holding back — before the fix, `SnapshotReader::drop`
/// left its slot registered, so the retired list stayed pinned until
/// some later publish (forever, if that publish was the run's last).
#[test]
fn reader_drop_releases_retired() {
    model(|| {
        let cell = SnapshotCell::new(0u64);
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.publish(1))
        };
        let mut reader = cell.reader();
        {
            let guard = reader.pin();
            assert!(*guard <= 1);
        }
        drop(reader); // must unregister + reclaim
        writer.join().unwrap();
        // No publish happens after the reader leaves: only the drop
        // path can drain what its pin retained.
        assert_eq!(
            cell.retired_len(),
            0,
            "dropped reader still pins the retired list"
        );
    });
}

/// Replays the checked-in counterexample trace recorded when
/// `reader_drop_releases_retired` first failed (pre-fix drop left the
/// slot registered). The exact schedule that exposed the leak must now
/// pass against the fixed code.
#[test]
fn replay_reader_drop_regression_trace() {
    let trace = exbox_loom::read_trace_file(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/loom-traces/reader_drop_releases_retired.trace"
    ))
    .expect("regression trace missing");
    assert!(!trace.is_empty(), "regression trace file is empty");
    replay(&trace, || {
        let cell = SnapshotCell::new(0u64);
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.publish(1))
        };
        let mut reader = cell.reader();
        {
            let guard = reader.pin();
            assert!(*guard <= 1);
        }
        drop(reader);
        writer.join().unwrap();
        assert_eq!(cell.retired_len(), 0);
    })
    .unwrap_or_else(|cex| panic!("regression resurfaced: {}", cex.message));
}

/// Two senders racing one receiver on the bounded observation channel:
/// every sent message arrives exactly once (no loss, no duplication)
/// and sender-side FIFO holds.
#[test]
fn channel_no_loss_no_duplication() {
    model(|| {
        let (tx, rx) = channel::bounded::<u32>(2);
        let tx2 = tx.clone();
        let s1 = thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        let s2 = thread::spawn(move || tx2.send(10).unwrap());
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv().unwrap());
        }
        assert!(rx.try_recv().is_err(), "phantom message");
        s1.join().unwrap();
        s2.join().unwrap();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 10], "loss or duplication: {got:?}");
        // Sender-side FIFO: 1 precedes 2 in arrival order.
        let p1 = got.iter().position(|&v| v == 1).unwrap();
        let p2 = got.iter().position(|&v| v == 2).unwrap();
        assert!(p1 < p2, "per-sender FIFO violated: {got:?}");
    });
}

/// `try_send` backpressure accounting is exact: over every
/// interleaving of two non-blocking senders and a draining receiver,
/// `delivered + Full-rejections == attempts` — the invariant behind
/// the `gateway.obs_dropped` counter.
#[test]
fn channel_try_send_accounting_exact() {
    model(|| {
        let (tx, rx) = channel::bounded::<u32>(1);
        let tx2 = tx.clone();
        let count = |r: Result<(), std::sync::mpsc::TrySendError<u32>>| match r {
            Ok(()) => (1u32, 0u32),
            Err(std::sync::mpsc::TrySendError::Full(_)) => (0, 1),
            Err(std::sync::mpsc::TrySendError::Disconnected(_)) => {
                panic!("receiver alive, got Disconnected")
            }
        };
        let s1 = thread::spawn(move || count(tx.try_send(1)));
        let s2 = thread::spawn(move || count(tx2.try_send(2)));
        let (ok1, full1) = s1.join().unwrap();
        let (ok2, full2) = s2.join().unwrap();
        let mut delivered = 0;
        while rx.try_recv().is_ok() {
            delivered += 1;
        }
        assert_eq!(
            delivered + (full1 + full2),
            2,
            "dropped-observation accounting drifted"
        );
        assert_eq!(delivered, ok1 + ok2, "delivery count != successful sends");
    });
}

/// The trainer shutdown drain, as a harness over the real channel: a
/// shard keeps submitting while the gateway sends `Shutdown`
/// concurrently. Every observation is either *processed* before the
/// trainer stops or *counted* by the drain — never silently lost
/// (the `trainer.dropped_results` protocol from `run_trainer`).
#[test]
fn trainer_shutdown_drain_never_loses() {
    const SHUTDOWN: u32 = u32::MAX;
    model(|| {
        let (tx, rx) = channel::bounded::<u32>(4);
        let shard = {
            let tx = tx.clone();
            thread::spawn(move || {
                let mut sent = 0u32;
                for v in 0..2 {
                    if tx.try_send(v).is_ok() {
                        sent += 1;
                    }
                }
                sent
            })
        };
        let gateway = thread::spawn(move || tx.send(SHUTDOWN).unwrap());
        // The trainer loop + drain, mirroring `run_trainer`.
        let consumer = thread::spawn(move || {
            let mut processed = 0u32;
            while let Ok(msg) = rx.recv() {
                if msg == SHUTDOWN {
                    break;
                }
                processed += 1;
            }
            let mut dropped = 0u32;
            loop {
                match rx.try_recv() {
                    Ok(SHUTDOWN) => {}
                    Ok(_) => dropped += 1,
                    Err(_) => break,
                }
            }
            (processed, dropped)
        });
        let sent = shard.join().unwrap();
        gateway.join().unwrap();
        let (processed, dropped) = consumer.join().unwrap();
        assert_eq!(
            processed + dropped,
            sent,
            "observation lost across shutdown"
        );
    });
}

/// The pipeline's SPSC ring under a racing producer and consumer,
/// explored to exhaustion within the preemption bound: no loss, no
/// duplication, no reorder — and **publish atomicity**: values pushed
/// in one batch become visible together, so a concurrent drain
/// observes a batch-aligned prefix (0, 2 or 4 values), never a torn
/// batch. Capacity ≥ item count, so neither side ever has to spin
/// (models stay finite without livelock heuristics).
#[test]
fn spsc_transfer_exhaustive_no_loss_no_tear() {
    let report = explore(Config::default(), || {
        let (mut tx, mut rx) = spsc::ring::<u64>(3);
        // Capacity rounds up to a power of two even under the shims.
        assert_eq!(tx.capacity(), 4);
        let producer = thread::spawn(move || {
            tx.push(0).unwrap();
            tx.push(1).unwrap();
            assert_eq!(tx.unpublished(), 2, "pushes published early");
            tx.publish();
            assert_eq!(tx.unpublished(), 0);
            tx.push(2).unwrap();
            tx.push(3).unwrap();
            tx.publish();
        });
        // Racing drains: each sees whatever prefix is published.
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                rx.drain_into(&mut got, 4);
                assert!(
                    got.len() % 2 == 0,
                    "torn batch: drained {} values mid-publish",
                    got.len()
                );
            }
            (got, rx)
        });
        producer.join().unwrap();
        let (mut got, mut rx) = consumer.join().unwrap();
        // The producer has joined (and its Drop published + closed):
        // one more drain must surface everything, in push order.
        rx.drain_into(&mut got, 4);
        assert_eq!(got, vec![0, 1, 2, 3], "loss, duplication or reorder");
        assert!(rx.is_closed(), "producer drop must hang up the ring");
    })
    .unwrap_or_else(|cex| {
        panic!(
            "spsc model failed: {}\nreplay: EXBOX_LOOM_REPLAY='{}'",
            cex.message, cex.trace
        )
    });
    assert!(
        report.exhausted,
        "schedule space not exhausted within bounds: {report:?}"
    );
}

/// Slot reuse across threads: a capacity-2 ring carries four values
/// through two producer/consumer handoffs, so every slot is written,
/// consumed, and **rewritten by a different round** — the consumer
/// must see the new values, never a stale first-round occupant
/// (the invariant-2 ownership transfer under wraparound).
#[test]
fn spsc_wraparound_handoff_sees_fresh_values() {
    model(|| {
        let (mut tx, rx) = spsc::ring::<u64>(2);
        tx.push(10).unwrap();
        tx.push(11).unwrap();
        tx.publish();
        let first = thread::spawn(move || {
            let mut rx = rx;
            let a = rx.pop().expect("published value missing");
            let b = rx.pop().expect("published value missing");
            assert_eq!((a, b), (10, 11));
            rx
        });
        let rx = first.join().unwrap();
        // Same two slots, second round.
        tx.push(20).unwrap();
        tx.push(21).unwrap();
        tx.publish();
        let second = thread::spawn(move || {
            let mut rx = rx;
            let a = rx.pop().expect("reused slot missing");
            let b = rx.pop().expect("reused slot missing");
            assert_eq!((a, b), (20, 21), "stale value out of a reused slot");
            assert!(rx.pop().is_none(), "phantom value");
        });
        second.join().unwrap();
    });
}

/// The close/drain protocol the pipeline workers rely on: `closed` is
/// set only *after* the final publish, so any consumer that observes
/// `closed` and then drains nothing has provably received everything.
/// The explorer checks the implication on every interleaving of a
/// closing producer against a polling consumer.
#[test]
fn spsc_close_after_publish_never_strands_values() {
    model(|| {
        let (mut tx, mut rx) = spsc::ring::<u64>(4);
        let producer = thread::spawn(move || {
            tx.push(1).unwrap();
            tx.push(2).unwrap();
            tx.close(); // publishes, then hangs up
        });
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..3 {
                let closed_before = rx.is_closed();
                let n = rx.drain_into(&mut got, 4);
                if closed_before && n == 0 {
                    // Worker-loop exit condition: must imply completion.
                    assert_eq!(
                        got,
                        vec![1, 2],
                        "observed closed + empty with values still in flight"
                    );
                }
            }
            (got, rx)
        });
        producer.join().unwrap();
        let (mut got, mut rx) = consumer.join().unwrap();
        rx.drain_into(&mut got, 4);
        assert_eq!(got, vec![1, 2], "value stranded across close");
        assert!(rx.is_closed());
    });
}

/// Concurrent admissions/departures on the shared occupancy matrix:
/// the saturating-remove CAS loop never loses an admission and never
/// underflows, whatever the interleaving.
#[test]
fn shared_matrix_concurrent_add_remove() {
    model(|| {
        let kind = FlowKind::new(AppClass::Streaming, SnrLevel::High);
        let m = Arc::new(SharedMatrix::new());
        let adder = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                m.add(kind);
                m.add(kind);
            })
        };
        let remover = {
            let m = Arc::clone(&m);
            // May interleave anywhere among the adds: saturates at
            // zero instead of underflowing.
            thread::spawn(move || m.remove(kind))
        };
        adder.join().unwrap();
        remover.join().unwrap();
        let total = m.total();
        assert!(
            total == 1 || total == 2,
            "occupancy drifted: {total} (lost add or underflow)"
        );
    });
}
