//! Concurrent sharded gateway: lock-free model snapshots, off-path
//! retraining, multi-core packet serving.
//!
//! The single-threaded [`Middlebox`](crate::middlebox::Middlebox)
//! interleaves serving and learning in one loop; this module splits
//! them so admission keeps scaling with cores while the SVM trains:
//!
//! ```text
//!            packets (flow-hashed)                 observations
//!   ┌──────┐  ┌───────────────┐   try_send (bounded)  ┌─────────────┐
//!   │ NIC  │─▶│ GatewayShard 0│──────────────────────▶│             │
//!   │ RSS  │─▶│ GatewayShard 1│──────────────────────▶│   trainer   │
//!   │      │─▶│      ...      │──────────────────────▶│   thread    │
//!   └──────┘  └───────┬───────┘                       └──────┬──────┘
//!                     │ pin (never blocks)                   │ publish
//!                     ▼                                      ▼
//!              ┌─────────────────────────────────────────────────┐
//!              │ SnapshotCell<ModelSnapshot>  (epoch-stamped RCU)│
//!              └─────────────────────────────────────────────────┘
//! ```
//!
//! - **Sharding.** [`ConcurrentGateway`] partitions flow state across
//!   `N` [`GatewayShard`]s by flow hash ([`ConcurrentGateway::shard_for`]).
//!   Each shard owns its flow table, early classifier, QoS meters,
//!   rejected set, decision cache and metrics registry — the packet
//!   path takes no cross-shard lock and bounces no shared cache line.
//! - **Snapshots.** Learnt state (scaler + compacted model + phase)
//!   is published as an immutable epoch-stamped
//!   [`ModelSnapshot`] behind a [`SnapshotCell`]: readers pin
//!   lock-free, the writer swaps atomically and retires the old
//!   snapshot only after every in-flight reader moved on (quiescent-
//!   state reclamation — see [`snapshot`]).
//! - **Off-path training.** Observations travel a *bounded* MPSC
//!   channel to one background trainer thread that owns the full
//!   [`AdmittanceClassifier`]; retrains, checkpoints and recovery
//!   never run on the packet path. Backpressure drops observations
//!   (counted as `gateway.obs_dropped`) rather than stalling packets.
//!
//! - **Data plane.** [`ConcurrentGateway::start_pipeline`] turns the
//!   shards into a run-to-completion multi-core pipeline: per-shard
//!   lock-free SPSC ingress rings fed by a flow-hashing dispatcher,
//!   verdicts merged back into one globally-ordered stream that is
//!   byte-identical to sequential driving (see [`pipeline`]).
//!
//! Shard count comes from [`GatewayConfig::shards`] or the
//! `EXBOX_SHARDS` environment knob ([`GatewayConfig::from_env`]). A
//! 1-shard gateway makes the same per-flow verdicts as the
//! single-threaded middlebox on the same trace (asserted in
//! `tests/gateway_concurrent.rs`).

pub(crate) mod channel;
pub mod pipeline;
pub mod shard;
pub mod snapshot;
pub(crate) mod spsc;
mod trainer;

#[cfg(all(test, exbox_loom))]
mod loom_models;

use std::io;
use std::path::Path;
use std::sync::{mpsc, Arc};

use crate::sync::{AtomicBool, Ordering};

use exbox_ml::Label;
use exbox_net::{FlowKey, Instant, Packet};
use exbox_obs::{MetricsRegistry, MetricsSnapshot};

use crate::admittance::{AdmittanceClassifier, AdmittanceConfig};
use crate::matrix::{SnrLevel, TrafficMatrix};
use crate::middlebox::{Action, MiddleboxConfig, PollVerdict};
use crate::persist;
use crate::qoe::QoeEstimator;
use crate::recovery::FaultPlan;

pub use pipeline::PipelineHandle;
pub use shard::{GatewayShard, SharedMatrix};
pub use snapshot::{ModelSnapshot, SnapshotCell, SnapshotGuard, SnapshotReader};

use trainer::{TrainerHandle, TrainerMetrics, TrainerMsg};

/// The gateway's stable flow-routing function: the shard owning `key`
/// out of `shards` lanes.
///
/// **Stable-routing contract.** Routing is a pure function of the flow
/// key and the shard count — `hash_flow_key(key) % shards`, the same
/// FxHash used by the flow table's index — with no per-process seed,
/// so a given flow maps to the same shard across runs, processes and
/// driving styles (sequential, `take_shards`, pipeline). Tests pin
/// concrete assignments (`tests/gateway_concurrent.rs`); changing this
/// function redistributes flow state and is a breaking change to any
/// deployment that persists per-shard artifacts.
#[inline]
pub(crate) fn route(key: &FlowKey, shards: usize) -> usize {
    (crate::flowtable::hash_flow_key(key) % shards as u64) as usize
}

/// Environment knob selecting the shard count (positive integer).
pub const SHARDS_ENV: &str = "EXBOX_SHARDS";

/// Environment knob selecting the ingress batch size (positive
/// integer): how many packets each shard's ingress ring holds before
/// a flush, and the chunk size of the batched drivers.
pub const BATCH_ENV: &str = "EXBOX_BATCH";

/// Gateway assembly knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Number of serving shards (≥ 1). Each shard is independently
    /// drivable by one worker thread.
    pub shards: usize,
    /// Per-shard middlebox knobs (classify window, poll interval,
    /// rejected-set capacity, fallback cap, …).
    pub middlebox: MiddleboxConfig,
    /// Bound of the shard → trainer observation queue. A full queue
    /// drops observations (`gateway.obs_dropped`) instead of blocking.
    pub obs_queue: usize,
    /// Capacity of each shard's epoch-keyed decision cache; 0 disables
    /// caching.
    pub decision_cache_size: usize,
    /// Ingress batch size (≥ 1): capacity of each shard's ingress ring
    /// and the chunk size used by the batched packet path
    /// ([`GatewayShard::process_packets`]).
    pub batch: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            shards: 1,
            middlebox: MiddleboxConfig::default(),
            obs_queue: 256,
            decision_cache_size: 4096,
            batch: 64,
        }
    }
}

impl GatewayConfig {
    /// Defaults, with the shard count overridden by `EXBOX_SHARDS` and
    /// the ingress batch size by `EXBOX_BATCH`, each when set to a
    /// positive integer (anything else is ignored).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(raw) = std::env::var(SHARDS_ENV) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    cfg.shards = n;
                }
            }
        }
        if let Ok(raw) = std::env::var(BATCH_ENV) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    cfg.batch = n;
                }
            }
        }
        cfg
    }
}

/// The sharded serving layer plus its background trainer.
///
/// Three driving styles:
///
/// - **Pipeline** (multi-core deployments): call
///   [`start_pipeline`](Self::start_pipeline) to move every shard
///   onto a dedicated worker behind a lock-free SPSC ingress ring and
///   drive the returned [`PipelineHandle`] — ordered verdicts,
///   built-in backpressure, byte-identical to sequential driving.
/// - **Sequential** (tests, traces, single-core deployments): call
///   [`process_packet`](Self::process_packet) /
///   [`poll`](Self::poll) / [`flow_departed`](Self::flow_departed) on
///   the gateway itself; packets are routed to their owner shard
///   in-line. Deterministic — replaying a trace yields the same
///   verdict multiset for any shard count.
/// - **Concurrent** (benchmarks, real deployments): move the shards
///   out with [`take_shards`](Self::take_shards) and drive each from
///   its own thread (a shard is `Send`, methods take `&mut self`).
///   The gateway keeps the registries, snapshot cell and trainer, so
///   [`merged_metrics`](Self::merged_metrics), checkpointing and
///   shutdown still work while the shards are out.
#[derive(Debug)]
pub struct ConcurrentGateway {
    cfg: GatewayConfig,
    shards: Vec<GatewayShard>,
    shard_registries: Vec<MetricsRegistry>,
    trainer_registry: MetricsRegistry,
    /// `pipeline.*` / `gateway.ring_*` counters; cumulative across
    /// every pipeline started on this gateway.
    pipeline_registry: MetricsRegistry,
    shared: Arc<SharedMatrix>,
    cell: Arc<SnapshotCell<ModelSnapshot>>,
    control: SnapshotReader<ModelSnapshot>,
    recovering: Arc<AtomicBool>,
    obs_tx: channel::BoundedSender<TrainerMsg>,
    trainer: Option<TrainerHandle>,
    /// Per-batch shard-index scratch for the sequential batched driver
    /// (one `route` per packet, reused across calls).
    route_scratch: Vec<u32>,
}

impl Drop for ConcurrentGateway {
    fn drop(&mut self) {
        // Join the trainer *first*: field drop order would tear down
        // the shard/trainer registries, shared matrix and snapshot
        // readers while a retrain could still be in flight, so a
        // publish (and its metrics updates) could land mid-teardown
        // and be lost without trace. Shutting down here guarantees the
        // trainer drained its queue (counting leftovers in
        // `trainer.dropped_results`) before anything else goes away.
        let _ = self.shutdown();
    }
}

impl ConcurrentGateway {
    /// Assemble a gateway around a (fresh or pre-trained) classifier
    /// and spawn its background trainer. The classifier's current
    /// serving state becomes the initial published snapshot (epoch 0);
    /// fault injection follows `EXBOX_FAULTS`.
    pub fn new(
        cfg: GatewayConfig,
        estimator: QoeEstimator,
        classifier: AdmittanceClassifier,
    ) -> Self {
        Self::build(cfg, estimator, Some(classifier), None, false)
    }

    /// Like [`ConcurrentGateway::new`] with an explicit fault plan
    /// (shared by the trainer's classifier and every shard's poll
    /// path) instead of reading `EXBOX_FAULTS`.
    pub fn with_fault_plan(
        cfg: GatewayConfig,
        estimator: QoeEstimator,
        classifier: AdmittanceClassifier,
        faults: FaultPlan,
    ) -> Self {
        Self::build(cfg, estimator, Some(classifier), Some(faults), false)
    }

    /// Assemble a gateway that only serves: `snapshot` is published
    /// once and never replaced, no trainer thread is spawned, and
    /// shard observations are discarded. This is the configuration
    /// for deterministic replay (shard-count invariance tests) and
    /// for throughput benchmarks that must not retrain mid-run.
    pub fn serving_only(
        cfg: GatewayConfig,
        estimator: QoeEstimator,
        snapshot: ModelSnapshot,
    ) -> Self {
        let gw = Self::build(cfg, estimator, None, None, false);
        // `build` published ModelSnapshot::initial(); replace it with
        // the caller's snapshot so readers see exactly one state.
        gw.cell.publish(snapshot);
        gw
    }

    /// Restore a gateway from a checkpoint file, degrading instead of
    /// dying (the concurrent analogue of
    /// [`Middlebox::recover_from_path`](crate::middlebox::Middlebox::recover_from_path)):
    /// on any restore error a fresh gateway is assembled around
    /// `fallback_estimator` with [`is_recovering`](Self::is_recovering)
    /// set, so the occupancy fallback gates admissions on every shard
    /// until the background trainer re-learns a model and publishes
    /// it. The error, if any, is returned alongside for logging.
    pub fn recover_from_path<P: AsRef<Path>>(
        cfg: GatewayConfig,
        acfg: AdmittanceConfig,
        fallback_estimator: QoeEstimator,
        path: P,
        registry: &MetricsRegistry,
    ) -> (Self, Option<io::Error>) {
        let faults = FaultPlan::from_env(registry);
        match persist::load_checkpoint_from_path(path.as_ref(), acfg.clone(), registry, &faults) {
            Ok((classifier, estimator)) => {
                registry.counter("recovery.restores").inc();
                let gw = Self::build(cfg, estimator, Some(classifier), Some(faults), false);
                (gw, None)
            }
            Err(err) => {
                let fresh = AdmittanceClassifier::with_registry(acfg, registry);
                let gw = Self::build(cfg, fallback_estimator, Some(fresh), Some(faults), true);
                (gw, Some(err))
            }
        }
    }

    fn build(
        mut cfg: GatewayConfig,
        estimator: QoeEstimator,
        classifier: Option<AdmittanceClassifier>,
        faults: Option<FaultPlan>,
        recovering_now: bool,
    ) -> Self {
        cfg.shards = cfg.shards.max(1);
        let initial = match &classifier {
            Some(classifier) => ModelSnapshot::from_classifier(0, classifier),
            None => ModelSnapshot::initial(),
        };
        let cell = SnapshotCell::new(initial);
        let control = cell.reader();
        let shared = Arc::new(SharedMatrix::new());
        let recovering = Arc::new(AtomicBool::new(recovering_now));
        let (obs_tx, obs_rx) = channel::bounded(cfg.obs_queue.max(1));

        let trainer_registry = MetricsRegistry::new();
        let trainer = classifier.map(|mut classifier| {
            let plan = faults
                .clone()
                .unwrap_or_else(|| FaultPlan::from_env(&trainer_registry));
            classifier.set_fault_plan(plan);
            TrainerHandle::spawn(
                classifier,
                estimator.clone(),
                Arc::clone(&cell),
                Arc::clone(&recovering),
                TrainerMetrics {
                    checkpoint_writes: trainer_registry.counter("recovery.checkpoint_writes"),
                    staleness: trainer_registry.gauge("gateway.snapshot_staleness"),
                    dropped_results: trainer_registry.counter("trainer.dropped_results"),
                    stamp_mismatch: trainer_registry.counter("gateway.stamp_mismatch"),
                    snapshot_retired: trainer_registry.gauge("gateway.snapshot_retired"),
                },
                obs_rx,
                obs_tx.clone(),
            )
        });
        // Serving-only: the closure above never ran, so `obs_rx` was
        // dropped with it and shard observations hit a disconnected
        // channel (discarded by design).

        let mut shard_registries = Vec::with_capacity(cfg.shards);
        let mut shards = Vec::with_capacity(cfg.shards);
        for id in 0..cfg.shards {
            let reg = MetricsRegistry::new();
            let plan = faults.clone().unwrap_or_else(|| FaultPlan::from_env(&reg));
            shards.push(GatewayShard::new(
                id,
                cfg.middlebox.clone(),
                estimator.clone(),
                Arc::clone(&shared),
                cell.reader(),
                obs_tx.clone(),
                Arc::clone(&recovering),
                plan,
                cfg.decision_cache_size,
                cfg.batch,
                &reg,
            ));
            shard_registries.push(reg);
        }

        ConcurrentGateway {
            cfg,
            shards,
            shard_registries,
            trainer_registry,
            pipeline_registry: MetricsRegistry::new(),
            shared,
            cell,
            control,
            recovering,
            obs_tx,
            trainer,
            route_scratch: Vec::new(),
        }
    }

    /// Number of serving shards.
    pub fn shard_count(&self) -> usize {
        self.cfg.shards
    }

    /// The shard index owning `key`'s flow state; every packet, QoS
    /// report and departure for one flow must reach this shard.
    ///
    /// Routing is the seedless FxHash already computed for the flow
    /// table's index ([`crate::flowtable::hash_flow_key`]) — one
    /// multiply-xor mix instead of the SipHash rounds `DefaultHasher`
    /// used to spend per packet — and follows the stable-routing
    /// contract documented on `route`: deterministic across runs,
    /// processes and driving styles for a given shard count.
    pub fn shard_for(&self, key: &FlowKey) -> usize {
        route(key, self.cfg.shards)
    }

    /// Move the shards out for concurrent driving (one thread each).
    /// The sequential drivers panic afterwards; everything else on the
    /// gateway — metrics, checkpointing, shutdown — keeps working.
    pub fn take_shards(&mut self) -> Vec<GatewayShard> {
        std::mem::take(&mut self.shards)
    }

    /// Start the multi-core data plane ([`pipeline`]): every shard
    /// moves onto a dedicated worker thread draining a bounded SPSC
    /// ingress ring, and the returned [`PipelineHandle`] becomes the
    /// dispatcher — [`ingest`](PipelineHandle::ingest) routes packets
    /// by flow hash, [`drain_verdicts`](PipelineHandle::drain_verdicts)
    /// returns the globally-ordered verdict stream (byte-identical to
    /// sequential driving, DESIGN.md §10). The sequential drivers
    /// panic while the pipeline runs; retire it with
    /// [`finish_pipeline`](Self::finish_pipeline) to get them back.
    pub fn start_pipeline(&mut self) -> PipelineHandle {
        assert!(
            !self.shards.is_empty(),
            "gateway shards were taken; return them before starting a pipeline"
        );
        let shards = self.take_shards();
        PipelineHandle::start(pipeline::PipelineSpec {
            shards,
            batch: self.cfg.batch,
            registry: &self.pipeline_registry,
        })
    }

    /// Drain and shut down a pipeline started by
    /// [`start_pipeline`](Self::start_pipeline): blocks until every
    /// in-flight packet's verdict is merged, closes the ingress rings,
    /// joins the workers (always *before* the trainer — the gateway's
    /// `Drop` only joins the trainer, so retiring the handle first is
    /// what the drop order already enforces for callers who keep both
    /// on one scope), puts the shards back for sequential driving, and
    /// returns the tail of the ordered verdict stream.
    pub fn finish_pipeline(&mut self, handle: PipelineHandle) -> Vec<Action> {
        let (mut shards, tail) = handle.finish();
        shards.sort_by_key(GatewayShard::id);
        self.shards = shards;
        tail
    }

    fn shard_mut(&mut self, idx: usize) -> &mut GatewayShard {
        assert!(
            !self.shards.is_empty(),
            "gateway shards were taken; drive them directly"
        );
        &mut self.shards[idx]
    }

    /// Sequential driver: route one packet to its owner shard.
    pub fn process_packet(&mut self, pkt: &Packet, snr: SnrLevel) -> Action {
        let idx = self.shard_for(&pkt.flow);
        self.shard_mut(idx).process_packet(pkt, snr)
    }

    /// Sequential batched driver: route a packet stream to its owner
    /// shards in maximal consecutive same-shard runs, preserving
    /// global arrival order. Verdict-identical to calling
    /// [`process_packet`](Self::process_packet) per element — runs
    /// never reorder packets, so the shared matrix and every shard's
    /// flow state evolve exactly as under per-packet driving, while
    /// each run amortises the snapshot pin and counter updates via
    /// [`GatewayShard::process_packets`].
    pub fn process_packets(&mut self, pkts: &[(Packet, SnrLevel)]) -> Vec<Action> {
        assert!(
            !self.shards.is_empty(),
            "gateway shards were taken; drive them directly"
        );
        // One routing hash per packet: the run scan used to call
        // `shard_for` twice per packet (once in the inner scan, again
        // when the next outer iteration re-hashed the run boundary).
        let shards = self.cfg.shards;
        self.route_scratch.clear();
        self.route_scratch
            .extend(pkts.iter().map(|(pkt, _)| route(&pkt.flow, shards) as u32));
        let mut out = Vec::with_capacity(pkts.len());
        let mut i = 0;
        while i < pkts.len() {
            let idx = self.route_scratch[i];
            let mut j = i + 1;
            while j < pkts.len() && self.route_scratch[j] == idx {
                j += 1;
            }
            out.extend(self.shards[idx as usize].process_packets(&pkts[i..j]));
            i = j;
        }
        out
    }

    /// Sequential driver: poll every shard (shard order), concatenating
    /// the verdicts.
    pub fn poll(&mut self, now: Instant) -> Vec<(FlowKey, PollVerdict)> {
        let mut verdicts = Vec::new();
        self.poll_into(now, &mut verdicts);
        verdicts
    }

    /// Allocation-free twin of [`poll`](Self::poll): verdicts are
    /// appended to the caller's buffer (shard order), each shard
    /// filling it directly via [`GatewayShard::poll_into`] — no
    /// per-shard intermediate vectors, no per-poll allocation once the
    /// buffer warmed up (`gateway.poll_buf_grows` stays flat).
    pub fn poll_into(&mut self, now: Instant, out: &mut Vec<(FlowKey, PollVerdict)>) {
        assert!(
            !self.shards.is_empty(),
            "gateway shards were taken; drive them directly"
        );
        for shard in &mut self.shards {
            shard.poll_into(now, out);
        }
    }

    /// Sequential driver: record a delivery report for an admitted flow.
    pub fn record_delivery(&mut self, key: &FlowKey, sent: Instant, received: Instant, size: u32) {
        let idx = self.shard_for(key);
        self.shard_mut(idx)
            .record_delivery(key, sent, received, size);
    }

    /// Sequential driver: record a drop report for an admitted flow.
    pub fn record_drop(&mut self, key: &FlowKey) {
        let idx = self.shard_for(key);
        self.shard_mut(idx).record_drop(key);
    }

    /// Sequential driver: a flow ended — release its admission.
    pub fn flow_departed(&mut self, key: &FlowKey) {
        let idx = self.shard_for(key);
        self.shard_mut(idx).flow_departed(key);
    }

    /// Flows currently admitted across all (non-taken) shards.
    pub fn admitted_flows(&self) -> usize {
        self.shards.iter().map(GatewayShard::admitted_flows).sum()
    }

    /// Point-in-time copy of the cell-wide traffic matrix.
    pub fn matrix(&self) -> TrafficMatrix {
        self.shared.snapshot()
    }

    /// The shared occupancy cell (for tests asserting global state
    /// while shards are driven on other threads).
    pub fn shared_matrix(&self) -> Arc<SharedMatrix> {
        Arc::clone(&self.shared)
    }

    /// Epoch of the currently published snapshot.
    pub fn snapshot_epoch(&mut self) -> u64 {
        self.control.pin().epoch()
    }

    /// Number of snapshots published since construction (including the
    /// initial one published by the constructor).
    pub fn publish_count(&self) -> u64 {
        self.cell.publish_count()
    }

    /// An extra reader handle onto the snapshot cell (for tests that
    /// watch publishes from other threads).
    pub fn snapshot_reader(&self) -> SnapshotReader<ModelSnapshot> {
        self.cell.reader()
    }

    /// The snapshot cell itself, for tests that publish replacement
    /// models onto a [`serving_only`](Self::serving_only) gateway —
    /// e.g. the batched-ingest property suite, which forces snapshot
    /// publication between (and during) batches and asserts verdicts
    /// stay identical to per-packet driving.
    pub fn snapshot_cell(&self) -> Arc<SnapshotCell<ModelSnapshot>> {
        Arc::clone(&self.cell)
    }

    /// True while admissions are served by the occupancy fallback —
    /// same rule as [`Middlebox::is_degraded`](crate::middlebox::Middlebox::is_degraded),
    /// evaluated against the published snapshot.
    pub fn is_degraded(&mut self) -> bool {
        let recovering = self.recovering.load(Ordering::SeqCst);
        let guard = self.control.pin();
        !guard.model_available()
            && (recovering || guard.phase() == crate::admittance::Phase::Online)
    }

    /// True while the gateway is recovering from a failed restore and
    /// no re-learnt model has been published yet.
    pub fn is_recovering(&self) -> bool {
        self.recovering.load(Ordering::SeqCst)
    }

    /// Feed one observation straight to the background trainer
    /// (blocking; tests and offline trace feeds). Returns `false` when
    /// the gateway is serving-only or the trainer exited.
    pub fn inject_observation(&self, matrix: TrafficMatrix, label: Label) -> bool {
        self.obs_tx
            .send(TrainerMsg::Observe { matrix, label })
            .is_ok()
    }

    /// Wait until the trainer processed every message sent before this
    /// call. Returns `false` when there is no trainer.
    pub fn flush_trainer(&self) -> bool {
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.obs_tx.send(TrainerMsg::Flush { ack: ack_tx }).is_err() {
            return false;
        }
        ack_rx.recv().is_ok()
    }

    /// Checkpoint the learnt state through the trainer queue — the
    /// write happens on the trainer thread, after every observation
    /// queued before this call, and never stalls a shard.
    pub fn checkpoint_to_path<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.obs_tx
            .send(TrainerMsg::Checkpoint {
                path: path.as_ref().to_path_buf(),
                ack: ack_tx,
            })
            .map_err(|_| {
                io::Error::new(
                    io::ErrorKind::Unsupported,
                    "serving-only gateway has no trainer to checkpoint",
                )
            })?;
        ack_rx.recv().map_err(|_| {
            io::Error::new(
                io::ErrorKind::BrokenPipe,
                "trainer exited before acknowledging the checkpoint",
            )
        })?
    }

    /// Per-shard metrics registries, indexed by shard id.
    pub fn shard_registries(&self) -> &[MetricsRegistry] {
        &self.shard_registries
    }

    /// The trainer thread's registry (`recovery.checkpoint_writes`,
    /// plus fault-plan counters when the plan was bound here).
    pub fn trainer_registry(&self) -> &MetricsRegistry {
        &self.trainer_registry
    }

    /// The pipeline registry (`pipeline.*`, `gateway.ring_*`);
    /// counters accumulate across every pipeline started on this
    /// gateway.
    pub fn pipeline_registry(&self) -> &MetricsRegistry {
        &self.pipeline_registry
    }

    /// One coherent metrics view across every shard and the trainer:
    /// counters summed, gauges maxed, histograms merged bucket-wise
    /// (see [`MetricsSnapshot::merged`]). Counter names match the
    /// single-threaded middlebox, so existing dashboards read a
    /// gateway exactly like a middlebox.
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut parts: Vec<MetricsSnapshot> = self
            .shard_registries
            .iter()
            .map(MetricsRegistry::snapshot)
            .collect();
        parts.push(self.trainer_registry.snapshot());
        parts.push(self.pipeline_registry.snapshot());
        MetricsSnapshot::merged(&parts)
    }

    /// Stop the background trainer and take back the classifier (for
    /// inspection or a final synchronous checkpoint). `None` for a
    /// serving-only gateway. Shards keep serving the last published
    /// snapshot after shutdown.
    pub fn shutdown(&mut self) -> Option<AdmittanceClassifier> {
        self.trainer.take().map(TrainerHandle::shutdown)
    }
}
