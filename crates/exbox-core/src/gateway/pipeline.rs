//! Multi-core packet data plane: per-shard SPSC ingress rings, pinned
//! run-to-completion workers, and a sequence-ordered verdict merge.
//!
//! ```text
//!                     ┌ spsc ring ┐   ┌──────────┐  ┌ spsc ring ┐
//!          ┌─ route ─▶│ (seq,pkt) │──▶│ worker 0 │─▶│(seq,act)  │─┐
//!  caller ─┤          └───────────┘   │ shard 0  │  └───────────┘ │  ordered
//!  ingest  │          ┌───────────┐   ├──────────┤  ┌───────────┐ ├─▶ merge ─▶ verdicts
//!          └─ route ─▶│ (seq,pkt) │──▶│ worker 1 │─▶│(seq,act)  │─┘  (reorder ring)
//!                     └───────────┘   │ shard 1  │  └───────────┘
//!                                     └────┬─────┘
//!                                      OrderGate (decision ordering)
//! ```
//!
//! [`ConcurrentGateway::start_pipeline`](super::ConcurrentGateway::start_pipeline)
//! moves the shards onto dedicated worker threads; the caller drives
//! the [`PipelineHandle`]: [`ingest`](PipelineHandle::ingest) assigns
//! every packet a global **ingress sequence number**, routes it by
//! flow hash (the same [`hash_flow_key`](crate::flowtable::hash_flow_key)
//! routing as the sequential drivers) into its shard's bounded
//! `spsc` ring, and publishes rings in batches. Each
//! worker drains its ring run-to-completion through the shard's batch
//! path and emits `(seq, action)` onto its verdict ring; the handle
//! merges those per-shard streams through a pre-sized reorder ring
//! back into one globally-ordered verdict stream.
//!
//! # Determinism (DESIGN.md §10)
//!
//! The merged verdict stream is **byte-identical** to driving the same
//! packet slice through the sequential
//! [`ConcurrentGateway::process_packets`](super::ConcurrentGateway::process_packets),
//! at any shard count. Shard-local state only ever sees its own flows
//! in ingress order (SPSC FIFO), so the only cross-shard races are
//! admission decisions against the [`SharedMatrix`](super::SharedMatrix).
//! The `OrderGate` serialises exactly those: a decision for sequence
//! `s` waits until every *other* lane's progress cursor passed `s`, so
//! matrix reads and writes happen in global ingress order — the same
//! interleaving the sequential driver produces — while the ~97% of
//! packets that never touch the matrix (rejected-probe drops, known
//! flows, classification warm-up) stream through in parallel.
//!
//! Gate liveness rests on two invariants encoded here:
//!
//! 1. **Prefix publication.** A sweep publishes *every* ring before
//!    advancing the shared watermark, so watermark `w` implies all
//!    sequences `< w` are visible in their rings.
//! 2. **Idle self-advance.** A worker that reads watermark `w` *and
//!    then* observes its ring empty has completed every owned sequence
//!    `< w`, so it may raise its progress cursor to `w`; sequences
//!    assigned later are `≥ w`, keeping the cursor monotone. A worker
//!    whose ring closed and drained retires its cursor to `u64::MAX`.
//!
//! Together these make the minimum outstanding decision always
//! eligible — no deadlock — without any worker ever blocking on a
//! lock.
//!
//! # Backpressure
//!
//! Everything is bounded: ingress rings hold `4 × batch` packets, and
//! at most `depth` (= shard count × ring capacity) packets are
//! in flight (assigned but unmerged), which also pre-sizes the reorder
//! ring and verdict rings so the merge never allocates and workers
//! never stall on verdict publication. [`PipelineHandle::try_ingest`]
//! returns early when a ring or the in-flight window is full;
//! [`PipelineHandle::ingest`] spins — publishing, merging and yielding
//! so workers keep draining — and counts each episode in
//! `gateway.ring_full_stalls` / `pipeline.reorder_stalls`.

use std::sync::Arc;

use exbox_net::Packet;
use exbox_obs::Counter;
use exbox_par::CachePadded;

use crate::matrix::SnrLevel;
use crate::middlebox::Action;
use crate::sync::{thread, AtomicU64, Ordering};

use super::shard::GatewayShard;
use super::spsc;

/// One queued packet: global ingress sequence number, packet, SNR.
pub(crate) type IngressSlot = (u64, Packet, SnrLevel);

/// Decision-ordering gate shared by the dispatcher and every worker.
///
/// `progress[lane]` is the lane's cursor: every sequence the lane owns
/// below it is fully processed. `published` is the dispatcher's
/// watermark: every sequence below it is visible in its ring. See the
/// module docs for the invariants.
#[derive(Debug)]
pub(crate) struct OrderGate {
    progress: Box<[CachePadded<AtomicU64>]>,
    published: CachePadded<AtomicU64>,
    gate_waits: Arc<Counter>,
}

impl OrderGate {
    fn new(lanes: usize, gate_waits: Arc<Counter>) -> Self {
        OrderGate {
            progress: (0..lanes)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            published: CachePadded::new(AtomicU64::new(0)),
            gate_waits,
        }
    }

    /// Lane `lane` starts processing sequence `seq`; everything it
    /// owns below `seq` is complete.
    #[inline]
    pub(crate) fn begin(&self, lane: usize, seq: u64) {
        self.progress[lane].store(seq, Ordering::SeqCst);
    }

    /// Block (spin + yield) until every *other* lane's cursor passed
    /// `seq` — called immediately before a shared-matrix decision, so
    /// decisions commit in global ingress order.
    pub(crate) fn wait_turn(&self, lane: usize, seq: u64) {
        let mut waited = false;
        loop {
            let blocked = self
                .progress
                .iter()
                .enumerate()
                .any(|(j, p)| j != lane && p.load(Ordering::SeqCst) <= seq);
            if !blocked {
                return;
            }
            if !waited {
                waited = true;
                self.gate_waits.inc();
            }
            std::hint::spin_loop();
            thread::yield_now();
        }
    }

    /// Idle self-advance: `watermark` was read *before* the lane
    /// observed its ring empty (invariant 2 in the module docs).
    #[inline]
    fn idle(&self, lane: usize, watermark: u64) {
        self.progress[lane].store(watermark, Ordering::SeqCst);
    }

    /// The lane's ring closed and drained: no sequence will ever wait
    /// on it again.
    fn retire(&self, lane: usize) {
        self.progress[lane].store(u64::MAX, Ordering::SeqCst);
    }

    #[inline]
    fn watermark(&self) -> u64 {
        self.published.load(Ordering::SeqCst)
    }

    /// Advance the watermark to `seq`; the caller must have published
    /// every ring first (invariant 1).
    fn publish_watermark(&self, seq: u64) {
        self.published.store(seq, Ordering::SeqCst);
    }
}

/// Pre-sized sequence-indexed reorder ring: verdicts arrive per shard
/// in shard-local seq order and leave in global seq order. Capacity is
/// the in-flight bound, so inserts can never collide and the merge
/// never allocates (`pipeline.reorder_stalls` counts the dispatcher
/// waiting for the window to drain instead).
#[derive(Debug)]
struct Reorder {
    /// Next sequence to emit.
    base: u64,
    mask: u64,
    slots: Vec<Option<Action>>,
}

impl Reorder {
    fn new(depth: usize) -> Self {
        let cap = depth.next_power_of_two();
        Reorder {
            base: 0,
            mask: (cap - 1) as u64,
            slots: vec![None; cap],
        }
    }

    #[inline]
    fn insert(&mut self, seq: u64, act: Action) {
        let slot = &mut self.slots[(seq & self.mask) as usize];
        debug_assert!(
            slot.is_none() && seq >= self.base && seq - self.base <= self.mask,
            "verdict outside the in-flight window"
        );
        *slot = Some(act);
    }

    /// Append the contiguous ready prefix to `out`.
    fn emit_into(&mut self, out: &mut Vec<Action>) -> usize {
        let before = self.base;
        while let Some(act) = self.slots[(self.base & self.mask) as usize].take() {
            out.push(act);
            self.base += 1;
        }
        (self.base - before) as usize
    }
}

/// Counters bound from the gateway's pipeline registry; see the README
/// metrics reference.
struct PipelineMetrics {
    ingested: Arc<Counter>,
    merged: Arc<Counter>,
    ring_full_stalls: Arc<Counter>,
    reorder_stalls: Arc<Counter>,
    ring_publishes: Arc<Counter>,
    merge_out_grows: Arc<Counter>,
}

pub(super) struct PipelineSpec<'a> {
    pub shards: Vec<GatewayShard>,
    pub batch: usize,
    pub registry: &'a exbox_obs::MetricsRegistry,
}

/// Caller-side handle of a running pipeline. Obtained from
/// [`ConcurrentGateway::start_pipeline`](super::ConcurrentGateway::start_pipeline);
/// retired by
/// [`ConcurrentGateway::finish_pipeline`](super::ConcurrentGateway::finish_pipeline),
/// which drains in-flight packets, joins the workers and hands the
/// shards back (dropping the handle instead joins the workers but
/// discards shard state).
pub struct PipelineHandle {
    lanes: usize,
    batch: u64,
    depth: u64,
    producers: Vec<spsc::Producer<IngressSlot>>,
    verdict_rx: Vec<spsc::Consumer<(u64, Action)>>,
    workers: Vec<thread::JoinHandle<GatewayShard>>,
    gate: Arc<OrderGate>,
    /// Next sequence number to assign.
    next_seq: u64,
    /// `next_seq` as of the last sweep (== the gate watermark).
    published_seq: u64,
    reorder: Reorder,
    /// Merged-but-undelivered verdicts (filled while `ingest` waits out
    /// a stall); drained first by [`drain_verdicts`](Self::drain_verdicts).
    ready: Vec<Action>,
    /// Scratch for draining verdict rings; pre-sized to `depth`.
    merge_scratch: Vec<(u64, Action)>,
    metrics: PipelineMetrics,
}

impl std::fmt::Debug for PipelineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineHandle")
            .field("lanes", &self.lanes)
            .field("next_seq", &self.next_seq)
            .field("merged_seq", &self.reorder.base)
            .finish_non_exhaustive()
    }
}

impl PipelineHandle {
    pub(super) fn start(spec: PipelineSpec<'_>) -> Self {
        let lanes = spec.shards.len();
        assert!(lanes > 0, "pipeline needs at least one shard");
        let batch = spec.batch.max(1);
        let ring_cap = (batch * 4).next_power_of_two();
        let depth = (lanes * ring_cap).next_power_of_two();
        let reg = spec.registry;
        let gate = Arc::new(OrderGate::new(lanes, reg.counter("pipeline.gate_waits")));
        let worker_batches = reg.counter("pipeline.worker_batches");

        let mut producers = Vec::with_capacity(lanes);
        let mut verdict_rx = Vec::with_capacity(lanes);
        let mut workers = Vec::with_capacity(lanes);
        for (lane, shard) in spec.shards.into_iter().enumerate() {
            let (tx, rx) = spsc::ring::<IngressSlot>(ring_cap);
            let (vtx, vrx) = spsc::ring::<(u64, Action)>(depth);
            let gate = Arc::clone(&gate);
            let batches = Arc::clone(&worker_batches);
            let handle = thread::Builder::new()
                .name(format!("exbox-pipe-{lane}"))
                .spawn(move || worker_loop(shard, lane, rx, vtx, gate, batch, batches))
                .expect("spawn pipeline worker");
            producers.push(tx);
            verdict_rx.push(vrx);
            workers.push(handle);
        }

        PipelineHandle {
            lanes,
            batch: batch as u64,
            depth: depth as u64,
            producers,
            verdict_rx,
            workers,
            gate,
            next_seq: 0,
            published_seq: 0,
            reorder: Reorder::new(depth),
            ready: Vec::with_capacity(depth),
            merge_scratch: Vec::with_capacity(depth),
            metrics: PipelineMetrics {
                ingested: reg.counter("pipeline.ingested"),
                merged: reg.counter("pipeline.merged"),
                ring_full_stalls: reg.counter("gateway.ring_full_stalls"),
                reorder_stalls: reg.counter("pipeline.reorder_stalls"),
                ring_publishes: reg.counter("gateway.ring_publishes"),
                merge_out_grows: reg.counter("pipeline.merge_out_grows"),
            },
        }
    }

    /// Number of worker lanes (== shard count).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Packets assigned a sequence number but not yet merged.
    pub fn in_flight(&self) -> u64 {
        self.next_seq - self.reorder.base
    }

    /// Publish every ring, then advance the watermark (invariant 1:
    /// never the other way around).
    fn sweep(&mut self) {
        if self.published_seq == self.next_seq {
            return;
        }
        for p in &mut self.producers {
            p.publish();
        }
        self.gate.publish_watermark(self.next_seq);
        self.published_seq = self.next_seq;
        self.metrics.ring_publishes.inc();
    }

    /// Drain whatever the verdict rings hold into the reorder ring and
    /// move the ready prefix to `self.ready`.
    fn merge_pending(&mut self) -> usize {
        for rx in &mut self.verdict_rx {
            self.merge_scratch.clear();
            rx.drain_into(&mut self.merge_scratch, self.depth as usize);
            for &(seq, act) in &self.merge_scratch {
                self.reorder.insert(seq, act);
            }
        }
        let n = self.reorder.emit_into(&mut self.ready);
        self.metrics.merged.add(n as u64);
        n
    }

    /// Blocking ingest: every packet is assigned the next global
    /// sequence number and queued on its owner shard's ring, waiting
    /// out full rings (`gateway.ring_full_stalls`) and a full in-flight
    /// window (`pipeline.reorder_stalls`) by publishing, merging and
    /// yielding so the workers can drain. Rings are published every
    /// `batch` packets and once at the end.
    pub fn ingest(&mut self, pkts: &[(Packet, SnrLevel)]) {
        for &(pkt, snr) in pkts {
            let mut stalled = false;
            while self.in_flight() >= self.depth {
                if !stalled {
                    stalled = true;
                    self.metrics.reorder_stalls.inc();
                }
                self.sweep();
                if self.merge_pending() == 0 {
                    thread::yield_now();
                }
            }
            let lane = super::route(&pkt.flow, self.lanes);
            let mut item = (self.next_seq, pkt, snr);
            let mut stalled = false;
            loop {
                match self.producers[lane].push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        if !stalled {
                            stalled = true;
                            self.metrics.ring_full_stalls.inc();
                        }
                        // Make our earlier pushes visible so the worker
                        // has something to drain, keep verdicts moving,
                        // then let it run.
                        self.sweep();
                        self.merge_pending();
                        thread::yield_now();
                    }
                }
            }
            self.next_seq += 1;
            if self.next_seq - self.published_seq >= self.batch {
                self.sweep();
            }
        }
        self.sweep();
        self.metrics.ingested.add(pkts.len() as u64);
    }

    /// Non-blocking ingest: queue packets until a ring or the
    /// in-flight window fills, then publish what was taken and return
    /// the number accepted (counting the refusal as a stall). The
    /// caller retries the rest after a [`drain_verdicts`](Self::drain_verdicts).
    pub fn try_ingest(&mut self, pkts: &[(Packet, SnrLevel)]) -> usize {
        for (i, &(pkt, snr)) in pkts.iter().enumerate() {
            if self.in_flight() >= self.depth {
                self.metrics.reorder_stalls.inc();
                self.sweep();
                self.metrics.ingested.add(i as u64);
                return i;
            }
            let lane = super::route(&pkt.flow, self.lanes);
            if self.producers[lane]
                .push((self.next_seq, pkt, snr))
                .is_err()
            {
                self.metrics.ring_full_stalls.inc();
                self.sweep();
                self.metrics.ingested.add(i as u64);
                return i;
            }
            self.next_seq += 1;
            if self.next_seq - self.published_seq >= self.batch {
                self.sweep();
            }
        }
        self.sweep();
        self.metrics.ingested.add(pkts.len() as u64);
        pkts.len()
    }

    /// Append every merged-and-ready verdict to `out`, in global
    /// ingress order, without blocking. Returns the number appended.
    /// With a caller-reused `out` (and draining at least once per
    /// `depth` ingested packets) this path never allocates;
    /// `pipeline.merge_out_grows` counts the times it had to.
    pub fn drain_verdicts(&mut self, out: &mut Vec<Action>) -> usize {
        self.merge_pending();
        let cap_before = out.capacity();
        let n = self.ready.len();
        out.append(&mut self.ready);
        if out.capacity() != cap_before {
            self.metrics.merge_out_grows.inc();
        }
        n
    }

    /// Block until every ingested packet's verdict has been merged,
    /// appending them all to `out` (ingress order). Returns the number
    /// appended.
    pub fn flush(&mut self, out: &mut Vec<Action>) -> usize {
        self.sweep();
        while self.reorder.base < self.next_seq {
            if self.merge_pending() == 0 {
                thread::yield_now();
            }
        }
        let cap_before = out.capacity();
        let n = self.ready.len();
        out.append(&mut self.ready);
        if out.capacity() != cap_before {
            self.metrics.merge_out_grows.inc();
        }
        n
    }

    /// Drain, close the rings, join the workers; returns the shards
    /// (any order) and the tail of the verdict stream.
    pub(super) fn finish(mut self) -> (Vec<GatewayShard>, Vec<Action>) {
        let mut tail = Vec::new();
        self.flush(&mut tail);
        for p in self.producers.drain(..) {
            p.close();
        }
        let shards = self
            .workers
            .drain(..)
            .map(|w| w.join().expect("pipeline worker panicked"))
            .collect();
        (shards, tail)
    }
}

impl Drop for PipelineHandle {
    fn drop(&mut self) {
        // `finish` already emptied both vectors; an abandoned handle
        // still hangs up the rings and joins the workers so no thread
        // outlives the pipeline (shard state is discarded — use
        // `ConcurrentGateway::finish_pipeline` to keep it).
        for p in self.producers.drain(..) {
            p.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Per-shard worker: drain the ingress ring run-to-completion through
/// the shard's gated batch path, publish verdicts per batch, and keep
/// the lane's gate cursor honest while idle.
fn worker_loop(
    mut shard: GatewayShard,
    lane: usize,
    mut rx: spsc::Consumer<IngressSlot>,
    mut vtx: spsc::Producer<(u64, Action)>,
    gate: Arc<OrderGate>,
    batch: usize,
    worker_batches: Arc<Counter>,
) -> GatewayShard {
    let mut buf: Vec<IngressSlot> = Vec::with_capacity(batch);
    let mut verdicts: Vec<(u64, Action)> = Vec::with_capacity(batch);
    loop {
        // Watermark *before* the emptiness check: invariant 2 — an
        // empty ring after this read proves every owned seq < w done.
        let w = gate.watermark();
        buf.clear();
        if rx.drain_into(&mut buf, batch) == 0 {
            if rx.is_closed() && rx.drain_into(&mut buf, batch) == 0 {
                // Close lands after the final publish, so a post-close
                // empty drain means the ring is truly exhausted.
                break;
            }
            if buf.is_empty() {
                gate.idle(lane, w);
                std::hint::spin_loop();
                thread::yield_now();
                continue;
            }
        }
        worker_batches.inc();
        verdicts.clear();
        shard.process_packets_tagged(&buf, &gate, lane, &mut verdicts);
        for &(seq, act) in &verdicts {
            let mut item = (seq, act);
            // By the depth invariant the verdict ring (capacity ==
            // in-flight bound) cannot be full; spin as a backstop so a
            // future sizing bug degrades instead of losing verdicts.
            while let Err(back) = vtx.push(item) {
                debug_assert!(false, "verdict ring overflow: depth invariant broken");
                item = back;
                vtx.publish();
                thread::yield_now();
            }
        }
        vtx.publish();
    }
    gate.retire(lane);
    vtx.close();
    shard
}
