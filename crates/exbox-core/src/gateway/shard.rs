//! Per-shard serving state and the shared atomic occupancy cell.
//!
//! A [`GatewayShard`] is one flow-hash partition of the middlebox
//! pipeline: its own flow table, early classifier, QoS meters,
//! rejected set, decision cache and `exbox-obs` sub-registry — so the
//! packet path touches no cross-shard locks and increments no shared
//! counters. The only cross-shard state a decision reads is the
//! [`SharedMatrix`] (the cell-wide traffic matrix, six atomic
//! counters) and the published [`ModelSnapshot`] (pinned lock-free).

use std::collections::HashMap;
use std::sync::mpsc::TrySendError;
use std::sync::Arc;

use crate::sync::{AtomicBool, AtomicU32, Ordering};

use super::channel::BoundedSender;

use exbox_ml::Label;
use exbox_net::{AppClass, EarlyClassifier, FlowKey, FlowTable, Instant, Packet, QosMeter};
use exbox_obs::{buckets, Counter, EventRing, Gauge, Histogram, MetricsRegistry};

use crate::admittance::Phase;
use crate::flowtable::{FlowMap, FlowSlot, RejectedRing, TimerWheel};
use crate::matrix::{FlowKind, SnrLevel, TrafficMatrix};
use crate::middlebox::{
    Action, DecisionEvent, DecisionKind, DecisionReason, MiddleboxConfig, PollVerdict,
};
use crate::qoe::QoeEstimator;
use crate::recovery::{FaultKind, FaultPlan};

use super::pipeline::OrderGate;
use super::snapshot::{ModelSnapshot, SnapshotReader};
use super::trainer::TrainerMsg;

/// Abstraction over the two batch-input shapes — the sequential
/// driver's `&[(Packet, SnrLevel)]` and the pipeline's
/// sequence-tagged `&[(u64, Packet, SnrLevel)]` — so both run the
/// *same* batch loop ([`GatewayShard::process_batch_inner`]) and can
/// never drift apart in decision semantics.
trait BatchInput {
    fn len(&self) -> usize;
    fn item(&self, i: usize) -> (&Packet, SnrLevel);
    /// Global ingress sequence of element `i` (its index for untagged
    /// input, where nothing consumes it).
    fn seq(&self, i: usize) -> u64;
}

impl BatchInput for [(Packet, SnrLevel)] {
    fn len(&self) -> usize {
        self.len()
    }

    fn item(&self, i: usize) -> (&Packet, SnrLevel) {
        (&self[i].0, self[i].1)
    }

    fn seq(&self, i: usize) -> u64 {
        i as u64
    }
}

impl BatchInput for [(u64, Packet, SnrLevel)] {
    fn len(&self) -> usize {
        self.len()
    }

    fn item(&self, i: usize) -> (&Packet, SnrLevel) {
        (&self[i].1, self[i].2)
    }

    fn seq(&self, i: usize) -> u64 {
        self[i].0
    }
}

/// The cell-wide traffic matrix as atomics: shard decisions read a
/// point-in-time [`TrafficMatrix`] from it and admissions/departures
/// update it, so every shard decides against the *global* occupancy —
/// which is what makes verdicts shard-count-invariant when a trace is
/// replayed deterministically.
///
/// All operations are `SeqCst` (six counters; the cost is noise next
/// to the model evaluation). Under concurrent serving a snapshot is
/// each counter's latest value, not an inter-counter consistent cut —
/// the same tolerance the paper's periodic-poll design already has.
#[derive(Debug, Default)]
pub struct SharedMatrix {
    counts: [AtomicU32; TrafficMatrix::DIMS],
}

impl SharedMatrix {
    /// The empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Point-in-time copy as a value-type matrix.
    pub fn snapshot(&self) -> TrafficMatrix {
        TrafficMatrix::from_counts(std::array::from_fn(|i| {
            self.counts[i].load(Ordering::SeqCst)
        }))
    }

    /// Record an admission.
    pub fn add(&self, kind: FlowKind) {
        self.counts[kind.flat_index()].fetch_add(1, Ordering::SeqCst);
    }

    /// Record a departure or revocation (saturating at zero).
    pub fn remove(&self, kind: FlowKind) {
        let _ =
            self.counts[kind.flat_index()].fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Total admitted flows right now.
    pub fn total(&self) -> u32 {
        self.counts.iter().map(|c| c.load(Ordering::SeqCst)).sum()
    }
}

/// Per-shard instrumentation. Counter names match the single-threaded
/// middlebox (`middlebox.*`, `recovery.*`) so the merged export reads
/// identically; each shard binds its **own** registry, so the hot-path
/// increments land on shard-private cache lines — contention-free —
/// and only [`exbox_obs::MetricsSnapshot::merged`] ever sums them.
#[derive(Debug)]
struct ShardMetrics {
    packets: Arc<Counter>,
    admits: Arc<Counter>,
    rejects: Arc<Counter>,
    drops_rejected: Arc<Counter>,
    keeps: Arc<Counter>,
    revokes: Arc<Counter>,
    departures: Arc<Counter>,
    polls: Arc<Counter>,
    rejected_evictions: Arc<Counter>,
    /// `middlebox.rejected_occupancy` — live records in this shard's
    /// bounded rejected set.
    rejected_occupancy: Arc<Gauge>,
    fallback_decisions: Arc<Counter>,
    poll_errors: Arc<Counter>,
    /// `gateway.obs_dropped` — observations dropped because the
    /// bounded trainer queue was full (backpressure made visible).
    obs_dropped: Arc<Counter>,
    /// `gateway.cache_hits` / `gateway.cache_misses` — the shard's
    /// epoch-keyed decision cache.
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    /// `gateway.poll_buf_grows` — times a poll had to grow the
    /// caller's verdict buffer; stays 0 in steady state when callers
    /// reuse a buffer via [`GatewayShard::poll_into`].
    poll_buf_grows: Arc<Counter>,
    decision_latency_ns: Arc<Histogram>,
    poll_latency_ns: Arc<Histogram>,
}

impl ShardMetrics {
    fn bind(reg: &MetricsRegistry) -> Self {
        ShardMetrics {
            packets: reg.counter("middlebox.packets"),
            admits: reg.counter("middlebox.admits"),
            rejects: reg.counter("middlebox.rejects"),
            drops_rejected: reg.counter("middlebox.drops_rejected"),
            keeps: reg.counter("middlebox.keeps"),
            revokes: reg.counter("middlebox.revokes"),
            departures: reg.counter("middlebox.departures"),
            polls: reg.counter("middlebox.polls"),
            rejected_evictions: reg.counter("middlebox.rejected_evictions"),
            rejected_occupancy: reg.gauge("middlebox.rejected_occupancy"),
            fallback_decisions: reg.counter("recovery.fallback_decisions"),
            poll_errors: reg.counter("recovery.poll_errors"),
            obs_dropped: reg.counter("gateway.obs_dropped"),
            cache_hits: reg.counter("gateway.cache_hits"),
            cache_misses: reg.counter("gateway.cache_misses"),
            poll_buf_grows: reg.counter("gateway.poll_buf_grows"),
            decision_latency_ns: reg
                .histogram("middlebox.decision_latency_ns", &buckets::latency_ns()),
            poll_latency_ns: reg.histogram("middlebox.poll_latency_ns", &buckets::latency_ns()),
        }
    }
}

/// Bounded decision memo keyed by `(snapshot epoch, resulting
/// matrix)`. A new epoch clears the map lazily on first insert, so a
/// snapshot publish costs the shard nothing until it actually decides
/// again.
#[derive(Debug)]
struct ShardDecisionCache {
    cap: usize,
    epoch: u64,
    map: HashMap<TrafficMatrix, (Label, f64)>,
}

impl ShardDecisionCache {
    fn new(cap: usize) -> Self {
        ShardDecisionCache {
            cap,
            epoch: 0,
            map: HashMap::new(),
        }
    }

    fn get(&self, epoch: u64, key: &TrafficMatrix) -> Option<(Label, f64)> {
        if epoch != self.epoch {
            return None;
        }
        self.map.get(key).copied()
    }

    fn insert(&mut self, epoch: u64, key: TrafficMatrix, label: Label, margin: f64) {
        if self.cap == 0 {
            return;
        }
        if epoch != self.epoch {
            self.map.clear();
            self.epoch = epoch;
        }
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            self.map.clear();
        }
        self.map.insert(key, (label, margin));
    }
}

#[derive(Debug)]
struct ShardFlow {
    kind: FlowKind,
    meter: QosMeter,
    /// Timer-wheel deadline in poll ticks (`u64::MAX` while
    /// unscheduled); see [`crate::middlebox`] for the protocol.
    next_eval: u64,
}

/// One flow-hash partition of the serving pipeline. Owned by exactly
/// one worker thread at a time (`GatewayShard` is `Send`, methods take
/// `&mut self`); all cross-shard coupling goes through the shared
/// matrix, the snapshot cell and the trainer queue.
#[derive(Debug)]
pub struct GatewayShard {
    id: usize,
    cfg: MiddleboxConfig,
    table: FlowTable,
    early: EarlyClassifier,
    flows: FlowMap<ShardFlow>,
    rejected: RejectedRing,
    /// Next-evaluation deadlines for this shard's flows, in poll ticks.
    wheel: TimerWheel,
    /// Polls executed by this shard == its wheel's current tick.
    poll_seq: u64,
    /// Reusable per-poll slot buffer — no per-poll allocation.
    poll_scratch: Vec<FlowSlot>,
    cache: ShardDecisionCache,
    estimator: QoeEstimator,
    shared: Arc<SharedMatrix>,
    reader: SnapshotReader<ModelSnapshot>,
    obs_tx: BoundedSender<TrainerMsg>,
    recovering: Arc<AtomicBool>,
    metrics: ShardMetrics,
    decisions: EventRing<DecisionEvent>,
    faults: FaultPlan,
    last_poll: Instant,
    /// Deferred packets awaiting a batched flush (see
    /// [`GatewayShard::enqueue`]).
    ingress: Vec<(Packet, SnrLevel)>,
    /// Batch size for ingress flushes (the `EXBOX_BATCH` knob).
    batch: usize,
}

impl GatewayShard {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        cfg: MiddleboxConfig,
        estimator: QoeEstimator,
        shared: Arc<SharedMatrix>,
        reader: SnapshotReader<ModelSnapshot>,
        obs_tx: BoundedSender<TrainerMsg>,
        recovering: Arc<AtomicBool>,
        faults: FaultPlan,
        decision_cache_size: usize,
        batch: usize,
        registry: &MetricsRegistry,
    ) -> Self {
        let window = cfg.classify_window;
        let log_capacity = cfg.decision_log_capacity.max(1);
        let rejected = RejectedRing::new(cfg.rejected_capacity);
        let batch = batch.max(1);
        GatewayShard {
            id,
            cfg,
            table: FlowTable::new(),
            early: EarlyClassifier::with_default_profiles(window),
            flows: FlowMap::new(),
            rejected,
            wheel: TimerWheel::new(),
            poll_seq: 0,
            poll_scratch: Vec::new(),
            cache: ShardDecisionCache::new(decision_cache_size),
            estimator,
            shared,
            reader,
            obs_tx,
            recovering,
            metrics: ShardMetrics::bind(registry),
            decisions: EventRing::new(log_capacity),
            faults,
            last_poll: Instant::ZERO,
            ingress: Vec::with_capacity(batch),
            batch,
        }
    }

    /// This shard's index within the gateway.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Flows currently admitted *by this shard*.
    pub fn admitted_flows(&self) -> usize {
        self.flows.len()
    }

    /// This shard's bounded admit/reject/revoke audit ring.
    pub fn decision_log(&self) -> &EventRing<DecisionEvent> {
        &self.decisions
    }

    /// The cell-wide traffic matrix as this shard reads it.
    pub fn matrix(&self) -> TrafficMatrix {
        self.shared.snapshot()
    }

    /// True while this shard serves admissions through the occupancy
    /// fallback: the published snapshot carries no model and either
    /// the trainer already left bootstrap or the gateway is recovering
    /// from a failed restore. Same rule as
    /// [`crate::middlebox::Middlebox::is_degraded`].
    pub fn is_degraded(&mut self) -> bool {
        let recovering = self.recovering.load(Ordering::SeqCst);
        let guard = self.reader.pin();
        !guard.model_available() && (recovering || guard.phase() == Phase::Online)
    }

    /// Process one packet of this shard's partition. Mirrors
    /// [`crate::middlebox::Middlebox::process_packet`] step for step;
    /// the decision evaluates the pinned [`ModelSnapshot`] against the
    /// shared matrix instead of an in-line classifier.
    pub fn process_packet(&mut self, pkt: &Packet, snr: SnrLevel) -> Action {
        self.metrics.packets.inc();
        if self.rejected.contains(&pkt.flow) {
            self.metrics.drops_rejected.inc();
            return Action::Drop;
        }
        self.table.observe(pkt);
        if self.flows.contains_key(&pkt.flow) {
            return Action::Forward;
        }
        let class = match self.early.observe(pkt) {
            None => return Action::Forward,
            Some(class) => class,
        };
        let recovering = self.recovering.load(Ordering::SeqCst);
        let fallback_cap = self.cfg.fallback_max_flows.max(1);
        let guard = self.reader.pin();
        Self::decide_apply(
            &guard,
            &mut self.cache,
            &self.metrics,
            &mut self.decisions,
            &self.shared,
            &mut self.flows,
            &mut self.rejected,
            &mut self.early,
            fallback_cap,
            recovering,
            pkt,
            snr,
            class,
        )
    }

    /// Classify-and-apply shared by the per-packet and batched paths.
    ///
    /// Takes disjoint field borrows instead of `&mut self` because the
    /// batch path holds a snapshot guard (which borrows the reader
    /// slot) across iterations. The decision sequence is
    /// identical to the historical inline body of
    /// [`GatewayShard::process_packet`], so both paths produce the
    /// same verdicts, metrics, and decision-log events.
    #[allow(clippy::too_many_arguments)]
    fn decide_apply(
        snapshot: &ModelSnapshot,
        cache: &mut ShardDecisionCache,
        metrics: &ShardMetrics,
        decisions: &mut EventRing<DecisionEvent>,
        shared: &SharedMatrix,
        flows: &mut FlowMap<ShardFlow>,
        rejected: &mut RejectedRing,
        early: &mut EarlyClassifier,
        fallback_cap: u32,
        recovering: bool,
        pkt: &Packet,
        snr: SnrLevel,
        class: AppClass,
    ) -> Action {
        let kind = FlowKind::new(class, snr);
        let matrix = shared.snapshot();
        let resulting = matrix.with_arrival(kind);
        let degraded =
            !snapshot.model_available() && (recovering || snapshot.phase() == Phase::Online);
        let ((label, margin), decide_ns) = if degraded {
            // Inline MaxClient semantics (`sync_load` + `decide`):
            // admit while the current occupancy is below the cap.
            exbox_obs::time_ns(|| {
                let label = if matrix.total() < fallback_cap {
                    Label::Pos
                } else {
                    Label::Neg
                };
                (label, None)
            })
        } else {
            let epoch = snapshot.epoch();
            exbox_obs::time_ns(|| {
                if let Some((label, margin)) = cache.get(epoch, &resulting) {
                    metrics.cache_hits.inc();
                    return (label, Some(margin));
                }
                let (label, margin) = snapshot.decide(&resulting);
                if let Some(m) = margin {
                    metrics.cache_misses.inc();
                    cache.insert(epoch, resulting, label, m);
                }
                (label, margin)
            })
        };
        metrics.decision_latency_ns.record(decide_ns);
        let reason = if degraded {
            metrics.fallback_decisions.inc();
            DecisionReason::DegradedFallback
        } else {
            match (snapshot.phase(), label) {
                (Phase::Bootstrap, _) => DecisionReason::Bootstrap,
                (Phase::Online, Label::Pos) => DecisionReason::InsideRegion,
                (Phase::Online, Label::Neg) => DecisionReason::OutsideRegion,
            }
        };
        let mut event = DecisionEvent {
            at: pkt.timestamp,
            flow: pkt.flow,
            class,
            snr,
            verdict: DecisionKind::Admit,
            margin,
            reason,
        };
        match label {
            Label::Pos => {
                shared.add(kind);
                flows.insert(
                    pkt.flow,
                    ShardFlow {
                        kind,
                        meter: QosMeter::new(),
                        next_eval: u64::MAX,
                    },
                );
                metrics.admits.inc();
                decisions.push(event);
                Action::Forward
            }
            Label::Neg => {
                Self::note_rejection(rejected, metrics, pkt.flow);
                early.forget(&pkt.flow);
                metrics.rejects.inc();
                event.verdict = DecisionKind::Reject;
                decisions.push(event);
                Action::Drop
            }
        }
    }

    /// Bounded-ring rejection bookkeeping (eviction counter, occupancy
    /// gauge, warn-once pressure log); the shard twin of
    /// [`crate::middlebox::Middlebox`]'s helper.
    fn note_rejection(rejected: &mut RejectedRing, metrics: &ShardMetrics, key: FlowKey) {
        let ins = rejected.insert(key);
        metrics.rejected_evictions.add(ins.evicted);
        metrics.rejected_occupancy.set(rejected.len() as f64);
        if ins.pressure {
            eprintln!(
                "exbox: shard rejected-set eviction rate caught up with \
                 insertions ({} live / {} evicted) — raise rejected_capacity \
                 or expect re-classification churn",
                rejected.len(),
                rejected.evictions(),
            );
        }
    }

    /// Put `slot` on the wheel for the next poll tick unless already
    /// scheduled (first QoS report of the flow's window).
    fn schedule_eval(wheel: &mut TimerWheel, fs: &mut ShardFlow, slot: FlowSlot) {
        if fs.next_eval == u64::MAX {
            let deadline = wheel.now() + 1;
            fs.next_eval = deadline;
            wheel.schedule(slot, deadline);
        }
    }

    /// Process a slice of packets in one pass, pinning the model
    /// snapshot once instead of per packet.
    ///
    /// Verdict-equivalent to calling [`GatewayShard::process_packet`]
    /// for each element in order:
    ///
    /// - The snapshot guard is re-pinned whenever the cell's
    ///   [`SnapshotCell::publish_count`](super::SnapshotCell::publish_count)
    ///   moves, so a publication landing mid-batch takes effect at
    ///   exactly the packet where per-packet pinning would have
    ///   observed it.
    /// - A run-length disposition cache skips the rejected-set and
    ///   flow-table probes for consecutive packets of the same flow.
    ///   Admission and rejection are terminal within a batch
    ///   (revocation happens only in `poll`, departure only in
    ///   `flow_departed`), so the cached verdict cannot go stale.
    ///   Cached drops skip `table.observe` — matching the per-packet
    ///   path, where rejected flows drop before the table sees them.
    /// - `shard.packets` and `shard.drops_rejected` are flushed once
    ///   per batch instead of per packet.
    pub fn process_packets(&mut self, pkts: &[(Packet, SnrLevel)]) -> Vec<Action> {
        let mut out = Vec::with_capacity(pkts.len());
        self.process_batch_inner(pkts, None, |_seq, act| out.push(act));
        out
    }

    /// The pipeline's gated twin of
    /// [`GatewayShard::process_packets`]: input carries global ingress
    /// sequence numbers, verdicts are emitted as `(seq, action)`
    /// pairs, and before every shared-matrix decision the worker waits
    /// on the [`OrderGate`] until all earlier sequences (on every
    /// lane) have completed — which is what keeps the merged pipeline
    /// verdict stream byte-identical to sequential driving
    /// (DESIGN.md §10). Both entry points share one loop, so the
    /// decision semantics cannot drift.
    pub(crate) fn process_packets_tagged(
        &mut self,
        pkts: &[(u64, Packet, SnrLevel)],
        gate: &OrderGate,
        lane: usize,
        out: &mut Vec<(u64, Action)>,
    ) {
        self.process_batch_inner(pkts, Some((gate, lane)), |seq, act| out.push((seq, act)));
    }

    fn process_batch_inner<I: BatchInput + ?Sized>(
        &mut self,
        pkts: &I,
        gate: Option<(&OrderGate, usize)>,
        mut emit: impl FnMut(u64, Action),
    ) {
        let cell = Arc::clone(self.reader.cell());
        let fallback_cap = self.cfg.fallback_max_flows.max(1);
        let mut cached_drops = 0u64;
        let mut last: Option<(FlowKey, Action)> = None;
        // Set when a publication landed between a packet's
        // classification and its decision: the pre-path side effects
        // for `pkts[idx]` already ran, only the decision is owed (under
        // a fresh pin, exactly as per-packet pinning would take it).
        let mut pending: Option<AppClass> = None;
        let mut idx = 0;
        while idx < pkts.len() {
            // Pin-verify: tag the guard with a publish count known to
            // match it, so staleness is detectable without re-pinning.
            let (at, guard) = loop {
                let at = cell.publish_count();
                let guard = self.reader.pin();
                if cell.publish_count() == at {
                    break (at, guard);
                }
                drop(guard);
            };
            if let Some(class) = pending.take() {
                let (pkt, snr) = pkts.item(idx);
                let seq = pkts.seq(idx);
                idx += 1;
                let recovering = self.recovering.load(Ordering::SeqCst);
                // `begin(seq)` already ran when this packet's pre-path
                // did, so the lane's cursor still holds its sequence.
                if let Some((gate, lane)) = gate {
                    gate.wait_turn(lane, seq);
                }
                let act = Self::decide_apply(
                    &guard,
                    &mut self.cache,
                    &self.metrics,
                    &mut self.decisions,
                    &self.shared,
                    &mut self.flows,
                    &mut self.rejected,
                    &mut self.early,
                    fallback_cap,
                    recovering,
                    pkt,
                    snr,
                    class,
                );
                last = Some((pkt.flow, act));
                emit(seq, act);
            }
            // Serve packets under this pin until a publication lands.
            // Only decisions consult the snapshot, so staleness is
            // checked at decision points — the pre-path stays free of
            // atomic loads.
            while idx < pkts.len() {
                let (pkt, snr) = pkts.item(idx);
                let seq = pkts.seq(idx);
                // Publish per-packet progress: everything this lane
                // owns below `seq` is complete. Cached/pre-path
                // packets never wait — only decisions do.
                if let Some((gate, lane)) = gate {
                    gate.begin(lane, seq);
                }
                match last {
                    Some((key, Action::Drop)) if key == pkt.flow => {
                        idx += 1;
                        cached_drops += 1;
                        emit(seq, Action::Drop);
                        continue;
                    }
                    Some((key, Action::Forward)) if key == pkt.flow => {
                        idx += 1;
                        self.table.observe(pkt);
                        emit(seq, Action::Forward);
                        continue;
                    }
                    _ => {}
                }
                if self.rejected.contains(&pkt.flow) {
                    idx += 1;
                    self.metrics.drops_rejected.inc();
                    last = Some((pkt.flow, Action::Drop));
                    emit(seq, Action::Drop);
                    continue;
                }
                self.table.observe(pkt);
                if self.flows.contains_key(&pkt.flow) {
                    idx += 1;
                    last = Some((pkt.flow, Action::Forward));
                    emit(seq, Action::Forward);
                    continue;
                }
                let class = match self.early.observe(pkt) {
                    None => {
                        // Still classifying: not terminal, later
                        // packets of this flow must re-probe.
                        idx += 1;
                        last = None;
                        emit(seq, Action::Forward);
                        continue;
                    }
                    Some(class) => class,
                };
                if cell.publish_count() != at {
                    // A publication landed since the pin: re-pin and
                    // decide this packet (whose pre-path already ran)
                    // under the fresh snapshot, as per-packet pinning
                    // would.
                    pending = Some(class);
                    break;
                }
                idx += 1;
                let recovering = self.recovering.load(Ordering::SeqCst);
                if let Some((gate, lane)) = gate {
                    gate.wait_turn(lane, seq);
                }
                let act = Self::decide_apply(
                    &guard,
                    &mut self.cache,
                    &self.metrics,
                    &mut self.decisions,
                    &self.shared,
                    &mut self.flows,
                    &mut self.rejected,
                    &mut self.early,
                    fallback_cap,
                    recovering,
                    pkt,
                    snr,
                    class,
                );
                last = Some((pkt.flow, act));
                emit(seq, act);
            }
        }
        self.metrics.packets.add(pkts.len() as u64);
        self.metrics.drops_rejected.add(cached_drops);
    }

    /// Queue a packet on the shard's ingress ring for a later
    /// [`GatewayShard::flush_ingress`]. Returns `false` when the ring
    /// is full (the caller should flush and retry).
    pub fn enqueue(&mut self, pkt: Packet, snr: SnrLevel) -> bool {
        if self.ingress.len() >= self.batch {
            return false;
        }
        self.ingress.push((pkt, snr));
        true
    }

    /// Number of packets waiting on the ingress ring.
    pub fn pending_ingress(&self) -> usize {
        self.ingress.len()
    }

    /// Drain the ingress ring through [`GatewayShard::process_packets`]
    /// and return the verdicts in arrival order.
    pub fn flush_ingress(&mut self) -> Vec<Action> {
        if self.ingress.is_empty() {
            return Vec::new();
        }
        let pending = std::mem::take(&mut self.ingress);
        let out = self.process_packets(&pending);
        // Keep the ring's allocation across flushes.
        self.ingress = pending;
        self.ingress.clear();
        out
    }

    /// Record a delivery report for a flow admitted by this shard.
    pub fn record_delivery(&mut self, key: &FlowKey, sent: Instant, received: Instant, size: u32) {
        if let Some(slot) = self.flows.slot_of(key) {
            if let Some((_, fs)) = self.flows.get_slot_mut(slot) {
                fs.meter.deliver(sent, received, size);
                if self.cfg.poll_wheel {
                    Self::schedule_eval(&mut self.wheel, fs, slot);
                }
            }
        }
    }

    /// Record a drop report for a flow admitted by this shard.
    /// Drop-only flows are scheduled too so their meters reset at the
    /// window edge, matching the scan path.
    pub fn record_drop(&mut self, key: &FlowKey) {
        if let Some(slot) = self.flows.slot_of(key) {
            if let Some((_, fs)) = self.flows.get_slot_mut(slot) {
                fs.meter.drop_packet();
                if self.cfg.poll_wheel {
                    Self::schedule_eval(&mut self.wheel, fs, slot);
                }
            }
        }
    }

    /// A flow of this shard's partition ended: release its slot. A
    /// pending wheel entry goes stale (generation mismatch) and is
    /// skipped at its tick.
    pub fn flow_departed(&mut self, key: &FlowKey) {
        if let Some(fs) = self.flows.remove(key) {
            self.shared.remove(fs.kind);
            self.metrics.departures.inc();
        }
        self.rejected.remove(key);
        self.metrics
            .rejected_occupancy
            .set(self.rejected.len() as f64);
        self.early.forget(key);
        self.table.remove(key);
    }

    /// Periodic poll over this shard's flows: QoE estimation, one
    /// observation shipped to the background trainer (non-blocking —
    /// a full queue drops the observation and counts
    /// `gateway.obs_dropped` rather than stalling), and region
    /// re-evaluation against the pinned snapshot. A no-op before
    /// `poll_interval` has elapsed.
    ///
    /// Sharded-observation semantics: the label is the conjunction
    /// over *this shard's* flows against the *global* matrix. With one
    /// shard this is exactly the single-threaded middlebox feed; with
    /// many, each shard contributes a partial conjunction (a `Neg`
    /// from any shard still marks the matrix inadmissible — the
    /// conjunction distributes over the partition; shards report
    /// `Pos` only for flow subsets that are all acceptable).
    pub fn poll(&mut self, now: Instant) -> Vec<(FlowKey, PollVerdict)> {
        let mut verdicts = Vec::new();
        self.poll_into(now, &mut verdicts);
        verdicts
    }

    /// Allocation-free twin of [`GatewayShard::poll`]: verdicts are
    /// *appended* to the caller's buffer, so a reused buffer makes
    /// steady-state polling allocation-free (the internal slot scratch
    /// already persists across polls). `gateway.poll_buf_grows` counts
    /// the polls that had to grow `out` — 0 once the buffer warmed up.
    pub fn poll_into(&mut self, now: Instant, out: &mut Vec<(FlowKey, PollVerdict)>) {
        if now.saturating_since(self.last_poll) < self.cfg.poll_interval {
            return;
        }
        self.last_poll = now;
        self.metrics.polls.inc();
        let cap_before = out.capacity();
        let ((), poll_ns) = exbox_obs::time_ns(|| self.run_poll(now, out));
        self.metrics.poll_latency_ns.record(poll_ns);
        if out.capacity() != cap_before {
            self.metrics.poll_buf_grows.inc();
        }
    }

    fn run_poll(&mut self, now: Instant, verdicts: &mut Vec<(FlowKey, PollVerdict)>) {
        // One executed poll == one wheel tick, advanced even through
        // empty polls so deadlines stay aligned with poll_seq.
        self.poll_seq += 1;
        let mut scratch = std::mem::take(&mut self.poll_scratch);
        scratch.clear();
        if self.cfg.poll_wheel {
            self.wheel.advance(self.poll_seq, &mut scratch);
            scratch.retain(|&slot| self.flows.get_slot(slot).is_some());
        } else {
            self.flows.collect_slots(&mut scratch);
        }
        if self.flows.is_empty() {
            self.poll_scratch = scratch;
            return;
        }

        // Per-flow acceptability folded into a (measured, unacceptable)
        // count; idle flows contribute no evidence (the scan visits and
        // skips them, the wheel never schedules them). Shards *are* the
        // parallelism here, so the estimation stays serial within one
        // shard.
        let (measured, unacceptable) = scratch
            .iter()
            .filter_map(|&slot| {
                let (_, fs) = self.flows.get_slot(slot)?;
                let sample = fs.meter.sample();
                if sample.throughput_bps <= 0.0 {
                    None
                } else {
                    Some(self.estimator.acceptable(fs.kind.class, &sample))
                }
            })
            .fold((0u64, 0u64), |(m, u), ok| (m + 1, u + u64::from(!ok)));
        let measured_any = measured > 0;
        let all_ok = unacceptable == 0;
        let poll_errored = self.faults.should_inject(FaultKind::PollError);
        if poll_errored {
            self.metrics.poll_errors.inc();
        } else if measured_any {
            let label = if all_ok { Label::Pos } else { Label::Neg };
            match self.obs_tx.try_send(TrainerMsg::Observe {
                matrix: self.shared.snapshot(),
                label,
            }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => self.metrics.obs_dropped.inc(),
                // Training disabled or trainer shut down: the
                // observation has nowhere to go by design.
                Err(TrySendError::Disconnected(_)) => {}
            }
        }

        // Region re-evaluation, mirroring the middlebox loop: one
        // decision per matrix state; revoking a flow updates both the
        // shared matrix and the local working copy before re-deciding.
        // Revocations shed this shard's oldest admission first; kept
        // flows are tallied in bulk, never materialised.
        let guard = self.reader.pin();
        if guard.phase() == Phase::Online {
            let mut matrix = self.shared.snapshot();
            let (mut label, mut margin) = guard.decide(&matrix);
            if label == Label::Pos {
                self.metrics.keeps.add(self.flows.len() as u64);
            }
            while label == Label::Neg {
                let Some((key, kind)) = self.flows.front().map(|(k, fs)| (*k, fs.kind)) else {
                    break;
                };
                self.shared.remove(kind);
                matrix.remove(kind);
                self.flows.remove(&key);
                Self::note_rejection(&mut self.rejected, &self.metrics, key);
                verdicts.push((key, PollVerdict::Revoke));
                self.metrics.revokes.inc();
                self.decisions.push(DecisionEvent {
                    at: now,
                    flow: key,
                    class: kind.class,
                    snr: kind.snr,
                    verdict: DecisionKind::Revoke,
                    margin,
                    reason: DecisionReason::RegionReevaluation,
                });
                let (next_label, next_margin) = guard.decide(&matrix);
                label = next_label;
                margin = next_margin;
            }
        }
        drop(guard);
        // Fresh measurement windows: the wheel path touches only the
        // flows it evaluated; the scan path resets the whole arena.
        if self.cfg.poll_wheel {
            for &slot in &scratch {
                if let Some((_, fs)) = self.flows.get_slot_mut(slot) {
                    fs.meter.reset();
                    fs.next_eval = u64::MAX;
                }
            }
        } else {
            self.flows.for_each_value_mut(|fs| fs.meter.reset());
        }
        scratch.clear();
        self.poll_scratch = scratch;
    }
}
