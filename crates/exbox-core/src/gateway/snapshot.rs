//! Epoch-stamped model snapshots and the lock-free cell that
//! publishes them.
//!
//! The serving problem: shards must read the learnt state (scaler +
//! model + phase) on every admission decision, while the background
//! trainer replaces that state after every retrain. A lock — even a
//! reader/writer lock — would put every packet behind a contended
//! atomic RMW on the reader side and let a publishing writer stall
//! the decision path. Instead the gateway uses an RCU-style
//! [`SnapshotCell`]:
//!
//! * the current [`ModelSnapshot`] lives behind one `AtomicPtr`;
//!   **readers never take a lock** — pinning is two `SeqCst` loads and
//!   one store on a reader-private epoch slot, with no RMW on any
//!   shared cache line,
//! * the writer swaps in a freshly boxed snapshot and **retires** the
//!   old pointer instead of freeing it; retired snapshots are
//!   reclaimed only after a grace period — once every registered
//!   reader has been observed past the retiring epoch (quiescent-state
//!   reclamation),
//! * snapshots are immutable once published, so a reader that pinned
//!   an older epoch simply keeps serving the older (still coherent)
//!   model until its next pin.
//!
//! This module and the pipeline's SPSC ring (`super::spsc`) hold
//! the only `unsafe` in the workspace; the invariant this one rests
//! on is spelled out at the private `SnapshotCell::reclaim` method,
//! the ring's in its module-level Safety section.

use std::sync::Arc;

use crate::sync::{AtomicPtr, AtomicU64, Mutex, Ordering};

use exbox_ml::{Label, StandardScaler};

use crate::admittance::{AdmittanceClassifier, Phase, ServingModel};
use crate::matrix::TrafficMatrix;

/// One immutable generation of learnt state, as published by the
/// background trainer and served concurrently by every shard.
///
/// # Examples
///
/// Export a trained classifier's serving state once and decide from
/// the immutable snapshot — shared references only, no lock, no
/// `&mut` (this is what every shard does per admission):
///
/// ```
/// use exbox_core::gateway::ModelSnapshot;
/// use exbox_core::prelude::*;
/// use exbox_ml::Label;
/// use exbox_net::AppClass;
///
/// // Learn a tiny region online: at most two streaming flows fit.
/// let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
///     batch_size: 8,
///     ..AdmittanceConfig::default()
/// });
/// for n in 0..80u32 {
///     let total = n % 8;
///     let mut m = TrafficMatrix::empty();
///     for _ in 0..total {
///         m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
///     }
///     let y = if total <= 2 { Label::Pos } else { Label::Neg };
///     ac.observe(m, y);
/// }
/// assert_eq!(ac.phase(), Phase::Online);
///
/// let snap = ModelSnapshot::from_classifier(1, &ac);
/// assert!(snap.model_available() && snap.stamps_consistent());
/// let mut crowded = TrafficMatrix::empty();
/// for _ in 0..6 {
///     crowded.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
/// }
/// let (label, margin) = snap.decide(&crowded);
/// assert_eq!(label, Label::Neg);
/// assert!(margin.unwrap() < 0.0);
/// ```
///
/// The scaler and model are stamped with the epoch they were exported
/// under (`scaler_epoch` / `model_epoch`); because a snapshot is built
/// in one piece and never mutated after publication, the stamps always
/// agree with [`ModelSnapshot::epoch`] — the linearizability smoke
/// test spins readers against a publishing writer and asserts exactly
/// that (a torn scaler/model pair would surface as a stamp mismatch).
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    epoch: u64,
    phase: Phase,
    scaler: Option<StandardScaler>,
    model: Option<ServingModel>,
    scaler_epoch: u64,
    model_epoch: u64,
}

impl ModelSnapshot {
    /// The pre-training snapshot: bootstrap phase, no model, epoch 0.
    pub fn initial() -> Self {
        ModelSnapshot {
            epoch: 0,
            phase: Phase::Bootstrap,
            scaler: None,
            model: None,
            scaler_epoch: 0,
            model_epoch: 0,
        }
    }

    /// Export the classifier's current serving state as epoch `epoch`.
    /// Called by the trainer once per publish (phase change or
    /// successful retrain) — never on the packet path.
    pub fn from_classifier(epoch: u64, classifier: &AdmittanceClassifier) -> Self {
        let (phase, pair) = classifier.serving_state();
        let (scaler, model) = match pair {
            Some((s, m)) => (Some(s), Some(m)),
            None => (None, None),
        };
        ModelSnapshot {
            epoch,
            phase,
            scaler,
            model,
            scaler_epoch: epoch,
            model_epoch: epoch,
        }
    }

    /// The generation counter this snapshot was published under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The classifier phase at publish time.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether a scaler/model pair is servable.
    pub fn model_available(&self) -> bool {
        self.scaler.is_some() && self.model.is_some()
    }

    /// True when the epoch stamps on the scaler and model both match
    /// the snapshot epoch — the invariant the linearizability test
    /// asserts under concurrent publishes.
    pub fn stamps_consistent(&self) -> bool {
        self.scaler_epoch == self.epoch && self.model_epoch == self.epoch
    }

    /// Signed decision score for the matrix that would result from an
    /// admission; `None` until a model exists. Allocation-free and
    /// `&self` — many shards evaluate one snapshot concurrently.
    /// Bit-exact with [`AdmittanceClassifier::decision_value`] on the
    /// same state (same scaler transform, same backend arithmetic).
    pub fn decision_value(&self, resulting: &TrafficMatrix) -> Option<f64> {
        let scaler = self.scaler.as_ref()?;
        let model = self.model.as_ref()?;
        let mut raw = [0.0f64; TrafficMatrix::DIMS];
        resulting.features_into(&mut raw);
        let mut scaled = [0.0f64; TrafficMatrix::DIMS];
        scaler.transform_into(&raw, &mut scaled);
        Some(model.decision_value(&scaled))
    }

    /// Single-pass decision, mirroring the uncached
    /// [`AdmittanceClassifier::decide`] semantics: admit everything in
    /// bootstrap; online, the margin sign decides (admit when no model
    /// exists — the degraded fallback gates that case upstream).
    pub fn decide(&self, resulting: &TrafficMatrix) -> (Label, Option<f64>) {
        let margin = self.decision_value(resulting);
        let label = match self.phase {
            Phase::Bootstrap => Label::Pos,
            Phase::Online => match margin {
                Some(v) => Label::from_signum(v),
                None => Label::Pos,
            },
        };
        (label, margin)
    }
}

/// A reader's pin slot: the epoch it is currently pinned at, or
/// [`IDLE`] when not inside a read-side critical section.
#[derive(Debug)]
struct ReaderSlot {
    pinned: AtomicU64,
}

/// Sentinel for "not pinned".
const IDLE: u64 = u64::MAX;

/// A retired pointer waiting for its grace period: the cell epoch at
/// the moment of retirement, and the boxed value it replaced.
struct Retired<T> {
    tag: u64,
    ptr: *mut T,
}

/// Lock-free single-writer/multi-reader publication cell (RCU with
/// quiescent-state-based reclamation), built on `std::sync::atomic`
/// only.
///
/// * [`SnapshotReader::pin`] gives wait-free read access to the
///   current value — no locks, no shared-line RMW.
/// * [`SnapshotCell::publish`] swaps in a new boxed value, retires the
///   old pointer, and frees retirements whose grace period has passed
///   (no reader still pinned at or before their tag).
///
/// Values must be `Send + Sync`: readers on any thread dereference
/// the shared pointer, and retired boxes are dropped on the writer's
/// thread.
pub struct SnapshotCell<T> {
    current: AtomicPtr<T>,
    /// Publish counter; also the clock retirement tags and reader pins
    /// are measured against.
    epoch: AtomicU64,
    readers: Mutex<Vec<Arc<ReaderSlot>>>,
    retired: Mutex<Vec<Retired<T>>>,
    /// Model-checking canary: addresses freed by `reclaim` and not yet
    /// reused by a later `publish`. Guards assert their pointer is not
    /// in this set before dereferencing, turning a protocol bug
    /// (use-after-retire) into a deterministic panic with a replayable
    /// trace instead of UB. Plain `std::sync::Mutex` on purpose — it is
    /// checker bookkeeping, not part of the modelled protocol, and is
    /// never held across a switch point.
    #[cfg(exbox_loom)]
    freed: std::sync::Mutex<std::collections::HashSet<usize>>,
}

// SAFETY: the raw pointers inside `current`/`retired` all originate
// from `Box<T>` and are only dereferenced (readers) or dropped
// (writer, after the grace period) under the protocol proven at
// `reclaim`. With `T: Send + Sync`, sharing the cell across threads
// shares `&T` (needs `Sync`) and drops boxes on another thread (needs
// `Send`).
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("epoch", &self.epoch.load(Ordering::SeqCst))
            .field(
                "retired",
                &self.retired.lock().expect("retired list poisoned").len(),
            )
            .finish()
    }
}

impl<T: Send + Sync> SnapshotCell<T> {
    /// A cell initially holding `value` at epoch 0.
    pub fn new(value: T) -> Arc<Self> {
        Arc::new(SnapshotCell {
            current: AtomicPtr::new(Box::into_raw(Box::new(value))),
            epoch: AtomicU64::new(0),
            readers: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            #[cfg(exbox_loom)]
            freed: std::sync::Mutex::new(std::collections::HashSet::new()),
        })
    }

    /// Register a reader. Each shard holds exactly one; the slot is
    /// garbage-collected after the reader is dropped.
    pub fn reader(self: &Arc<Self>) -> SnapshotReader<T> {
        let slot = Arc::new(ReaderSlot {
            pinned: AtomicU64::new(IDLE),
        });
        self.readers
            .lock()
            .expect("reader list poisoned")
            .push(Arc::clone(&slot));
        SnapshotReader {
            cell: Arc::clone(self),
            slot,
        }
    }

    /// Number of publishes so far.
    pub fn publish_count(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Retired values still waiting for their grace period (test and
    /// debugging aid).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().expect("retired list poisoned").len()
    }

    /// Publish `value` as the new current snapshot. The old snapshot
    /// is retired, not freed: readers pinned on it keep serving it,
    /// and it is reclaimed on a later publish once no reader can still
    /// hold it. Publishers are expected to be a single trainer thread,
    /// but concurrent publishes are safe (the swap linearises them).
    pub fn publish(&self, value: T) {
        let fresh = Box::into_raw(Box::new(value));
        // The allocator may hand back an address reclaimed earlier;
        // it is live again now, so it leaves the canary set.
        #[cfg(exbox_loom)]
        self.freed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(fresh as usize));
        let old = self.current.swap(fresh, Ordering::SeqCst);
        // The tag is the epoch *before* the bump: any reader that
        // could have loaded `old` re-checked the epoch at a value
        // <= tag while its pin was already visible (see `pin`).
        let tag = self.epoch.fetch_add(1, Ordering::SeqCst);
        self.retired
            .lock()
            .expect("retired list poisoned")
            .push(Retired { tag, ptr: old });
        self.reclaim();
    }
}

// Reclamation is unbounded by `T: Send + Sync` so `SnapshotReader`'s
// `Drop` (which has no bounds) can call it; sharing the cell across
// threads still requires the bounds via the `Sync` impl above.
impl<T> SnapshotCell<T> {
    /// Free retired values whose grace period has passed.
    ///
    /// Invariant: a reader pinned at epoch `e` can only be holding a
    /// pointer that was current at some epoch `>= e`; such a pointer,
    /// if retired at all, is retired with `tag >= e`. Proof sketch of
    /// why the writer always observes the pin: the reader stores
    /// `pinned = e` (`SeqCst`) *before* re-checking `epoch == e`
    /// (`SeqCst`), and only then loads the pointer. The writer swaps
    /// the pointer, *then* bumps the epoch (`SeqCst`), *then* reads
    /// the pin slots here. If the reader's re-check saw `e`, it
    /// happened before the writer's bump in the total `SeqCst` order,
    /// so the reader's earlier `pinned = e` store is visible to the
    /// writer's later pin load. Therefore freeing only retirements
    /// with `tag < min(pinned)` never frees a pointer a reader can
    /// still dereference.
    fn reclaim(&self) {
        let readers = self.readers.lock().expect("reader list poisoned");
        // Every slot in the list belongs to a live reader:
        // `SnapshotReader::drop` unregisters its slot (and re-runs
        // reclamation), so a departed reader can never pin the retired
        // list forever.
        let min_pinned = readers
            .iter()
            .map(|slot| slot.pinned.load(Ordering::SeqCst))
            .min()
            .unwrap_or(IDLE);
        drop(readers);
        let mut retired = self.retired.lock().expect("retired list poisoned");
        retired.retain(|r| {
            if r.tag < min_pinned {
                #[cfg(exbox_loom)]
                self.freed
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(r.ptr as usize);
                // SAFETY: `r.ptr` came from `Box::into_raw` in
                // `publish` (or `new`), was swapped out exactly once,
                // and by the invariant above no reader can still hold
                // it; it is removed from the list here, so it is
                // dropped exactly once.
                drop(unsafe { Box::from_raw(r.ptr) });
                false
            } else {
                true
            }
        });
        // Quiescence bound (PR-9 reclamation sweep): with no reader
        // pinned, nothing may remain retired. A long-pinned reader can
        // legitimately hold many retirements, so the bound is
        // conditional on quiescence — exactly what the model checks.
        debug_assert!(
            min_pinned != IDLE || retired.is_empty(),
            "retired list not drained at quiescence ({} left)",
            retired.len()
        );
    }

    /// Remove `slot` from the reader list (reader drop path) and
    /// reclaim anything its pin was holding back.
    fn unregister(&self, slot: &Arc<ReaderSlot>) {
        slot.pinned.store(IDLE, Ordering::SeqCst);
        let mut readers = self.readers.lock().expect("reader list poisoned");
        readers.retain(|s| !Arc::ptr_eq(s, slot));
        drop(readers);
        self.reclaim();
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // No readers can exist: every `SnapshotReader` holds an `Arc`
        // to the cell, so `drop` implies zero readers remain.
        let current = *self.current.get_mut();
        // SAFETY: sole owner at this point; `current` and every
        // retired pointer are live `Box<T>` allocations, each dropped
        // exactly once.
        unsafe {
            drop(Box::from_raw(current));
            for r in self.retired.get_mut().expect("retired list poisoned") {
                drop(Box::from_raw(r.ptr));
            }
        }
    }
}

/// One reader's handle to a [`SnapshotCell`]. Not cloneable and pins
/// through `&mut self`, so at most one [`SnapshotGuard`] per reader
/// exists at a time — the property the pin slot relies on.
#[derive(Debug)]
pub struct SnapshotReader<T> {
    cell: Arc<SnapshotCell<T>>,
    slot: Arc<ReaderSlot>,
}

impl<T: Send + Sync> SnapshotReader<T> {
    /// Enter a read-side critical section and return a guard
    /// dereferencing the current snapshot. Lock-free: two `SeqCst`
    /// epoch loads and one store on this reader's private slot; the
    /// retry loop only spins if a publish lands between them (publishes
    /// are per-retrain, i.e. rare).
    pub fn pin(&mut self) -> SnapshotGuard<'_, T> {
        loop {
            let e = self.cell.epoch.load(Ordering::SeqCst);
            self.slot.pinned.store(e, Ordering::SeqCst);
            if self.cell.epoch.load(Ordering::SeqCst) == e {
                let ptr = self.cell.current.load(Ordering::SeqCst);
                return SnapshotGuard {
                    ptr,
                    slot: &self.slot,
                    #[cfg(exbox_loom)]
                    freed: &self.cell.freed,
                };
            }
            // A publish raced the pin; un-pin and retry so the writer
            // is never blocked on a stale pin value.
            self.slot.pinned.store(IDLE, Ordering::SeqCst);
        }
    }

    /// The cell this reader is registered with.
    pub fn cell(&self) -> &Arc<SnapshotCell<T>> {
        &self.cell
    }
}

impl<T> Drop for SnapshotReader<T> {
    fn drop(&mut self) {
        // A guard cannot outlive the reader (it borrows it), so the
        // slot is idle here. Unregister it and reclaim: before PR 9 a
        // dropped reader's slot lingered until the *next* publish, so
        // a reader pinned during the final publish of a run pinned the
        // retired list forever (found by the `reader_drop_releases_
        // retired` model; regression trace checked in).
        self.cell.unregister(&self.slot);
    }
}

/// RAII read-side critical section: dereferences the pinned snapshot;
/// dropping it un-pins the reader, allowing the snapshot's eventual
/// reclamation.
#[derive(Debug)]
pub struct SnapshotGuard<'a, T> {
    ptr: *const T,
    slot: &'a Arc<ReaderSlot>,
    /// Use-after-retire canary (see [`SnapshotCell`]'s `freed` field).
    #[cfg(exbox_loom)]
    freed: &'a std::sync::Mutex<std::collections::HashSet<usize>>,
}

impl<T> std::ops::Deref for SnapshotGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Model builds verify the invariant the SAFETY comment claims:
        // a pinned guard's pointer is never reclaimed under it.
        #[cfg(exbox_loom)]
        assert!(
            !self
                .freed
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .contains(&(self.ptr as usize)),
            "use-after-retire: pinned snapshot was reclaimed"
        );
        // SAFETY: `ptr` was the current snapshot while this reader's
        // pin was visible (see `SnapshotReader::pin`); the pin blocks
        // reclamation (`SnapshotCell::reclaim` invariant) until this
        // guard drops, and published snapshots are never mutated.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for SnapshotGuard<'_, T> {
    fn drop(&mut self) {
        self.slot.pinned.store(IDLE, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn pin_sees_latest_publish() {
        let cell = SnapshotCell::new(1u64);
        let mut reader = cell.reader();
        assert_eq!(*reader.pin(), 1);
        cell.publish(2);
        assert_eq!(*reader.pin(), 2);
        assert_eq!(cell.publish_count(), 1);
    }

    #[test]
    fn pinned_reader_blocks_reclamation_until_unpin() {
        let cell = SnapshotCell::new(10u64);
        let mut reader = cell.reader();
        let guard = reader.pin();
        cell.publish(20);
        // The old value is retired but must not be freed while the
        // guard is live — and the guard must still read it coherently.
        assert_eq!(cell.retired_len(), 1);
        assert_eq!(*guard, 10);
        drop(guard);
        cell.publish(30);
        assert_eq!(cell.retired_len(), 0, "old epochs reclaimed after unpin");
        assert_eq!(*reader.pin(), 30);
    }

    #[test]
    fn dropped_readers_are_garbage_collected() {
        let cell = SnapshotCell::new(0u64);
        let reader = cell.reader();
        drop(reader);
        cell.publish(1);
        cell.publish(2);
        // With no readers left, nothing can block reclamation past
        // the most recent retirement.
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn concurrent_readers_never_see_torn_pairs() {
        // Each published value is a (x, x) pair; readers assert the
        // halves always agree while a writer publishes continuously.
        let cell = SnapshotCell::new((0u64, 0u64));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut reader = cell.reader();
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let g = reader.pin();
                        let (a, b) = *g;
                        assert_eq!(a, b, "torn pair observed");
                        assert!(a >= last, "epoch went backwards");
                        last = a;
                    }
                });
            }
            for i in 1..=2000u64 {
                cell.publish((i, i));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.publish_count(), 2000);
    }

    #[test]
    fn model_snapshot_stamps_are_consistent() {
        let snap = ModelSnapshot::initial();
        assert!(snap.stamps_consistent());
        assert!(!snap.model_available());
        assert_eq!(snap.decide(&TrafficMatrix::empty()), (Label::Pos, None));
    }
}
