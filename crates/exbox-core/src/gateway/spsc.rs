//! Bounded lock-free single-producer/single-consumer ring buffer —
//! the per-shard ingress (and egress) queue of the
//! [`pipeline`](super::pipeline) data plane.
//!
//! Layout and protocol follow the classic Lamport queue with the two
//! refinements high-rate packet rings need:
//!
//! * **Cache-line-padded indexes.** `head` (consumer cursor) and
//!   `tail` (producer publication cursor) live in separate
//!   [`CachePadded`] cells, so the producer core and the consumer core
//!   never write the same line. Each side additionally keeps a *local
//!   cache* of the other side's index and only re-reads the shared
//!   atomic when the cached value says the ring looks full/empty —
//!   in steady state a push or pop touches one shared line, not two.
//! * **Batched producer publish.** [`Producer::push`] writes the slot
//!   and advances only the producer's private cursor; the write
//!   becomes visible to the consumer at the next explicit
//!   [`Producer::publish`]. The dispatcher pushes a whole batch of
//!   packets and publishes once — one store + one (implied) fence per
//!   batch instead of per packet.
//!
//! Indexes are monotonically increasing `u64`s (never wrapped); the
//! slot for index `i` is `i & mask`. Capacity is rounded up to a power
//! of two. At 10 M ops/s a `u64` index overflows after ~58 000 years,
//! so wraparound of the *index* is out of scope; wraparound of the
//! *slot array* is exercised constantly and covered by unit and loom
//! models.
//!
//! # Safety
//!
//! This module contains `unsafe` (the only other instance in the
//! workspace is the QSBR [`snapshot`](super::snapshot) cell). The
//! invariants it rests on:
//!
//! 1. Exactly one [`Producer`] and one [`Consumer`] exist per ring
//!    (enforced by construction — [`ring`] returns each endpoint by
//!    value and neither is `Clone`), so slot writes race with nothing:
//!    the producer only writes slots in `[tail, head + cap)` and the
//!    consumer only reads slots in `[head, tail)`.
//! 2. A slot is initialised before the index advance that makes it
//!    reachable is published (`tail` store is `SeqCst`, after the
//!    write), and is logically uninitialised again the moment `head`
//!    moves past it — the consumer takes ownership with
//!    `MaybeUninit::assume_init_read` exactly once per index.
//! 3. Everything is `SeqCst` through [`crate::sync`], so the loom
//!    models in `gateway::loom_models` explore exactly the behaviours
//!    the release build can exhibit (DESIGN.md §9/§10).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::Arc;

use exbox_par::CachePadded;

use crate::sync::{AtomicBool, AtomicU64, Ordering};

/// Shared state of one ring: the slot array and the two cursors.
struct Shared<T> {
    /// `capacity` slots; slot `i & mask` holds index `i`.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: u64,
    /// First index not yet consumed (owned by the consumer).
    head: CachePadded<AtomicU64>,
    /// First index not yet *published* (owned by the producer). The
    /// producer's private cursor may run ahead of this between
    /// [`Producer::publish`] calls.
    tail: CachePadded<AtomicU64>,
    /// Producer hung up; set after the final publish, so once the
    /// consumer sees `closed` and an empty ring it has seen everything.
    closed: AtomicBool,
}

// SAFETY: the ring moves `T` values across threads (invariants 1–2 in
// the module docs make every slot access exclusive), so the endpoints
// are `Send`/`Sync` exactly when `T: Send`.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // `&mut self`: both endpoints are gone, the cursors are final.
        // Anything published but never consumed still owns a `T`.
        let head = self.head.load(Ordering::SeqCst);
        let tail = self.tail.load(Ordering::SeqCst);
        for i in head..tail {
            let slot = self.slots[(i & self.mask) as usize].get();
            // SAFETY: `[head, tail)` slots are initialised (invariant 2)
            // and no endpoint remains to read them.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// Write half of a ring; exactly one exists per ring.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Private write cursor; `>= shared.tail` between publishes.
    next: u64,
    /// Last observed consumer cursor; refreshed only when the ring
    /// looks full against the cache.
    cached_head: u64,
}

/// Read half of a ring; exactly one exists per ring.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Private read cursor; the shared `head` is published per
    /// pop/drain so the producer sees freed slots.
    next: u64,
    /// Last observed publication cursor; refreshed only when the ring
    /// looks empty against the cache.
    cached_tail: u64,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Producer")
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Consumer")
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

/// Build a ring holding at least `capacity` elements (rounded up to a
/// power of two, minimum 2).
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        mask: (cap - 1) as u64,
        head: CachePadded::new(AtomicU64::new(0)),
        tail: CachePadded::new(AtomicU64::new(0)),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            next: 0,
            cached_head: 0,
        },
        Consumer {
            shared,
            next: 0,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Slot count of the ring.
    #[cfg_attr(not(any(test, exbox_loom)), allow(dead_code))]
    pub fn capacity(&self) -> usize {
        (self.shared.mask + 1) as usize
    }

    /// Write one value into the next free slot **without publishing
    /// it** — the consumer cannot see it until [`Producer::publish`].
    /// Returns the value back when every slot is occupied (counting
    /// unpublished writes).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let cap = self.shared.mask + 1;
        if self.next - self.cached_head == cap {
            self.cached_head = self.shared.head.load(Ordering::SeqCst);
            if self.next - self.cached_head == cap {
                return Err(value);
            }
        }
        let slot = self.shared.slots[(self.next & self.shared.mask) as usize].get();
        // SAFETY: `next < cached_head + cap`, so the consumer has moved
        // past this slot's previous occupant; nothing reads it until
        // the publish below (invariants 1–2).
        unsafe { (*slot).write(value) };
        self.next += 1;
        Ok(())
    }

    /// Make every pushed-but-unpublished value visible to the
    /// consumer. One `SeqCst` store, however large the batch.
    pub fn publish(&mut self) {
        self.shared.tail.store(self.next, Ordering::SeqCst);
    }

    /// Values written but not yet published.
    #[cfg_attr(not(any(test, exbox_loom)), allow(dead_code))]
    pub fn unpublished(&self) -> u64 {
        self.next - self.shared.tail.load(Ordering::SeqCst)
    }

    /// Publish pending writes and mark the ring closed; the consumer
    /// drains what remains and then reads the hang-up.
    pub fn close(mut self) {
        self.publish();
        self.shared.closed.store(true, Ordering::SeqCst);
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // A producer that goes away without `close` must still not
        // leak unpublished slots nor leave the consumer waiting.
        self.publish();
        self.shared.closed.store(true, Ordering::SeqCst);
    }
}

impl<T> Consumer<T> {
    /// Take the next published value, if any.
    #[cfg_attr(not(any(test, exbox_loom)), allow(dead_code))]
    pub fn pop(&mut self) -> Option<T> {
        if self.next == self.cached_tail {
            self.cached_tail = self.shared.tail.load(Ordering::SeqCst);
            if self.next == self.cached_tail {
                return None;
            }
        }
        let slot = self.shared.slots[(self.next & self.shared.mask) as usize].get();
        // SAFETY: `next < cached_tail <= tail`, so the slot was
        // initialised before the publish we observed; advancing `head`
        // below transfers ownership to us exactly once (invariant 2).
        let value = unsafe { (*slot).assume_init_read() };
        self.next += 1;
        self.shared.head.store(self.next, Ordering::SeqCst);
        Some(value)
    }

    /// Pop up to `max` published values into `out`, publishing the
    /// freed slots with a single `head` store. Returns the count.
    pub fn drain_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if self.next == self.cached_tail {
            self.cached_tail = self.shared.tail.load(Ordering::SeqCst);
        }
        let avail = (self.cached_tail - self.next).min(max as u64);
        for _ in 0..avail {
            let slot = self.shared.slots[(self.next & self.shared.mask) as usize].get();
            // SAFETY: as in `pop` — every index below `cached_tail` is
            // published and initialised, and read exactly once.
            out.push(unsafe { (*slot).assume_init_read() });
            self.next += 1;
        }
        if avail > 0 {
            self.shared.head.store(self.next, Ordering::SeqCst);
        }
        avail as usize
    }

    /// True once the producer hung up. Values may still be queued;
    /// drain until [`Consumer::pop`] returns `None` *after* observing
    /// the close — the close flag is set after the final publish, so
    /// that order guarantees nothing is left behind.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::SeqCst)
    }
}

#[cfg(all(test, not(exbox_loom)))]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u32>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u32>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn push_invisible_until_publish() {
        let (mut tx, mut rx) = ring::<u32>(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop(), None, "unpublished write leaked");
        assert_eq!(tx.unpublished(), 2);
        tx.publish();
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let (mut tx, mut rx) = ring::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(3), "over-capacity push accepted");
        tx.publish();
        assert_eq!(rx.pop(), Some(1));
        // One slot freed: the producer sees it via the head refresh.
        tx.push(3).unwrap();
        tx.publish();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn wraparound_preserves_fifo() {
        let (mut tx, mut rx) = ring::<u64>(4);
        // 3 full laps around a 4-slot ring.
        for v in 0..12u64 {
            tx.push(v).unwrap();
            tx.publish();
            assert_eq!(rx.pop(), Some(v));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn drain_into_batches() {
        let (mut tx, mut rx) = ring::<u32>(8);
        for v in 0..6 {
            tx.push(v).unwrap();
        }
        tx.publish();
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.drain_into(&mut out, 16), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.drain_into(&mut out, 16), 0);
    }

    #[test]
    fn close_drains_then_hangs_up() {
        let (mut tx, mut rx) = ring::<u32>(4);
        tx.push(7).unwrap();
        tx.close(); // publishes the pending write
        assert!(rx.is_closed());
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn unconsumed_values_dropped_with_ring() {
        let probe = Arc::new(());
        let (mut tx, rx) = ring::<Arc<()>>(4);
        for _ in 0..3 {
            tx.push(Arc::clone(&probe)).unwrap();
        }
        tx.publish();
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&probe), 1, "ring leaked slot values");
    }

    #[test]
    fn cross_thread_transfer_is_lossless_and_ordered() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = ring::<u64>(64);
        let producer = thread::spawn(move || {
            let mut v = 0;
            while v < N {
                // Irregular batch sizes to exercise partial publishes.
                let batch = 1 + (v % 7);
                let mut pushed = 0;
                while pushed < batch && v < N {
                    match tx.push(v) {
                        Ok(()) => {
                            v += 1;
                            pushed += 1;
                        }
                        Err(_) => break,
                    }
                }
                tx.publish();
                if pushed == 0 {
                    thread::yield_now();
                }
            }
            tx.close();
        });
        let mut seen = 0u64;
        let mut buf = Vec::new();
        loop {
            let closed = rx.is_closed();
            buf.clear();
            if rx.drain_into(&mut buf, 1024) == 0 {
                if closed {
                    break;
                }
                thread::yield_now();
                continue;
            }
            for &v in &buf {
                assert_eq!(v, seen, "loss, duplication or reorder");
                seen += 1;
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, N);
    }
}
