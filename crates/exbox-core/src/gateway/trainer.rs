//! The background trainer: retraining, checkpointing and recovery off
//! the packet path.
//!
//! The trainer thread owns the full [`AdmittanceClassifier`] (sample
//! store, warm-start duals, retry backoff — everything too heavy for
//! the serving path) and consumes observation batches from a
//! **bounded** MPSC channel fed by the shards' polls. When an
//! observation triggers a phase change or a successful retrain, the
//! trainer exports the new serving state and publishes it as the next
//! [`ModelSnapshot`](super::ModelSnapshot) — shards pick it up on
//! their next pin, without ever blocking.
//!
//! Backpressure is explicit: the channel is bounded and shards use a
//! non-blocking send, dropping the observation (counted by
//! `gateway.obs_dropped`) rather than stalling a packet. Checkpoint
//! requests travel the same queue, so a checkpoint write can never
//! stall a decision either.
//!
//! Retrain fault injection (`EXBOX_FAULTS` `retrain_fail` /
//! `retrain_nonconverge`) fires inside [`AdmittanceClassifier::retrain`]
//! — which now runs **here**, on the trainer thread. A failed retrain
//! publishes nothing: the previous snapshot keeps serving and the
//! degraded fallback engages on the shards only if no model was ever
//! servable.

use std::path::PathBuf;
use std::sync::mpsc::{Sender, TryRecvError};
use std::sync::Arc;

use exbox_ml::Label;

use crate::admittance::AdmittanceClassifier;
use crate::matrix::TrafficMatrix;
use crate::persist;
use crate::qoe::QoeEstimator;
use crate::sync::{thread, AtomicBool, Ordering};

use super::channel::{BoundedReceiver, BoundedSender};
use super::snapshot::{ModelSnapshot, SnapshotCell};

type JoinHandle<T> = thread::JoinHandle<T>;

/// Messages consumed by the trainer thread.
pub(crate) enum TrainerMsg {
    /// One `(X_m, Y)` observation from a shard poll.
    Observe {
        /// The traffic matrix observed.
        matrix: TrafficMatrix,
        /// Conjunction label over the observing shard's flows.
        label: Label,
    },
    /// Write a checkpoint of the learnt state to `path`, replying with
    /// the write result.
    Checkpoint {
        path: PathBuf,
        ack: Sender<std::io::Result<()>>,
    },
    /// Drain barrier: reply once every earlier message was processed.
    Flush { ack: Sender<()> },
    /// Stop the trainer loop (the classifier is returned via join).
    Shutdown,
}

/// The trainer thread's instrument handles, bound to the gateway's
/// trainer registry before spawn.
pub(crate) struct TrainerMetrics {
    /// `recovery.checkpoint_writes` — successful checkpoint files.
    pub(crate) checkpoint_writes: Arc<exbox_obs::Counter>,
    /// `gateway.snapshot_staleness` — observations absorbed since the
    /// last snapshot publish.
    pub(crate) staleness: Arc<exbox_obs::Gauge>,
    /// `trainer.dropped_results` — observations still queued when the
    /// trainer shut down: learning the channel accepted but that never
    /// reached the store. Zero in a clean drain; non-zero makes an
    /// interrupted retrain visible instead of silently lost.
    pub(crate) dropped_results: Arc<exbox_obs::Counter>,
    /// `gateway.stamp_mismatch` — snapshots that failed
    /// [`ModelSnapshot::stamps_consistent`] at publish time. Always 0
    /// unless the export path is broken; checked here (debug-assert +
    /// counter), not just in tests.
    pub(crate) stamp_mismatch: Arc<exbox_obs::Counter>,
    /// `gateway.snapshot_retired` — retired snapshots awaiting their
    /// grace period, sampled after each publish. Bounded by the number
    /// of concurrently pinned readers; growth means a reader leak.
    pub(crate) snapshot_retired: Arc<exbox_obs::Gauge>,
}

/// Publish `snap`, enforcing the stamp invariant at the publish site
/// and sampling the retired-list gauge right after reclamation ran.
fn publish_checked(
    cell: &SnapshotCell<ModelSnapshot>,
    metrics: &TrainerMetrics,
    snap: ModelSnapshot,
) {
    let consistent = snap.stamps_consistent();
    debug_assert!(
        consistent,
        "publishing snapshot with mismatched stamps (epoch {})",
        snap.epoch()
    );
    if !consistent {
        metrics.stamp_mismatch.inc();
    }
    cell.publish(snap);
    metrics.snapshot_retired.set(cell.retired_len() as f64);
}

/// Handle to the running trainer thread.
pub(crate) struct TrainerHandle {
    pub(crate) tx: BoundedSender<TrainerMsg>,
    join: Option<JoinHandle<AdmittanceClassifier>>,
}

impl std::fmt::Debug for TrainerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainerHandle").finish_non_exhaustive()
    }
}

impl TrainerHandle {
    /// Spawn the trainer thread. `classifier` seeds the publication
    /// epoch: if it is already trained, its state is what the initial
    /// snapshot in `cell` was built from.
    pub(crate) fn spawn(
        classifier: AdmittanceClassifier,
        estimator: QoeEstimator,
        cell: Arc<SnapshotCell<ModelSnapshot>>,
        recovering: Arc<AtomicBool>,
        metrics: TrainerMetrics,
        rx: BoundedReceiver<TrainerMsg>,
        tx: BoundedSender<TrainerMsg>,
    ) -> Self {
        let join = thread::Builder::new()
            .name("exbox-trainer".into())
            .spawn(move || run_trainer(classifier, estimator, cell, recovering, metrics, rx))
            .expect("failed to spawn trainer thread");
        TrainerHandle {
            tx,
            join: Some(join),
        }
    }

    /// Stop the trainer and take back the classifier (for inspection
    /// or a final synchronous checkpoint).
    pub(crate) fn shutdown(mut self) -> AdmittanceClassifier {
        let _ = self.tx.send(TrainerMsg::Shutdown);
        self.join
            .take()
            .expect("trainer already joined")
            .join()
            .expect("trainer thread panicked")
    }
}

impl Drop for TrainerHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.tx.send(TrainerMsg::Shutdown);
            if join.join().is_err() && !std::thread::panicking() {
                panic!("trainer thread panicked");
            }
        }
    }
}

/// The trainer loop body.
fn run_trainer(
    mut classifier: AdmittanceClassifier,
    estimator: QoeEstimator,
    cell: Arc<SnapshotCell<ModelSnapshot>>,
    recovering: Arc<AtomicBool>,
    metrics: TrainerMetrics,
    rx: BoundedReceiver<TrainerMsg>,
) -> AdmittanceClassifier {
    // The initial snapshot was published by the gateway constructor at
    // this epoch; later publishes continue from it.
    let mut epoch = cell.publish_count();
    // `gateway.snapshot_staleness`: observations absorbed into the
    // store but not yet reflected in the served snapshot. Grows by one
    // per observation, snaps back to zero on every publish — the
    // operator-facing measure of how far serving lags learning.
    let mut lag: u64 = 0;
    while let Ok(msg) = rx.recv() {
        match msg {
            TrainerMsg::Observe { matrix, label } => {
                // Serving-state fingerprint: phase transitions and
                // *successful* retrains advance it; a failed retrain
                // (injected or real) leaves it unchanged, so the old
                // snapshot keeps serving and no epoch is burned.
                let before = (classifier.phase(), classifier.retrain_count());
                classifier.observe(matrix, label);
                if (classifier.phase(), classifier.retrain_count()) != before {
                    epoch += 1;
                    publish_checked(
                        &cell,
                        &metrics,
                        ModelSnapshot::from_classifier(epoch, &classifier),
                    );
                    if classifier.model_available() {
                        recovering.store(false, Ordering::SeqCst);
                    }
                    lag = 0;
                } else {
                    lag += 1;
                }
                metrics.staleness.set(lag as f64);
            }
            TrainerMsg::Checkpoint { path, ack } => {
                let result = persist::save_checkpoint_to_path(&classifier, &estimator, &path);
                if result.is_ok() {
                    metrics.checkpoint_writes.inc();
                }
                let _ = ack.send(result);
            }
            TrainerMsg::Flush { ack } => {
                let _ = ack.send(());
            }
            TrainerMsg::Shutdown => break,
        }
    }
    // Shutdown drain (PR-9 shutdown-ordering sweep): shards on other
    // threads may have enqueued between the Shutdown send and now.
    // Nothing may be *silently* lost — queued observations are counted
    // as dropped results, checkpoint/flush callers get an answer
    // instead of a hung ack channel.
    loop {
        match rx.try_recv() {
            Ok(TrainerMsg::Observe { .. }) => metrics.dropped_results.inc(),
            Ok(TrainerMsg::Checkpoint { ack, .. }) => {
                let _ = ack.send(Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "trainer shut down before writing the checkpoint",
                )));
            }
            Ok(TrainerMsg::Flush { ack }) => {
                let _ = ack.send(());
            }
            Ok(TrainerMsg::Shutdown) => {}
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
        }
    }
    classifier
}
