//! The IQX hypothesis: a generic QoE ↔ QoS relationship.
//!
//! Fiedler, Hoßfeld & Tran-Gia (IEEE Network 2010;
//! their ref. 44) propose that quality of experience relates to quality of
//! service through an exponential law:
//!
//! ```text
//! QoE = α + β · e^(−γ · QoS)
//! ```
//!
//! ExBox fits one such model per application class from a training
//! device's measurements (paper §3.2, Fig. 12) and then estimates QoE
//! for every flow purely from network-side QoS. The sign of β encodes
//! the metric direction: page load time *falls* as QoS rises (β > 0),
//! PSNR *rises* (β < 0).
//!
//! Fitting: for a fixed γ the model is linear in (α, β), so the
//! least-squares fit reduces to a 1-D search over γ with a closed-form
//! linear solve inside — numerically robust with no step-size tuning,
//! unlike a general Levenberg–Marquardt.

/// A fitted IQX model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqxModel {
    /// Asymptotic QoE as QoS → ∞.
    pub alpha: f64,
    /// Magnitude/direction of the exponential term.
    pub beta: f64,
    /// Decay rate of QoS influence (≥ 0).
    pub gamma: f64,
}

impl IqxModel {
    /// Evaluate the model at a QoS value.
    pub fn qoe(&self, qos: f64) -> f64 {
        self.alpha + self.beta * (-self.gamma * qos).exp()
    }

    /// Root-mean-square error against a dataset of `(qos, qoe)` points.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn rmse(&self, data: &[(f64, f64)]) -> f64 {
        assert!(!data.is_empty(), "rmse needs at least one point");
        let sq: f64 = data
            .iter()
            .map(|&(q, e)| {
                let d = self.qoe(q) - e;
                d * d
            })
            .sum();
        (sq / data.len() as f64).sqrt()
    }

    /// Least-squares fit over `(qos, qoe)` pairs.
    ///
    /// γ is searched on a log grid spanning `[1e-3, 1e3] / qos_scale`
    /// followed by a golden-section refinement; α and β come from the
    /// closed-form linear solve at each γ.
    ///
    /// # Panics
    /// Panics with fewer than 3 points (the model has 3 parameters) or
    /// non-finite inputs.
    pub fn fit(data: &[(f64, f64)]) -> IqxModel {
        assert!(data.len() >= 3, "IQX fit needs at least 3 points");
        assert!(
            data.iter().all(|&(q, e)| q.is_finite() && e.is_finite()),
            "IQX fit requires finite data"
        );
        // Scale-aware γ grid: γ·QoS should sweep through O(1).
        let qmax = data.iter().map(|&(q, _)| q.abs()).fold(0.0, f64::max);
        let scale = if qmax > 0.0 { 1.0 / qmax } else { 1.0 };

        // As γ → 0 the model degenerates to a line with |β| → ∞ and
        // the least squares happily takes that limit on near-linear
        // data. Constrain |β| to a multiple of the observed QoE range
        // so the fit stays a *bona fide* exponential (this also keeps
        // extrapolation sane — gigantic α/β pairs are numerically
        // fragile at QoS values outside the training sweep).
        let (emin, emax) = data
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, e)| {
                (lo.min(e), hi.max(e))
            });
        let beta_cap = 3.0 * (emax - emin).max(1e-9);

        let sse_at = |gamma: f64| -> (f64, f64, f64) {
            let (alpha, beta) = linear_solve(data, gamma);
            if beta.abs() > beta_cap {
                return (f64::INFINITY, alpha, beta);
            }
            let m = IqxModel { alpha, beta, gamma };
            let sse: f64 = data
                .iter()
                .map(|&(q, e)| {
                    let d = m.qoe(q) - e;
                    d * d
                })
                .sum();
            (sse, alpha, beta)
        };

        // Log-grid scan.
        let mut best = (f64::INFINITY, 0.0, 0.0, 0.0); // (sse, a, b, g)
        for i in 0..=60 {
            let gamma = scale * 10f64.powf(-3.0 + 6.0 * i as f64 / 60.0);
            let (sse, a, b) = sse_at(gamma);
            if sse < best.0 {
                best = (sse, a, b, gamma);
            }
        }
        // Golden-section refinement around the best grid point.
        let phi = 0.618_033_988_749_895;
        let (mut lo, mut hi) = (best.3 / 3.0, best.3 * 3.0);
        for _ in 0..50 {
            let g1 = hi - phi * (hi - lo);
            let g2 = lo + phi * (hi - lo);
            if sse_at(g1).0 < sse_at(g2).0 {
                hi = g2;
            } else {
                lo = g1;
            }
        }
        let gamma = 0.5 * (lo + hi);
        let (sse, alpha, beta) = sse_at(gamma);
        if sse <= best.0 {
            IqxModel { alpha, beta, gamma }
        } else if best.0.is_finite() {
            IqxModel {
                alpha: best.1,
                beta: best.2,
                gamma: best.3,
            }
        } else {
            // Every candidate violated the β constraint (pathological
            // data); fall back to the flat model at the mean.
            let mean = data.iter().map(|&(_, e)| e).sum::<f64>() / data.len() as f64;
            IqxModel {
                alpha: mean,
                beta: 0.0,
                gamma: scale,
            }
        }
    }
}

/// Closed-form least squares for (α, β) at fixed γ: regress `qoe` on
/// `[1, e^(−γ·qos)]`.
fn linear_solve(data: &[(f64, f64)], gamma: f64) -> (f64, f64) {
    let n = data.len() as f64;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for &(q, e) in data {
        let x = (-gamma * q).exp();
        sx += x;
        sy += e;
        sxx += x * x;
        sxy += x * e;
    }
    let det = n * sxx - sx * sx;
    if det.abs() < 1e-12 {
        // Degenerate (constant regressor): flat model at the mean.
        (sy / n, 0.0)
    } else {
        let beta = (n * sxy - sx * sy) / det;
        let alpha = (sy - beta * sx) / n;
        (alpha, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(alpha: f64, beta: f64, gamma: f64, noise: f64) -> Vec<(f64, f64)> {
        let model = IqxModel { alpha, beta, gamma };
        (0..60)
            .map(|i| {
                let q = i as f64 / 59.0; // normalised QoS in [0, 1]
                                         // Deterministic "noise" for reproducibility.
                let n = noise * ((i * 2_654_435_761u64 as usize) % 17) as f64 / 17.0 - noise / 2.0;
                (q, model.qoe(q) + n)
            })
            .collect()
    }

    #[test]
    fn recovers_decaying_metric() {
        // Page-load-time-like: high at bad QoS, asymptote ~1 s.
        let data = synth(1.0, 12.0, 5.0, 0.0);
        let fit = IqxModel::fit(&data);
        assert!(fit.rmse(&data) < 0.01, "rmse {}", fit.rmse(&data));
        assert!((fit.alpha - 1.0).abs() < 0.1, "alpha {}", fit.alpha);
        assert!((fit.beta - 12.0).abs() < 0.5, "beta {}", fit.beta);
        assert!((fit.gamma - 5.0).abs() < 0.5, "gamma {}", fit.gamma);
    }

    #[test]
    fn recovers_rising_metric() {
        // PSNR-like: β < 0, rises toward α.
        let data = synth(42.0, -30.0, 4.0, 0.0);
        let fit = IqxModel::fit(&data);
        assert!(fit.rmse(&data) < 0.05);
        assert!(fit.beta < 0.0);
        assert!((fit.qoe(1.0) - (42.0 - 30.0 * (-4.0f64).exp())).abs() < 0.5);
    }

    #[test]
    fn fit_tolerates_noise() {
        let data = synth(2.0, 8.0, 6.0, 1.0);
        let fit = IqxModel::fit(&data);
        // RMSE should approach the noise floor (uniform ±0.5 ⇒ rms ≈0.3).
        assert!(fit.rmse(&data) < 0.6, "rmse {}", fit.rmse(&data));
        // Shape preserved: QoE at good QoS far below QoE at bad QoS.
        assert!(fit.qoe(0.0) > fit.qoe(1.0) + 4.0);
    }

    #[test]
    fn monotone_in_qos_for_positive_beta() {
        let m = IqxModel {
            alpha: 1.0,
            beta: 5.0,
            gamma: 3.0,
        };
        let mut last = f64::INFINITY;
        for i in 0..20 {
            let v = m.qoe(i as f64 / 10.0);
            assert!(v <= last);
            last = v;
        }
    }

    #[test]
    fn constant_data_fits_flat_model() {
        let data: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 7.0)).collect();
        let fit = IqxModel::fit(&data);
        assert!(fit.rmse(&data) < 1e-6);
        assert!((fit.qoe(100.0) - 7.0).abs() < 0.2);
    }

    #[test]
    fn fit_scale_invariance_in_qos() {
        // QoS in [0, 1e6] instead of [0, 1]: γ grid must adapt.
        let model = IqxModel {
            alpha: 3.0,
            beta: 9.0,
            gamma: 4e-6,
        };
        let data: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let q = i as f64 * 2e4;
                (q, model.qoe(q))
            })
            .collect();
        let fit = IqxModel::fit(&data);
        assert!(fit.rmse(&data) < 0.05, "rmse {}", fit.rmse(&data));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_points_panics() {
        let _ = IqxModel::fit(&[(0.0, 1.0), (1.0, 2.0)]);
    }
}
