//! # exbox-core — the ExBox experience-management middlebox
//!
//! Reproduction of the primary contribution of *“ExBox: Experience
//! Management Middlebox for Wireless Networks”* (CoNEXT 2016):
//! rethinking wireless capacity as an **Experiential Capacity Region
//! (ExCR)** — the set of traffic matrices whose flows all meet their
//! QoE thresholds — and learning its boundary online to drive
//! admission control and network selection from a gateway middlebox.
//!
//! * [`matrix`] — traffic matrices `<a_{1,1} … a_{k,r}>` over
//!   (application class × SNR level) and their feature encoding.
//! * [`iqx`] — the IQX hypothesis `QoE = α + β·e^(−γ·QoS)` with a
//!   robust least-squares fitter (paper §3.2, Fig. 12).
//! * [`qoe`] — the QoE Estimator: per-class IQX models plus
//!   acceptability thresholds mapping QoE to `Y ∈ {+1, −1}`.
//! * [`admittance`] — the Admittance Classifier: bootstrap phase with
//!   cross-validated exit, online batch retraining (paper §3.1).
//! * [`baselines`] — the `RateBased` and `MaxClient` industry
//!   baselines behind the same [`baselines::AdmissionController`]
//!   trait as ExBox itself (paper §5.3).
//! * [`selection`] — hyperplane-distance network selection across
//!   multiple cells (paper §4.1).
//! * [`middlebox`] — the packet-facing assembly: early
//!   classification → admission → QoS metering → periodic
//!   re-evaluation (paper Fig. 5, §4.3).
//! * [`apps`] — app-based admission control (the paper's §4.5 future
//!   work): subsidiary flows ride their app's dominant-flow decision.
//! * [`excr`] — extract the learnt region as Fig.-2-style slices,
//!   per-axis capacities and frontier curves.
//! * [`persist`] — save/load fitted QoE estimators (the paper's §4.4
//!   model sharing across networks) and full-state `exbox-ckpt`
//!   checkpoints for crash-safe restarts.
//! * [`recovery`] — deterministic fault injection ([`FaultPlan`], the
//!   `EXBOX_FAULTS` knob) and the bounded retrain backoff behind the
//!   middlebox's degraded-mode policy.
//! * [`gateway`] — the concurrent serving layer: flow-hash sharding
//!   (`EXBOX_SHARDS`), lock-free epoch-stamped model snapshots, and a
//!   background trainer that keeps retraining and checkpointing off
//!   the packet path.
//! * [`flowtable`] — the million-flow state layer: slab-backed
//!   [`flowtable::FlowMap`] with stable slots and insertion-order
//!   iteration, the generation-stamped [`flowtable::RejectedRing`],
//!   and the hierarchical [`flowtable::TimerWheel`] behind incremental
//!   polling (`EXBOX_POLL_WHEEL`).
//!
//! ## Quick start
//!
//! ```
//! use exbox_core::prelude::*;
//! use exbox_ml::Label;
//! use exbox_net::AppClass;
//!
//! // Learn a toy ExCR: the cell supports at most 5 flows.
//! let mut exbox = ExBoxController::new(AdmittanceClassifier::new(
//!     AdmittanceConfig::default(),
//! ));
//! for n in 0..80u32 {
//!     let total = n % 9;
//!     let mut m = TrafficMatrix::empty();
//!     for _ in 0..total {
//!         m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
//!     }
//!     let y = if total <= 5 { Label::Pos } else { Label::Neg };
//!     exbox.on_observation(m, y);
//! }
//! assert!(!exbox.is_bootstrapping());
//! ```

pub mod admittance;
pub mod apps;
pub mod baselines;
pub mod excr;
pub mod flowtable;
pub mod gateway;
pub mod iqx;
pub mod matrix;
pub mod middlebox;
pub mod persist;
pub mod qoe;
pub mod recovery;
pub mod selection;
pub(crate) mod sync;

pub use admittance::{AdmittanceClassifier, AdmittanceConfig, ClassifierBackend, Phase};
pub use apps::{AppAdmission, AppKey};
pub use baselines::{
    AdmissionController, Decision, ExBoxController, FlowRequest, MaxClient, RateBased,
};
pub use excr::{boundary_points, max_admissible, region_slice, RegionCell};
pub use flowtable::{FlowMap, FlowSlot, RejectedRing, TimerWheel};
pub use gateway::{
    ConcurrentGateway, GatewayConfig, GatewayShard, ModelSnapshot, SharedMatrix, SnapshotCell,
    SnapshotReader,
};
pub use iqx::IqxModel;
pub use matrix::{FlowKind, SnrLevel, TrafficMatrix};
pub use middlebox::{
    Action, DecisionEvent, DecisionKind, DecisionReason, Middlebox, MiddleboxConfig, PollVerdict,
};
pub use persist::{
    load_checkpoint, load_checkpoint_from_path, load_estimator, save_checkpoint,
    save_checkpoint_to_path, save_estimator,
};
pub use qoe::{ClassQoeModel, MetricDirection, QoeEstimator};
pub use recovery::{FaultKind, FaultPlan, RetryBackoff};
pub use selection::{NetworkCell, NetworkSelector, Selection};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::admittance::{AdmittanceClassifier, AdmittanceConfig, ClassifierBackend, Phase};
    pub use crate::apps::{AppAdmission, AppKey};
    pub use crate::baselines::{
        AdmissionController, Decision, ExBoxController, FlowRequest, MaxClient, RateBased,
    };
    pub use crate::gateway::{
        ConcurrentGateway, GatewayConfig, GatewayShard, ModelSnapshot, PipelineHandle, SharedMatrix,
    };
    pub use crate::iqx::IqxModel;
    pub use crate::matrix::{FlowKind, SnrLevel, TrafficMatrix};
    pub use crate::middlebox::{
        Action, DecisionEvent, DecisionKind, DecisionReason, Middlebox, MiddleboxConfig,
        PollVerdict,
    };
    pub use crate::persist::{
        load_checkpoint, load_checkpoint_from_path, save_checkpoint, save_checkpoint_to_path,
    };
    pub use crate::qoe::{
        paper_directions, train_estimator, ClassQoeModel, MetricDirection, QoeEstimator,
    };
    pub use crate::recovery::{FaultKind, FaultPlan, RetryBackoff};
    pub use crate::selection::{NetworkCell, NetworkSelector, Selection};
}
