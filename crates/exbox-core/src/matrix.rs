//! Traffic matrices and the Experiential Capacity Region.
//!
//! The paper's central object (§2.1): with `k` application classes
//! and `r` SNR levels, the network state is the matrix
//! `<a_{1,1}, …, a_{k,r}>` where `a_{i,j}` counts active flows of
//! class `i` whose wireless link sits in SNR level `s_j`. A matrix is
//! *achievable* when every flow's (thresholded) QoE is acceptable
//! simultaneously; the set of achievable matrices is the Experiential
//! Capacity Region (ExCR). ExBox learns the ExCR *boundary* rather
//! than enumerating the region.

use exbox_net::AppClass;

/// Discrete SNR level — mirrors `exbox_sim::phy::SnrLevel` without
/// depending on the simulator crate (the middlebox must not peek at
/// simulator internals; it receives levels from AP/eNodeB reports,
/// §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SnrLevel {
    /// Cell-edge link.
    Low,
    /// Near-AP link.
    High,
}

impl SnrLevel {
    /// Number of levels (`r`).
    pub const COUNT: usize = 2;
    /// All levels in canonical order.
    pub const ALL: [SnrLevel; 2] = [SnrLevel::Low, SnrLevel::High];

    /// Canonical index in `0..COUNT`.
    pub const fn index(self) -> usize {
        match self {
            SnrLevel::Low => 0,
            SnrLevel::High => 1,
        }
    }

    /// Inverse of [`SnrLevel::index`].
    ///
    /// # Panics
    /// Panics if `i >= COUNT`.
    pub fn from_index(i: usize) -> SnrLevel {
        Self::ALL[i]
    }
}

impl std::fmt::Display for SnrLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnrLevel::Low => f.write_str("low"),
            SnrLevel::High => f.write_str("high"),
        }
    }
}

/// A `(class, SNR-level)` cell of the traffic matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKind {
    /// Application class.
    pub class: AppClass,
    /// SNR level of the client's link.
    pub snr: SnrLevel,
}

impl FlowKind {
    /// Construct a kind.
    pub fn new(class: AppClass, snr: SnrLevel) -> Self {
        FlowKind { class, snr }
    }

    /// Flat index into the `k·r` matrix vector (class-major).
    pub fn flat_index(self) -> usize {
        self.class.index() * SnrLevel::COUNT + self.snr.index()
    }
}

/// The traffic matrix `<a_{1,1}, …, a_{k,r}>` with `k = 3` classes
/// and `r = 2` SNR levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TrafficMatrix {
    counts: [u32; AppClass::COUNT * SnrLevel::COUNT],
}

impl TrafficMatrix {
    /// Dimensionality of the matrix vector (`k·r = 6`).
    pub const DIMS: usize = AppClass::COUNT * SnrLevel::COUNT;

    /// The empty network.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Count for one `(class, snr)` cell.
    pub fn count(&self, kind: FlowKind) -> u32 {
        self.counts[kind.flat_index()]
    }

    /// Rebuild a matrix from raw per-cell counts in canonical
    /// [`FlowKind::flat_index`] order. This is how the concurrent
    /// gateway's shared atomic occupancy cell materialises a
    /// [`TrafficMatrix`] for a decision without walking flow tables.
    pub fn from_counts(counts: [u32; Self::DIMS]) -> Self {
        TrafficMatrix { counts }
    }

    /// The raw per-cell counts in canonical [`FlowKind::flat_index`]
    /// order (the inverse of [`TrafficMatrix::from_counts`]).
    pub fn counts(&self) -> [u32; Self::DIMS] {
        self.counts
    }

    /// Total flows of a class across SNR levels.
    pub fn class_total(&self, class: AppClass) -> u32 {
        SnrLevel::ALL
            .iter()
            .map(|&s| self.count(FlowKind::new(class, s)))
            .sum()
    }

    /// Total active flows.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// A copy with one more flow of `kind` — the matrix that would
    /// result from admitting it.
    pub fn with_arrival(&self, kind: FlowKind) -> TrafficMatrix {
        let mut m = *self;
        m.counts[kind.flat_index()] += 1;
        m
    }

    /// A copy with one less flow of `kind` (saturating at zero).
    pub fn with_departure(&self, kind: FlowKind) -> TrafficMatrix {
        let mut m = *self;
        let c = &mut m.counts[kind.flat_index()];
        *c = c.saturating_sub(1);
        m
    }

    /// Record an arrival in place.
    pub fn add(&mut self, kind: FlowKind) {
        self.counts[kind.flat_index()] += 1;
    }

    /// Record a departure in place (saturating).
    pub fn remove(&mut self, kind: FlowKind) {
        let c = &mut self.counts[kind.flat_index()];
        *c = c.saturating_sub(1);
    }

    /// The matrix as an `f64` feature vector in canonical order —
    /// the `X_m` encoding fed to the Admittance Classifier. The label
    /// `Y_m` is a property of the *resulting* matrix (paper §3.1:
    /// "+1 denotes that if flow m is admitted then still the new
    /// traffic matrix will have an acceptable QoE"), so the resulting
    /// matrix itself is the natural feature encoding, giving the
    /// `k·r + 1`-dimensional hyperplane the paper describes.
    pub fn features(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// [`TrafficMatrix::features`] into a caller-provided buffer —
    /// typically a `[f64; TrafficMatrix::DIMS]` stack array, keeping
    /// the per-packet admission path allocation-free.
    ///
    /// # Panics
    /// Panics unless `out.len() == DIMS`.
    pub fn features_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), Self::DIMS, "feature buffer length mismatch");
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = c as f64;
        }
    }

    /// Enumerate all kinds with non-zero count, with their counts.
    pub fn iter_kinds(&self) -> impl Iterator<Item = (FlowKind, u32)> + '_ {
        AppClass::ALL.into_iter().flat_map(move |class| {
            SnrLevel::ALL.into_iter().filter_map(move |snr| {
                let kind = FlowKind::new(class, snr);
                let c = self.count(kind);
                (c > 0).then_some((kind, c))
            })
        })
    }
}

impl std::fmt::Display for TrafficMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_indices_are_unique_and_dense() {
        let mut seen = [false; TrafficMatrix::DIMS];
        for class in AppClass::ALL {
            for snr in SnrLevel::ALL {
                let i = FlowKind::new(class, snr).flat_index();
                assert!(!seen[i], "duplicate index {i}");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn arrival_departure_roundtrip() {
        let kind = FlowKind::new(AppClass::Streaming, SnrLevel::Low);
        let m = TrafficMatrix::empty().with_arrival(kind);
        assert_eq!(m.count(kind), 1);
        assert_eq!(m.total(), 1);
        let back = m.with_departure(kind);
        assert_eq!(back, TrafficMatrix::empty());
    }

    #[test]
    fn departure_saturates_at_zero() {
        let kind = FlowKind::new(AppClass::Web, SnrLevel::High);
        let m = TrafficMatrix::empty().with_departure(kind);
        assert_eq!(m.count(kind), 0);
    }

    #[test]
    fn class_total_sums_levels() {
        let mut m = TrafficMatrix::empty();
        m.add(FlowKind::new(AppClass::Web, SnrLevel::Low));
        m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
        m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
        assert_eq!(m.class_total(AppClass::Web), 3);
        assert_eq!(m.class_total(AppClass::Streaming), 0);
    }

    #[test]
    fn features_match_counts() {
        let mut m = TrafficMatrix::empty();
        let kind = FlowKind::new(AppClass::Conferencing, SnrLevel::High);
        m.add(kind);
        m.add(kind);
        let f = m.features();
        assert_eq!(f.len(), TrafficMatrix::DIMS);
        assert_eq!(f[kind.flat_index()], 2.0);
        assert_eq!(f.iter().sum::<f64>(), 2.0);
    }

    #[test]
    fn iter_kinds_lists_nonzero_only() {
        let mut m = TrafficMatrix::empty();
        m.add(FlowKind::new(AppClass::Web, SnrLevel::Low));
        m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        let kinds: Vec<(FlowKind, u32)> = m.iter_kinds().collect();
        assert_eq!(kinds.len(), 2);
        assert!(kinds.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn display_format() {
        let mut m = TrafficMatrix::empty();
        m.add(FlowKind::new(AppClass::Web, SnrLevel::Low));
        assert_eq!(format!("{m}"), "<1,0,0,0,0,0>");
    }

    #[test]
    fn matrices_are_hashable_for_dedup() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let kind = FlowKind::new(AppClass::Web, SnrLevel::Low);
        set.insert(TrafficMatrix::empty());
        set.insert(TrafficMatrix::empty().with_arrival(kind));
        set.insert(TrafficMatrix::empty()); // duplicate
        assert_eq!(set.len(), 2);
    }
}
