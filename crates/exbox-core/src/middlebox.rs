//! The ExBox middlebox: the packet-facing assembly (paper Fig. 5).
//!
//! Wires the substrates into the gateway-resident pipeline:
//!
//! 1. every packet updates the flow table; the first packets of a new
//!    flow run through early traffic classification (§4.2: "a flow
//!    needs to be admitted briefly before any admission control
//!    decision is made"),
//! 2. once classified, the flow's `(class, SNR-level)` forms the
//!    arrival tuple and the Admittance Classifier decides,
//! 3. admitted flows are QoS-metered; periodic polls estimate QoE via
//!    the fitted IQX models, feed `(X, Y)` observations back into the
//!    classifier, and re-evaluate admitted flows whose circumstances
//!    changed (§4.3 — mobility, app adaptation).
//!
//! ## Crash safety and degraded mode
//!
//! [`Middlebox::checkpoint`] snapshots the learnt state (classifier +
//! QoE fits) into the `exbox-ckpt` format; [`Middlebox::restore`]
//! resumes from it without re-entering bootstrap. When no model is
//! servable — a checkpoint failed to restore, or retraining keeps
//! failing — the middlebox degrades to the occupancy baseline
//! ([`MaxClient`]) instead of blindly admitting or rejecting, counted
//! by `recovery.fallback_decisions`. Fault injection for all of this
//! lives in [`crate::recovery`] (`EXBOX_FAULTS`).
//!
//! ## Relation to the concurrent gateway
//!
//! [`Middlebox`] is the single-threaded assembly: one flow table, one
//! in-line Admittance Classifier, `&mut self` everywhere. The
//! multi-core serving layer in [`crate::gateway`] is the same pipeline
//! re-partitioned — a `Middlebox` behaves exactly like a
//! [`crate::gateway::ConcurrentGateway`] with **one shard whose
//! trainer runs inline**:
//!
//! | `Middlebox`                         | `ConcurrentGateway`                          |
//! |-------------------------------------|----------------------------------------------|
//! | `matrix: TrafficMatrix` field       | shared atomic occupancy cell (`SharedMatrix`) |
//! | `admittance.decide(&resulting)`     | `ModelSnapshot::decide` via the lock-free snapshot cell |
//! | `admittance.observe(..)` during poll| observation batch over the bounded MPSC channel to the background trainer |
//! | `checkpoint()` on the caller thread | checkpoint request executed by the trainer, off the packet path |
//! | flow table / rejected set / decision cache | one instance of each **per shard** (flow-hash partitioned) |
//!
//! The single-threaded API is *not* deprecated: benches, the DES
//! simulator and the figure pipeline keep using it, and its verdicts
//! match a 1-shard gateway decision-for-decision (asserted in
//! `tests/gateway_concurrent.rs`).

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use exbox_ml::Label;
use exbox_net::{
    AppClass, Duration, EarlyClassifier, FlowKey, FlowTable, Instant, Packet, QosMeter,
};
use exbox_obs::{buckets, Counter, EventRing, Gauge, Histogram, MetricsRegistry};
use exbox_par::ThreadPool;

use crate::admittance::{AdmittanceClassifier, AdmittanceConfig, Phase};
use crate::baselines::{AdmissionController, FlowRequest, MaxClient};
use crate::flowtable::{FlowMap, FlowSlot, RejectedRing, TimerWheel};
use crate::matrix::{FlowKind, SnrLevel, TrafficMatrix};
use crate::persist;
use crate::qoe::QoeEstimator;
use crate::recovery::{FaultKind, FaultPlan};

/// What the datapath should do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Forward normally.
    Forward,
    /// Drop: the flow was rejected by admission control.
    Drop,
}

/// Outcome of a periodic poll for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollVerdict {
    /// Flow keeps its admission.
    Keep,
    /// Flow should be discontinued or offloaded (§4.3).
    Revoke,
}

/// What happened to a flow in a [`DecisionEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Flow admitted at arrival.
    Admit,
    /// Flow rejected at arrival.
    Reject,
    /// Admission revoked by a later poll (§4.3).
    Revoke,
}

/// Why the middlebox decided the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// Classifier still bootstrapping: every arrival is admitted.
    Bootstrap,
    /// The resulting matrix scored inside the learnt ExCR.
    InsideRegion,
    /// The resulting matrix scored outside the learnt ExCR.
    OutsideRegion,
    /// A poll re-evaluated the standing matrix against a re-learnt
    /// region and found it inadmissible.
    RegionReevaluation,
    /// No model was servable (failed restore or repeated retrain
    /// failures): the occupancy baseline decided instead.
    DegradedFallback,
}

/// One structured admission-control decision, kept in the middlebox's
/// bounded audit ring so rejections and revocations are explainable
/// after the fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionEvent {
    /// When the decision was taken (packet timestamp or poll time).
    pub at: Instant,
    /// The flow decided on.
    pub flow: FlowKey,
    /// Its classified application class.
    pub class: AppClass,
    /// Its SNR level at decision time.
    pub snr: SnrLevel,
    /// Admit / reject / revoke.
    pub verdict: DecisionKind,
    /// Signed classifier score of the matrix the decision was about
    /// (positive ⇒ inside the region); `None` before the first model.
    pub margin: Option<f64>,
    /// The rule that produced the verdict.
    pub reason: DecisionReason,
}

impl fmt::Display for DecisionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {} ({}, {:?} SNR) at {:?}: {:?}",
            self.verdict, self.flow, self.class, self.snr, self.at, self.reason
        )?;
        match self.margin {
            Some(m) => write!(f, " margin={m:.4}"),
            None => write!(f, " margin=n/a"),
        }
    }
}

/// Instrumentation handles for the middlebox hot paths. Counter pairs
/// are exact: `admits`/`rejects` tally arrival decisions one-to-one
/// with the returned [`Action`]s; `revokes` tallies the
/// [`PollVerdict::Revoke`]s a poll returns, and `keeps` counts every
/// flow a poll left admitted (kept flows are counted in bulk, not
/// returned — see [`Middlebox::poll`]).
#[derive(Debug)]
struct MiddleboxMetrics {
    /// `middlebox.packets` — packets seen by [`Middlebox::process_packet`].
    packets: Arc<Counter>,
    /// `middlebox.admits` — arrival decisions that admitted the flow.
    admits: Arc<Counter>,
    /// `middlebox.rejects` — arrival decisions that rejected the flow.
    rejects: Arc<Counter>,
    /// `middlebox.drops_rejected` — packets dropped because their flow
    /// was already rejected.
    drops_rejected: Arc<Counter>,
    /// `middlebox.keeps` — poll verdicts keeping a flow.
    keeps: Arc<Counter>,
    /// `middlebox.revokes` — poll verdicts revoking a flow.
    revokes: Arc<Counter>,
    /// `middlebox.departures` — admitted flows that ended.
    departures: Arc<Counter>,
    /// `middlebox.polls` — polls that actually ran (interval elapsed).
    polls: Arc<Counter>,
    /// `middlebox.rejected_evictions` — rejected-flow records evicted
    /// because the bounded rejected set hit its capacity.
    rejected_evictions: Arc<Counter>,
    /// `middlebox.rejected_occupancy` — live records in the bounded
    /// rejected set (capacity pressure made visible).
    rejected_occupancy: Arc<Gauge>,
    /// `recovery.fallback_decisions` — arrival decisions served by the
    /// occupancy baseline because no model was available.
    fallback_decisions: Arc<Counter>,
    /// `recovery.poll_errors` — polls whose QoE-estimation pass failed
    /// (injected or real); the observation feed is skipped.
    poll_errors: Arc<Counter>,
    /// `recovery.checkpoint_writes` — checkpoints written successfully.
    checkpoint_writes: Arc<Counter>,
    /// `recovery.restores` — middleboxes restored from a checkpoint.
    restores: Arc<Counter>,
    /// `middlebox.decision_latency_ns` — time to decide one arrival.
    decision_latency_ns: Arc<Histogram>,
    /// `middlebox.poll_latency_ns` — time per executed poll.
    poll_latency_ns: Arc<Histogram>,
}

impl MiddleboxMetrics {
    fn bind(reg: &MetricsRegistry) -> Self {
        MiddleboxMetrics {
            packets: reg.counter("middlebox.packets"),
            admits: reg.counter("middlebox.admits"),
            rejects: reg.counter("middlebox.rejects"),
            drops_rejected: reg.counter("middlebox.drops_rejected"),
            keeps: reg.counter("middlebox.keeps"),
            revokes: reg.counter("middlebox.revokes"),
            departures: reg.counter("middlebox.departures"),
            polls: reg.counter("middlebox.polls"),
            rejected_evictions: reg.counter("middlebox.rejected_evictions"),
            rejected_occupancy: reg.gauge("middlebox.rejected_occupancy"),
            fallback_decisions: reg.counter("recovery.fallback_decisions"),
            poll_errors: reg.counter("recovery.poll_errors"),
            checkpoint_writes: reg.counter("recovery.checkpoint_writes"),
            restores: reg.counter("recovery.restores"),
            decision_latency_ns: reg
                .histogram("middlebox.decision_latency_ns", &buckets::latency_ns()),
            poll_latency_ns: reg.histogram("middlebox.poll_latency_ns", &buckets::latency_ns()),
        }
    }
}

/// Per-flow serving state held in the slab arena. `next_eval` is the
/// flow's timer-wheel deadline in poll ticks (`u64::MAX` while
/// unscheduled): set when the first QoS report of a window arrives,
/// cleared when a poll evaluates the flow.
#[derive(Debug)]
struct FlowState {
    kind: FlowKind,
    meter: QosMeter,
    next_eval: u64,
}

impl FlowState {
    fn new(kind: FlowKind) -> Self {
        FlowState {
            kind,
            meter: QosMeter::new(),
            next_eval: u64::MAX,
        }
    }
}

/// Minimum flow count before a poll's per-flow QoE estimation is
/// fanned over the thread pool; below this the scoped-thread spawn
/// costs more than the work.
const PAR_POLL_MIN_FLOWS: usize = 64;

/// `true` unless `EXBOX_POLL_WHEEL=0`: whether polls are incremental
/// (timer-wheel driven) by default. Invalid values warn and fall back
/// to the wheel, like every other env knob.
fn poll_wheel_from_env() -> bool {
    match std::env::var("EXBOX_POLL_WHEEL") {
        Ok(v) => exbox_par::parse_env_knob::<u8>("EXBOX_POLL_WHEEL", &v, |n| *n <= 1)
            .map(|n| n == 1)
            .unwrap_or(true),
        Err(_) => true,
    }
}

/// Configuration for the middlebox shell.
#[derive(Debug, Clone)]
pub struct MiddleboxConfig {
    /// Packets buffered before early classification fires.
    pub classify_window: usize,
    /// Poll cadence for QoE estimation and re-evaluation.
    pub poll_interval: Duration,
    /// Most recent [`DecisionEvent`]s retained in the audit ring.
    pub decision_log_capacity: usize,
    /// Most rejected flows remembered for packet dropping (minimum 1).
    /// Oldest rejection records are evicted FIFO beyond this, counted
    /// by `middlebox.rejected_evictions`; an evicted flow that keeps
    /// sending re-enters early classification.
    pub rejected_capacity: usize,
    /// Flow cap used by the degraded-mode [`MaxClient`] fallback when
    /// no classifier model is servable (minimum 1).
    pub fallback_max_flows: u32,
    /// Incremental polling: flows carry a next-evaluation deadline in
    /// a hierarchical timer wheel and a poll evaluates only the flows
    /// whose meters saw traffic since their last window — O(due), not
    /// O(all flows). Verdict-equivalent to the full scan
    /// (property-tested in `tests/flowtable_props.rs`); disable with
    /// `EXBOX_POLL_WHEEL=0` to force the scan path. Defaults from the
    /// environment at construction.
    pub poll_wheel: bool,
}

impl Default for MiddleboxConfig {
    fn default() -> Self {
        MiddleboxConfig {
            classify_window: 8,
            poll_interval: Duration::from_secs(2),
            decision_log_capacity: 1024,
            rejected_capacity: 4096,
            fallback_max_flows: 10,
            poll_wheel: poll_wheel_from_env(),
        }
    }
}

/// The assembled middlebox for one cell.
#[derive(Debug)]
pub struct Middlebox {
    cfg: MiddleboxConfig,
    table: FlowTable,
    early: EarlyClassifier,
    admittance: AdmittanceClassifier,
    estimator: QoeEstimator,
    matrix: TrafficMatrix,
    flows: FlowMap<FlowState>,
    rejected: RejectedRing,
    /// Next-evaluation deadlines for admitted flows, in poll ticks.
    wheel: TimerWheel,
    /// Polls executed so far == the wheel's current tick.
    poll_seq: u64,
    /// Reusable per-poll slot buffer (due flows on the wheel path, the
    /// whole arena on the scan path) — no per-poll allocation.
    poll_scratch: Vec<FlowSlot>,
    last_poll: Instant,
    metrics: MiddleboxMetrics,
    decisions: EventRing<DecisionEvent>,
    /// Occupancy baseline serving decisions while no model is
    /// available (degraded mode).
    fallback: MaxClient,
    /// Set when a restore failed and the middlebox started fresh; the
    /// fallback then gates admissions (even during bootstrap) until a
    /// model is re-learnt.
    recovering: bool,
    faults: FaultPlan,
}

impl Middlebox {
    /// Assemble a middlebox from a trained QoE estimator and a fresh
    /// (or pre-trained) Admittance Classifier, reporting metrics to
    /// the process-wide [`exbox_obs::global`] registry.
    pub fn new(
        cfg: MiddleboxConfig,
        estimator: QoeEstimator,
        admittance: AdmittanceClassifier,
    ) -> Self {
        Self::with_registry(cfg, estimator, admittance, exbox_obs::global())
    }

    /// Like [`Middlebox::new`] but reporting to an explicit registry,
    /// so tests can assert exact counter values in isolation.
    pub fn with_registry(
        cfg: MiddleboxConfig,
        estimator: QoeEstimator,
        mut admittance: AdmittanceClassifier,
        registry: &MetricsRegistry,
    ) -> Self {
        let window = cfg.classify_window;
        let log_capacity = cfg.decision_log_capacity.max(1);
        let rejected = RejectedRing::new(cfg.rejected_capacity);
        let fallback = MaxClient::new(cfg.fallback_max_flows.max(1));
        let faults = FaultPlan::from_env(registry);
        admittance.set_fault_plan(faults.clone());
        Middlebox {
            cfg,
            table: FlowTable::new(),
            early: EarlyClassifier::with_default_profiles(window),
            admittance,
            estimator,
            matrix: TrafficMatrix::empty(),
            flows: FlowMap::new(),
            rejected,
            wheel: TimerWheel::new(),
            poll_seq: 0,
            poll_scratch: Vec::new(),
            last_poll: Instant::ZERO,
            metrics: MiddleboxMetrics::bind(registry),
            decisions: EventRing::new(log_capacity),
            fallback,
            recovering: false,
            faults,
        }
    }

    /// Replace the fault-injection plan (tests and fault drills); the
    /// wrapped classifier shares the same plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.admittance.set_fault_plan(plan.clone());
        self.faults = plan;
    }

    /// True while admission decisions are served by the occupancy
    /// fallback instead of the learnt region: no model is servable and
    /// either the classifier already left bootstrap (it lost or never
    /// regained its model) or the middlebox is recovering from a
    /// failed restore.
    pub fn is_degraded(&self) -> bool {
        !self.admittance.model_available()
            && (self.recovering || self.admittance.phase() == Phase::Online)
    }

    /// True until the first model is (re-)learnt after a failed
    /// restore.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// The bounded audit trail of admit/reject/revoke decisions,
    /// newest last.
    pub fn decision_log(&self) -> &EventRing<DecisionEvent> {
        &self.decisions
    }

    /// Register a known server endpoint with the early classifier
    /// (the DNS/SNI prior; see `exbox_net::EarlyClassifier`).
    pub fn learn_server_hint(&mut self, server: std::net::Ipv4Addr, class: exbox_net::AppClass) {
        self.early.learn_server_hint(server, class);
    }

    /// Current traffic matrix as the middlebox believes it.
    pub fn matrix(&self) -> TrafficMatrix {
        self.matrix
    }

    /// The wrapped Admittance Classifier.
    pub fn admittance(&self) -> &AdmittanceClassifier {
        &self.admittance
    }

    /// Number of currently admitted flows.
    pub fn admitted_flows(&self) -> usize {
        self.flows.len()
    }

    /// Snapshot the learnt state (Admittance Classifier + QoE fits)
    /// into the versioned `exbox-ckpt` format. Live flow-table state
    /// is deliberately not checkpointed: after a crash the flows are
    /// re-discovered through early classification, while the learnt
    /// region — the expensive part — survives.
    pub fn checkpoint<W: Write>(&self, out: W) -> io::Result<()> {
        persist::save_checkpoint(&self.admittance, &self.estimator, out)?;
        self.metrics.checkpoint_writes.inc();
        Ok(())
    }

    /// [`Middlebox::checkpoint`] to a file, written atomically (temp
    /// file + fsync + rename) so a crash mid-write never clobbers the
    /// previous good checkpoint.
    pub fn checkpoint_to_path<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        persist::save_checkpoint_to_path(&self.admittance, &self.estimator, path.as_ref())?;
        self.metrics.checkpoint_writes.inc();
        Ok(())
    }

    /// Rebuild a middlebox from a checkpoint, resuming with the learnt
    /// region instead of re-entering bootstrap. Reports to the
    /// process-wide registry.
    pub fn restore<R: Read>(
        cfg: MiddleboxConfig,
        acfg: AdmittanceConfig,
        input: R,
    ) -> io::Result<Self> {
        Self::restore_with_registry(cfg, acfg, input, exbox_obs::global())
    }

    /// Like [`Middlebox::restore`] with an explicit registry.
    pub fn restore_with_registry<R: Read>(
        cfg: MiddleboxConfig,
        acfg: AdmittanceConfig,
        input: R,
        registry: &MetricsRegistry,
    ) -> io::Result<Self> {
        let (admittance, estimator) = persist::load_checkpoint(input, acfg, registry)?;
        let mb = Self::with_registry(cfg, estimator, admittance, registry);
        mb.metrics.restores.inc();
        Ok(mb)
    }

    /// [`Middlebox::restore`] from a checkpoint file. Checkpoint-read
    /// faults (`ckpt_corrupt` / `ckpt_truncate` in `EXBOX_FAULTS`) are
    /// injected here, against the in-memory copy — the file itself is
    /// never touched.
    pub fn restore_from_path<P: AsRef<Path>>(
        cfg: MiddleboxConfig,
        acfg: AdmittanceConfig,
        path: P,
    ) -> io::Result<Self> {
        Self::restore_from_path_with_registry(cfg, acfg, path, exbox_obs::global())
    }

    /// Like [`Middlebox::restore_from_path`] with an explicit registry.
    pub fn restore_from_path_with_registry<P: AsRef<Path>>(
        cfg: MiddleboxConfig,
        acfg: AdmittanceConfig,
        path: P,
        registry: &MetricsRegistry,
    ) -> io::Result<Self> {
        let faults = FaultPlan::from_env(registry);
        let (admittance, estimator) =
            persist::load_checkpoint_from_path(path.as_ref(), acfg, registry, &faults)?;
        let mb = Self::with_registry(cfg, estimator, admittance, registry);
        mb.metrics.restores.inc();
        Ok(mb)
    }

    /// Restore from a checkpoint file, degrading instead of dying: on
    /// any restore error (missing, torn, corrupt, malformed) a fresh
    /// middlebox is assembled around `fallback_estimator` with
    /// [`Middlebox::is_recovering`] set, so the occupancy baseline
    /// gates admissions until a model is re-learnt. The error, if any,
    /// is returned alongside for logging.
    pub fn recover_from_path<P: AsRef<Path>>(
        cfg: MiddleboxConfig,
        acfg: AdmittanceConfig,
        fallback_estimator: QoeEstimator,
        path: P,
        registry: &MetricsRegistry,
    ) -> (Self, Option<io::Error>) {
        match Self::restore_from_path_with_registry(cfg.clone(), acfg.clone(), path, registry) {
            Ok(mb) => (mb, None),
            Err(err) => {
                let fresh = AdmittanceClassifier::with_registry(acfg, registry);
                let mut mb = Self::with_registry(cfg, fallback_estimator, fresh, registry);
                mb.recovering = true;
                (mb, Some(err))
            }
        }
    }

    /// Process one packet crossing the gateway. `snr` is the client's
    /// current SNR level as reported by the AP/eNodeB (§3.3).
    ///
    /// # Example
    ///
    /// ```
    /// use exbox_core::admittance::{AdmittanceClassifier, AdmittanceConfig};
    /// use exbox_core::matrix::SnrLevel;
    /// use exbox_core::middlebox::{Action, Middlebox, MiddleboxConfig};
    /// use exbox_core::qoe::{paper_directions, train_estimator, QoeEstimator, QosScale};
    /// use exbox_net::packet::{Direction, FlowKey, Packet, Protocol};
    /// use exbox_net::time::Instant;
    ///
    /// let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
    ///     (0..20).map(|i| { let q = i as f64 / 19.0; (q, a + b * (-g * q).exp()) }).collect()
    /// };
    /// let estimator = train_estimator(
    ///     &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
    ///     QoeEstimator::paper_thresholds(),
    ///     paper_directions(),
    ///     QosScale::new(1e3, 1e8),
    /// );
    /// let mut mb = Middlebox::new(
    ///     MiddleboxConfig::default(),
    ///     estimator,
    ///     AdmittanceClassifier::new(AdmittanceConfig::default()),
    /// );
    /// let flow = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
    /// let pkt = Packet::new(Instant::from_nanos(0), 1200, flow, Direction::Downlink, 0);
    /// // Pre-admission packets are forwarded while the early classifier
    /// // gathers evidence (§4.2).
    /// assert_eq!(mb.process_packet(&pkt, SnrLevel::High), Action::Forward);
    /// ```
    pub fn process_packet(&mut self, pkt: &Packet, snr: SnrLevel) -> Action {
        self.metrics.packets.inc();
        self.process_packet_inner(pkt, snr)
    }

    /// Process a batch of packets, amortising the per-packet overheads:
    /// the packet counter is flushed once per batch, and consecutive
    /// packets of one flow in a *terminal* state (already admitted or
    /// already rejected) skip the hash lookups entirely via a
    /// run-length disposition cache. Terminal states cannot flip
    /// mid-batch — revocation happens only in [`Middlebox::poll`] and
    /// departure only in [`Middlebox::flow_departed`], neither of which
    /// can run inside a batch — so the returned verdicts are identical
    /// to calling [`Middlebox::process_packet`] per packet, for every
    /// split of the stream (property-tested in `tests/batch_props.rs`).
    ///
    /// # Example
    ///
    /// ```
    /// use exbox_core::admittance::{AdmittanceClassifier, AdmittanceConfig};
    /// use exbox_core::matrix::SnrLevel;
    /// use exbox_core::middlebox::{Action, Middlebox, MiddleboxConfig};
    /// use exbox_core::qoe::{paper_directions, train_estimator, QoeEstimator, QosScale};
    /// use exbox_net::packet::{Direction, FlowKey, Packet, Protocol};
    /// use exbox_net::time::Instant;
    ///
    /// let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
    ///     (0..20).map(|i| { let q = i as f64 / 19.0; (q, a + b * (-g * q).exp()) }).collect()
    /// };
    /// let estimator = train_estimator(
    ///     &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
    ///     QoeEstimator::paper_thresholds(),
    ///     paper_directions(),
    ///     QosScale::new(1e3, 1e8),
    /// );
    /// let mut mb = Middlebox::new(
    ///     MiddleboxConfig::default(),
    ///     estimator,
    ///     AdmittanceClassifier::new(AdmittanceConfig::default()),
    /// );
    /// let flow = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
    /// let batch: Vec<(Packet, SnrLevel)> = (0..4)
    ///     .map(|i| {
    ///         let p = Packet::new(Instant::from_nanos(i), 1200, flow, Direction::Downlink, i);
    ///         (p, SnrLevel::High)
    ///     })
    ///     .collect();
    /// let verdicts = mb.process_batch(&batch);
    /// assert_eq!(verdicts.len(), 4);
    /// assert!(verdicts.iter().all(|v| *v == Action::Forward));
    /// ```
    pub fn process_batch(&mut self, pkts: &[(Packet, SnrLevel)]) -> Vec<Action> {
        let mut out = Vec::with_capacity(pkts.len());
        // Last flow seen and its terminal disposition, if any. `None`
        // also covers still-unclassified flows, which must keep taking
        // the full path (each packet feeds the early classifier).
        let mut last: Option<(FlowKey, Action)> = None;
        let mut cached_drops = 0u64;
        for (pkt, snr) in pkts {
            match last {
                Some((key, Action::Drop)) if key == pkt.flow => {
                    // Same op order as the slow path: rejected flows
                    // drop before the flow table observes them.
                    cached_drops += 1;
                    out.push(Action::Drop);
                    continue;
                }
                Some((key, Action::Forward)) if key == pkt.flow => {
                    self.table.observe(pkt);
                    out.push(Action::Forward);
                    continue;
                }
                _ => {}
            }
            let act = self.process_packet_inner(pkt, *snr);
            last = if self.rejected.contains(&pkt.flow) {
                Some((pkt.flow, Action::Drop))
            } else if self.flows.contains_key(&pkt.flow) {
                Some((pkt.flow, Action::Forward))
            } else {
                None
            };
            out.push(act);
        }
        self.metrics.packets.add(pkts.len() as u64);
        self.metrics.drops_rejected.add(cached_drops);
        out
    }

    /// [`Middlebox::process_packet`] minus the packet counter, which
    /// the batch path flushes once per batch.
    fn process_packet_inner(&mut self, pkt: &Packet, snr: SnrLevel) -> Action {
        if self.rejected.contains(&pkt.flow) {
            self.metrics.drops_rejected.inc();
            return Action::Drop;
        }
        self.table.observe(pkt);
        if self.flows.contains_key(&pkt.flow) {
            return Action::Forward;
        }
        // Unclassified flow: keep feeding the early classifier. The
        // buffered packets are forwarded (brief pre-admission, §4.2).
        match self.early.observe(pkt) {
            None => Action::Forward,
            Some(class) => {
                let kind = FlowKind::new(class, snr);
                let resulting = self.matrix.with_arrival(kind);
                let degraded = self.is_degraded();
                // One single-pass (and cache-served under steady load)
                // evaluation supplies both the label and the logged
                // margin; in degraded mode the occupancy baseline
                // stands in and the margin is unknowable.
                let ((label, margin), decide_ns) = if degraded {
                    let fallback = &mut self.fallback;
                    let matrix = &self.matrix;
                    exbox_obs::time_ns(move || {
                        fallback.sync_load(matrix, &|_| 0.0);
                        let req = FlowRequest {
                            kind,
                            demand_bps: 0.0,
                            resulting_matrix: resulting,
                        };
                        (fallback.decide(&req).as_label(), None)
                    })
                } else {
                    exbox_obs::time_ns(|| self.admittance.decide(&resulting))
                };
                self.metrics.decision_latency_ns.record(decide_ns);
                let reason = if degraded {
                    self.metrics.fallback_decisions.inc();
                    DecisionReason::DegradedFallback
                } else {
                    match (self.admittance.phase(), label) {
                        (Phase::Bootstrap, _) => DecisionReason::Bootstrap,
                        (Phase::Online, Label::Pos) => DecisionReason::InsideRegion,
                        (Phase::Online, Label::Neg) => DecisionReason::OutsideRegion,
                    }
                };
                let mut event = DecisionEvent {
                    at: pkt.timestamp,
                    flow: pkt.flow,
                    class,
                    snr,
                    verdict: DecisionKind::Admit,
                    margin,
                    reason,
                };
                match label {
                    Label::Pos => {
                        self.matrix = resulting;
                        self.flows.insert(pkt.flow, FlowState::new(kind));
                        self.metrics.admits.inc();
                        self.decisions.push(event);
                        Action::Forward
                    }
                    Label::Neg => {
                        Self::note_rejection(&mut self.rejected, &self.metrics, pkt.flow);
                        self.early.forget(&pkt.flow);
                        self.metrics.rejects.inc();
                        event.verdict = DecisionKind::Reject;
                        self.decisions.push(event);
                        Action::Drop
                    }
                }
            }
        }
    }

    /// Push a rejection record into the bounded ring, maintaining the
    /// eviction counter, the occupancy gauge and the warn-once
    /// capacity-pressure log. An associated fn so callers can hold
    /// disjoint borrows of the rest of `self`.
    fn note_rejection(rejected: &mut RejectedRing, metrics: &MiddleboxMetrics, key: FlowKey) {
        let ins = rejected.insert(key);
        metrics.rejected_evictions.add(ins.evicted);
        metrics.rejected_occupancy.set(rejected.len() as f64);
        if ins.pressure {
            eprintln!(
                "exbox: middlebox rejected-set eviction rate caught up with \
                 insertions ({} live / {} evicted) — raise rejected_capacity \
                 or expect re-classification churn",
                rejected.len(),
                rejected.evictions(),
            );
        }
    }

    /// Schedule `slot` for the next poll tick unless it is already on
    /// the wheel. Called on the first QoS report of a flow's window so
    /// an incremental poll visits exactly the flows with fresh meter
    /// data. An associated fn for the same disjoint-borrow reason as
    /// [`Middlebox::note_rejection`].
    fn schedule_eval(wheel: &mut TimerWheel, fs: &mut FlowState, slot: FlowSlot) {
        if fs.next_eval == u64::MAX {
            let deadline = wheel.now() + 1;
            fs.next_eval = deadline;
            wheel.schedule(slot, deadline);
        }
    }

    /// Record a delivery report for an admitted flow (from the AP's
    /// transmission-status feed in a real deployment, or from the
    /// simulator here).
    pub fn record_delivery(&mut self, key: &FlowKey, sent: Instant, received: Instant, size: u32) {
        if let Some(slot) = self.flows.slot_of(key) {
            if let Some((_, fs)) = self.flows.get_slot_mut(slot) {
                fs.meter.deliver(sent, received, size);
                if self.cfg.poll_wheel {
                    Self::schedule_eval(&mut self.wheel, fs, slot);
                }
            }
        }
    }

    /// Record a drop report for an admitted flow. Drop-only flows are
    /// scheduled too: they evaluate to "no estimate" exactly like the
    /// scan path, but their meters must be reset at the window edge.
    pub fn record_drop(&mut self, key: &FlowKey) {
        if let Some(slot) = self.flows.slot_of(key) {
            if let Some((_, fs)) = self.flows.get_slot_mut(slot) {
                fs.meter.drop_packet();
                if self.cfg.poll_wheel {
                    Self::schedule_eval(&mut self.wheel, fs, slot);
                }
            }
        }
    }

    /// A flow ended (FIN/idle-eviction): release its slot. Any pending
    /// timer-wheel entry goes stale and is skipped at its tick (the
    /// slot's generation no longer resolves).
    pub fn flow_departed(&mut self, key: &FlowKey) {
        if let Some(fs) = self.flows.remove(key) {
            self.matrix.remove(fs.kind);
            self.metrics.departures.inc();
        }
        self.rejected.remove(key);
        self.metrics
            .rejected_occupancy
            .set(self.rejected.len() as f64);
        self.early.forget(key);
        self.table.remove(key);
    }

    /// Periodic poll (paper §4.3): estimate admitted flows' QoE from
    /// their metered QoS, feed the aggregate observation to the
    /// Admittance Classifier, and re-evaluate the admitted set against
    /// the (possibly re-learnt) region. Returns **only the revoked
    /// flows** (empty when everything was kept — kept flows are tallied
    /// in the `middlebox.keeps` counter instead of materialised), in
    /// deterministic admission order, oldest first. A no-op before
    /// `poll_interval` has elapsed since the last poll.
    pub fn poll(&mut self, now: Instant) -> Vec<(FlowKey, PollVerdict)> {
        if now.saturating_since(self.last_poll) < self.cfg.poll_interval {
            return Vec::new();
        }
        self.last_poll = now;
        self.metrics.polls.inc();
        let (verdicts, poll_ns) = exbox_obs::time_ns(|| self.run_poll(now));
        self.metrics.poll_latency_ns.record(poll_ns);
        verdicts
    }

    /// The body of an executed poll (separated so [`Middlebox::poll`]
    /// can time it).
    fn run_poll(&mut self, now: Instant) -> Vec<(FlowKey, PollVerdict)> {
        if self.recovering && self.admittance.model_available() {
            self.recovering = false;
        }
        // One executed poll == one wheel tick. The wheel advances even
        // through empty polls so deadlines stay aligned with poll_seq.
        self.poll_seq += 1;
        let mut scratch = std::mem::take(&mut self.poll_scratch);
        scratch.clear();
        if self.cfg.poll_wheel {
            // Incremental path: only flows whose meters saw traffic
            // since their last window are due. Departed flows leave
            // stale slots behind (generation mismatch) — drop them.
            self.wheel.advance(self.poll_seq, &mut scratch);
            scratch.retain(|&slot| self.flows.get_slot(slot).is_some());
        } else {
            // Fallback scan: the whole arena in insertion order,
            // reusing the scratch buffer — no per-poll allocation, no
            // key collection, no sort.
            self.flows.collect_slots(&mut scratch);
        }
        if self.flows.is_empty() {
            self.poll_scratch = scratch;
            return Vec::new();
        }

        // Estimate acceptability per flow; the matrix label is the
        // conjunction (a matrix is achievable iff ALL flows are OK),
        // maintained as a count of measured / unacceptable flows.
        // Flows are independent here, so large cells fan the
        // estimation over the thread pool — index-ordered reassembly
        // plus the order-insensitive conjunction keep the outcome
        // identical for every thread count. Idle flows (no traffic
        // this window) yield no evidence on either path: the scan
        // visits and skips them, the wheel never schedules them.
        let fold = |(measured, unacceptable): (u64, u64), v: &Option<bool>| match v {
            Some(ok) => (measured + 1, unacceptable + u64::from(!ok)),
            None => (measured, unacceptable),
        };
        let (measured, unacceptable) = {
            let flows = &self.flows;
            let estimator = &self.estimator;
            let eval = |slot: &FlowSlot| -> Option<bool> {
                let (_, fs) = flows.get_slot(*slot)?;
                let sample = fs.meter.sample();
                if sample.throughput_bps <= 0.0 {
                    None // idle or drop-only flow: no evidence
                } else {
                    Some(estimator.acceptable(fs.kind.class, &sample))
                }
            };
            if scratch.len() >= PAR_POLL_MIN_FLOWS {
                ThreadPool::global()
                    .parallel_map(scratch.len(), |i| eval(&scratch[i]))
                    .iter()
                    .fold((0, 0), fold)
            } else {
                scratch
                    .iter()
                    .map(eval)
                    .fold((0, 0), |acc, v| fold(acc, &v))
            }
        };
        let measured_any = measured > 0;
        let all_ok = unacceptable == 0;
        // A failed estimation pass (injected here; a wedged AP stats
        // feed in a real deployment) yields no trustworthy labels, so
        // the observation is skipped — re-evaluation against the
        // already-learnt region below still runs.
        let poll_errored = self.faults.should_inject(FaultKind::PollError);
        if poll_errored {
            self.metrics.poll_errors.inc();
        } else if measured_any {
            let label = if all_ok { Label::Pos } else { Label::Neg };
            self.admittance.observe(self.matrix, label);
        }

        // Re-evaluate the admitted set against the current region; an
        // inadmissible matrix sheds flows (offload/discontinue is
        // policy, the middlebox just reports). X_m for an ongoing flow
        // is the current matrix (it already contains the flow), so the
        // matrix only changes when a flow is revoked — one decision
        // per matrix state. Revocations shed the oldest admission
        // first (deterministic arena insertion order); kept flows are
        // counted in bulk, never materialised.
        let mut verdicts: Vec<(FlowKey, PollVerdict)> = Vec::new();
        if self.admittance.phase() == Phase::Online {
            let (mut label, mut margin) = self.admittance.decide(&self.matrix);
            if label == Label::Pos {
                self.metrics.keeps.add(self.flows.len() as u64);
            }
            while label == Label::Neg {
                let Some((key, kind)) = self.flows.front().map(|(k, fs)| (*k, fs.kind)) else {
                    break;
                };
                self.matrix.remove(kind);
                self.flows.remove(&key);
                Self::note_rejection(&mut self.rejected, &self.metrics, key);
                verdicts.push((key, PollVerdict::Revoke));
                self.metrics.revokes.inc();
                self.decisions.push(DecisionEvent {
                    at: now,
                    flow: key,
                    class: kind.class,
                    snr: kind.snr,
                    verdict: DecisionKind::Revoke,
                    margin,
                    reason: DecisionReason::RegionReevaluation,
                });
                // Removing one flow may already fix the matrix;
                // re-check before revoking more.
                let (next_label, next_margin) = self.admittance.decide(&self.matrix);
                label = next_label;
                margin = next_margin;
            }
        }
        // Fresh measurement windows for the next poll. The wheel path
        // touches only the flows it evaluated (everything else has an
        // empty meter by construction); revoked flows fail the
        // generation check and are skipped.
        if self.cfg.poll_wheel {
            for &slot in &scratch {
                if let Some((_, fs)) = self.flows.get_slot_mut(slot) {
                    fs.meter.reset();
                    fs.next_eval = u64::MAX;
                }
            }
        } else {
            self.flows.for_each_value_mut(|fs| fs.meter.reset());
        }
        scratch.clear();
        self.poll_scratch = scratch;
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admittance::AdmittanceConfig;
    use crate::qoe::{paper_directions, train_estimator, QoeEstimator};
    use exbox_net::{AppClass, Direction, Protocol};

    fn estimator() -> QoeEstimator {
        let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
            (0..20)
                .map(|i| {
                    let q = i as f64 / 19.0;
                    (q, a + b * (-g * q).exp())
                })
                .collect()
        };
        train_estimator(
            &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
            QoeEstimator::paper_thresholds(),
            paper_directions(),
            crate::qoe::QosScale::new(1e3, 1e8),
        )
    }

    fn streaming_pkts(key: FlowKey, n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                Packet::new(
                    Instant::from_millis(2 * i as u64),
                    1400,
                    key,
                    Direction::Downlink,
                    i as u64,
                )
            })
            .collect()
    }

    fn mb() -> Middlebox {
        Middlebox::new(
            MiddleboxConfig::default(),
            estimator(),
            AdmittanceClassifier::new(AdmittanceConfig::default()),
        )
    }

    #[test]
    fn classifies_then_admits_during_bootstrap() {
        let mut m = mb();
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        for p in streaming_pkts(key, 10) {
            assert_eq!(m.process_packet(&p, SnrLevel::High), Action::Forward);
        }
        assert_eq!(m.admitted_flows(), 1);
        assert_eq!(m.matrix().total(), 1);
    }

    #[test]
    fn rejected_flow_packets_are_dropped() {
        // Pre-train the admittance classifier to reject everything
        // beyond 1 flow.
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        for n in 0..80u32 {
            let total = n % 8;
            let mut mat = TrafficMatrix::empty();
            for _ in 0..total {
                mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
            }
            let y = if total <= 1 { Label::Pos } else { Label::Neg };
            ac.observe(mat, y);
        }
        assert_eq!(ac.phase(), Phase::Online);
        let mut m = Middlebox::new(MiddleboxConfig::default(), estimator(), ac);

        let k1 = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        for p in streaming_pkts(k1, 10) {
            m.process_packet(&p, SnrLevel::High);
        }
        assert_eq!(m.admitted_flows(), 1);

        // Second flow exceeds the learnt region.
        let k2 = FlowKey::synthetic(2, 2, 1, Protocol::Tcp);
        let pkts = streaming_pkts(k2, 12);
        let actions: Vec<Action> = pkts
            .iter()
            .map(|p| m.process_packet(p, SnrLevel::High))
            .collect();
        assert_eq!(actions.last(), Some(&Action::Drop));
        assert_eq!(m.admitted_flows(), 1);
        // Subsequent packets of the rejected flow keep dropping.
        assert_eq!(
            m.process_packet(&streaming_pkts(k2, 13)[12], SnrLevel::High),
            Action::Drop
        );
    }

    #[test]
    fn departure_frees_matrix_slot() {
        let mut m = mb();
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        for p in streaming_pkts(key, 10) {
            m.process_packet(&p, SnrLevel::High);
        }
        assert_eq!(m.matrix().total(), 1);
        m.flow_departed(&key);
        assert_eq!(m.matrix().total(), 0);
        assert_eq!(m.admitted_flows(), 0);
    }

    #[test]
    fn poll_feeds_observations_to_classifier() {
        let mut m = mb();
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        for p in streaming_pkts(key, 10) {
            m.process_packet(&p, SnrLevel::High);
        }
        // Healthy QoS deliveries.
        for i in 0..50u64 {
            m.record_delivery(
                &key,
                Instant::from_millis(i * 10),
                Instant::from_millis(i * 10 + 5),
                1400,
            );
        }
        let before = m.admittance().num_samples();
        let verdicts = m.poll(Instant::from_secs(5));
        assert!(m.admittance().num_samples() > before, "poll must observe");
        assert!(verdicts.is_empty() || verdicts.iter().all(|(_, v)| *v == PollVerdict::Keep));
    }

    /// A classifier pre-trained to admit only a single streaming flow.
    fn single_flow_classifier() -> AdmittanceClassifier {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        for n in 0..80u32 {
            let total = n % 8;
            let mut mat = TrafficMatrix::empty();
            for _ in 0..total {
                mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
            }
            let y = if total <= 1 { Label::Pos } else { Label::Neg };
            ac.observe(mat, y);
        }
        assert_eq!(ac.phase(), Phase::Online);
        ac
    }

    #[test]
    fn rejected_set_is_bounded_and_counts_evictions() {
        let reg = MetricsRegistry::new();
        let mut m = Middlebox::with_registry(
            MiddleboxConfig {
                rejected_capacity: 2,
                ..MiddleboxConfig::default()
            },
            estimator(),
            single_flow_classifier(),
            &reg,
        );
        // One admitted flow fills the region; every later arrival is
        // rejected (scan-like traffic).
        let k1 = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        for p in streaming_pkts(k1, 10) {
            m.process_packet(&p, SnrLevel::High);
        }
        assert_eq!(m.admitted_flows(), 1);
        let scans: Vec<FlowKey> = (2..5)
            .map(|i| FlowKey::synthetic(i, i, 1, Protocol::Tcp))
            .collect();
        for &k in &scans {
            for p in streaming_pkts(k, 12) {
                m.process_packet(&p, SnrLevel::High);
            }
        }
        assert_eq!(m.rejected.len(), 2, "rejected set must stay bounded");
        assert_eq!(
            reg.snapshot()
                .counter("middlebox.rejected_evictions")
                .unwrap(),
            1,
            "third rejection must evict the oldest record"
        );
        // The evicted (oldest) scan flow is no longer auto-dropped: it
        // re-enters early classification and its first packet forwards.
        assert_eq!(
            m.process_packet(&streaming_pkts(scans[0], 1)[0], SnrLevel::High),
            Action::Forward
        );
        // The still-remembered newest scan flow keeps dropping.
        assert_eq!(
            m.process_packet(&streaming_pkts(scans[2], 1)[0], SnrLevel::High),
            Action::Drop
        );
    }

    #[test]
    fn checkpoint_restore_resumes_online_with_identical_decisions() {
        let reg = MetricsRegistry::new();
        let mut m = Middlebox::with_registry(
            MiddleboxConfig::default(),
            estimator(),
            single_flow_classifier(),
            &reg,
        );
        let mut buf = Vec::new();
        m.checkpoint(&mut buf).unwrap();
        assert_eq!(
            reg.snapshot()
                .counter("recovery.checkpoint_writes")
                .unwrap(),
            1
        );

        let restored_reg = MetricsRegistry::new();
        let mut r = Middlebox::restore_with_registry(
            MiddleboxConfig::default(),
            AdmittanceConfig::default(),
            &buf[..],
            &restored_reg,
        )
        .expect("restore must succeed");
        assert_eq!(r.admittance().phase(), Phase::Online, "no re-bootstrap");
        assert!(!r.is_degraded());
        assert_eq!(
            restored_reg
                .snapshot()
                .counter("recovery.restores")
                .unwrap(),
            1
        );

        // The restarted gateway must reach the same verdicts on the
        // same traffic as the original would have.
        let k1 = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        let k2 = FlowKey::synthetic(2, 2, 1, Protocol::Tcp);
        let drive = |mb: &mut Middlebox| -> Vec<Action> {
            let mut out = Vec::new();
            for p in streaming_pkts(k1, 10) {
                out.push(mb.process_packet(&p, SnrLevel::High));
            }
            for p in streaming_pkts(k2, 12) {
                out.push(mb.process_packet(&p, SnrLevel::High));
            }
            out
        };
        assert_eq!(drive(&mut m), drive(&mut r));
        assert_eq!(r.admitted_flows(), 1);
    }

    #[test]
    fn failed_restore_degrades_to_occupancy_fallback() {
        let reg = MetricsRegistry::new();
        let (mut m, err) = Middlebox::recover_from_path(
            MiddleboxConfig {
                fallback_max_flows: 1,
                ..MiddleboxConfig::default()
            },
            AdmittanceConfig::default(),
            estimator(),
            "/nonexistent/exbox-gateway.ckpt",
            &reg,
        );
        assert!(err.is_some(), "missing checkpoint must surface an error");
        assert!(m.is_recovering());
        assert!(m.is_degraded());

        // The occupancy fallback (cap 1) gates admissions instead of
        // bootstrap's admit-everything.
        let k1 = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        for p in streaming_pkts(k1, 10) {
            assert_eq!(m.process_packet(&p, SnrLevel::High), Action::Forward);
        }
        assert_eq!(m.admitted_flows(), 1);
        let k2 = FlowKey::synthetic(2, 2, 1, Protocol::Tcp);
        let last = streaming_pkts(k2, 12)
            .iter()
            .map(|p| m.process_packet(p, SnrLevel::High))
            .last();
        assert_eq!(last, Some(Action::Drop), "fallback must cap occupancy");
        assert_eq!(m.admitted_flows(), 1);

        let events = m.decision_log().snapshot();
        assert!(!events.is_empty());
        for ev in &events {
            assert_eq!(ev.reason, DecisionReason::DegradedFallback);
            assert_eq!(ev.margin, None, "no model, no margin");
        }
        assert_eq!(
            reg.snapshot()
                .counter("recovery.fallback_decisions")
                .unwrap(),
            2,
            "one fallback decision per classified arrival"
        );
    }

    #[test]
    fn injected_poll_error_skips_observation_feed() {
        let reg = MetricsRegistry::new();
        let mut m = Middlebox::with_registry(
            MiddleboxConfig::default(),
            estimator(),
            AdmittanceClassifier::with_registry(AdmittanceConfig::default(), &reg),
            &reg,
        );
        m.set_fault_plan(crate::recovery::FaultPlan::with_registry(
            &[(FaultKind::PollError, 1.0)],
            9,
            &reg,
        ));
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        for p in streaming_pkts(key, 10) {
            m.process_packet(&p, SnrLevel::High);
        }
        for i in 0..50u64 {
            m.record_delivery(
                &key,
                Instant::from_millis(i * 10),
                Instant::from_millis(i * 10 + 5),
                1400,
            );
        }
        let before = m.admittance().num_samples();
        let _ = m.poll(Instant::from_secs(5));
        assert_eq!(
            m.admittance().num_samples(),
            before,
            "a failed poll must not feed observations"
        );
        assert_eq!(reg.snapshot().counter("recovery.poll_errors").unwrap(), 1);
    }

    #[test]
    fn poll_respects_interval() {
        let mut m = mb();
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        for p in streaming_pkts(key, 10) {
            m.process_packet(&p, SnrLevel::High);
        }
        m.record_delivery(&key, Instant::ZERO, Instant::from_millis(5), 1400);
        let _ = m.poll(Instant::from_secs(5));
        // Immediately again: below the interval, no-op.
        m.record_delivery(&key, Instant::ZERO, Instant::from_millis(5), 1400);
        let before = m.admittance().num_samples();
        let v = m.poll(Instant::from_secs(5) + Duration::from_millis(100));
        assert!(v.is_empty());
        assert_eq!(m.admittance().num_samples(), before);
    }
}
