//! Persistence for the QoE Estimator — the §4.4 model-sharing path —
//! and full-state middlebox checkpoints for crash-safe restarts.
//!
//! "If ExBox can be deployed widely, it is also possible to share IQX
//! models over different networks of similar characteristics. This
//! will reduce the training effort substantially." A trained
//! [`QoeEstimator`] serialises to a small, diffable text file that a
//! fleet of gateways can distribute:
//!
//! ```text
//! exbox-qoe v1
//! scale <min_index> <max_index>
//! class web lower 3 <alpha> <beta> <gamma>
//! class streaming lower 5 <alpha> <beta> <gamma>
//! class conferencing higher 25 <alpha> <beta> <gamma>
//! ```
//!
//! ## Checkpoints (`exbox-ckpt v1`)
//!
//! A gateway that restarts should resume with the ExCR it spent hours
//! learning, not re-enter bootstrap. [`save_checkpoint`] captures the
//! *complete* [`AdmittanceClassifier`] — phase, sample store,
//! observation/retrain counters, scaler statistics, the served model
//! and the warm-start dual state — plus the [`QoeEstimator`], in the
//! same line-oriented text style as the other formats:
//!
//! ```text
//! exbox-ckpt v1
//! phase online
//! counters <observations> <retrain_count> <pending>
//! sample <+1|-1> <a_11> … <a_kr>        (one per stored matrix)
//! scaler-mean <m_1> … <m_d>
//! scaler-std <s_1> … <s_d>
//! model-svm-begin                        (embeds an exbox-svm v1 doc)
//! …
//! model-svm-end
//! warm-bias <b>
//! warm <+1|-1> <alpha>                   (one per stored sample)
//! qoe-begin                              (embeds an exbox-qoe v1 doc)
//! …
//! qoe-end
//! checksum <fnv1a64 of everything above, 16 hex digits>
//! ```
//!
//! Floats use Rust's shortest-round-trip `Display`, so a reload
//! reproduces every parameter bit-for-bit and restored decisions are
//! **bit-identical** to the pre-crash classifier (property-tested in
//! `tests/checkpoint_props.rs`). The trailing checksum makes torn or
//! corrupted files *detectable*: [`load_checkpoint`] verifies it
//! before parsing a single field, so a half-written checkpoint is an
//! error, never a half-restored model. [`save_checkpoint_to_path`]
//! writes atomically (temp file in the same directory, `fsync`, then
//! rename) so a crash mid-checkpoint leaves the previous checkpoint
//! intact.

use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};

use exbox_ml::{Label, SvmModel};
use exbox_net::AppClass;
use exbox_obs::MetricsRegistry;

use crate::admittance::{
    AdmittanceClassifier, AdmittanceConfig, ClassifierState, ModelState, Phase,
};
use crate::iqx::IqxModel;
use crate::matrix::{FlowKind, SnrLevel, TrafficMatrix};
use crate::qoe::{ClassQoeModel, MetricDirection, QoeEstimator, QosScale};
use crate::recovery::FaultPlan;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Write the estimator in the text format.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn save_estimator<W: Write>(est: &QoeEstimator, mut out: W) -> io::Result<()> {
    writeln!(out, "exbox-qoe v1")?;
    let (min_index, max_index) = est.scale().bounds();
    writeln!(out, "scale {min_index} {max_index}")?;
    for class in AppClass::ALL {
        let m = est.model(class);
        let dir = match m.direction {
            MetricDirection::LowerIsBetter => "lower",
            MetricDirection::HigherIsBetter => "higher",
        };
        writeln!(
            out,
            "class {} {} {} {} {} {}",
            class.name(),
            dir,
            m.threshold,
            m.iqx.alpha,
            m.iqx.beta,
            m.iqx.gamma
        )?;
    }
    Ok(())
}

/// Read an estimator written by [`save_estimator`].
///
/// # Errors
/// `InvalidData` on malformed input or missing classes.
pub fn load_estimator<R: Read>(input: R) -> io::Result<QoeEstimator> {
    let mut lines = BufReader::new(input).lines();
    let header = lines.next().ok_or_else(|| bad("empty estimator file"))??;
    if header.trim() != "exbox-qoe v1" {
        return Err(bad(format!("unsupported header {header:?}")));
    }

    let mut scale = None;
    let mut models: [Option<ClassQoeModel>; AppClass::COUNT] = [None; AppClass::COUNT];

    for line in lines {
        let line = line?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => continue,
            ["scale", lo, hi] => {
                let lo: f64 = lo.parse().map_err(|_| bad("bad scale min"))?;
                let hi: f64 = hi.parse().map_err(|_| bad("bad scale max"))?;
                if !(lo > 0.0 && hi > lo && hi.is_finite()) {
                    return Err(bad("scale bounds out of range"));
                }
                scale = Some(QosScale::new(lo, hi));
            }
            ["class", name, dir, thr, a, b, g] => {
                let class = AppClass::ALL
                    .into_iter()
                    .find(|c| c.name() == *name)
                    .ok_or_else(|| bad(format!("unknown class {name}")))?;
                let direction = match *dir {
                    "lower" => MetricDirection::LowerIsBetter,
                    "higher" => MetricDirection::HigherIsBetter,
                    other => return Err(bad(format!("unknown direction {other}"))),
                };
                let threshold: f64 = thr.parse().map_err(|_| bad("bad threshold"))?;
                let alpha: f64 = a.parse().map_err(|_| bad("bad alpha"))?;
                let beta: f64 = b.parse().map_err(|_| bad("bad beta"))?;
                let gamma: f64 = g.parse().map_err(|_| bad("bad gamma"))?;
                if ![threshold, alpha, beta, gamma]
                    .iter()
                    .all(|v| v.is_finite())
                {
                    return Err(bad("non-finite model values"));
                }
                models[class.index()] = Some(ClassQoeModel {
                    iqx: IqxModel { alpha, beta, gamma },
                    threshold,
                    direction,
                });
            }
            _ => return Err(bad(format!("unknown line {line:?}"))),
        }
    }

    let scale = scale.ok_or_else(|| bad("missing scale"))?;
    let models = [
        models[0].ok_or_else(|| bad("missing class web"))?,
        models[1].ok_or_else(|| bad("missing class streaming"))?,
        models[2].ok_or_else(|| bad("missing class conferencing"))?,
    ];
    Ok(QoeEstimator::new(models, scale))
}

/// FNV-1a 64-bit hash — the checkpoint's torn-write detector. Not
/// cryptographic; it only needs to catch truncation and bit flips.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn label_str(y: Label) -> &'static str {
    match y {
        Label::Pos => "+1",
        Label::Neg => "-1",
    }
}

fn parse_label(s: &str) -> io::Result<Label> {
    match s {
        "+1" => Ok(Label::Pos),
        "-1" => Ok(Label::Neg),
        other => Err(bad(format!("bad label {other:?}"))),
    }
}

fn finite_f64(s: &str, what: &str) -> io::Result<f64> {
    s.parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| bad(format!("bad {what}: {s:?}")))
}

fn finite_row(parts: &[&str], what: &str) -> io::Result<Vec<f64>> {
    if parts.len() != TrafficMatrix::DIMS {
        return Err(bad(format!(
            "{what} has {} values, expected {}",
            parts.len(),
            TrafficMatrix::DIMS
        )));
    }
    parts.iter().map(|p| finite_f64(p, what)).collect()
}

/// Write a full-state checkpoint of the classifier and estimator.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn save_checkpoint<W: Write>(
    classifier: &AdmittanceClassifier,
    estimator: &QoeEstimator,
    mut out: W,
) -> io::Result<()> {
    let state = classifier.export_state();
    // The body is staged in memory so the checksum covers exactly the
    // bytes that reach the writer.
    let mut body: Vec<u8> = Vec::new();
    writeln!(body, "exbox-ckpt v1")?;
    let phase = match state.phase {
        Phase::Bootstrap => "bootstrap",
        Phase::Online => "online",
    };
    writeln!(body, "phase {phase}")?;
    writeln!(
        body,
        "counters {} {} {}",
        state.observations, state.retrain_count, state.pending
    )?;
    for (m, y) in &state.samples {
        write!(body, "sample {}", label_str(*y))?;
        for class in AppClass::ALL {
            for snr in SnrLevel::ALL {
                write!(body, " {}", m.count(FlowKind::new(class, snr)))?;
            }
        }
        writeln!(body)?;
    }
    if let Some((mean, std)) = &state.scaler {
        let join = |v: &[f64]| v.iter().map(f64::to_string).collect::<Vec<_>>().join(" ");
        writeln!(body, "scaler-mean {}", join(mean))?;
        writeln!(body, "scaler-std {}", join(std))?;
    }
    match &state.model {
        Some(ModelState::Svm(model)) => {
            writeln!(body, "model-svm-begin")?;
            model.save(&mut body)?;
            writeln!(body, "model-svm-end")?;
        }
        Some(ModelState::Logistic(w, b)) => {
            write!(body, "model-logistic {b}")?;
            for v in w {
                write!(body, " {v}")?;
            }
            writeln!(body)?;
        }
        Some(ModelState::Pegasos(w, b)) => {
            write!(body, "model-pegasos {b}")?;
            for v in w {
                write!(body, " {v}")?;
            }
            writeln!(body)?;
        }
        None => {}
    }
    if let Some((alphas, bias)) = &state.warm {
        writeln!(body, "warm-bias {bias}")?;
        for (y, a) in alphas {
            writeln!(body, "warm {} {}", label_str(*y), a)?;
        }
    }
    writeln!(body, "qoe-begin")?;
    save_estimator(estimator, &mut body)?;
    writeln!(body, "qoe-end")?;

    let sum = fnv1a64(&body);
    out.write_all(&body)?;
    writeln!(out, "checksum {sum:016x}")
}

/// Which embedded document the body parser is currently inside.
enum CkptSection {
    Top,
    Svm(String),
    Qoe(String),
}

/// Read a checkpoint written by [`save_checkpoint`], rebuilding the
/// classifier (under `cfg`, reporting to `registry`) and the
/// estimator. Restored decisions are bit-identical to the
/// checkpointed classifier's.
///
/// # Errors
/// `InvalidData` on checksum mismatch (torn/corrupted file), malformed
/// or duplicated lines, missing required sections, dimensionality
/// mismatches, or non-finite parameters. Never panics on untrusted
/// input.
pub fn load_checkpoint<R: Read>(
    mut input: R,
    cfg: AdmittanceConfig,
    registry: &MetricsRegistry,
) -> io::Result<(AdmittanceClassifier, QoeEstimator)> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    let text = std::str::from_utf8(&bytes).map_err(|_| bad("checkpoint is not valid UTF-8"))?;

    // Locate and verify the trailing checksum before trusting a
    // single field of the body.
    let pos = text
        .rfind("checksum ")
        .ok_or_else(|| bad("missing checksum line (truncated checkpoint?)"))?;
    if pos != 0 && text.as_bytes()[pos - 1] != b'\n' {
        return Err(bad("checksum marker not at start of line"));
    }
    let (body, tail) = text.split_at(pos);
    let tail = tail.trim_end();
    if tail.lines().count() != 1 {
        return Err(bad("data after checksum line"));
    }
    let hex = tail
        .strip_prefix("checksum ")
        .expect("tail starts at the marker")
        .trim();
    let expected = u64::from_str_radix(hex, 16).map_err(|_| bad("bad checksum value"))?;
    let actual = fnv1a64(body.as_bytes());
    if actual != expected {
        return Err(bad(format!(
            "checksum mismatch: file says {expected:016x}, body hashes to {actual:016x} \
             (torn write or corruption)"
        )));
    }

    let mut lines = body.lines();
    let header = lines.next().ok_or_else(|| bad("empty checkpoint"))?;
    if header.trim() != "exbox-ckpt v1" {
        return Err(bad(format!("unsupported header {header:?}")));
    }

    let mut section = CkptSection::Top;
    let mut phase: Option<Phase> = None;
    let mut counters: Option<(u64, u64, usize)> = None;
    let mut samples: Vec<(TrafficMatrix, Label)> = Vec::new();
    let mut scaler_mean: Option<Vec<f64>> = None;
    let mut scaler_std: Option<Vec<f64>> = None;
    let mut model: Option<ModelState> = None;
    let mut warm_bias: Option<f64> = None;
    let mut warm_alphas: Vec<(Label, f64)> = Vec::new();
    let mut estimator: Option<QoeEstimator> = None;

    for line in lines {
        match &mut section {
            CkptSection::Svm(doc) => {
                if line.trim() == "model-svm-end" {
                    let parsed = SvmModel::load(doc.as_bytes())?;
                    if exbox_ml::Classifier::dims(&parsed) != TrafficMatrix::DIMS {
                        return Err(bad("embedded SVM dimensionality mismatch"));
                    }
                    model = Some(ModelState::Svm(parsed));
                    section = CkptSection::Top;
                } else {
                    doc.push_str(line);
                    doc.push('\n');
                }
                continue;
            }
            CkptSection::Qoe(doc) => {
                if line.trim() == "qoe-end" {
                    estimator = Some(load_estimator(doc.as_bytes())?);
                    section = CkptSection::Top;
                } else {
                    doc.push_str(line);
                    doc.push('\n');
                }
                continue;
            }
            CkptSection::Top => {}
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => continue,
            ["phase", p] => {
                if phase.is_some() {
                    return Err(bad("duplicate phase line"));
                }
                phase = Some(match *p {
                    "bootstrap" => Phase::Bootstrap,
                    "online" => Phase::Online,
                    other => return Err(bad(format!("unknown phase {other:?}"))),
                });
            }
            ["counters", obs, retrains, pending] => {
                if counters.is_some() {
                    return Err(bad("duplicate counters line"));
                }
                let obs: u64 = obs.parse().map_err(|_| bad("bad observations counter"))?;
                let retrains: u64 = retrains.parse().map_err(|_| bad("bad retrain counter"))?;
                let pending: usize = pending.parse().map_err(|_| bad("bad pending counter"))?;
                counters = Some((obs, retrains, pending));
            }
            ["sample", y, counts @ ..] => {
                if counts.len() != TrafficMatrix::DIMS {
                    return Err(bad("sample dimensionality mismatch"));
                }
                let label = parse_label(y)?;
                let mut m = TrafficMatrix::empty();
                let kinds = AppClass::ALL.into_iter().flat_map(|class| {
                    SnrLevel::ALL
                        .into_iter()
                        .map(move |snr| FlowKind::new(class, snr))
                });
                for (c, kind) in counts.iter().zip(kinds) {
                    let n: u32 = c.parse().map_err(|_| bad("bad sample count"))?;
                    for _ in 0..n {
                        m.add(kind);
                    }
                }
                samples.push((m, label));
            }
            ["scaler-mean", rest @ ..] => {
                if scaler_mean.is_some() {
                    return Err(bad("duplicate scaler-mean line"));
                }
                scaler_mean = Some(finite_row(rest, "scaler mean")?);
            }
            ["scaler-std", rest @ ..] => {
                if scaler_std.is_some() {
                    return Err(bad("duplicate scaler-std line"));
                }
                let std = finite_row(rest, "scaler std")?;
                if std.iter().any(|v| *v <= 0.0) {
                    return Err(bad("scaler stds must be positive"));
                }
                scaler_std = Some(std);
            }
            ["model-svm-begin"] => {
                if model.is_some() {
                    return Err(bad("duplicate model"));
                }
                section = CkptSection::Svm(String::new());
            }
            ["model-logistic", b, w @ ..] => {
                if model.is_some() {
                    return Err(bad("duplicate model"));
                }
                let bias = finite_f64(b, "logistic bias")?;
                model = Some(ModelState::Logistic(
                    finite_row(w, "logistic weights")?,
                    bias,
                ));
            }
            ["model-pegasos", b, w @ ..] => {
                if model.is_some() {
                    return Err(bad("duplicate model"));
                }
                let bias = finite_f64(b, "pegasos bias")?;
                model = Some(ModelState::Pegasos(finite_row(w, "pegasos weights")?, bias));
            }
            ["warm-bias", b] => {
                if warm_bias.is_some() {
                    return Err(bad("duplicate warm-bias line"));
                }
                warm_bias = Some(finite_f64(b, "warm bias")?);
            }
            ["warm", y, a] => {
                warm_alphas.push((parse_label(y)?, finite_f64(a, "warm alpha")?));
            }
            ["qoe-begin"] => {
                if estimator.is_some() {
                    return Err(bad("duplicate qoe section"));
                }
                section = CkptSection::Qoe(String::new());
            }
            _ => return Err(bad(format!("unknown line {line:?}"))),
        }
    }
    if !matches!(section, CkptSection::Top) {
        return Err(bad("unterminated embedded section"));
    }

    let phase = phase.ok_or_else(|| bad("missing phase"))?;
    let (observations, retrain_count, pending) = counters.ok_or_else(|| bad("missing counters"))?;
    let estimator = estimator.ok_or_else(|| bad("missing qoe section"))?;
    let scaler = match (scaler_mean, scaler_std) {
        (Some(mean), Some(std)) => Some((mean, std)),
        (None, None) => None,
        _ => return Err(bad("scaler-mean and scaler-std must appear together")),
    };
    // A model without its scaler (or vice versa) cannot produce the
    // margins it was checkpointed with — reject rather than guess.
    if model.is_some() != scaler.is_some() {
        return Err(bad("model and scaler must be checkpointed together"));
    }
    // The decide path evaluates the restored model from stack buffers
    // sized by `TrafficMatrix::DIMS` (`features_into` /
    // `transform_into`), and `CompactSvm::decision_value` asserts its
    // input length. Any dimensionality drift must therefore surface
    // here as a load error, never as a packet-path panic. The per-line
    // parsers above already pin each row to the constant; this is the
    // single authoritative check should the format ever grow
    // variable-width rows.
    if let Some(m) = &model {
        if m.dims() != TrafficMatrix::DIMS {
            return Err(bad(format!(
                "model dimensionality {} does not match TrafficMatrix::DIMS ({})",
                m.dims(),
                TrafficMatrix::DIMS
            )));
        }
    }
    if let Some((mean, std)) = &scaler {
        if mean.len() != TrafficMatrix::DIMS || std.len() != TrafficMatrix::DIMS {
            return Err(bad(format!(
                "scaler dimensionality {}/{} does not match TrafficMatrix::DIMS ({})",
                mean.len(),
                std.len(),
                TrafficMatrix::DIMS
            )));
        }
    }
    let warm = match (warm_bias, warm_alphas.is_empty()) {
        (Some(bias), _) => {
            // The dual state is aligned to store indices as of the
            // last fit; the store may have grown since, so fewer
            // alphas than samples is normal — more is not.
            if warm_alphas.len() > samples.len() {
                return Err(bad("more warm-start alphas than stored samples"));
            }
            Some((warm_alphas, bias))
        }
        (None, true) => None,
        (None, false) => return Err(bad("warm lines without warm-bias")),
    };

    let state = ClassifierState {
        phase,
        samples,
        pending,
        observations,
        retrain_count,
        scaler,
        model,
        warm,
    };
    Ok((
        AdmittanceClassifier::import_state(cfg, state, registry),
        estimator,
    ))
}

/// [`save_checkpoint`] to a file, atomically: the checkpoint is
/// staged as a hidden temp file in the same directory, fsynced, then
/// renamed over `path` (and the directory fsynced on Unix). A crash at
/// any point leaves either the old checkpoint or the new one — never
/// a torn file at `path`.
///
/// # Errors
/// I/O errors from the filesystem; `InvalidData` when `path` has no
/// file name.
pub fn save_checkpoint_to_path(
    classifier: &AdmittanceClassifier,
    estimator: &QoeEstimator,
    path: &Path,
) -> io::Result<()> {
    let name = path
        .file_name()
        .ok_or_else(|| bad("checkpoint path has no file name"))?;
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(".{}.tmp", name.to_string_lossy()));
    let result = (|| {
        let mut file = File::create(&tmp)?;
        save_checkpoint(classifier, estimator, &mut file)?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    #[cfg(unix)]
    if let Ok(d) = File::open(&dir) {
        // Persist the rename itself; ignore filesystems that refuse
        // directory fsync.
        let _ = d.sync_all();
    }
    Ok(())
}

/// [`load_checkpoint`] from a file, with read faults injectable: the
/// raw bytes pass through [`FaultPlan::mangle_checkpoint`] before
/// parsing, so `ckpt_corrupt` / `ckpt_truncate` plans exercise the
/// rejection path against real files.
///
/// # Errors
/// I/O errors reading the file; `InvalidData` as [`load_checkpoint`].
pub fn load_checkpoint_from_path(
    path: &Path,
    cfg: AdmittanceConfig,
    registry: &MetricsRegistry,
    faults: &FaultPlan,
) -> io::Result<(AdmittanceClassifier, QoeEstimator)> {
    let mut bytes = fs::read(path)?;
    faults.mangle_checkpoint(&mut bytes);
    load_checkpoint(&bytes[..], cfg, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qoe::{paper_directions, train_estimator};
    use exbox_net::{Duration, QosSample};

    fn estimator() -> QoeEstimator {
        let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
            (0..20)
                .map(|i| {
                    let q = i as f64 / 19.0;
                    (q, a + b * (-g * q).exp())
                })
                .collect()
        };
        train_estimator(
            &[mk(1.0, 11.0, 4.0), mk(2.0, 20.0, 4.0), mk(42.0, -30.0, 1.2)],
            QoeEstimator::paper_thresholds(),
            paper_directions(),
            QosScale::new(1e3, 1e8),
        )
    }

    #[test]
    fn roundtrip_preserves_estimates() {
        let est = estimator();
        let mut buf = Vec::new();
        save_estimator(&est, &mut buf).unwrap();
        let loaded = load_estimator(&buf[..]).unwrap();
        let samples = [
            QosSample {
                throughput_bps: 5e6,
                mean_delay: Duration::from_millis(30),
                loss_ratio: 0.0,
            },
            QosSample {
                throughput_bps: 2e5,
                mean_delay: Duration::from_millis(300),
                loss_ratio: 0.1,
            },
        ];
        for class in AppClass::ALL {
            for s in &samples {
                assert!((est.estimate(class, s) - loaded.estimate(class, s)).abs() < 1e-9);
                assert_eq!(est.acceptable(class, s), loaded.acceptable(class, s));
            }
        }
    }

    #[test]
    fn format_is_inspectable() {
        let mut buf = Vec::new();
        save_estimator(&estimator(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("exbox-qoe v1\n"));
        assert!(text.contains("class web lower 3"));
        assert!(text.contains("class conferencing higher 25"));
    }

    #[test]
    fn rejects_missing_class() {
        let text = "exbox-qoe v1\nscale 1000 100000000\nclass web lower 3 1 11 4\n";
        assert!(load_estimator(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_header_and_scale() {
        assert!(load_estimator(&b"nope\n"[..]).is_err());
        let text = "exbox-qoe v1\nscale -1 5\nclass web lower 3 1 11 4\n";
        assert!(load_estimator(text.as_bytes()).is_err());
    }

    fn trained_classifier(backend: crate::admittance::ClassifierBackend) -> AdmittanceClassifier {
        let reg = MetricsRegistry::new();
        let mut ac = AdmittanceClassifier::with_registry(
            AdmittanceConfig {
                backend,
                batch_size: 8,
                ..AdmittanceConfig::default()
            },
            &reg,
        );
        for w in 0..4u32 {
            for s in 0..4u32 {
                for c in 0..4u32 {
                    let mut m = TrafficMatrix::empty();
                    for _ in 0..w {
                        m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
                    }
                    for _ in 0..s {
                        m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
                    }
                    for _ in 0..c {
                        m.add(FlowKind::new(AppClass::Conferencing, SnrLevel::Low));
                    }
                    let y = if m.total() <= 6 {
                        Label::Pos
                    } else {
                        Label::Neg
                    };
                    ac.observe(m, y);
                }
            }
        }
        assert_eq!(ac.phase(), Phase::Online, "fixture must go online");
        ac
    }

    fn query_grid() -> Vec<TrafficMatrix> {
        let mut out = Vec::new();
        for w in 0..6u32 {
            for s in 0..5u32 {
                let mut m = TrafficMatrix::empty();
                for _ in 0..w {
                    m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
                }
                for _ in 0..s {
                    m.add(FlowKind::new(AppClass::Streaming, SnrLevel::Low));
                }
                out.push(m);
            }
        }
        out
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact_for_every_backend() {
        use crate::admittance::ClassifierBackend;
        for backend in [
            ClassifierBackend::SvmPoly { c: 10.0, degree: 2 },
            ClassifierBackend::SvmRbf {
                c: 10.0,
                gamma: None,
            },
            ClassifierBackend::Logistic,
            ClassifierBackend::PegasosLinear,
        ] {
            let ac = trained_classifier(backend);
            let est = estimator();
            let mut buf = Vec::new();
            save_checkpoint(&ac, &est, &mut buf).unwrap();
            let reg = MetricsRegistry::new();
            let (restored, rest) = load_checkpoint(
                &buf[..],
                AdmittanceConfig {
                    backend,
                    batch_size: 8,
                    ..AdmittanceConfig::default()
                },
                &reg,
            )
            .unwrap_or_else(|e| panic!("{backend:?}: {e}"));
            assert_eq!(restored.phase(), ac.phase());
            assert_eq!(restored.num_samples(), ac.num_samples());
            assert_eq!(restored.num_observations(), ac.num_observations());
            assert_eq!(restored.retrain_count(), ac.retrain_count());
            for m in query_grid() {
                assert_eq!(restored.classify(&m), ac.classify(&m), "{backend:?} at {m}");
                assert_eq!(
                    restored.decision_value(&m).map(f64::to_bits),
                    ac.decision_value(&m).map(f64::to_bits),
                    "{backend:?} margin not bit-exact at {m}"
                );
            }
            let s = QosSample {
                throughput_bps: 3e6,
                mean_delay: Duration::from_millis(40),
                loss_ratio: 0.01,
            };
            for class in AppClass::ALL {
                assert_eq!(
                    est.estimate(class, &s).to_bits(),
                    rest.estimate(class, &s).to_bits()
                );
            }
        }
    }

    #[test]
    fn checkpoint_format_is_inspectable() {
        let ac = trained_classifier(crate::admittance::ClassifierBackend::SvmPoly {
            c: 10.0,
            degree: 2,
        });
        let mut buf = Vec::new();
        save_checkpoint(&ac, &estimator(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("exbox-ckpt v1\n"));
        assert!(text.contains("\nphase online\n"));
        assert!(text.contains("\nmodel-svm-begin\nexbox-svm v1\n"));
        assert!(text.contains("\nqoe-begin\nexbox-qoe v1\n"));
        let last = text.trim_end().lines().last().unwrap();
        assert!(last.starts_with("checksum "));
        assert_eq!(last.len(), "checksum ".len() + 16);
    }

    #[test]
    fn checkpoint_rejects_any_corruption_without_panicking() {
        let ac = trained_classifier(crate::admittance::ClassifierBackend::SvmPoly {
            c: 10.0,
            degree: 2,
        });
        let mut buf = Vec::new();
        save_checkpoint(&ac, &estimator(), &mut buf).unwrap();
        let reg = MetricsRegistry::new();
        // A spread of byte flips, including inside the checksum line.
        for idx in [0, 1, buf.len() / 3, buf.len() / 2, buf.len() - 2] {
            let mut bad = buf.clone();
            bad[idx] ^= 0x01;
            assert!(
                load_checkpoint(&bad[..], AdmittanceConfig::default(), &reg).is_err(),
                "flip at {idx} must be rejected"
            );
        }
        // Truncations at every record-ish boundary (the deepest cut
        // lands mid-checksum, so the declared hash no longer matches).
        for cut in [0, 1, 13, buf.len() / 4, buf.len() / 2, buf.len() - 10] {
            assert!(
                load_checkpoint(&buf[..cut], AdmittanceConfig::default(), &reg).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn checkpoint_rejects_structural_damage() {
        let reg = MetricsRegistry::new();
        let with_checksum = |body: &str| {
            let sum = fnv1a64(body.as_bytes());
            format!("{body}checksum {sum:016x}\n")
        };
        // Valid checksum, bad structure: each must fail in the parser.
        for body in [
            "exbox-ckpt v1\ncounters 1 0 0\nqoe-begin\nqoe-end\n", // missing phase
            "exbox-ckpt v1\nphase online\nqoe-begin\nqoe-end\n",   // missing counters
            "exbox-ckpt v1\nphase online\ncounters 1 0 0\n",       // missing qoe
            "exbox-ckpt v1\nphase online\nphase online\ncounters 1 0 0\n", // dup phase
            "exbox-ckpt v1\nphase online\ncounters 1 0 0\nmodel-svm-begin\n", // unterminated
            "exbox-ckpt v1\nphase online\ncounters 1 0 0\nsample +1 1 2\n", // short sample
            "exbox-ckpt v1\nphase online\ncounters 1 0 0\nwarm +1 0.5\n", // warm w/o bias
            "exbox-ckpt v1\nphase online\ncounters 1 0 0\nscaler-mean 0 0 0 0 0 0\n", // lone mean
            "exbox-ckpt v1\nphase nowhere\ncounters 1 0 0\n",      // bad phase
            "exbox-ckpt v1\nphase online\ncounters 1 0 0\nbogus line\n", // unknown key
        ] {
            let file = with_checksum(body);
            let err = load_checkpoint(file.as_bytes(), AdmittanceConfig::default(), &reg)
                .expect_err(body);
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{body}");
        }
        // Scaler without model (and vice versa) is inconsistent.
        let body = "exbox-ckpt v1\nphase online\ncounters 1 0 0\n\
                    scaler-mean 0 0 0 0 0 0\nscaler-std 1 1 1 1 1 1\n\
                    qoe-begin\nqoe-end\n";
        assert!(load_checkpoint(
            with_checksum(body).as_bytes(),
            AdmittanceConfig::default(),
            &reg
        )
        .is_err());
    }

    #[test]
    fn checkpoint_rejects_dimensionality_drift_at_load() {
        // The packet path scores restored models from stack buffers
        // sized by `TrafficMatrix::DIMS`; a checkpoint whose model or
        // scaler disagrees must die here with `InvalidData`, never
        // reach a decide-time assert (and never silently zip-truncate
        // features). One case per model family plus the scaler.
        let reg = MetricsRegistry::new();
        let with_checksum = |body: &str| {
            let sum = fnv1a64(body.as_bytes());
            format!("{body}checksum {sum:016x}\n")
        };
        let cases: [(&str, &str); 4] = [
            (
                // Well-formed embedded SVM document declaring 5 dims.
                "exbox-ckpt v1\nphase online\ncounters 1 0 0\n\
                 scaler-mean 0 0 0 0 0 0\nscaler-std 1 1 1 1 1 1\n\
                 model-svm-begin\nexbox-svm v1\nkernel linear\ndims 5\n\
                 bias 0\nsv 1 1 0 0 0 0\nmodel-svm-end\n\
                 qoe-begin\nqoe-end\n",
                "dimensionality",
            ),
            (
                "exbox-ckpt v1\nphase online\ncounters 1 0 0\n\
                 scaler-mean 0 0 0 0 0 0\nscaler-std 1 1 1 1 1 1\n\
                 model-logistic 0.5 1 2 3 4 5\n\
                 qoe-begin\nqoe-end\n",
                "logistic weights has 5 values, expected 6",
            ),
            (
                "exbox-ckpt v1\nphase online\ncounters 1 0 0\n\
                 scaler-mean 0 0 0 0 0 0\nscaler-std 1 1 1 1 1 1\n\
                 model-pegasos 0.5 1 2 3 4 5 6 7\n\
                 qoe-begin\nqoe-end\n",
                "pegasos weights has 7 values, expected 6",
            ),
            (
                "exbox-ckpt v1\nphase online\ncounters 1 0 0\n\
                 scaler-mean 0 0 0 0 0\nscaler-std 1 1 1 1 1 1\n\
                 model-logistic 0.5 1 2 3 4 5 6\n\
                 qoe-begin\nqoe-end\n",
                "scaler mean has 5 values, expected 6",
            ),
        ];
        for (body, needle) in cases {
            let file = with_checksum(body);
            let err = load_checkpoint(file.as_bytes(), AdmittanceConfig::default(), &reg)
                .expect_err(body);
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{body}");
            assert!(
                err.to_string().contains(needle),
                "error {err:?} should name the dims mismatch ({needle})"
            );
        }
    }

    #[test]
    fn degraded_checkpoint_roundtrips_without_model() {
        // Online phase with no model — the post-crash degraded state —
        // must checkpoint and restore cleanly.
        use crate::admittance::{ClassifierState, Phase};
        let reg = MetricsRegistry::new();
        let kind = FlowKind::new(AppClass::Web, SnrLevel::High);
        let state = ClassifierState {
            phase: Phase::Online,
            samples: vec![(TrafficMatrix::empty().with_arrival(kind), Label::Pos)],
            pending: 3,
            observations: 57,
            retrain_count: 0,
            scaler: None,
            model: None,
            warm: None,
        };
        let ac = AdmittanceClassifier::import_state(AdmittanceConfig::default(), state, &reg);
        assert!(!ac.model_available());
        let mut buf = Vec::new();
        save_checkpoint(&ac, &estimator(), &mut buf).unwrap();
        let (restored, _) = load_checkpoint(&buf[..], AdmittanceConfig::default(), &reg).unwrap();
        assert_eq!(restored.phase(), Phase::Online);
        assert!(!restored.model_available());
        assert_eq!(restored.num_observations(), 57);
        assert_eq!(restored.num_samples(), 1);
    }

    #[test]
    fn path_checkpoint_is_atomic_and_faultable() {
        let dir = std::env::temp_dir().join(format!("exbox-ckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gateway.ckpt");
        let ac = trained_classifier(crate::admittance::ClassifierBackend::SvmPoly {
            c: 10.0,
            degree: 2,
        });
        let est = estimator();
        save_checkpoint_to_path(&ac, &est, &path).unwrap();
        // No temp residue after a successful write.
        assert!(
            !dir.join(".gateway.ckpt.tmp").exists(),
            "temp file left behind"
        );
        let reg = MetricsRegistry::new();
        let (restored, _) = load_checkpoint_from_path(
            &path,
            AdmittanceConfig {
                batch_size: 8,
                ..AdmittanceConfig::default()
            },
            &reg,
            &FaultPlan::disabled(),
        )
        .unwrap();
        assert_eq!(restored.retrain_count(), ac.retrain_count());

        // An injected read fault must surface as an error, not a
        // half-restored classifier — and the file itself is untouched.
        use crate::recovery::FaultKind;
        let plan = FaultPlan::with_registry(&[(FaultKind::CheckpointCorrupt, 1.0)], 99, &reg);
        assert!(
            load_checkpoint_from_path(&path, AdmittanceConfig::default(), &reg, &plan).is_err()
        );
        assert!(load_checkpoint_from_path(
            &path,
            AdmittanceConfig {
                batch_size: 8,
                ..AdmittanceConfig::default()
            },
            &reg,
            &FaultPlan::disabled()
        )
        .is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}
