//! Persistence for the QoE Estimator — the §4.4 model-sharing path.
//!
//! "If ExBox can be deployed widely, it is also possible to share IQX
//! models over different networks of similar characteristics. This
//! will reduce the training effort substantially." A trained
//! [`QoeEstimator`] serialises to a small, diffable text file that a
//! fleet of gateways can distribute:
//!
//! ```text
//! exbox-qoe v1
//! scale <min_index> <max_index>
//! class web lower 3 <alpha> <beta> <gamma>
//! class streaming lower 5 <alpha> <beta> <gamma>
//! class conferencing higher 25 <alpha> <beta> <gamma>
//! ```

use std::io::{self, BufRead, BufReader, Read, Write};

use exbox_net::AppClass;

use crate::iqx::IqxModel;
use crate::qoe::{ClassQoeModel, MetricDirection, QoeEstimator, QosScale};

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Write the estimator in the text format.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn save_estimator<W: Write>(est: &QoeEstimator, mut out: W) -> io::Result<()> {
    writeln!(out, "exbox-qoe v1")?;
    let (min_index, max_index) = est.scale().bounds();
    writeln!(out, "scale {min_index} {max_index}")?;
    for class in AppClass::ALL {
        let m = est.model(class);
        let dir = match m.direction {
            MetricDirection::LowerIsBetter => "lower",
            MetricDirection::HigherIsBetter => "higher",
        };
        writeln!(
            out,
            "class {} {} {} {} {} {}",
            class.name(),
            dir,
            m.threshold,
            m.iqx.alpha,
            m.iqx.beta,
            m.iqx.gamma
        )?;
    }
    Ok(())
}

/// Read an estimator written by [`save_estimator`].
///
/// # Errors
/// `InvalidData` on malformed input or missing classes.
pub fn load_estimator<R: Read>(input: R) -> io::Result<QoeEstimator> {
    let mut lines = BufReader::new(input).lines();
    let header = lines.next().ok_or_else(|| bad("empty estimator file"))??;
    if header.trim() != "exbox-qoe v1" {
        return Err(bad(format!("unsupported header {header:?}")));
    }

    let mut scale = None;
    let mut models: [Option<ClassQoeModel>; AppClass::COUNT] = [None; AppClass::COUNT];

    for line in lines {
        let line = line?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => continue,
            ["scale", lo, hi] => {
                let lo: f64 = lo.parse().map_err(|_| bad("bad scale min"))?;
                let hi: f64 = hi.parse().map_err(|_| bad("bad scale max"))?;
                if !(lo > 0.0 && hi > lo && hi.is_finite()) {
                    return Err(bad("scale bounds out of range"));
                }
                scale = Some(QosScale::new(lo, hi));
            }
            ["class", name, dir, thr, a, b, g] => {
                let class = AppClass::ALL
                    .into_iter()
                    .find(|c| c.name() == *name)
                    .ok_or_else(|| bad(format!("unknown class {name}")))?;
                let direction = match *dir {
                    "lower" => MetricDirection::LowerIsBetter,
                    "higher" => MetricDirection::HigherIsBetter,
                    other => return Err(bad(format!("unknown direction {other}"))),
                };
                let threshold: f64 = thr.parse().map_err(|_| bad("bad threshold"))?;
                let alpha: f64 = a.parse().map_err(|_| bad("bad alpha"))?;
                let beta: f64 = b.parse().map_err(|_| bad("bad beta"))?;
                let gamma: f64 = g.parse().map_err(|_| bad("bad gamma"))?;
                if ![threshold, alpha, beta, gamma]
                    .iter()
                    .all(|v| v.is_finite())
                {
                    return Err(bad("non-finite model values"));
                }
                models[class.index()] = Some(ClassQoeModel {
                    iqx: IqxModel { alpha, beta, gamma },
                    threshold,
                    direction,
                });
            }
            _ => return Err(bad(format!("unknown line {line:?}"))),
        }
    }

    let scale = scale.ok_or_else(|| bad("missing scale"))?;
    let models = [
        models[0].ok_or_else(|| bad("missing class web"))?,
        models[1].ok_or_else(|| bad("missing class streaming"))?,
        models[2].ok_or_else(|| bad("missing class conferencing"))?,
    ];
    Ok(QoeEstimator::new(models, scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qoe::{paper_directions, train_estimator};
    use exbox_net::{Duration, QosSample};

    fn estimator() -> QoeEstimator {
        let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
            (0..20)
                .map(|i| {
                    let q = i as f64 / 19.0;
                    (q, a + b * (-g * q).exp())
                })
                .collect()
        };
        train_estimator(
            &[mk(1.0, 11.0, 4.0), mk(2.0, 20.0, 4.0), mk(42.0, -30.0, 1.2)],
            QoeEstimator::paper_thresholds(),
            paper_directions(),
            QosScale::new(1e3, 1e8),
        )
    }

    #[test]
    fn roundtrip_preserves_estimates() {
        let est = estimator();
        let mut buf = Vec::new();
        save_estimator(&est, &mut buf).unwrap();
        let loaded = load_estimator(&buf[..]).unwrap();
        let samples = [
            QosSample {
                throughput_bps: 5e6,
                mean_delay: Duration::from_millis(30),
                loss_ratio: 0.0,
            },
            QosSample {
                throughput_bps: 2e5,
                mean_delay: Duration::from_millis(300),
                loss_ratio: 0.1,
            },
        ];
        for class in AppClass::ALL {
            for s in &samples {
                assert!((est.estimate(class, s) - loaded.estimate(class, s)).abs() < 1e-9);
                assert_eq!(est.acceptable(class, s), loaded.acceptable(class, s));
            }
        }
    }

    #[test]
    fn format_is_inspectable() {
        let mut buf = Vec::new();
        save_estimator(&estimator(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("exbox-qoe v1\n"));
        assert!(text.contains("class web lower 3"));
        assert!(text.contains("class conferencing higher 25"));
    }

    #[test]
    fn rejects_missing_class() {
        let text = "exbox-qoe v1\nscale 1000 100000000\nclass web lower 3 1 11 4\n";
        assert!(load_estimator(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_header_and_scale() {
        assert!(load_estimator(&b"nope\n"[..]).is_err());
        let text = "exbox-qoe v1\nscale -1 5\nclass web lower 3 1 11 4\n";
        assert!(load_estimator(text.as_bytes()).is_err());
    }
}
