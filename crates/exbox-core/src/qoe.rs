//! The QoE Estimator (paper §3.2).
//!
//! ExBox estimates per-flow QoE on the *network side*: a training
//! device measures real QoE under controlled QoS profiles once, an
//! IQX model is fitted per application class, and thereafter QoE is
//! predicted purely from passive QoS measurements at the gateway.
//! Pre-defined thresholds (paper ref. 39) then map each estimate to
//! `Y ∈ {+1, −1}`.

use std::sync::Arc;

use exbox_net::{AppClass, QosSample};
use exbox_obs::{buckets, Counter, Histogram, MetricsRegistry};

use crate::iqx::IqxModel;

/// Instrumentation handles for the estimator. Clones share the same
/// underlying instruments, so estimator copies aggregate naturally.
#[derive(Debug, Clone)]
struct QoeMetrics {
    /// `qoe.estimate.<class>` — distribution of QoE estimates, in the
    /// class metric's native unit (seconds or dB).
    estimates: [Arc<Histogram>; AppClass::COUNT],
    /// `qoe.acceptable` — acceptability checks that passed.
    acceptable: Arc<Counter>,
    /// `qoe.unacceptable` — acceptability checks that failed.
    unacceptable: Arc<Counter>,
}

impl QoeMetrics {
    fn bind(reg: &MetricsRegistry) -> Self {
        // 0–50 covers both delay-like metrics (seconds) and PSNR (dB).
        let bounds = buckets::linear(2.5, 2.5, 20);
        QoeMetrics {
            estimates: AppClass::ALL
                .map(|c| reg.histogram(&format!("qoe.estimate.{}", c.name()), &bounds)),
            acceptable: reg.counter("qoe.acceptable"),
            unacceptable: reg.counter("qoe.unacceptable"),
        }
    }
}

/// Normalisation of the raw QoS index (`throughput / delay`) onto the
/// `[0, 1]` scale the IQX models are fitted on.
///
/// The raw index spans several orders of magnitude between a starved
/// and a healthy flow, so the scale is logarithmic: the training
/// sweep's worst observed index maps to 0, its best to 1, and
/// everything interpolates on `ln`. (A linear scale would squash the
/// entire unusable-to-mediocre range into a sliver near 0 and make
/// the fitted curves useless for discrimination.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosScale {
    ln_min: f64,
    ln_max: f64,
}

impl QosScale {
    /// Build from the worst and best raw QoS indices observed during
    /// training.
    ///
    /// # Panics
    /// Panics unless `0 < min_index < max_index`.
    pub fn new(min_index: f64, max_index: f64) -> Self {
        assert!(
            min_index > 0.0 && min_index.is_finite(),
            "min index must be positive"
        );
        assert!(
            max_index > min_index && max_index.is_finite(),
            "max index must exceed min index"
        );
        QosScale {
            ln_min: min_index.ln(),
            ln_max: max_index.ln(),
        }
    }

    /// The raw (min, max) index bounds this scale was built from.
    pub fn bounds(&self) -> (f64, f64) {
        (self.ln_min.exp(), self.ln_max.exp())
    }

    /// Normalise a raw index onto `[0, 1]` (clamped).
    pub fn normalize(&self, raw_index: f64) -> f64 {
        if raw_index <= 0.0 {
            return 0.0;
        }
        ((raw_index.ln() - self.ln_min) / (self.ln_max - self.ln_min)).clamp(0.0, 1.0)
    }
}

/// Whether smaller or larger values of a QoE metric mean happier
/// users (page load time vs PSNR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricDirection {
    /// Smaller is better (page load time, startup delay).
    LowerIsBetter,
    /// Larger is better (PSNR).
    HigherIsBetter,
}

/// Fitted QoE model plus acceptability threshold for one class.
#[derive(Debug, Clone, Copy)]
pub struct ClassQoeModel {
    /// The fitted IQX curve mapping normalised QoS to the QoE metric.
    pub iqx: IqxModel,
    /// Acceptability threshold in the metric's native unit.
    pub threshold: f64,
    /// Direction of the metric.
    pub direction: MetricDirection,
}

impl ClassQoeModel {
    /// Is the QoE estimate at this (normalised) QoS acceptable?
    pub fn acceptable_at(&self, normalized_qos: f64) -> bool {
        let qoe = self.iqx.qoe(normalized_qos);
        match self.direction {
            MetricDirection::LowerIsBetter => qoe <= self.threshold,
            MetricDirection::HigherIsBetter => qoe >= self.threshold,
        }
    }
}

/// Per-class QoE estimation from gateway QoS samples.
#[derive(Debug, Clone)]
pub struct QoeEstimator {
    models: [ClassQoeModel; AppClass::COUNT],
    scale: QosScale,
    metrics: QoeMetrics,
}

impl QoeEstimator {
    /// Build from per-class models (indexed by [`AppClass::index`])
    /// and the QoS normalisation scale fitted during training.
    /// Estimates and acceptability verdicts are reported to the
    /// process-wide [`exbox_obs::global`] registry.
    pub fn new(models: [ClassQoeModel; AppClass::COUNT], scale: QosScale) -> Self {
        Self::with_registry(models, scale, exbox_obs::global())
    }

    /// Like [`QoeEstimator::new`] but reporting to an explicit
    /// registry.
    pub fn with_registry(
        models: [ClassQoeModel; AppClass::COUNT],
        scale: QosScale,
        registry: &MetricsRegistry,
    ) -> Self {
        QoeEstimator {
            models,
            scale,
            metrics: QoeMetrics::bind(registry),
        }
    }

    /// The model for one class.
    pub fn model(&self, class: AppClass) -> &ClassQoeModel {
        &self.models[class.index()]
    }

    /// Normalise a raw QoS sample onto the `[0, 1]` scale the IQX
    /// models were fitted on.
    pub fn normalize(&self, qos: &QosSample) -> f64 {
        self.scale.normalize(qos.qos_index())
    }

    /// The normalisation scale.
    pub fn scale(&self) -> QosScale {
        self.scale
    }

    /// Estimated QoE metric value for a flow of `class` with measured
    /// `qos`.
    pub fn estimate(&self, class: AppClass, qos: &QosSample) -> f64 {
        let qoe = self.model(class).iqx.qoe(self.normalize(qos));
        self.metrics.estimates[class.index()].record(qoe);
        qoe
    }

    /// Thresholded acceptability: the `Y ∈ {+1, −1}` mapping.
    pub fn acceptable(&self, class: AppClass, qos: &QosSample) -> bool {
        let ok = self.model(class).acceptable_at(self.normalize(qos));
        if ok {
            self.metrics.acceptable.inc();
        } else {
            self.metrics.unacceptable.inc();
        }
        ok
    }

    /// Default thresholds from the paper: 3 s page load (§5.3),
    /// 5 s startup delay (§2), 25 dB PSNR.
    pub fn paper_thresholds() -> [f64; AppClass::COUNT] {
        [3.0, 5.0, 25.0]
    }
}

/// Train a [`QoeEstimator`] from per-class `(normalized_qos, qoe)`
/// training sweeps — the paper's controlled training-device runs
/// (§5.3 "Estimating QoE using IQX"). Thresholds are supplied per
/// class in the metric's native unit.
///
/// # Panics
/// Panics if any class has fewer than 3 training points.
pub fn train_estimator(
    sweeps: &[Vec<(f64, f64)>; AppClass::COUNT],
    thresholds: [f64; AppClass::COUNT],
    directions: [MetricDirection; AppClass::COUNT],
    scale: QosScale,
) -> QoeEstimator {
    let models = [
        ClassQoeModel {
            iqx: IqxModel::fit(&sweeps[0]),
            threshold: thresholds[0],
            direction: directions[0],
        },
        ClassQoeModel {
            iqx: IqxModel::fit(&sweeps[1]),
            threshold: thresholds[1],
            direction: directions[1],
        },
        ClassQoeModel {
            iqx: IqxModel::fit(&sweeps[2]),
            threshold: thresholds[2],
            direction: directions[2],
        },
    ];
    for class in AppClass::ALL {
        let rmse = models[class.index()].iqx.rmse(&sweeps[class.index()]);
        exbox_obs::global()
            .gauge(&format!("qoe.fit_rmse.{}", class.name()))
            .set(rmse);
    }
    QoeEstimator::new(models, scale)
}

/// Canonical metric directions for the paper's three classes:
/// page load time ↓, startup delay ↓, PSNR ↑.
pub fn paper_directions() -> [MetricDirection; AppClass::COUNT] {
    [
        MetricDirection::LowerIsBetter,
        MetricDirection::LowerIsBetter,
        MetricDirection::HigherIsBetter,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use exbox_net::Duration;

    fn sample(throughput_bps: f64, delay_ms: u64) -> QosSample {
        QosSample {
            throughput_bps,
            mean_delay: Duration::from_millis(delay_ms),
            loss_ratio: 0.0,
        }
    }

    fn estimator() -> QoeEstimator {
        // Synthetic but shape-correct sweeps on normalised QoS [0,1].
        let plt: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let q = i as f64 / 29.0;
                (q, 1.0 + 11.0 * (-5.0 * q).exp())
            })
            .collect();
        let startup: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let q = i as f64 / 29.0;
                (q, 2.0 + 20.0 * (-6.0 * q).exp())
            })
            .collect();
        let psnr: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let q = i as f64 / 29.0;
                (q, 42.0 - 30.0 * (-4.0 * q).exp())
            })
            .collect();
        train_estimator(
            &[plt, startup, psnr],
            QoeEstimator::paper_thresholds(),
            paper_directions(),
            // Scale: index 1e3 (starved) .. 1e8 (10 Mbps at 100 ms).
            QosScale::new(1e3, 1e8),
        )
    }

    #[test]
    fn good_qos_is_acceptable_for_all_classes() {
        let est = estimator();
        let good = sample(20_000_000.0, 20); // index 1e9, clamps to 1
        for class in AppClass::ALL {
            assert!(est.acceptable(class, &good), "{class} rejected good QoS");
        }
    }

    #[test]
    fn terrible_qos_is_unacceptable_for_all_classes() {
        let est = estimator();
        let bad = sample(1_000.0, 1_000); // index 1e3 => scale floor
        for class in AppClass::ALL {
            assert!(!est.acceptable(class, &bad), "{class} accepted awful QoS");
        }
    }

    #[test]
    fn estimates_follow_direction() {
        let est = estimator();
        let good = sample(20_000_000.0, 20);
        let bad = sample(1_000.0, 1_000);
        // Delay-like metrics shrink with better QoS.
        assert!(est.estimate(AppClass::Web, &good) < est.estimate(AppClass::Web, &bad));
        // PSNR grows with better QoS.
        assert!(
            est.estimate(AppClass::Conferencing, &good)
                > est.estimate(AppClass::Conferencing, &bad)
        );
    }

    #[test]
    fn normalization_clamps_to_unit() {
        let est = estimator();
        let huge = sample(1e9, 1);
        assert!(est.normalize(&huge) <= 1.0);
        let idle = sample(0.0, 0);
        assert_eq!(est.normalize(&idle), 0.0);
    }

    #[test]
    fn qos_scale_is_log_linear() {
        let s = QosScale::new(1e2, 1e6);
        assert_eq!(s.normalize(1e2), 0.0);
        assert_eq!(s.normalize(1e6), 1.0);
        assert!((s.normalize(1e4) - 0.5).abs() < 1e-12);
        assert_eq!(s.normalize(1.0), 0.0); // below min clamps
        assert_eq!(s.normalize(1e9), 1.0); // above max clamps
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn qos_scale_rejects_inverted_range() {
        let _ = QosScale::new(1e6, 1e2);
    }

    #[test]
    fn acceptability_boundary_is_threshold_crossing() {
        let est = estimator();
        let model = est.model(AppClass::Web);
        // Find the QoS where estimated PLT crosses 3 s; acceptability
        // must flip exactly there.
        let mut flip = None;
        for i in 0..1000 {
            let q = i as f64 / 999.0;
            let acc = model.acceptable_at(q);
            if acc {
                flip = Some(q);
                break;
            }
        }
        let q_flip = flip.expect("threshold crossing exists");
        assert!(!model.acceptable_at(q_flip - 0.01));
        assert!(model.acceptable_at(q_flip + 0.01));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_min_panics() {
        let _ = QosScale::new(0.0, 1.0);
    }
}
