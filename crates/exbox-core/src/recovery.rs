//! Crash-safety support: deterministic fault injection and the
//! retry/backoff policy the middlebox uses while its model is
//! unavailable.
//!
//! The paper treats the Admittance Classifier as an always-on control
//! loop, but a deployed gateway restarts, its training can fail to
//! converge, and a checkpoint on disk can be torn. This module holds
//! the two pieces that make those paths testable:
//!
//! * [`FaultPlan`] — a seeded, deterministic injector. Each
//!   [`FaultKind`] carries an independent probability; draws come from
//!   a shared xorshift64* stream so a given seed produces the same
//!   fault schedule every run. Enabled in production builds via the
//!   `EXBOX_FAULTS` environment knob
//!   (e.g. `EXBOX_FAULTS="seed=7,retrain_fail=0.2,poll_error=0.1"`),
//!   or pinned explicitly in tests via
//!   [`crate::Middlebox::set_fault_plan`].
//! * [`RetryBackoff`] — bounded exponential backoff for retrain
//!   attempts: after the n-th consecutive failure the classifier skips
//!   `min(2^(n-1), max_skip)` retrain triggers before trying again, so
//!   a persistently failing trainer cannot burn the poll loop.
//!
//! Every injected fault increments the `faults.injected` counter;
//! recovery activity surfaces as `recovery.*` metrics (see the README
//! metrics reference).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use exbox_obs::{Counter, MetricsRegistry};

/// The failure modes the injector can force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A retrain attempt fails outright (model and scaler unchanged).
    RetrainFail,
    /// A retrain runs but the solver is cut off before convergence.
    RetrainNonConverge,
    /// A checkpoint read returns corrupted bytes.
    CheckpointCorrupt,
    /// A checkpoint read returns a truncated file.
    CheckpointTruncate,
    /// A QoE poll pass errors out before feeding the classifier.
    PollError,
}

impl FaultKind {
    /// Every kind, in [`FaultKind::index`] order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::RetrainFail,
        FaultKind::RetrainNonConverge,
        FaultKind::CheckpointCorrupt,
        FaultKind::CheckpointTruncate,
        FaultKind::PollError,
    ];

    /// Position in the probability table.
    pub fn index(self) -> usize {
        match self {
            FaultKind::RetrainFail => 0,
            FaultKind::RetrainNonConverge => 1,
            FaultKind::CheckpointCorrupt => 2,
            FaultKind::CheckpointTruncate => 3,
            FaultKind::PollError => 4,
        }
    }

    /// The spelling used in `EXBOX_FAULTS` specs.
    pub fn key(self) -> &'static str {
        match self {
            FaultKind::RetrainFail => "retrain_fail",
            FaultKind::RetrainNonConverge => "retrain_nonconverge",
            FaultKind::CheckpointCorrupt => "ckpt_corrupt",
            FaultKind::CheckpointTruncate => "ckpt_truncate",
            FaultKind::PollError => "poll_error",
        }
    }

    fn from_key(key: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.key() == key)
    }
}

/// Non-zero replacement for a zero seed — xorshift64* has an all-zero
/// fixed point.
const SEED_FALLBACK: u64 = 0xE4B0_C5AF_E10D_5EED;

/// A deterministic fault-injection schedule.
///
/// Clones share the PRNG stream and the injected-fault counter, so the
/// middlebox and the classifier it owns draw from one schedule: a plan
/// with `seed=7` fires the same faults at the same draw positions on
/// every run, regardless of which component consumed each draw.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    probs: [f64; FaultKind::ALL.len()],
    state: Arc<AtomicU64>,
    injected: Arc<Counter>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultPlan {
    /// A plan that never injects anything (the production default).
    pub fn disabled() -> Self {
        FaultPlan {
            probs: [0.0; FaultKind::ALL.len()],
            state: Arc::new(AtomicU64::new(SEED_FALLBACK)),
            injected: Arc::new(Counter::new()),
        }
    }

    /// Build a plan with explicit per-kind probabilities, binding its
    /// counter into the global registry.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(pairs: &[(FaultKind, f64)], seed: u64) -> Self {
        Self::with_registry(pairs, seed, exbox_obs::global())
    }

    /// [`FaultPlan::new`] with an explicit metrics registry.
    pub fn with_registry(pairs: &[(FaultKind, f64)], seed: u64, reg: &MetricsRegistry) -> Self {
        let mut probs = [0.0; FaultKind::ALL.len()];
        for &(kind, p) in pairs {
            assert!(
                (0.0..=1.0).contains(&p),
                "fault probability must be in [0, 1], got {p}"
            );
            probs[kind.index()] = p;
        }
        FaultPlan {
            probs,
            state: Arc::new(AtomicU64::new(if seed == 0 { SEED_FALLBACK } else { seed })),
            injected: reg.counter("faults.injected"),
        }
    }

    /// Parse an `EXBOX_FAULTS` spec: comma-separated `key=value`
    /// pairs, where keys are `seed` or a [`FaultKind::key`] and values
    /// are `u64` / probabilities in `[0, 1]`. Empty specs yield a
    /// disabled plan.
    pub fn parse(spec: &str, reg: &MetricsRegistry) -> Result<FaultPlan, String> {
        let mut pairs = Vec::new();
        let mut seed = 0u64;
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {item:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed value {value:?}"))?;
            } else if let Some(kind) = FaultKind::from_key(key) {
                let p = value
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("bad probability for {key}: {value:?}"))?;
                pairs.push((kind, p));
            } else {
                return Err(format!("unknown fault key {key:?}"));
            }
        }
        Ok(FaultPlan::with_registry(&pairs, seed, reg))
    }

    /// Build a plan from the `EXBOX_FAULTS` environment knob. Unset or
    /// empty means disabled; a malformed spec warns and stays disabled
    /// (consistent with the other `EXBOX_*` knobs).
    pub fn from_env(reg: &MetricsRegistry) -> FaultPlan {
        match std::env::var("EXBOX_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => match FaultPlan::parse(&spec, reg) {
                Ok(plan) => plan,
                Err(err) => {
                    eprintln!("exbox: ignoring invalid EXBOX_FAULTS={spec:?}: {err}");
                    FaultPlan::disabled()
                }
            },
            _ => FaultPlan::disabled(),
        }
    }

    /// `true` when at least one fault kind can fire.
    pub fn armed(&self) -> bool {
        self.probs.iter().any(|&p| p > 0.0)
    }

    /// Total faults injected so far across all clones of this plan.
    pub fn injected(&self) -> u64 {
        self.injected.get()
    }

    /// Draw for `kind`: `true` means the caller must fail this
    /// operation. Probability-zero kinds never consume a PRNG draw, so
    /// arming one kind does not perturb another kind's schedule.
    pub fn should_inject(&self, kind: FaultKind) -> bool {
        let p = self.probs[kind.index()];
        if p <= 0.0 {
            return false;
        }
        let hit = p >= 1.0 || {
            // 53 high-quality bits -> uniform in [0, 1).
            let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            u < p
        };
        if hit {
            self.injected.inc();
        }
        hit
    }

    /// Apply checkpoint read faults to freshly read bytes: truncation
    /// cuts the buffer in half, corruption flips a bit in a
    /// deterministically chosen byte. Both leave the checksum stale so
    /// the loader must reject the result.
    pub fn mangle_checkpoint(&self, bytes: &mut Vec<u8>) {
        if self.should_inject(FaultKind::CheckpointTruncate) {
            bytes.truncate(bytes.len() / 2);
        }
        if self.should_inject(FaultKind::CheckpointCorrupt) && !bytes.is_empty() {
            let idx = (self.next_u64() % bytes.len() as u64) as usize;
            bytes[idx] ^= 0x20;
        }
    }

    /// xorshift64* step on the shared state (lock-free CAS loop).
    fn next_u64(&self) -> u64 {
        loop {
            let cur = self.state.load(Ordering::Relaxed);
            let mut x = cur;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            if self
                .state
                .compare_exchange_weak(cur, x, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return x.wrapping_mul(0x2545_F491_4F6C_DD1D);
            }
        }
    }
}

/// Bounded exponential backoff over retrain *triggers* (batch
/// completions), not wall time — the classifier has no clock of its
/// own. After the n-th consecutive failure, `min(2^(n-1), max_skip)`
/// triggers are skipped before the next attempt.
#[derive(Debug, Clone)]
pub struct RetryBackoff {
    max_skip: u32,
    consecutive_failures: u32,
    skip_remaining: u32,
}

impl Default for RetryBackoff {
    /// Cap at 8 skipped triggers — with the paper's batch size of 25
    /// observations that bounds model staleness at 200 polls.
    fn default() -> Self {
        RetryBackoff::new(8)
    }
}

impl RetryBackoff {
    /// Backoff capped at `max_skip` skipped triggers per failure.
    ///
    /// # Panics
    /// Panics if `max_skip` is zero.
    pub fn new(max_skip: u32) -> Self {
        assert!(max_skip >= 1, "max_skip must be at least 1");
        RetryBackoff {
            max_skip,
            consecutive_failures: 0,
            skip_remaining: 0,
        }
    }

    /// `true` when the next retrain trigger should attempt training.
    pub fn ready(&self) -> bool {
        self.skip_remaining == 0
    }

    /// Consume one skipped trigger.
    pub fn tick(&mut self) {
        self.skip_remaining = self.skip_remaining.saturating_sub(1);
    }

    /// Record a failed attempt and arm the next skip window.
    pub fn on_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let exp = (self.consecutive_failures - 1).min(31);
        self.skip_remaining = (1u32 << exp).min(self.max_skip);
    }

    /// Record a successful attempt; the schedule resets.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.skip_remaining = 0;
    }

    /// Failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.armed());
        for _ in 0..1000 {
            for kind in FaultKind::ALL {
                assert!(!plan.should_inject(kind));
            }
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let reg = MetricsRegistry::new();
        let mk = || {
            FaultPlan::with_registry(
                &[(FaultKind::RetrainFail, 0.3), (FaultKind::PollError, 0.5)],
                42,
                &reg,
            )
        };
        let (a, b) = (mk(), mk());
        for _ in 0..200 {
            assert_eq!(
                a.should_inject(FaultKind::RetrainFail),
                b.should_inject(FaultKind::RetrainFail)
            );
            assert_eq!(
                a.should_inject(FaultKind::PollError),
                b.should_inject(FaultKind::PollError)
            );
        }
    }

    #[test]
    fn clones_share_one_stream_and_counter() {
        let reg = MetricsRegistry::new();
        let plan = FaultPlan::with_registry(&[(FaultKind::RetrainFail, 1.0)], 7, &reg);
        let clone = plan.clone();
        assert!(plan.should_inject(FaultKind::RetrainFail));
        assert!(clone.should_inject(FaultKind::RetrainFail));
        assert_eq!(plan.injected(), 2);
        assert_eq!(clone.injected(), 2);
        assert_eq!(reg.snapshot().counter("faults.injected"), Some(2));
    }

    #[test]
    fn certain_and_impossible_probabilities() {
        let reg = MetricsRegistry::new();
        let plan = FaultPlan::with_registry(
            &[
                (FaultKind::RetrainFail, 1.0),
                (FaultKind::RetrainNonConverge, 0.0),
            ],
            9,
            &reg,
        );
        for _ in 0..100 {
            assert!(plan.should_inject(FaultKind::RetrainFail));
            assert!(!plan.should_inject(FaultKind::RetrainNonConverge));
        }
    }

    #[test]
    fn probability_roughly_respected() {
        let reg = MetricsRegistry::new();
        let plan = FaultPlan::with_registry(&[(FaultKind::PollError, 0.25)], 1234, &reg);
        let hits = (0..4000)
            .filter(|_| plan.should_inject(FaultKind::PollError))
            .count();
        // Loose 3-sigma-ish band around 1000.
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn zero_seed_is_remapped() {
        let reg = MetricsRegistry::new();
        let plan = FaultPlan::with_registry(&[(FaultKind::RetrainFail, 0.5)], 0, &reg);
        // With a stuck all-zero state every draw would be identical;
        // 64 draws of a fair-ish coin must see both outcomes.
        let draws: Vec<bool> = (0..64)
            .map(|_| plan.should_inject(FaultKind::RetrainFail))
            .collect();
        assert!(draws.iter().any(|&d| d) && draws.iter().any(|&d| !d));
    }

    #[test]
    fn parse_accepts_full_spec() {
        let reg = MetricsRegistry::new();
        let plan = FaultPlan::parse(
            "seed=7, retrain_fail=0.5,ckpt_corrupt=1.0 , poll_error=0",
            &reg,
        )
        .expect("valid spec");
        assert!(plan.armed());
        assert!(plan.should_inject(FaultKind::CheckpointCorrupt));
        assert!(!plan.should_inject(FaultKind::PollError));
    }

    #[test]
    fn parse_rejects_bad_specs() {
        let reg = MetricsRegistry::new();
        assert!(FaultPlan::parse("retrain_fail", &reg).is_err());
        assert!(FaultPlan::parse("unknown_kind=0.5", &reg).is_err());
        assert!(FaultPlan::parse("retrain_fail=1.5", &reg).is_err());
        assert!(FaultPlan::parse("retrain_fail=-0.1", &reg).is_err());
        assert!(FaultPlan::parse("retrain_fail=NaN", &reg).is_err());
        assert!(FaultPlan::parse("seed=abc", &reg).is_err());
        assert!(!FaultPlan::parse("", &reg).expect("empty is fine").armed());
    }

    #[test]
    fn mangle_truncates_and_corrupts() {
        let reg = MetricsRegistry::new();
        let original: Vec<u8> = (0..64u8).collect();

        let trunc = FaultPlan::with_registry(&[(FaultKind::CheckpointTruncate, 1.0)], 3, &reg);
        let mut bytes = original.clone();
        trunc.mangle_checkpoint(&mut bytes);
        assert_eq!(bytes.len(), 32);

        let corrupt = FaultPlan::with_registry(&[(FaultKind::CheckpointCorrupt, 1.0)], 3, &reg);
        let mut bytes = original.clone();
        corrupt.mangle_checkpoint(&mut bytes);
        assert_eq!(bytes.len(), original.len());
        assert_ne!(bytes, original);

        let clean = FaultPlan::disabled();
        let mut bytes = original.clone();
        clean.mangle_checkpoint(&mut bytes);
        assert_eq!(bytes, original);
    }

    #[test]
    fn backoff_schedule_doubles_to_cap() {
        let mut b = RetryBackoff::new(8);
        assert!(b.ready());
        let mut skips = Vec::new();
        for _ in 0..5 {
            b.on_failure();
            let mut n = 0;
            while !b.ready() {
                b.tick();
                n += 1;
            }
            skips.push(n);
        }
        assert_eq!(skips, vec![1, 2, 4, 8, 8]);
        b.on_success();
        assert!(b.ready());
        assert_eq!(b.consecutive_failures(), 0);
        b.on_failure();
        let mut n = 0;
        while !b.ready() {
            b.tick();
            n += 1;
        }
        assert_eq!(n, 1, "schedule restarts after success");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn backoff_zero_cap_panics() {
        let _ = RetryBackoff::new(0);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn plan_rejects_out_of_range_probability() {
        let _ =
            FaultPlan::with_registry(&[(FaultKind::RetrainFail, 1.2)], 1, &MetricsRegistry::new());
    }
}
