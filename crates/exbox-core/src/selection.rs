//! Network selection across multiple cells (paper §4.1).
//!
//! In a hybrid deployment (WiFi APs + LTE small cells behind one
//! gateway, Fig. 1), ExBox keeps one Admittance Classifier per cell.
//! A new flow is steered to a cell that classifies it admissible; if
//! several do, "ExBox can select the best suited network based on how
//! much 'inside' the capacity region the new test point is. There is
//! a straightforward mechanism to do this in SVM by evaluating how
//! far away from the separating hyperplane the test point lies."

use std::sync::Arc;

use exbox_ml::Label;
use exbox_obs::{buckets, Counter, Histogram, MetricsRegistry};

use crate::admittance::AdmittanceClassifier;
use crate::matrix::{FlowKind, TrafficMatrix};

/// Instrumentation handles for offload decisions.
#[derive(Debug)]
struct SelectionMetrics {
    /// `selection.steers` — flows steered to some cell.
    steers: Arc<Counter>,
    /// `selection.rejects_everywhere` — flows no cell could take.
    rejects_everywhere: Arc<Counter>,
    /// `selection.steer_margin` — decision value at the chosen cell
    /// (depth inside its ExCR; bootstrapping cells score 0).
    steer_margin: Arc<Histogram>,
}

impl SelectionMetrics {
    fn bind(reg: &MetricsRegistry) -> Self {
        SelectionMetrics {
            steers: reg.counter("selection.steers"),
            rejects_everywhere: reg.counter("selection.rejects_everywhere"),
            steer_margin: reg.histogram("selection.steer_margin", &buckets::linear(-2.0, 0.25, 24)),
        }
    }
}

impl Default for SelectionMetrics {
    fn default() -> Self {
        Self::bind(exbox_obs::global())
    }
}

/// One candidate cell: its classifier and its current traffic matrix.
#[derive(Debug)]
pub struct NetworkCell {
    /// Operator-facing cell name (e.g. "wifi-ap1", "lte-enb2").
    pub name: String,
    /// The cell's learnt ExCR boundary.
    pub classifier: AdmittanceClassifier,
    /// The cell's current traffic matrix.
    pub matrix: TrafficMatrix,
}

impl NetworkCell {
    /// Create a cell.
    pub fn new(name: impl Into<String>, classifier: AdmittanceClassifier) -> Self {
        NetworkCell {
            name: name.into(),
            classifier,
            matrix: TrafficMatrix::empty(),
        }
    }
}

/// Outcome of a selection attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// Steer the flow to this cell (index into the selector's cells).
    Steer {
        /// Index of the chosen cell.
        cell: usize,
        /// Decision value at the chosen cell (depth inside its ExCR).
        score: f64,
    },
    /// No cell can take the flow without QoE damage.
    RejectEverywhere,
}

/// Multi-cell selector.
#[derive(Debug, Default)]
pub struct NetworkSelector {
    cells: Vec<NetworkCell>,
    metrics: SelectionMetrics,
}

impl NetworkSelector {
    /// Empty selector reporting to the process-wide
    /// [`exbox_obs::global`] registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty selector reporting to an explicit registry.
    pub fn with_registry(registry: &MetricsRegistry) -> Self {
        NetworkSelector {
            cells: Vec::new(),
            metrics: SelectionMetrics::bind(registry),
        }
    }

    /// Register a cell; returns its index.
    pub fn add_cell(&mut self, cell: NetworkCell) -> usize {
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// Access a cell.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn cell(&self, i: usize) -> &NetworkCell {
        &self.cells[i]
    }

    /// Mutable access to a cell.
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn cell_mut(&mut self, i: usize) -> &mut NetworkCell {
        &mut self.cells[i]
    }

    /// Number of registered cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no cells are registered.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Pick the best cell for an arriving flow of `kind`: among the
    /// cells whose classifier answers +1 (or is still bootstrapping —
    /// those admit by definition), choose the one with the highest
    /// decision value, i.e. the point deepest inside a capacity
    /// region. Bootstrapping cells score 0.
    pub fn select(&self, kind: FlowKind) -> Selection {
        let mut best: Option<(usize, f64)> = None;
        for (i, cell) in self.cells.iter().enumerate() {
            let resulting = cell.matrix.with_arrival(kind);
            if cell.classifier.classify(&resulting) != Label::Pos {
                continue;
            }
            let score = cell.classifier.decision_value(&resulting).unwrap_or(0.0);
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((i, score));
            }
        }
        match best {
            Some((cell, score)) => {
                self.metrics.steers.inc();
                self.metrics.steer_margin.record(score);
                Selection::Steer { cell, score }
            }
            None => {
                self.metrics.rejects_everywhere.inc();
                Selection::RejectEverywhere
            }
        }
    }

    /// Commit a steering decision: record the arrival in the chosen
    /// cell's matrix.
    ///
    /// # Panics
    /// Panics on an out-of-range cell index.
    pub fn commit(&mut self, cell: usize, kind: FlowKind) {
        self.cells[cell].matrix.add(kind);
    }

    /// Record a departure from a cell.
    ///
    /// # Panics
    /// Panics on an out-of-range cell index.
    pub fn depart(&mut self, cell: usize, kind: FlowKind) {
        self.cells[cell].matrix.remove(kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admittance::{AdmittanceClassifier, AdmittanceConfig};
    use crate::matrix::SnrLevel;
    use exbox_net::AppClass;

    fn kind() -> FlowKind {
        FlowKind::new(AppClass::Streaming, SnrLevel::High)
    }

    /// Train a classifier to accept totals <= cap.
    fn trained(cap: u32) -> AdmittanceClassifier {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        for w in 0..5u32 {
            for s in 0..5u32 {
                for c in 0..3u32 {
                    let mut m = TrafficMatrix::empty();
                    for _ in 0..w {
                        m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
                    }
                    for _ in 0..s {
                        m.add(kind());
                    }
                    for _ in 0..c {
                        m.add(FlowKind::new(AppClass::Conferencing, SnrLevel::Low));
                    }
                    let y = if m.total() <= cap {
                        exbox_ml::Label::Pos
                    } else {
                        exbox_ml::Label::Neg
                    };
                    ac.observe(m, y);
                }
            }
        }
        assert_eq!(ac.phase(), crate::admittance::Phase::Online);
        ac
    }

    #[test]
    fn selects_emptier_cell() {
        let mut sel = NetworkSelector::new();
        let a = sel.add_cell(NetworkCell::new("wifi", trained(6)));
        let b = sel.add_cell(NetworkCell::new("lte", trained(6)));
        // Load cell a with 4 flows; cell b stays empty.
        for _ in 0..4 {
            sel.commit(a, kind());
        }
        match sel.select(kind()) {
            Selection::Steer { cell, .. } => assert_eq!(cell, b, "should pick the empty cell"),
            Selection::RejectEverywhere => panic!("unexpected reject"),
        }
    }

    #[test]
    fn rejects_when_all_cells_full() {
        let mut sel = NetworkSelector::new();
        let a = sel.add_cell(NetworkCell::new("wifi", trained(4)));
        let b = sel.add_cell(NetworkCell::new("lte", trained(4)));
        for _ in 0..6 {
            sel.commit(a, kind());
            sel.commit(b, kind());
        }
        assert_eq!(sel.select(kind()), Selection::RejectEverywhere);
    }

    #[test]
    fn departure_reopens_capacity() {
        let mut sel = NetworkSelector::new();
        let a = sel.add_cell(NetworkCell::new("wifi", trained(4)));
        for _ in 0..6 {
            sel.commit(a, kind());
        }
        assert_eq!(sel.select(kind()), Selection::RejectEverywhere);
        for _ in 0..4 {
            sel.depart(a, kind());
        }
        assert!(matches!(sel.select(kind()), Selection::Steer { cell, .. } if cell == a));
    }

    #[test]
    fn bootstrapping_cell_accepts() {
        let mut sel = NetworkSelector::new();
        sel.add_cell(NetworkCell::new(
            "fresh",
            AdmittanceClassifier::new(AdmittanceConfig::default()),
        ));
        assert!(matches!(sel.select(kind()), Selection::Steer { .. }));
    }

    #[test]
    fn empty_selector_rejects() {
        let sel = NetworkSelector::new();
        assert_eq!(sel.select(kind()), Selection::RejectEverywhere);
    }
}
