//! cfg-selected synchronisation layer.
//!
//! Every concurrency primitive on the gateway's modelled paths — the
//! QSBR [`SnapshotCell`](crate::gateway::SnapshotCell), the bounded
//! trainer channel, the [`SharedMatrix`](crate::gateway::SharedMatrix)
//! occupancy cell — imports its atomics, locks and threads from here
//! instead of `std::sync` directly:
//!
//! * **default builds** re-export `std::sync` / `std::thread`
//!   unchanged — zero cost, identical codegen;
//! * **`--cfg exbox_loom` builds** (set via
//!   `RUSTFLAGS='--cfg exbox_loom'`, see `scripts/loom_check.sh`)
//!   re-export the `exbox-loom` shims, which pass through to std
//!   outside a model and become scheduler switch points inside one.
//!
//! The swap is sound because everything ported here uses `SeqCst`
//! exclusively, so the model's sequentially-consistent exploration
//! covers exactly the behaviours the real code can exhibit (DESIGN.md
//! §9). Keep it that way: new code on these paths must not introduce
//! weaker orderings without revisiting that argument.

#[cfg(not(exbox_loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, Ordering};
#[cfg(not(exbox_loom))]
pub(crate) use std::sync::{Condvar, Mutex};
#[cfg(not(exbox_loom))]
pub(crate) use std::thread;

#[cfg(exbox_loom)]
pub(crate) use exbox_loom::sync::{
    AtomicBool, AtomicPtr, AtomicU32, AtomicU64, Condvar, Mutex, Ordering,
};
#[cfg(exbox_loom)]
pub(crate) use exbox_loom::thread;
