//! Property-based tests for the `exbox-ckpt` checkpoint format:
//! round-trips are decision-bit-exact for arbitrary learnt states, and
//! no corruption or truncation of the byte stream is ever served.

use exbox_core::prelude::*;
use exbox_core::qoe::{paper_directions, train_estimator, QoeEstimator, QosScale};
use exbox_ml::Label;
use exbox_net::AppClass;
use exbox_obs::MetricsRegistry;
use proptest::prelude::*;

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        QosScale::new(1e3, 1e8),
    )
}

fn cfg() -> AdmittanceConfig {
    AdmittanceConfig {
        batch_size: 8,
        ..AdmittanceConfig::default()
    }
}

fn arb_kind() -> impl Strategy<Value = FlowKind> {
    (0usize..3, 0usize..2)
        .prop_map(|(c, s)| FlowKind::new(AppClass::from_index(c), SnrLevel::from_index(s)))
}

fn arb_matrix() -> impl Strategy<Value = TrafficMatrix> {
    prop::collection::vec(arb_kind(), 0..12).prop_map(|kinds| {
        let mut m = TrafficMatrix::empty();
        for k in kinds {
            m.add(k);
        }
        m
    })
}

/// A classifier taken online by a deterministic grid feed, then pushed
/// into an arbitrary mid-batch state by random extra observations —
/// partial pending batches, post-retrain warm state, relabelled
/// entries and all.
fn classifier_from(extra: &[(TrafficMatrix, bool)]) -> AdmittanceClassifier {
    let reg = MetricsRegistry::new();
    let mut ac = AdmittanceClassifier::with_registry(cfg(), &reg);
    for w in 0..4u32 {
        for s in 0..4u32 {
            for c in 0..4u32 {
                let mut m = TrafficMatrix::empty();
                for _ in 0..w {
                    m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
                }
                for _ in 0..s {
                    m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
                }
                for _ in 0..c {
                    m.add(FlowKind::new(AppClass::Conferencing, SnrLevel::Low));
                }
                let y = if m.total() <= 6 {
                    Label::Pos
                } else {
                    Label::Neg
                };
                ac.observe(m, y);
            }
        }
    }
    assert_eq!(ac.phase(), Phase::Online, "fixture must go online");
    for &(m, pos) in extra {
        let y = if pos { Label::Pos } else { Label::Neg };
        ac.observe(m, y);
    }
    ac
}

fn checkpoint_bytes(ac: &AdmittanceClassifier) -> Vec<u8> {
    let mut buf = Vec::new();
    save_checkpoint(ac, &estimator(), &mut buf).expect("save must succeed");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Save → load is decision-bit-exact for any reachable learnt
    /// state, and the restored classifier keeps agreeing with the
    /// original as both continue to learn from identical traffic.
    #[test]
    fn checkpoint_roundtrip_is_decision_bit_exact(
        extra in prop::collection::vec((arb_matrix(), any::<bool>()), 0..30),
        queries in prop::collection::vec(arb_matrix(), 1..20),
    ) {
        let mut original = classifier_from(&extra);
        let buf = checkpoint_bytes(&original);

        let reg = MetricsRegistry::new();
        let (mut restored, _est) =
            load_checkpoint(&buf[..], cfg(), &reg).expect("load must succeed");

        prop_assert_eq!(restored.phase(), original.phase());
        prop_assert_eq!(restored.num_samples(), original.num_samples());
        prop_assert_eq!(restored.num_observations(), original.num_observations());
        prop_assert_eq!(restored.retrain_count(), original.retrain_count());
        for q in &queries {
            prop_assert_eq!(restored.classify(q), original.classify(q));
            prop_assert_eq!(
                restored.decision_value(q).map(f64::to_bits),
                original.decision_value(q).map(f64::to_bits),
                "margin must be bit-exact for {q}"
            );
        }

        // Keep both learning from the same stream: the restored
        // instance must track the original through further retrains.
        for q in &queries {
            let y = if q.total() <= 6 { Label::Pos } else { Label::Neg };
            original.observe(*q, y);
            restored.observe(*q, y);
        }
        prop_assert_eq!(restored.retrain_count(), original.retrain_count());
        for q in &queries {
            prop_assert_eq!(
                restored.decision_value(q).map(f64::to_bits),
                original.decision_value(q).map(f64::to_bits)
            );
        }
    }

    /// Flipping any single byte anywhere in the stream makes the load
    /// fail cleanly — never a panic, never a silently wrong model.
    #[test]
    fn corrupted_checkpoint_is_rejected_not_served(
        extra in prop::collection::vec((arb_matrix(), any::<bool>()), 0..10),
        pos in 0.0f64..1.0,
        xor in 1u8..255,
    ) {
        let mut buf = checkpoint_bytes(&classifier_from(&extra));
        let idx = ((buf.len() - 1) as f64 * pos) as usize;
        buf[idx] ^= xor;
        let reg = MetricsRegistry::new();
        prop_assert!(
            load_checkpoint(&buf[..], cfg(), &reg).is_err(),
            "byte {idx} ^ {xor:#04x} must be detected"
        );
    }

    /// A torn write (any prefix of the stream) is detected — the
    /// trailing checksum line is missing or mismatched.
    #[test]
    fn truncated_checkpoint_is_rejected_not_served(
        extra in prop::collection::vec((arb_matrix(), any::<bool>()), 0..10),
        cut in 0.0f64..1.0,
    ) {
        let mut buf = checkpoint_bytes(&classifier_from(&extra));
        // Cutting only the final newline still leaves a complete
        // checkpoint, so stop short of it.
        let keep = ((buf.len() - 2) as f64 * cut) as usize;
        buf.truncate(keep);
        let reg = MetricsRegistry::new();
        prop_assert!(
            load_checkpoint(&buf[..], cfg(), &reg).is_err(),
            "prefix of {keep} bytes must be rejected"
        );
    }
}
