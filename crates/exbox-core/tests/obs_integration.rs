//! End-to-end observability check: drive a scripted packet trace
//! through a [`Middlebox`] bound to an isolated registry and assert
//! the `middlebox.*` counters agree *exactly* with the `Action`s and
//! `PollVerdict`s the middlebox returned, and that the decision ring
//! holds a structured event for every admit / reject / revoke.

use exbox_core::prelude::*;
use exbox_core::qoe::QosScale;
use exbox_core::{DecisionKind, DecisionReason};
use exbox_ml::Label;
use exbox_net::{AppClass, Direction, Duration, FlowKey, Instant, Packet, Protocol};
use exbox_obs::MetricsRegistry;

fn estimator(reg: &MetricsRegistry) -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    let trained = train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        QosScale::new(1e3, 1e8),
    );
    // Rebind the fitted models to the test's isolated registry.
    QoeEstimator::with_registry(
        [
            *trained.model(AppClass::Web),
            *trained.model(AppClass::Streaming),
            *trained.model(AppClass::Conferencing),
        ],
        trained.scale(),
        reg,
    )
}

fn streaming_matrix(total: u32) -> TrafficMatrix {
    let mut m = TrafficMatrix::empty();
    for _ in 0..total {
        m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
    }
    m
}

/// Classifier trained online (monotone guard on, so region answers
/// are deterministic dominance lookups) to accept ≤ 2 flows.
fn trained_classifier(reg: &MetricsRegistry) -> AdmittanceClassifier {
    let mut ac = AdmittanceClassifier::with_registry(
        AdmittanceConfig {
            batch_size: 1,
            monotone_guard: true,
            bootstrap_min_samples: 50,
            ..AdmittanceConfig::default()
        },
        reg,
    );
    for n in 0..80u32 {
        let total = n % 8;
        let y = if total <= 2 { Label::Pos } else { Label::Neg };
        ac.observe(streaming_matrix(total), y);
    }
    assert_eq!(ac.phase(), Phase::Online, "classifier must be online");
    ac
}

fn streaming_pkts(key: FlowKey, n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            Packet::new(
                Instant::from_millis(2 * i as u64),
                1400,
                key,
                Direction::Downlink,
                i as u64,
            )
        })
        .collect()
}

#[test]
fn counters_match_returned_verdicts_exactly() {
    let reg = MetricsRegistry::new();
    let mut mb = Middlebox::with_registry(
        MiddleboxConfig::default(),
        estimator(&reg),
        trained_classifier(&reg),
        &reg,
    );

    // Tallies recomputed purely from the middlebox's return values.
    let mut packets = 0u64;
    let mut dropped = 0u64;
    let mut rejected_flows = 0u64;
    let mut keeps = 0u64;
    let mut revokes = 0u64;

    let keys: Vec<FlowKey> = (1..=3)
        .map(|i| FlowKey::synthetic(i, i, i as u8, Protocol::Tcp))
        .collect();
    for key in &keys {
        let mut flow_dropped = false;
        for p in streaming_pkts(*key, 12) {
            packets += 1;
            if mb.process_packet(&p, SnrLevel::High) == Action::Drop {
                dropped += 1;
                if !flow_dropped {
                    flow_dropped = true;
                    rejected_flows += 1;
                }
            }
        }
    }
    // ≤2-flow region: flows 1 and 2 admitted, flow 3 rejected.
    assert_eq!(mb.admitted_flows(), 2);
    assert_eq!(rejected_flows, 1);
    let admits = keys.len() as u64 - rejected_flows;

    // Terrible QoS for both admitted flows; the poll must label the
    // matrix inadmissible, retrain (batch size 1), and — thanks to the
    // dominance guard — deterministically revoke exactly one flow
    // (after which the 1-flow matrix is dominated by a stored
    // admissible sample and the re-check stops).
    for key in &keys[..2] {
        for i in 0..20u64 {
            mb.record_delivery(
                key,
                Instant::from_millis(i * 1_000),
                Instant::from_millis(i * 1_000 + 900),
                50,
            );
        }
    }
    // Polls return only revocations; kept flows are tallied in bulk
    // into `middlebox.keeps` without materialising Keep verdicts.
    let verdicts = mb.poll(Instant::from_secs(10));
    for (_, v) in &verdicts {
        match v {
            PollVerdict::Keep => unreachable!("polls return revocations only"),
            PollVerdict::Revoke => revokes += 1,
        }
    }
    assert_eq!(revokes, 1, "expected exactly one revocation");
    assert_eq!(mb.admitted_flows(), 1);

    // A second poll inside the interval must be a silent no-op.
    assert!(mb
        .poll(Instant::from_secs(10) + Duration::from_millis(1))
        .is_empty());

    // Healthy QoS for the surviving flow: the next poll leaves it
    // admitted and counts it as kept (one bulk increment per admitted
    // flow when the matrix re-evaluates inside the region).
    for i in 0..50u64 {
        mb.record_delivery(
            &keys[1],
            Instant::from_millis(i * 10),
            Instant::from_millis(i * 10 + 5),
            1400,
        );
    }
    let kept = mb.poll(Instant::from_secs(20));
    assert!(kept.is_empty(), "a healthy matrix must revoke nothing");
    keeps += mb.admitted_flows() as u64;
    assert_eq!(mb.admitted_flows(), 1);

    // One of the two originally admitted flows was revoked; departing
    // both must count exactly one real departure.
    mb.flow_departed(&keys[0]);
    mb.flow_departed(&keys[1]);
    assert_eq!(mb.admitted_flows(), 0);

    let snap = reg.snapshot();
    assert_eq!(snap.counter("middlebox.packets"), Some(packets));
    assert_eq!(snap.counter("middlebox.admits"), Some(admits));
    assert_eq!(snap.counter("middlebox.rejects"), Some(rejected_flows));
    // Every returned Drop is either the deciding rejection or a
    // subsequent packet of an already-rejected flow.
    assert_eq!(
        snap.counter("middlebox.drops_rejected"),
        Some(dropped - rejected_flows)
    );
    assert_eq!(snap.counter("middlebox.keeps"), Some(keeps));
    assert_eq!(snap.counter("middlebox.revokes"), Some(revokes));
    assert_eq!(snap.counter("middlebox.polls"), Some(2));
    assert_eq!(snap.counter("middlebox.departures"), Some(1));

    // One latency observation per arrival decision, one per executed
    // poll.
    let decide = snap.histogram("middlebox.decision_latency_ns").unwrap();
    assert_eq!(decide.count, admits + rejected_flows);
    assert_eq!(
        snap.histogram("middlebox.poll_latency_ns").unwrap().count,
        2
    );

    // The classifier's own instruments live in the same registry.
    assert_eq!(
        snap.counter("admittance.observations"),
        Some(mb.admittance().num_observations())
    );
    assert_eq!(
        snap.counter("admittance.retrains"),
        Some(mb.admittance().retrain_count())
    );

    // The decision ring mirrors the counters, with explainable
    // reasons and margins on the online-phase verdicts.
    let log = mb.decision_log().snapshot();
    let count = |k: DecisionKind| log.iter().filter(|e| e.verdict == k).count() as u64;
    assert_eq!(count(DecisionKind::Admit), admits);
    assert_eq!(count(DecisionKind::Reject), rejected_flows);
    assert_eq!(count(DecisionKind::Revoke), revokes);
    for e in &log {
        assert_eq!(e.class, AppClass::Streaming);
        match e.verdict {
            DecisionKind::Admit => assert_eq!(e.reason, DecisionReason::InsideRegion),
            DecisionKind::Reject => assert_eq!(e.reason, DecisionReason::OutsideRegion),
            DecisionKind::Revoke => assert_eq!(e.reason, DecisionReason::RegionReevaluation),
        }
        // Each event renders to a one-line explanation.
        assert!(!format!("{e}").is_empty());
    }

    // The snapshot round-trips through both export formats.
    let json = reg.snapshot().to_json();
    assert!(json.contains("\"middlebox.admits\":2"));
    let csv = reg.snapshot().to_csv();
    assert!(csv.contains("middlebox.revokes,counter,1"));
}
