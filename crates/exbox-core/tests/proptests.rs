//! Property-based tests for exbox-core invariants.

use exbox_core::prelude::*;
use exbox_ml::Label;
use exbox_net::AppClass;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = FlowKind> {
    (0usize..3, 0usize..2)
        .prop_map(|(c, s)| FlowKind::new(AppClass::from_index(c), SnrLevel::from_index(s)))
}

fn arb_matrix() -> impl Strategy<Value = TrafficMatrix> {
    prop::collection::vec(arb_kind(), 0..40).prop_map(|kinds| {
        let mut m = TrafficMatrix::empty();
        for k in kinds {
            m.add(k);
        }
        m
    })
}

proptest! {
    /// Arrival then departure of the same kind is the identity.
    #[test]
    fn matrix_arrival_departure_identity(m in arb_matrix(), k in arb_kind()) {
        prop_assert_eq!(m.with_arrival(k).with_departure(k), m);
    }

    /// Total always equals the sum of the feature vector.
    #[test]
    fn matrix_total_is_feature_sum(m in arb_matrix()) {
        let sum: f64 = m.features().iter().sum();
        prop_assert_eq!(sum as u32, m.total());
    }

    /// Departures never underflow.
    #[test]
    fn matrix_departure_saturates(k in arb_kind(), n in 0u32..5) {
        let mut m = TrafficMatrix::empty();
        for _ in 0..n {
            m.add(k);
        }
        for _ in 0..(n + 3) {
            m.remove(k);
        }
        prop_assert_eq!(m.total(), 0);
    }

    /// Feature encoding is injective over distinct matrices.
    #[test]
    fn matrix_features_injective(a in arb_matrix(), b in arb_matrix()) {
        if a != b {
            prop_assert_ne!(a.features(), b.features());
        } else {
            prop_assert_eq!(a.features(), b.features());
        }
    }

    /// IQX evaluation is monotone for positive β and γ.
    #[test]
    fn iqx_monotone_decreasing(
        alpha in -10.0f64..10.0,
        beta in 0.1f64..50.0,
        gamma in 0.1f64..10.0,
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let m = IqxModel { alpha, beta, gamma };
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(m.qoe(lo) >= m.qoe(hi) - 1e-12);
    }

    /// IQX fit never increases RMSE above the flat-model baseline
    /// (the fit family contains β = 0).
    #[test]
    fn iqx_fit_beats_flat_model(points in prop::collection::vec((0.0f64..1.0, 0.0f64..50.0), 3..40)) {
        let fit = IqxModel::fit(&points);
        let mean = points.iter().map(|&(_, e)| e).sum::<f64>() / points.len() as f64;
        let flat = IqxModel { alpha: mean, beta: 0.0, gamma: 1.0 };
        prop_assert!(fit.rmse(&points) <= flat.rmse(&points) + 1e-9,
            "fit rmse {} worse than flat {}", fit.rmse(&points), flat.rmse(&points));
    }

    /// QosScale::normalize is monotone and bounded.
    #[test]
    fn qos_scale_monotone(lo in 1.0f64..1e4, span in 2.0f64..1e6, a in 0.0f64..1e10, b in 0.0f64..1e10) {
        let scale = exbox_core::qoe::QosScale::new(lo, lo * span);
        let (na, nb) = (scale.normalize(a), scale.normalize(b));
        prop_assert!((0.0..=1.0).contains(&na));
        prop_assert!((0.0..=1.0).contains(&nb));
        if a <= b {
            prop_assert!(na <= nb + 1e-12);
        }
    }

    /// The Admittance Classifier's store deduplicates: observing the
    /// same matrix many times holds one entry with the latest label.
    #[test]
    fn admittance_store_dedups(m in arb_matrix(), labels in prop::collection::vec(any::<bool>(), 1..20)) {
        let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
            bootstrap_min_samples: 10_000, // stay in bootstrap
            ..AdmittanceConfig::default()
        });
        for &pos in &labels {
            let y = if pos { Label::Pos } else { Label::Neg };
            ac.observe(m, y);
        }
        prop_assert_eq!(ac.num_samples(), 1);
        prop_assert_eq!(ac.num_observations(), labels.len() as u64);
    }

    /// During bootstrap everything classifies as admissible.
    #[test]
    fn bootstrap_admits_everything(m in arb_matrix()) {
        let ac = AdmittanceClassifier::new(AdmittanceConfig::default());
        prop_assert_eq!(ac.classify(&m), Label::Pos);
    }

    /// RateBased commitment tracking never goes negative and admits
    /// iff there is room.
    #[test]
    fn rate_based_commitment_invariant(events in prop::collection::vec((any::<bool>(), 1.0f64..10e6), 1..100)) {
        let mut rb = RateBased::new(50e6);
        for (arrive, demand) in events {
            if arrive {
                let req = FlowRequest {
                    kind: FlowKind::new(AppClass::Web, SnrLevel::High),
                    demand_bps: demand,
                    resulting_matrix: TrafficMatrix::empty(),
                };
                if rb.decide(&req) == Decision::Admit {
                    rb.on_admitted(&req);
                }
            } else {
                rb.on_departure(FlowKind::new(AppClass::Web, SnrLevel::High), demand);
            }
            prop_assert!(rb.committed_bps() >= 0.0);
            prop_assert!(rb.committed_bps() <= 50e6 + 1e-6);
        }
    }

    /// MaxClient active count is bounded by the cap under any event
    /// sequence.
    #[test]
    fn max_client_never_exceeds_cap(cap in 1u32..20, events in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut mc = MaxClient::new(cap);
        let req = FlowRequest {
            kind: FlowKind::new(AppClass::Web, SnrLevel::High),
            demand_bps: 1.0,
            resulting_matrix: TrafficMatrix::empty(),
        };
        for arrive in events {
            if arrive {
                if mc.decide(&req) == Decision::Admit {
                    mc.on_admitted(&req);
                }
            } else {
                mc.on_departure(req.kind, 1.0);
            }
            prop_assert!(mc.active() <= cap);
        }
    }
}

// SVM training dominates these properties, so they run in their own
// block with a reduced case count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Decisions served through the matrix-keyed cache are identical —
    /// label and bit-exact margin — to a cache-disabled twin fed the
    /// same observation stream, across bootstrap exit and every
    /// retrain, with and without the monotonicity guard.
    #[test]
    fn cached_decisions_match_uncached_across_retrains(
        observed in prop::collection::vec(arb_matrix(), 25..60),
        queries in prop::collection::vec(arb_matrix(), 1..5),
        guard in any::<bool>(),
    ) {
        let cfg = AdmittanceConfig {
            batch_size: 10,
            bootstrap_min_samples: 15,
            monotone_guard: guard,
            decision_cache_size: 64,
            ..AdmittanceConfig::default()
        };
        let mut cached = AdmittanceClassifier::new(cfg.clone());
        let mut plain = AdmittanceClassifier::new(AdmittanceConfig {
            decision_cache_size: 0,
            ..cfg
        });
        for m in &observed {
            // Learnable ground truth: small networks are admissible.
            let y = if m.total() <= 8 { Label::Pos } else { Label::Neg };
            cached.observe(*m, y);
            plain.observe(*m, y);
            // Query repeatedly so later rounds hit the cache.
            for _ in 0..2 {
                for q in &queries {
                    let (label, margin) = cached.decide(q);
                    prop_assert_eq!(label, plain.classify(q));
                    match (margin, plain.decision_value(q)) {
                        (Some(a), Some(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                        (None, None) => {}
                        (a, b) => prop_assert!(
                            false,
                            "margin presence diverged: {:?} vs {:?}", a, b
                        ),
                    }
                }
            }
        }
    }
}
