//! The interleaving explorer: a cooperative token scheduler driving
//! real OS threads through every (bounded) interleaving of their shim
//! operations.
//!
//! # How it works
//!
//! Each model execution runs the user closure on a fresh set of OS
//! threads, but only **one** of them holds the scheduler token at any
//! instant; every shim operation (atomic load/store, mutex lock/unlock,
//! spawn/join, `yield_now`) is a *switch point* where the token may
//! move. Because the sequence of switch points fully determines the
//! observable behaviour of a program whose shared state lives entirely
//! behind the shims, enumerating token schedules enumerates
//! sequentially-consistent interleavings.
//!
//! Exploration is a depth-first search over the schedule tree: the
//! first execution always prefers the currently running thread
//! (minimising context switches); on backtrack the deepest branch with
//! an untried candidate is advanced and the prefix replayed. Three
//! bounds keep the tree finite and CI-sized:
//!
//! - **preemption bound** (`Config::preemptions`): schedules may
//!   involuntarily switch away from a runnable thread at most N times
//!   (voluntary switches — blocking, exit — are free). Most real bugs
//!   need ≤2 preemptions (CHESS observation).
//! - **branch cap** (`Config::max_branches`): path length after which
//!   executions stop recording new branches.
//! - **execution cap** (`Config::max_executions`).
//!
//! **State-hash pruning**: before recording a new branch the explorer
//! fingerprints the scheduler-visible state — per-thread rolling
//! operation hashes, a canonical map of shared-object values (pointer
//! values renamed to first-seen logical ids so fingerprints are stable
//! across executions), thread statuses, and the preemption budget
//! already spent. A revisited fingerprint means every schedule suffix
//! from here was (or will be) explored from the first visit with at
//! least as much remaining budget, so the execution stops branching.
//! Pruning only ever skips *recording* new branches — replayed
//! prefixes are never pruned — so a reported counterexample trace is
//! always a real schedule.
//!
//! # Failure and abort protocol
//!
//! A panic in model code (assertion failure) or a detected deadlock
//! records the schedule-so-far as a counterexample and flips the
//! explorer into *abort* mode: every thread parked at a switch point
//! is woken and unwinds via a sentinel [`Abort`] panic; shim
//! operations invoked while unwinding (e.g. a `MutexGuard` drop)
//! degrade to passthrough on the real primitive so destructors never
//! double-panic. The counterexample trace replays deterministically
//! via [`Explorer::run_one`] with a pinned schedule.

use std::collections::{HashMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::Config;

/// Sentinel panic payload used to unwind model threads on abort.
/// Public-in-crate so `thread::join` can recognise and re-propagate it.
pub(crate) struct Abort;

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Explorer>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The explorer + model-thread id of the calling OS thread, if it is a
/// model thread. Shims branch on this: `None` → passthrough to std.
pub(crate) fn ctx() -> Option<(Arc<Explorer>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_ctx(v: Option<(Arc<Explorer>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Bind the calling OS thread to a model thread id (used by the thread
/// shim's wrapper).
pub(crate) fn enter_model(ex: Arc<Explorer>, tid: usize) {
    set_ctx(Some((ex, tid)));
}

/// Unbind the calling OS thread from the model.
pub(crate) fn exit_model() {
    set_ctx(None);
}

fn panic_abort() -> ! {
    panic::panic_any(Abort)
}

// ---------------------------------------------------------------------------
// Hashing helpers (FNV/splitmix-style, no deps)
// ---------------------------------------------------------------------------

pub(crate) const HASH_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
pub(crate) fn mix(acc: u64, v: u64) -> u64 {
    let mut z = acc ^ v.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^= z >> 33;
    z = z.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 29)
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BlockOn {
    Mutex(u64),
    Condvar(u64),
    Join(usize),
    /// The thread is unwinding a panic outside the scheduler's control
    /// (its shim ops degrade to passthrough); it will make progress on
    /// its own and must not hold the token or count as deadlocked.
    Unwind,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

struct ThreadState {
    status: Status,
    /// Rolling hash of every shim operation this thread performed.
    rolling: u64,
    /// Canonical id, stable across executions: hash of the parent's
    /// canonical id and the parent-local spawn sequence number.
    canon: u64,
    /// Next per-thread object-id allocation sequence number.
    alloc_seq: u64,
    /// Next per-thread child spawn sequence number.
    spawn_seq: u64,
    /// FIFO arrival ticket for deterministic `notify_one`.
    wait_ticket: u64,
}

impl ThreadState {
    fn new(canon: u64) -> Self {
        ThreadState {
            status: Status::Runnable,
            rolling: HASH_SEED,
            canon,
            alloc_seq: 0,
            spawn_seq: 0,
            wait_ticket: 0,
        }
    }
}

/// One decision point in the DFS path.
struct Branch {
    /// Runnable threads at this point, current-thread-first then
    /// ascending tid — index 0 is the "no switch" default.
    candidates: Vec<usize>,
    /// Index into `candidates` taken on the current execution.
    chosen: usize,
    /// Thread that was running when the branch was created.
    prev: usize,
    /// Whether `prev` was itself runnable (choosing another thread is
    /// then a preemption).
    prev_runnable: bool,
    /// Preemptions already spent before this branch's choice.
    preempts_before: usize,
}

/// A schedule that violated a property.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Human-readable failure (panic message or "deadlock: ...").
    pub message: String,
    /// Replayable trace: the chosen thread id at each switch point.
    pub trace: String,
    /// 1-based index of the failing execution.
    pub execution: u64,
}

struct Sched {
    threads: Vec<ThreadState>,
    /// Model tid currently holding the token.
    active: usize,
    /// OS handles of spawned wrapper threads, joined by the coordinator.
    os_handles: Vec<std::thread::JoinHandle<()>>,

    // -- DFS path (persists across executions) --
    path: Vec<Branch>,
    /// Next path entry to consume on the current execution.
    cursor: usize,

    // -- per-execution --
    /// Chosen tid at each switch point so far (the trace).
    schedule: Vec<usize>,
    /// Pinned schedule when replaying a counterexample.
    replay: Option<Vec<usize>>,
    /// Canonical shared-object value map (object id → value hash).
    objects: HashMap<u64, u64>,
    /// Raw pointer address → first-seen logical name, for
    /// execution-stable hashing of `AtomicPtr` values.
    ptr_names: HashMap<usize, u64>,
    next_ptr_name: u64,
    /// Mutex object id → owning tid.
    mutex_owner: HashMap<u64, usize>,
    next_ticket: u64,
    preemptions: usize,
    /// Stop recording new branches for the rest of this execution
    /// (fingerprint already visited, or branch cap hit).
    stop_branching: bool,
    aborting: bool,
    failure: Option<Counterexample>,
    /// Wrapper threads that have not yet fully exited.
    live: usize,

    // -- cross-execution stats --
    visited: HashSet<u64>,
    fp_debug: HashMap<u64, String>,
    executions: u64,
    switches: u64,
    pruned: u64,
    truncated: bool,
}

/// Outcome of one execution.
pub(crate) struct ExecOutcome {
    pub(crate) failure: Option<Counterexample>,
}

pub(crate) struct Explorer {
    state: Mutex<Sched>,
    cv: Condvar,
    pub(crate) cfg: Config,
}

/// Chain a panic hook once, silencing the default "thread panicked"
/// noise for panics raised on model threads (the wrapper catches them
/// and the explorer reports the counterexample itself).
fn install_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if ctx().is_none() {
                prev(info);
            }
        }));
    });
}

impl Explorer {
    pub(crate) fn new(cfg: Config) -> Arc<Self> {
        install_hook();
        Arc::new(Explorer {
            state: Mutex::new(Sched {
                threads: Vec::new(),
                active: 0,
                os_handles: Vec::new(),
                path: Vec::new(),
                cursor: 0,
                schedule: Vec::new(),
                replay: None,
                objects: HashMap::new(),
                ptr_names: HashMap::new(),
                next_ptr_name: 0,
                mutex_owner: HashMap::new(),
                next_ticket: 0,
                preemptions: 0,
                stop_branching: false,
                aborting: false,
                failure: None,
                live: 0,
                visited: HashSet::new(),
                fp_debug: HashMap::new(),
                executions: 0,
                switches: 0,
                pruned: 0,
                truncated: false,
            }),
            cv: Condvar::new(),
            cfg,
        })
    }

    pub(crate) fn stats(&self) -> (u64, u64, u64, bool) {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        (s.executions, s.switches, s.pruned, s.truncated)
    }

    // -- fingerprinting ----------------------------------------------------

    fn fingerprint(s: &Sched) -> u64 {
        let mut per_thread: Vec<u64> = s
            .threads
            .iter()
            .map(|t| {
                let st = match t.status {
                    Status::Runnable => 1,
                    Status::Finished => 2,
                    Status::Blocked(BlockOn::Mutex(id)) => mix(3, id),
                    Status::Blocked(BlockOn::Condvar(id)) => mix(4, id),
                    Status::Blocked(BlockOn::Join(t)) => mix(5, s.threads[t].canon),
                    Status::Blocked(BlockOn::Unwind) => 6,
                };
                mix(mix(t.canon, st), t.rolling)
            })
            .collect();
        per_thread.sort_unstable();
        let mut acc = HASH_SEED;
        for h in per_thread {
            acc = mix(acc, h);
        }
        let mut objs: Vec<(u64, u64)> = s.objects.iter().map(|(k, v)| (*k, *v)).collect();
        objs.sort_unstable();
        for (k, v) in objs {
            acc = mix(acc, mix(k, v));
        }
        // Budget matters: a state first reached with more preemptions
        // spent has *fewer* suffixes available, so states are only
        // equivalent at equal spend.
        mix(acc, s.preemptions as u64)
    }

    // -- core scheduling ---------------------------------------------------

    /// Pick the next thread to hold the token. Caller holds the lock.
    /// `from` is the thread giving up the token (may be blocked or
    /// finished by the time this runs).
    fn reschedule(&self, s: &mut Sched, from: usize) {
        if s.aborting {
            return;
        }
        let from_runnable = s.threads[from].status == Status::Runnable;
        let mut candidates: Vec<usize> = Vec::new();
        if from_runnable {
            candidates.push(from);
        }
        for (i, t) in s.threads.iter().enumerate() {
            if i != from && t.status == Status::Runnable {
                candidates.push(i);
            }
        }
        if candidates.is_empty() {
            if s.threads.iter().all(|t| t.status == Status::Finished) {
                // Execution complete; coordinator wakes on live == 0.
                self.cv.notify_all();
                return;
            }
            if s.threads
                .iter()
                .any(|t| t.status == Status::Blocked(BlockOn::Unwind))
            {
                // An unwinding thread progresses outside the token
                // protocol and will unblock someone (or abort) soon.
                self.cv.notify_all();
                return;
            }
            let held: Vec<String> = s
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::Blocked(_)))
                .map(|(i, t)| format!("t{i}:{:?}", t.status))
                .collect();
            self.fail(
                s,
                format!(
                    "deadlock: all unfinished threads are blocked ({})",
                    held.join(", ")
                ),
            );
            return;
        }

        let k = s.schedule.len();
        let mut consumed_path = false;
        let chosen = if let Some(replay) = &s.replay {
            // Pinned counterexample replay: follow the trace while it
            // agrees with reality, defaulting when it diverges (traces
            // outlive the code they were recorded against).
            match replay.get(k) {
                Some(t) if candidates.contains(t) => *t,
                _ => candidates[0],
            }
        } else if s.cursor < s.path.len() {
            // Replaying the DFS prefix.
            let b = &s.path[s.cursor];
            consumed_path = true;
            let want = b.candidates.get(b.chosen).copied();
            match want {
                Some(t) if candidates.contains(&t) => t,
                // Divergence (model has hidden nondeterminism):
                // degrade gracefully to the default.
                _ => candidates[0],
            }
        } else if s.stop_branching {
            candidates[0]
        } else if s.path.len() >= self.cfg.max_branches {
            s.truncated = true;
            s.stop_branching = true;
            candidates[0]
        } else if candidates.len() == 1 {
            // No real choice: don't spend a path entry on it.
            candidates[0]
        } else {
            let fp = Self::fingerprint(s);
            if self.cfg.prune && !s.visited.insert(fp) {
                if std::env::var("EXBOX_LOOM_DEBUG_FP").is_ok() {
                    eprintln!(
                        "PRUNE fp={fp:x} sched={} first={}",
                        encode_trace(&s.schedule),
                        s.fp_debug.get(&fp).cloned().unwrap_or_default()
                    );
                }
                s.pruned += 1;
                s.stop_branching = true;
                candidates[0]
            } else {
                if std::env::var("EXBOX_LOOM_DEBUG_FP").is_ok() {
                    let t = encode_trace(&s.schedule);
                    s.fp_debug.insert(fp, t);
                }
                s.path.push(Branch {
                    candidates: candidates.clone(),
                    chosen: 0,
                    prev: from,
                    prev_runnable: from_runnable,
                    preempts_before: s.preemptions,
                });
                consumed_path = true;
                candidates[0]
            }
        };
        if consumed_path {
            s.cursor += 1;
        }
        if from_runnable && chosen != from {
            s.preemptions += 1;
        }
        s.schedule.push(chosen);
        s.switches = s.switches.wrapping_add(1);
        s.active = chosen;
        self.cv.notify_all();
    }

    fn fail(&self, s: &mut Sched, message: String) {
        if s.failure.is_none() {
            s.failure = Some(Counterexample {
                message,
                trace: encode_trace(&s.schedule),
                execution: s.executions + 1,
            });
        }
        s.aborting = true;
        for t in s.threads.iter_mut() {
            if matches!(t.status, Status::Blocked(_)) {
                t.status = Status::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// A switch point: give up the token, let the scheduler pick, wait
    /// until this thread is active again. Returns `false` when the op
    /// must degrade to passthrough (aborting while unwinding).
    pub(crate) fn switch_point(self: &Arc<Self>, tid: usize) -> bool {
        if std::thread::panicking() {
            // Shim op from a destructor during unwind: never panic or
            // park here (a second panic would abort the process).
            return false;
        }
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.aborting {
            drop(s);
            panic_abort();
        }
        // Advance this thread's rolling hash by one tick *before* the
        // scheduler fingerprints the state: the rolling hash doubles as
        // a program-counter proxy, and ops that observe nothing (join
        // of a finished thread, yield, notify with no waiter) would
        // otherwise leave a thread's position invisible — making a
        // state fingerprint-equal to its own successor and letting the
        // pruner cut unexplored suffixes (real unsoundness, caught by
        // the snapshot reader-drop model).
        let t = &mut s.threads[tid];
        t.rolling = mix(t.rolling, 0x0051_17c4);
        self.reschedule(&mut s, tid);
        loop {
            if s.aborting {
                drop(s);
                panic_abort();
            }
            if s.active == tid && s.threads[tid].status == Status::Runnable {
                return true;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Mix a shim operation (and optionally a shared-object write)
    /// into the hashes. Called *after* the op, while this thread still
    /// holds the token, so it is atomic w.r.t. the model.
    pub(crate) fn note(&self, tid: usize, obj: u64, op: u64, val: u64, wrote: bool) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.aborting {
            return;
        }
        let t = &mut s.threads[tid];
        t.rolling = mix(t.rolling, mix(mix(obj, op), val));
        if wrote {
            s.objects.insert(obj, val);
        }
    }

    /// Execution-stable name for a raw pointer value.
    pub(crate) fn ptr_name(&self, addr: usize) -> u64 {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(n) = s.ptr_names.get(&addr) {
            return *n;
        }
        s.next_ptr_name += 1;
        let n = s.next_ptr_name;
        s.ptr_names.insert(addr, n);
        n
    }

    /// Allocate an execution-stable object id: hash of the creating
    /// thread's canonical id and its allocation sequence number.
    pub(crate) fn alloc_obj_id(&self, tid: usize) -> u64 {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let t = &mut s.threads[tid];
        t.alloc_seq += 1;
        mix(t.canon, 0x0b1e_55ed ^ t.alloc_seq)
    }

    // -- blocking primitives ----------------------------------------------

    /// Block `tid` on `on` and wait to be woken *and* scheduled.
    /// Returns `false` on passthrough degradation.
    fn block(self: &Arc<Self>, tid: usize, on: BlockOn) -> bool {
        if std::thread::panicking() {
            return false;
        }
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.aborting {
            drop(s);
            panic_abort();
        }
        s.next_ticket += 1;
        let ticket = s.next_ticket;
        s.threads[tid].status = Status::Blocked(on);
        s.threads[tid].wait_ticket = ticket;
        self.reschedule(&mut s, tid);
        loop {
            if s.aborting {
                drop(s);
                panic_abort();
            }
            if s.active == tid && s.threads[tid].status == Status::Runnable {
                return true;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Park the token elsewhere on behalf of an unwinding thread, so
    /// threads it is about to wait on (via real locks, outside the
    /// protocol) can still run. Never panics, never parks.
    pub(crate) fn release_token_for_unwind(&self, tid: usize) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.aborting {
            return;
        }
        if s.threads[tid].status == Status::Runnable {
            s.threads[tid].status = Status::Blocked(BlockOn::Unwind);
            if s.active == tid {
                self.reschedule(&mut s, tid);
            }
        }
    }

    /// Model-aware mutex lock. The caller acquires the real (inner)
    /// mutex afterwards; the protocol guarantees it is uncontended.
    pub(crate) fn mutex_lock(self: &Arc<Self>, tid: usize, mid: u64) {
        if !self.switch_point(tid) {
            // Passthrough (unwinding): the real lock below may briefly
            // contend with a token-parked owner — hand the token off so
            // that owner can run and release.
            self.release_token_for_unwind(tid);
            return;
        }
        loop {
            {
                let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
                if s.aborting {
                    drop(s);
                    panic_abort();
                }
                if let std::collections::hash_map::Entry::Vacant(e) = s.mutex_owner.entry(mid) {
                    e.insert(tid);
                    let t = &mut s.threads[tid];
                    t.rolling = mix(t.rolling, mix(mid, 0x10c4));
                    return;
                }
            }
            if !self.block(tid, BlockOn::Mutex(mid)) {
                return;
            }
            // Woken: the lock was released, but another waiter may
            // have grabbed it first — retry.
        }
    }

    /// Model-aware mutex unlock (from `MutexGuard::drop`). Must never
    /// panic or park when called during unwind.
    pub(crate) fn mutex_unlock(self: &Arc<Self>, tid: usize, mid: u64) {
        let unwinding = std::thread::panicking();
        {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            s.mutex_owner.remove(&mid);
            // Fold the critical section's effects into the object map:
            // the releasing thread's rolling hash summarises every op
            // it performed while holding the lock.
            let r = s.threads[tid].rolling;
            let e = s.objects.entry(mid).or_insert(HASH_SEED);
            *e = mix(*e, r);
            for t in s.threads.iter_mut() {
                if t.status == Status::Blocked(BlockOn::Mutex(mid)) {
                    t.status = Status::Runnable;
                }
            }
            if s.aborting || unwinding {
                self.cv.notify_all();
                return;
            }
        }
        let _ = self.switch_point(tid);
    }

    /// Condvar wait: atomically (under the scheduler lock) register as
    /// a waiter and release the model mutex, then park; on wake,
    /// re-acquire via `mutex_lock`.
    pub(crate) fn condvar_wait(self: &Arc<Self>, tid: usize, cid: u64, mid: u64) {
        if std::thread::panicking() {
            // Behaves as an immediate spurious wakeup; the caller will
            // re-acquire the real mutex, so hand the token off first.
            self.release_token_for_unwind(tid);
            return;
        }
        {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if s.aborting {
                drop(s);
                panic_abort();
            }
            s.next_ticket += 1;
            let ticket = s.next_ticket;
            s.mutex_owner.remove(&mid);
            for t in s.threads.iter_mut() {
                if t.status == Status::Blocked(BlockOn::Mutex(mid)) {
                    t.status = Status::Runnable;
                }
            }
            s.threads[tid].status = Status::Blocked(BlockOn::Condvar(cid));
            s.threads[tid].wait_ticket = ticket;
            self.reschedule(&mut s, tid);
            loop {
                if s.aborting {
                    drop(s);
                    panic_abort();
                }
                if s.active == tid && s.threads[tid].status == Status::Runnable {
                    break;
                }
                s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        }
        self.mutex_lock(tid, mid);
    }

    /// Wake one condvar waiter (FIFO by arrival ticket — deterministic;
    /// the model has no spurious wakeups).
    pub(crate) fn condvar_notify(self: &Arc<Self>, tid: usize, cid: u64, all: bool) {
        let unwinding = std::thread::panicking();
        {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if s.aborting {
                return;
            }
            if all {
                for t in s.threads.iter_mut() {
                    if t.status == Status::Blocked(BlockOn::Condvar(cid)) {
                        t.status = Status::Runnable;
                    }
                }
            } else {
                let mut best: Option<usize> = None;
                for (i, t) in s.threads.iter().enumerate() {
                    if t.status == Status::Blocked(BlockOn::Condvar(cid))
                        && best
                            .map(|b: usize| t.wait_ticket < s.threads[b].wait_ticket)
                            .unwrap_or(true)
                    {
                        best = Some(i);
                    }
                }
                if let Some(i) = best {
                    s.threads[i].status = Status::Runnable;
                }
            }
            let t = &mut s.threads[tid];
            t.rolling = mix(t.rolling, mix(cid, 0x0207_01f1));
            self.cv.notify_all();
            if unwinding {
                return;
            }
        }
        let _ = self.switch_point(tid);
    }

    // -- thread lifecycle --------------------------------------------------

    /// Register a child model thread (parent holds the token).
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let (canon, _) = {
            let p = &mut s.threads[parent];
            p.spawn_seq += 1;
            (mix(p.canon, 0x51_7cc1 ^ p.spawn_seq), p.spawn_seq)
        };
        s.threads.push(ThreadState::new(canon));
        s.live += 1;
        s.threads.len() - 1
    }

    pub(crate) fn adopt_os_handle(&self, h: std::thread::JoinHandle<()>) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.os_handles.push(h);
    }

    /// First thing a child wrapper does: wait until scheduled.
    pub(crate) fn wait_first_schedule(self: &Arc<Self>, tid: usize) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if s.aborting {
                return false;
            }
            if s.active == tid && s.threads[tid].status == Status::Runnable {
                return true;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Called by the wrapper when the model closure returns or panics.
    pub(crate) fn thread_finished(
        self: &Arc<Self>,
        tid: usize,
        panic_payload: Option<Box<dyn std::any::Any + Send>>,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.threads[tid].status = Status::Finished;
        for t in s.threads.iter_mut() {
            if t.status == Status::Blocked(BlockOn::Join(tid)) {
                t.status = Status::Runnable;
            }
        }
        match panic_payload {
            Some(p) => {
                if p.downcast_ref::<Abort>().is_none() {
                    let msg = payload_msg(&p);
                    self.fail(&mut s, format!("model thread panicked: {msg}"));
                } else {
                    self.cv.notify_all();
                }
                Some(p)
            }
            None => {
                self.reschedule(&mut s, tid);
                None
            }
        }
    }

    /// Wrapper fully exited (after `thread_finished`).
    pub(crate) fn thread_exited(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.live -= 1;
        self.cv.notify_all();
    }

    /// Model-aware join: block until `target` finishes. Returns `false`
    /// on passthrough degradation (caller then waits on `live`-style
    /// completion via the real slot).
    pub(crate) fn join(self: &Arc<Self>, tid: usize, target: usize) -> bool {
        if !self.switch_point(tid) {
            // Passthrough (unwinding): hand the token off so the
            // target can actually run to completion, then wait for it
            // without panicking.
            self.release_token_for_unwind(tid);
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if s.threads[target].status == Status::Finished {
                    return false;
                }
                let (g, _) = self
                    .cv
                    .wait_timeout(s, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                s = g;
            }
        }
        loop {
            {
                let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
                if s.aborting {
                    drop(s);
                    panic_abort();
                }
                if s.threads[target].status == Status::Finished {
                    return true;
                }
            }
            if !self.block(tid, BlockOn::Join(target)) {
                return false;
            }
        }
    }

    // -- executions --------------------------------------------------------

    /// Run one execution of `body`, optionally pinned to a replay
    /// trace. Blocks until every wrapper thread exited.
    pub(crate) fn run_one(
        self: &Arc<Self>,
        body: &Arc<dyn Fn() + Send + Sync>,
        replay: Option<Vec<usize>>,
    ) -> ExecOutcome {
        {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            s.threads.clear();
            s.threads.push(ThreadState::new(HASH_SEED));
            s.active = 0;
            s.cursor = 0;
            s.schedule.clear();
            s.replay = replay;
            s.objects.clear();
            s.ptr_names.clear();
            s.next_ptr_name = 0;
            s.mutex_owner.clear();
            s.next_ticket = 0;
            s.preemptions = 0;
            s.stop_branching = false;
            s.aborting = false;
            s.failure = None;
            s.live = 1;
        }
        let me = Arc::clone(self);
        let b = Arc::clone(body);
        let root = std::thread::Builder::new()
            .name("exbox-loom-t0".into())
            .spawn(move || {
                set_ctx(Some((Arc::clone(&me), 0)));
                let r = panic::catch_unwind(AssertUnwindSafe(|| b()));
                let _ = me.thread_finished(0, r.err());
                set_ctx(None);
                me.thread_exited();
            })
            .expect("failed to spawn model root thread");

        // Wait for the execution to drain; a generous timeout guards
        // against model threads blocking outside the shims (which the
        // scheduler cannot see) turning a bug into a CI hang.
        let mut stalled = false;
        {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let mut quiet = 0u32;
            while s.live > 0 {
                let before = s.switches;
                let (g, timeout) = self
                    .cv
                    .wait_timeout(s, Duration::from_secs(5))
                    .unwrap_or_else(|e| e.into_inner());
                s = g;
                if timeout.timed_out() && s.switches == before && s.live > 0 {
                    quiet += 1;
                    if quiet >= 2 {
                        stalled = true;
                        self.fail(
                            &mut s,
                            "model execution stalled (a thread blocked \
                             outside the shims?)"
                                .into(),
                        );
                        break;
                    }
                } else {
                    quiet = 0;
                }
            }
        }
        let _ = root.join();
        let handles: Vec<_> = {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut s.os_handles)
        };
        for h in handles {
            if stalled {
                // Detached on purpose: a genuinely stuck thread would
                // block the join forever. The failure already reports.
                continue;
            }
            let _ = h.join();
        }
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.executions += 1;
        ExecOutcome {
            failure: s.failure.take(),
        }
    }

    /// Advance the DFS path to the next unexplored schedule. Returns
    /// `false` when the space (within bounds) is exhausted.
    pub(crate) fn backtrack(&self) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let bound = self.cfg.preemptions;
            let Some(last) = s.path.last_mut() else {
                return false;
            };
            let mut next = last.chosen + 1;
            let mut advanced = false;
            while next < last.candidates.len() {
                let cand = last.candidates[next];
                let preempt = last.prev_runnable && cand != last.prev;
                let spend = last.preempts_before + usize::from(preempt);
                if bound.is_none_or(|b| spend <= b) {
                    last.chosen = next;
                    advanced = true;
                    break;
                }
                next += 1;
            }
            if advanced {
                return true;
            }
            s.path.pop();
        }
    }
}

fn payload_msg(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Trace encoding
// ---------------------------------------------------------------------------

/// `v1:0.1.0.2...` — chosen model-thread id at each switch point.
pub(crate) fn encode_trace(schedule: &[usize]) -> String {
    let mut out = String::with_capacity(3 + schedule.len() * 2);
    out.push_str("v1:");
    for (i, t) in schedule.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        out.push_str(&t.to_string());
    }
    out
}

/// Tolerant decoder: unknown versions or malformed fields decode to an
/// empty pin (the replay then follows the default schedule).
pub(crate) fn decode_trace(trace: &str) -> Vec<usize> {
    let body = match trace.trim().strip_prefix("v1:") {
        Some(b) => b,
        None => return Vec::new(),
    };
    body.split('.')
        .filter_map(|f| f.trim().parse::<usize>().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrip() {
        let sched = vec![0, 1, 0, 2, 17];
        assert_eq!(decode_trace(&encode_trace(&sched)), sched);
        assert_eq!(encode_trace(&sched), "v1:0.1.0.2.17");
        assert!(decode_trace("v2:0.1").is_empty());
        assert!(decode_trace("garbage").is_empty());
    }

    #[test]
    fn mix_spreads() {
        let a = mix(HASH_SEED, 1);
        let b = mix(HASH_SEED, 2);
        assert_ne!(a, b);
        assert_ne!(mix(a, 2), mix(b, 1));
    }
}
