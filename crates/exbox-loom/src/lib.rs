//! # exbox-loom — vendored bounded-exhaustive interleaving explorer
//!
//! A zero-dependency, loom-style model checker for the workspace's
//! concurrency primitives, following the offline vendoring convention
//! set by `exbox-proptest`: a small, documented API subset of the real
//! thing, no network, fully deterministic.
//!
//! ## Model
//!
//! [`model`] runs a closure under the explorer: every operation on the
//! shimmed primitives in [`sync`] and [`thread`] is a scheduler switch
//! point, and a DFS enumerates every schedule within the configured
//! bounds (preemption bound, branch cap, execution cap — see
//! [`Config`]). Shared state that lives entirely behind the shims is
//! therefore explored over all sequentially-consistent interleavings.
//! The same types degrade to zero-bookkeeping passthrough wrappers
//! outside a model, which is how the workspace builds with
//! `--cfg exbox_loom` run their ordinary unit tests unchanged.
//!
//! ```
//! use exbox_loom::sync::{Arc, AtomicU64, Ordering};
//!
//! // Two racing read-modify-write sequences lose an update in some
//! // interleaving — the explorer finds it.
//! let cex = exbox_loom::explore(exbox_loom::Config::default(), || {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = exbox_loom::thread::spawn(move || {
//!         let v = n2.load(Ordering::SeqCst);
//!         n2.store(v + 1, Ordering::SeqCst);
//!     });
//!     let v = n.load(Ordering::SeqCst);
//!     n.store(v + 1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
//! })
//! .unwrap_err();
//! assert!(cex.message.contains("lost update"));
//! ```
//!
//! ## Counterexamples and replay
//!
//! A property violation (panic or deadlock) aborts the execution and
//! reports the schedule as a trace string (`v1:0.1.0...` — the chosen
//! thread id at each switch point). [`model`] additionally writes the
//! trace to `EXBOX_LOOM_TRACE_DIR` (default `target/loom-traces`) and
//! panics with replay instructions. [`replay`] pins a single execution
//! to a trace; decoding is tolerant, so a checked-in regression trace
//! keeps working (degrading toward the default schedule) as the code
//! under test evolves.
//!
//! ## Environment knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | `EXBOX_LOOM_PREEMPTIONS` | preemption bound (`none` = unbounded) |
//! | `EXBOX_LOOM_MAX_EXECUTIONS` | execution cap |
//! | `EXBOX_LOOM_MAX_BRANCHES` | per-schedule branch cap |
//! | `EXBOX_LOOM_EXHAUSTIVE=1` | unbounded preemptions + large caps |
//! | `EXBOX_LOOM_REPLAY` | pin `model` to one trace |
//! | `EXBOX_LOOM_TRACE_DIR` | where `model` writes failure traces |

mod explorer;
pub mod sync;
pub mod thread;

use std::sync::Arc;

pub use explorer::Counterexample;

/// Exploration bounds. `Default` is sized for CI smoke runs.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum involuntary context switches per schedule (`None` =
    /// unbounded, i.e. truly exhaustive). Two preemptions catch the
    /// overwhelming majority of real concurrency bugs while keeping
    /// the schedule space polynomial.
    pub preemptions: Option<usize>,
    /// Cap on recorded decision points per schedule; deeper executions
    /// stop branching (reported via [`Report::truncated`]).
    pub max_branches: usize,
    /// Cap on explored executions.
    pub max_executions: u64,
    /// Enable state-fingerprint pruning.
    pub prune: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemptions: Some(2),
            max_branches: 2_000,
            max_executions: 200_000,
            prune: true,
        }
    }
}

impl Config {
    /// The trivial scheduler: a single execution on the default
    /// (current-thread-first) schedule. Used by the differential tests
    /// asserting shim/std behavioural identity.
    pub fn trivial() -> Self {
        Config {
            preemptions: Some(0),
            max_branches: 0,
            max_executions: 1,
            prune: false,
        }
    }

    /// Apply `EXBOX_LOOM_*` environment overrides.
    pub fn from_env(mut self) -> Self {
        if std::env::var("EXBOX_LOOM_EXHAUSTIVE").as_deref() == Ok("1") {
            self.preemptions = None;
            self.max_branches = 100_000;
            self.max_executions = 5_000_000;
        }
        if let Ok(v) = std::env::var("EXBOX_LOOM_PREEMPTIONS") {
            self.preemptions = if v.eq_ignore_ascii_case("none") {
                None
            } else {
                v.parse().ok().map(Some).unwrap_or(self.preemptions)
            };
        }
        if let Ok(v) = std::env::var("EXBOX_LOOM_MAX_EXECUTIONS") {
            if let Ok(n) = v.parse() {
                self.max_executions = n;
            }
        }
        if let Ok(v) = std::env::var("EXBOX_LOOM_MAX_BRANCHES") {
            if let Ok(n) = v.parse() {
                self.max_branches = n;
            }
        }
        self
    }
}

/// Exploration statistics returned on success.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Executions run.
    pub executions: u64,
    /// Total switch points taken across all executions.
    pub switches: u64,
    /// Branches skipped by state-fingerprint pruning.
    pub pruned: u64,
    /// Some execution hit the branch cap (coverage incomplete).
    pub truncated: bool,
    /// The bounded schedule space was fully explored (vs. stopping at
    /// the execution cap).
    pub exhausted: bool,
}

/// Explore `body` under `cfg` without panicking: `Err(counterexample)`
/// if some schedule violates a property (panics or deadlocks),
/// `Ok(report)` otherwise. Environment overrides are **not** applied —
/// callers that want them compose with [`Config::from_env`].
pub fn explore<F>(cfg: Config, body: F) -> Result<Report, Counterexample>
where
    F: Fn() + Send + Sync + 'static,
{
    let ex = explorer::Explorer::new(cfg.clone());
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut executions = 0u64;
    let mut exhausted = false;
    loop {
        let outcome = ex.run_one(&body, None);
        executions += 1;
        if let Some(cex) = outcome.failure {
            return Err(cex);
        }
        if executions >= cfg.max_executions {
            break;
        }
        if !ex.backtrack() {
            exhausted = true;
            break;
        }
    }
    let (execs, switches, pruned, truncated) = ex.stats();
    Ok(Report {
        executions: execs,
        switches,
        pruned,
        truncated,
        exhausted,
    })
}

/// Run one execution pinned to `trace` (a `v1:...` string from a
/// counterexample). Decoding is tolerant: steps that no longer match a
/// runnable thread fall back to the default schedule, so regression
/// traces survive code evolution.
pub fn replay<F>(trace: &str, body: F) -> Result<Report, Counterexample>
where
    F: Fn() + Send + Sync + 'static,
{
    let ex = explorer::Explorer::new(Config {
        max_executions: 1,
        ..Config::default()
    });
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let pinned = explorer::decode_trace(trace);
    let outcome = ex.run_one(&body, Some(pinned));
    if let Some(cex) = outcome.failure {
        return Err(cex);
    }
    let (execs, switches, pruned, truncated) = ex.stats();
    Ok(Report {
        executions: execs,
        switches,
        pruned,
        truncated,
        exhausted: false,
    })
}

/// Model-check `body`: explore with env overrides applied, write any
/// counterexample trace to `EXBOX_LOOM_TRACE_DIR`, and panic with the
/// failure plus replay instructions. Honors `EXBOX_LOOM_REPLAY` by
/// pinning a single execution to the given trace.
pub fn model<F>(body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), body)
}

/// [`model`] with explicit base bounds (env overrides still apply on
/// top, so CI can widen a suite without code changes).
pub fn model_with<F>(cfg: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let cfg = cfg.from_env();
    let result = if let Ok(trace) = std::env::var("EXBOX_LOOM_REPLAY") {
        replay(&trace, body)
    } else {
        explore(cfg, body)
    };
    match result {
        Ok(report) => report,
        Err(cex) => {
            let path = dump_trace(&cex);
            let hint = match &path {
                Some(p) => format!("trace written to {}", p.display()),
                None => "trace could not be written".to_string(),
            };
            panic!(
                "exbox-loom: property violated on execution {}\n  \
                 failure: {}\n  {hint}\n  replay with: \
                 EXBOX_LOOM_REPLAY='{}'\n",
                cex.execution, cex.message, cex.trace
            );
        }
    }
}

/// Write a counterexample trace file; returns its path on success.
fn dump_trace(cex: &Counterexample) -> Option<std::path::PathBuf> {
    let dir =
        std::env::var("EXBOX_LOOM_TRACE_DIR").unwrap_or_else(|_| "target/loom-traces".to_string());
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let name = std::thread::current()
        .name()
        .unwrap_or("model")
        .replace("::", "__")
        .replace(['/', ' '], "_");
    let path = dir.join(format!("{name}.trace"));
    let body = format!(
        "# exbox-loom counterexample\n# failure: {}\n# execution: {}\n{}\n",
        cex.message.replace('\n', " / "),
        cex.execution,
        cex.trace
    );
    std::fs::write(&path, body).ok()?;
    Some(path)
}

/// Read a trace string back from a file written by [`model`] (comment
/// lines starting with `#` are skipped). Regression tests check traces
/// in and feed them to [`replay`].
pub fn read_trace_file(path: impl AsRef<std::path::Path>) -> std::io::Result<String> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .find(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
        .unwrap_or("")
        .to_string())
}
