//! Shimmed `std::sync` lookalikes.
//!
//! Every type here wraps the real `std::sync` primitive and adds a
//! model-checking protocol on top: when the calling OS thread is a
//! model thread (registered in the explorer's thread-local context),
//! each operation is a scheduler switch point and its effect is mixed
//! into the execution's state fingerprint. Outside a model the types
//! degrade to a zero-bookkeeping passthrough on the inner primitive,
//! which is what makes the workspace's `--cfg exbox_loom` builds run
//! their ordinary unit tests unchanged.
//!
//! API-subset differences from `std::sync` (the `exbox-proptest`
//! convention of documenting divergence):
//!
//! - **Orderings are accepted and ignored** — the model explores
//!   sequentially-consistent interleavings only. This is sound *and*
//!   complete for the workspace's ported primitives because they use
//!   `SeqCst` exclusively (checked by DESIGN.md §9).
//! - **`Mutex` never poisons**: `lock()` always returns `Ok`, even
//!   after a panic in a critical section. Callers written against
//!   std's API (`.lock().expect(..)`) compile and behave identically
//!   on the non-poisoned path.
//! - **`Condvar` has no spurious wakeups and no timeouts** inside a
//!   model; `notify_one` wakes the longest-waiting thread (FIFO).
//! - `RwLock` is not provided (the workspace does not use one on a
//!   modelled path).

use std::sync::OnceLock;

use crate::explorer::{ctx, mix, Explorer};

pub use std::sync::atomic::Ordering;

use std::sync::Arc as StdArc;

// Op tags mixed into rolling hashes.
const OP_LOAD: u64 = 0x11;
const OP_STORE: u64 = 0x12;
const OP_RMW: u64 = 0x13;
const OP_CAS: u64 = 0x14;

/// Lazily-assigned execution-stable object identity.
#[derive(Default)]
struct ObjId(OnceLock<u64>);

impl ObjId {
    const fn new() -> Self {
        ObjId(OnceLock::new())
    }

    fn get(&self, ex: &Explorer, tid: usize) -> u64 {
        *self.0.get_or_init(|| ex.alloc_obj_id(tid))
    }
}

macro_rules! atomic_shim {
    ($name:ident, $inner:path, $prim:ty) => {
        /// Model-aware drop-in for the std atomic of the same name.
        pub struct $name {
            inner: $inner,
            id: ObjId,
        }

        impl $name {
            pub const fn new(v: $prim) -> Self {
                $name {
                    inner: <$inner>::new(v),
                    id: ObjId::new(),
                }
            }

            #[inline]
            fn hooked<R>(
                &self,
                op: u64,
                f: impl FnOnce(&$inner) -> R,
                obs: impl Fn(&R) -> u64,
                wrote: bool,
            ) -> R {
                match ctx() {
                    None => f(&self.inner),
                    Some((ex, tid)) => {
                        let _ = ex.switch_point(tid);
                        let r = f(&self.inner);
                        let id = self.id.get(&ex, tid);
                        ex.note(tid, id, op, obs(&r), wrote);
                        r
                    }
                }
            }

            pub fn load(&self, _o: Ordering) -> $prim {
                self.hooked(OP_LOAD, |a| a.load(Ordering::SeqCst), |v| *v as u64, false)
            }

            pub fn store(&self, val: $prim, _o: Ordering) {
                self.hooked(
                    OP_STORE,
                    |a| a.store(val, Ordering::SeqCst),
                    |_| val as u64,
                    true,
                )
            }

            pub fn swap(&self, val: $prim, _o: Ordering) -> $prim {
                self.hooked(
                    OP_RMW,
                    |a| a.swap(val, Ordering::SeqCst),
                    |old| mix(*old as u64, val as u64),
                    true,
                )
            }

            pub fn fetch_add(&self, val: $prim, _o: Ordering) -> $prim {
                self.hooked(
                    OP_RMW,
                    |a| a.fetch_add(val, Ordering::SeqCst),
                    |old| (old.wrapping_add(val)) as u64,
                    true,
                )
            }

            pub fn fetch_sub(&self, val: $prim, _o: Ordering) -> $prim {
                self.hooked(
                    OP_RMW,
                    |a| a.fetch_sub(val, Ordering::SeqCst),
                    |old| (old.wrapping_sub(val)) as u64,
                    true,
                )
            }

            pub fn fetch_max(&self, val: $prim, _o: Ordering) -> $prim {
                self.hooked(
                    OP_RMW,
                    |a| a.fetch_max(val, Ordering::SeqCst),
                    |old| (*old).max(val) as u64,
                    true,
                )
            }

            pub fn fetch_min(&self, val: $prim, _o: Ordering) -> $prim {
                self.hooked(
                    OP_RMW,
                    |a| a.fetch_min(val, Ordering::SeqCst),
                    |old| (*old).min(val) as u64,
                    true,
                )
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.hooked(
                    OP_CAS,
                    |a| a.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst),
                    |r| match r {
                        Ok(_) => mix(1, new as u64),
                        Err(seen) => mix(2, *seen as u64),
                    },
                    true,
                )
            }

            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                // The model never fails spuriously: weak == strong.
                self.compare_exchange(current, new, success, failure)
            }

            /// A single atomic step in the model (one switch point),
            /// matching the std signature.
            pub fn fetch_update<F>(
                &self,
                _set: Ordering,
                _fetch: Ordering,
                mut f: F,
            ) -> Result<$prim, $prim>
            where
                F: FnMut($prim) -> Option<$prim>,
            {
                self.hooked(
                    OP_RMW,
                    |a| a.fetch_update(Ordering::SeqCst, Ordering::SeqCst, &mut f),
                    |r| match r {
                        Ok(old) => mix(3, *old as u64),
                        Err(old) => mix(4, *old as u64),
                    },
                    true,
                )
            }

            /// `&mut self` proves exclusivity: always a passthrough.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                std::fmt::Debug::fmt(&self.inner, f)
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> Self {
                Self::new(v)
            }
        }
    };
}

atomic_shim!(AtomicU32, std::sync::atomic::AtomicU32, u32);
atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Model-aware drop-in for `std::sync::atomic::AtomicBool`.
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
    id: ObjId,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(v),
            id: ObjId::new(),
        }
    }

    #[inline]
    fn hooked<R>(
        &self,
        op: u64,
        f: impl FnOnce(&std::sync::atomic::AtomicBool) -> R,
        obs: impl Fn(&R) -> u64,
        wrote: bool,
    ) -> R {
        match ctx() {
            None => f(&self.inner),
            Some((ex, tid)) => {
                let _ = ex.switch_point(tid);
                let r = f(&self.inner);
                let id = self.id.get(&ex, tid);
                ex.note(tid, id, op, obs(&r), wrote);
                r
            }
        }
    }

    pub fn load(&self, _o: Ordering) -> bool {
        self.hooked(OP_LOAD, |a| a.load(Ordering::SeqCst), |v| *v as u64, false)
    }

    pub fn store(&self, val: bool, _o: Ordering) {
        self.hooked(
            OP_STORE,
            |a| a.store(val, Ordering::SeqCst),
            |_| val as u64,
            true,
        )
    }

    pub fn swap(&self, val: bool, _o: Ordering) -> bool {
        self.hooked(
            OP_RMW,
            |a| a.swap(val, Ordering::SeqCst),
            |old| mix(*old as u64, val as u64),
            true,
        )
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _s: Ordering,
        _f: Ordering,
    ) -> Result<bool, bool> {
        self.hooked(
            OP_CAS,
            |a| a.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst),
            |r| match r {
                Ok(_) => mix(1, new as u64),
                Err(seen) => mix(2, *seen as u64),
            },
            true,
        )
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.inner, f)
    }
}

/// Model-aware drop-in for `std::sync::atomic::AtomicPtr<T>`.
///
/// Pointer values are hashed through the explorer's first-seen renaming
/// table, so fingerprints are stable even though allocator addresses
/// differ between executions.
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
    id: ObjId,
}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> Self {
        AtomicPtr {
            inner: std::sync::atomic::AtomicPtr::new(p),
            id: ObjId::new(),
        }
    }

    #[inline]
    fn hooked<R>(
        &self,
        op: u64,
        f: impl FnOnce(&std::sync::atomic::AtomicPtr<T>) -> R,
        obs: impl Fn(&Explorer, &R) -> u64,
        wrote: bool,
    ) -> R {
        match ctx() {
            None => f(&self.inner),
            Some((ex, tid)) => {
                let _ = ex.switch_point(tid);
                let r = f(&self.inner);
                let id = self.id.get(&ex, tid);
                let v = obs(&ex, &r);
                ex.note(tid, id, op, v, wrote);
                r
            }
        }
    }

    pub fn load(&self, _o: Ordering) -> *mut T {
        self.hooked(
            OP_LOAD,
            |a| a.load(Ordering::SeqCst),
            |ex, p| ex.ptr_name(*p as usize),
            false,
        )
    }

    pub fn store(&self, p: *mut T, _o: Ordering) {
        self.hooked(
            OP_STORE,
            |a| a.store(p, Ordering::SeqCst),
            |ex, _| ex.ptr_name(p as usize),
            true,
        )
    }

    pub fn swap(&self, p: *mut T, _o: Ordering) -> *mut T {
        self.hooked(
            OP_RMW,
            |a| a.swap(p, Ordering::SeqCst),
            |ex, old| mix(ex.ptr_name(*old as usize), ex.ptr_name(p as usize)),
            true,
        )
    }

    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        _s: Ordering,
        _f: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.hooked(
            OP_CAS,
            |a| a.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst),
            |ex, r| match r {
                Ok(_) => mix(1, ex.ptr_name(new as usize)),
                Err(seen) => mix(2, ex.ptr_name(*seen as usize)),
            },
            true,
        )
    }

    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.inner, f)
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

/// Result alias matching std's shape; the shim never returns `Err`.
pub type LockResult<G> = Result<G, std::sync::PoisonError<G>>;

/// Model-aware drop-in for `std::sync::Mutex<T>`.
pub struct Mutex<T: ?Sized> {
    id: ObjId,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(v: T) -> Self {
        Mutex {
            id: ObjId::new(),
            inner: std::sync::Mutex::new(v),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.inner.into_inner().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let sched = match ctx() {
            None => None,
            Some((ex, tid)) => {
                let id = self.id.get(&ex, tid);
                ex.mutex_lock(tid, id);
                Some((ex, tid, id))
            }
        };
        // Under the model protocol the inner mutex is uncontended
        // (ownership was granted by the scheduler); outside a model
        // this is the real blocking acquire.
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Ok(MutexGuard {
            lock: self,
            inner: Some(g),
            sched,
        })
    }

    pub fn try_lock(
        &self,
    ) -> Result<MutexGuard<'_, T>, std::sync::TryLockError<MutexGuard<'_, T>>> {
        match ctx() {
            None => match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    sched: None,
                }),
                Err(std::sync::TryLockError::Poisoned(e)) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(e.into_inner()),
                    sched: None,
                }),
                Err(std::sync::TryLockError::WouldBlock) => {
                    Err(std::sync::TryLockError::WouldBlock)
                }
            },
            Some(_) => {
                // In a model, the only correct non-blocking probe is
                // through the scheduler; the workspace's modelled code
                // never uses try_lock, so keep the surface minimal.
                unimplemented!("exbox-loom Mutex::try_lock inside a model")
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.inner.get_mut().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.inner, f)
    }
}

/// Guard pairing the real `std` guard with the model unlock protocol.
/// Keeps a reference to its `Mutex` so `Condvar::wait` can re-acquire.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    sched: Option<(StdArc<Explorer>, usize, u64)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then run the model protocol so
        // a woken waiter's uncontended inner acquire succeeds.
        drop(self.inner.take());
        if let Some((ex, tid, id)) = self.sched.take() {
            ex.mutex_unlock(tid, id);
        }
    }
}

/// Model-aware drop-in for `std::sync::Condvar` (no timeouts, no
/// spurious wakeups inside a model).
pub struct Condvar {
    id: ObjId,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            id: ObjId::new(),
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match ctx() {
            None => {
                let std_guard = guard.inner.take().expect("guard taken");
                // guard.sched is None outside a model; dropping the
                // emptied shell is a no-op.
                let g = self
                    .inner
                    .wait(std_guard)
                    .unwrap_or_else(|e| e.into_inner());
                guard.inner = Some(g);
                Ok(guard)
            }
            Some((ex, tid)) => {
                let lock = guard.lock;
                let (gex, gtid, mid) = guard.sched.take().expect("condvar wait on foreign guard");
                debug_assert_eq!(gtid, tid);
                let cid = self.id.get(&ex, tid);
                // Drop the real guard, then run the model wait protocol
                // (registers as waiter + releases the model mutex under
                // one scheduler-lock acquisition — no lost wakeups).
                // `condvar_wait` re-acquires the model mutex before it
                // returns, so the inner re-lock below is uncontended.
                drop(guard.inner.take());
                drop(guard);
                gex.condvar_wait(tid, cid, mid);
                let g = lock.inner.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    sched: Some((gex, tid, mid)),
                })
            }
        }
    }

    /// `wait_while`, matching std's convenience signature.
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard)?;
        }
        Ok(guard)
    }

    pub fn notify_one(&self) {
        match ctx() {
            None => self.inner.notify_one(),
            Some((ex, tid)) => {
                let cid = self.id.get(&ex, tid);
                ex.condvar_notify(tid, cid, false);
            }
        }
    }

    pub fn notify_all(&self) {
        match ctx() {
            None => self.inner.notify_all(),
            Some((ex, tid)) => {
                let cid = self.id.get(&ex, tid);
                ex.condvar_notify(tid, cid, true);
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Re-export: modelled code keeps using the real `Arc` — the model
/// runs on real OS threads, so real reference counting is both sound
/// and invisible to the scheduler (no shared-memory *protocol* rides
/// on it after the PR-9 reclamation fix).
pub use std::sync::Arc;
