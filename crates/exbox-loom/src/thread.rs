//! Shimmed `std::thread` subset: `spawn`, `Builder`, `JoinHandle`,
//! `yield_now`.
//!
//! Inside a model, `spawn` registers a new model thread with the
//! explorer (spawn is itself a switch point) and runs the closure on a
//! real OS thread that first waits to be scheduled; `join` blocks
//! through the scheduler. Outside a model everything passes through to
//! `std::thread` unchanged.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::explorer::{ctx, Explorer};

/// Subset of `std::thread::Builder` (name only — stack size is not
/// relevant to the model).
#[derive(Default, Debug)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Self {
        Builder { name: None }
    }

    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
            }
            Some((ex, parent)) => {
                // Spawning is a visible operation: other threads may be
                // scheduled before or after the child exists.
                let _ = ex.switch_point(parent);
                let tid = ex.register_thread(parent);
                let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
                let ex2 = Arc::clone(&ex);
                let slot2 = Arc::clone(&slot);
                let mut b = std::thread::Builder::new();
                b = b.name(self.name.unwrap_or_else(|| format!("exbox-loom-t{tid}")));
                let os = b.spawn(move || {
                    crate::explorer::enter_model(Arc::clone(&ex2), tid);
                    if ex2.wait_first_schedule(tid) {
                        let r = panic::catch_unwind(AssertUnwindSafe(f));
                        let payload = match r {
                            Ok(v) => {
                                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                                None
                            }
                            Err(p) => Some(p),
                        };
                        if let Some(p) = ex2.thread_finished(tid, payload) {
                            *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(p));
                        }
                    } else {
                        // Execution aborted before we ever ran.
                        let _ = ex2.thread_finished(tid, Some(Box::new(crate::explorer::Abort)));
                        *slot2.lock().unwrap_or_else(|e| e.into_inner()) =
                            Some(Err(Box::new(crate::explorer::Abort)));
                    }
                    crate::explorer::exit_model();
                    ex2.thread_exited();
                })?;
                ex.adopt_os_handle(os);
                Ok(JoinHandle(Inner::Model { ex, tid, slot }))
            }
        }
    }
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        ex: Arc<Explorer>,
        tid: usize,
        slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
}

/// Shimmed join handle with a std-compatible `join`.
pub struct JoinHandle<T>(Inner<T>);

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { ex, tid, slot } => {
                if let Some((jex, jtid)) = ctx() {
                    debug_assert!(Arc::ptr_eq(&jex, &ex));
                    // Blocks through the scheduler until `tid` is
                    // finished (or degrades to a tokenless wait when
                    // the execution is aborting).
                    let _ = jex.join(jtid, tid);
                }
                // On the clean path the result slot is filled before
                // the thread reports finished, so this take succeeds
                // immediately; the brief spin only covers the
                // abort/passthrough path where the wrapper is still
                // storing its result.
                loop {
                    if let Some(r) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                        return r;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }

    pub fn is_finished(&self) -> bool {
        match &self.0 {
            Inner::Std(h) => h.is_finished(),
            Inner::Model { slot, .. } => slot.lock().unwrap_or_else(|e| e.into_inner()).is_some(),
        }
    }
}

/// Spawn with a default name.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// A pure switch point inside a model; `std::thread::yield_now`
/// outside one.
pub fn yield_now() {
    match ctx() {
        None => std::thread::yield_now(),
        Some((ex, tid)) => {
            let _ = ex.switch_point(tid);
        }
    }
}
