//! Properties of the explorer itself: it finds seeded races, proves
//! correct code race-free within its bounds, detects deadlocks,
//! honours the preemption bound, and replays counterexamples
//! deterministically.
//!
//! Model sizes are deliberately tiny — the CI container is
//! single-core, and the point is schedule coverage, not throughput.

use exbox_loom::sync::{Arc, AtomicU64, Mutex, Ordering};
use exbox_loom::{explore, replay, Config};

/// The classic lost update: two unsynchronised load+store increments.
fn lost_update_model() {
    let n = Arc::new(AtomicU64::new(0));
    let n2 = Arc::clone(&n);
    let t = exbox_loom::thread::spawn(move || {
        let v = n2.load(Ordering::SeqCst);
        n2.store(v + 1, Ordering::SeqCst);
    });
    let v = n.load(Ordering::SeqCst);
    n.store(v + 1, Ordering::SeqCst);
    t.join().unwrap();
    assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn finds_seeded_lost_update() {
    let cex = explore(Config::default(), lost_update_model)
        .expect_err("explorer must find the lost update");
    assert!(
        cex.message.contains("lost update"),
        "unexpected failure: {}",
        cex.message
    );
    assert!(cex.trace.starts_with("v1:"), "trace: {}", cex.trace);
}

#[test]
fn preemption_bound_zero_hides_the_race_bound_one_finds_it() {
    // The lost update needs one preemption (switch away from a
    // runnable thread mid-increment); a bound of 0 explores only
    // run-to-completion schedules, where each increment is atomic.
    let report = explore(
        Config {
            preemptions: Some(0),
            ..Config::default()
        },
        lost_update_model,
    )
    .expect("no failure within 0 preemptions");
    assert!(report.exhausted, "bounded space should be exhausted");

    explore(
        Config {
            preemptions: Some(1),
            ..Config::default()
        },
        lost_update_model,
    )
    .expect_err("one preemption suffices to lose the update");
}

#[test]
fn fetch_add_increments_are_race_free() {
    // The corrected program: the same counter bumped via a single
    // atomic RMW per thread. Exhaustive within the default bound.
    let report = explore(Config::default(), || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = exbox_loom::thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    })
    .expect("atomic increments cannot lose updates");
    assert!(report.executions > 1, "should explore >1 interleaving");
}

#[test]
fn mutex_guarantees_mutual_exclusion() {
    let report = explore(Config::default(), || {
        let m = Arc::new(Mutex::new((0u64, 0u64)));
        let m2 = Arc::clone(&m);
        let t = exbox_loom::thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            g.0 += 1;
            g.1 += 1;
        });
        {
            let mut g = m.lock().unwrap();
            g.0 += 1;
            g.1 += 1;
        }
        t.join().unwrap();
        let g = m.lock().unwrap();
        assert_eq!(g.0, g.1, "critical section torn");
        assert_eq!(g.0, 2);
    })
    .expect("mutex-protected increments are race-free");
    assert!(report.executions >= 1);
}

#[test]
fn detects_abba_deadlock() {
    let cex = explore(Config::default(), || {
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::new(Mutex::new(0u64));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = exbox_loom::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    })
    .expect_err("AB/BA lock order must deadlock in some schedule");
    assert!(
        cex.message.contains("deadlock"),
        "unexpected failure: {}",
        cex.message
    );
}

#[test]
fn counterexample_replays_deterministically() {
    let cex = explore(Config::default(), lost_update_model)
        .expect_err("explorer must find the lost update");
    // Replaying the trace must reproduce the same failure, repeatedly.
    for _ in 0..3 {
        let again = replay(&cex.trace, lost_update_model)
            .expect_err("pinned replay must reproduce the failure");
        assert!(again.message.contains("lost update"));
    }
    // A replay of the default schedule (empty pin) must pass — the
    // failure needs its specific interleaving.
    replay("v1:", lost_update_model).expect("default schedule runs to completion");
}

#[test]
fn pruning_preserves_the_verdict() {
    let unpruned = explore(
        Config {
            prune: false,
            ..Config::default()
        },
        lost_update_model,
    );
    let pruned = explore(Config::default(), lost_update_model);
    assert!(unpruned.is_err() && pruned.is_err());

    let unpruned_ok = explore(
        Config {
            prune: false,
            ..Config::default()
        },
        || {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = exbox_loom::thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(2, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 3);
        },
    )
    .expect("race-free");
    let pruned_ok = explore(Config::default(), || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = exbox_loom::thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(2, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 3);
    })
    .expect("race-free");
    assert!(
        pruned_ok.executions <= unpruned_ok.executions,
        "pruning must not widen the search: {} vs {}",
        pruned_ok.executions,
        unpruned_ok.executions
    );
}

#[test]
fn condvar_handoff_is_explored_without_lost_wakeups() {
    use exbox_loom::sync::Condvar;
    let report = explore(Config::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = exbox_loom::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock().unwrap();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    })
    .expect("flag handoff must complete in every schedule");
    assert!(report.executions >= 1);
}

#[test]
fn three_thread_counter_exhausts_within_bound() {
    // ≥2 writers + main: checks the explorer handles >2 threads and
    // that the report's exhausted flag is meaningful.
    let report = explore(Config::default(), || {
        let n = Arc::new(AtomicU64::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                exbox_loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in ts {
            t.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    })
    .expect("race-free");
    assert!(report.exhausted, "{report:?}");
}
