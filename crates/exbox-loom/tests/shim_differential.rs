//! Differential tests: the shim layer must be behavior-identical to
//! `std::sync` both as a passthrough (no model running) and under the
//! trivial single-interleaving scheduler (`Config::trivial()`).
//!
//! Each case runs the same deterministic program twice — once on
//! `std::sync` primitives, once on the shims — and asserts identical
//! observable results. The exbox workspace relies on this equivalence:
//! `--cfg exbox_loom` builds run the entire ordinary unit-test suite
//! through these shims.

use std::sync::mpsc;

use exbox_loom::sync::{
    Arc, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Condvar, Mutex, Ordering,
};
use exbox_loom::Config;

/// A deterministic single-thread op sequence over one u64 atomic;
/// returns every intermediate observation.
fn u64_op_trace(
    load: impl Fn() -> u64,
    store: impl Fn(u64),
    fetch_add: impl Fn(u64) -> u64,
    swap: impl Fn(u64) -> u64,
    cas: impl Fn(u64, u64) -> Result<u64, u64>,
) -> Vec<u64> {
    let mut out = Vec::new();
    out.push(load());
    store(7);
    out.push(load());
    out.push(fetch_add(5));
    out.push(swap(100));
    out.push(load());
    out.push(match cas(100, 1) {
        Ok(v) => v,
        Err(v) => v + 1000,
    });
    out.push(match cas(999, 2) {
        Ok(v) => v,
        Err(v) => v + 1000,
    });
    out.push(load());
    out
}

fn shim_u64_trace() -> Vec<u64> {
    let a = AtomicU64::new(3);
    u64_op_trace(
        || a.load(Ordering::SeqCst),
        |v| a.store(v, Ordering::SeqCst),
        |v| a.fetch_add(v, Ordering::SeqCst),
        |v| a.swap(v, Ordering::SeqCst),
        |c, n| a.compare_exchange(c, n, Ordering::SeqCst, Ordering::SeqCst),
    )
}

fn std_u64_trace() -> Vec<u64> {
    let a = std::sync::atomic::AtomicU64::new(3);
    use std::sync::atomic::Ordering::SeqCst;
    u64_op_trace(
        || a.load(SeqCst),
        |v| a.store(v, SeqCst),
        |v| a.fetch_add(v, SeqCst),
        |v| a.swap(v, SeqCst),
        |c, n| a.compare_exchange(c, n, SeqCst, SeqCst),
    )
}

#[test]
fn atomic_u64_passthrough_matches_std() {
    assert_eq!(shim_u64_trace(), std_u64_trace());
}

#[test]
fn atomic_u64_under_trivial_scheduler_matches_std() {
    let expected = std_u64_trace();
    let (tx, rx) = mpsc::channel();
    exbox_loom::model_with(Config::trivial(), move || {
        let _ = tx.send(shim_u64_trace());
    });
    assert_eq!(rx.recv().unwrap(), expected);
}

#[test]
fn atomic_misc_passthrough_matches_std() {
    // bool
    let b = AtomicBool::new(false);
    assert!(!b.swap(true, Ordering::SeqCst));
    assert!(b.load(Ordering::SeqCst));
    assert_eq!(
        b.compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst),
        Ok(true)
    );
    // u32 / usize fetch_update parity with std
    let u = AtomicU32::new(10);
    let su = std::sync::atomic::AtomicU32::new(10);
    let r = u.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(4));
    let sr = su.fetch_update(
        std::sync::atomic::Ordering::SeqCst,
        std::sync::atomic::Ordering::SeqCst,
        |v| v.checked_sub(4),
    );
    assert_eq!(r, sr);
    assert_eq!(
        u.load(Ordering::SeqCst),
        su.load(std::sync::atomic::Ordering::SeqCst)
    );
    let z = AtomicUsize::new(1);
    assert_eq!(z.fetch_sub(1, Ordering::SeqCst), 1);
    assert_eq!(z.load(Ordering::SeqCst), 0);
    // ptr
    let mut x = 5i32;
    let p: AtomicPtr<i32> = AtomicPtr::new(std::ptr::null_mut());
    assert!(p.load(Ordering::SeqCst).is_null());
    p.store(&mut x as *mut i32, Ordering::SeqCst);
    assert_eq!(
        p.swap(std::ptr::null_mut(), Ordering::SeqCst),
        &mut x as *mut i32
    );
}

#[test]
fn mutex_condvar_passthrough_matches_std() {
    // Producer/consumer over a shim Mutex+Condvar, passthrough mode,
    // on real threads: same protocol as the std equivalent.
    let run_shim = || {
        let q: Arc<(Mutex<Vec<u32>>, Condvar)> = Arc::new((Mutex::new(Vec::new()), Condvar::new()));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            for i in 0..10 {
                let (m, cv) = &*q2;
                m.lock().unwrap().push(i);
                cv.notify_one();
            }
        });
        let (m, cv) = &*q;
        let mut got = Vec::new();
        let mut g = m.lock().unwrap();
        while got.len() < 10 {
            while g.is_empty() {
                g = cv.wait(g).unwrap();
            }
            got.extend(g.drain(..));
        }
        drop(g);
        t.join().unwrap();
        got
    };
    let got = run_shim();
    assert_eq!(got, (0..10).collect::<Vec<_>>());
}

#[test]
fn thread_shim_passthrough_matches_std() {
    let h = exbox_loom::thread::Builder::new()
        .name("diff-test".into())
        .spawn(|| {
            assert_eq!(std::thread::current().name(), Some("diff-test"));
            42u64
        })
        .unwrap();
    assert_eq!(h.join().unwrap(), 42);
    exbox_loom::thread::yield_now();
}

#[test]
fn mutex_under_trivial_scheduler_matches_std() {
    let expected = {
        let m = std::sync::Mutex::new(0u64);
        for _ in 0..5 {
            *m.lock().unwrap() += 3;
        }
        m.into_inner().unwrap()
    };
    let (tx, rx) = mpsc::channel();
    exbox_loom::model_with(Config::trivial(), move || {
        let m = Mutex::new(0u64);
        for _ in 0..5 {
            *m.lock().unwrap() += 3;
        }
        let _ = tx.send(m.into_inner().unwrap());
    });
    assert_eq!(rx.recv().unwrap(), expected);
}

#[test]
fn spawn_join_under_trivial_scheduler_matches_std() {
    let (tx, rx) = mpsc::channel();
    exbox_loom::model_with(Config::trivial(), move || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = exbox_loom::thread::spawn(move || {
            n2.fetch_add(41, Ordering::SeqCst);
            1u64
        });
        let ret = t.join().unwrap();
        let _ = tx.send(n.load(Ordering::SeqCst) + ret);
    });
    assert_eq!(rx.recv().unwrap(), 42);
}
