//! Compact, serving-optimised SVM evaluation form.
//!
//! [`SvmModel`] stores its support vectors as `Vec<Vec<f64>>` — fine
//! for training-side bookkeeping, but every decision then chases one
//! pointer per support vector. The Admittance Classifier sits on the
//! gateway's per-arrival fast path (paper §4.2/§5.3), so after every
//! (re)train the model is converted into a [`CompactSvm`]:
//!
//! * support vectors flattened into one contiguous **row-major**
//!   buffer — the kernel expansion walks a single cache-friendly
//!   allocation and the inner dot products autovectorise,
//! * exactly-zero coefficients pruned (they cannot contribute;
//!   [`CompactSvm::from_model_pruned`] additionally drops near-zero
//!   coefficients when a lossy, smaller model is acceptable),
//! * the **linear** kernel collapsed to its explicit weight vector
//!   `w = Σ αᵢyᵢ xᵢ`, making a decision a single `dims`-length dot
//!   product regardless of the support-vector count.
//!
//! For the kernel-expansion paths (RBF / polynomial) the per-vector
//! arithmetic and the accumulation order are *identical* to
//! [`SvmModel::decision_value`], so compact decisions are **bit-exact**
//! with the uncompacted model (property-tested in
//! `tests/compact_props.rs`). The collapsed linear form re-associates
//! the sum `Σ cᵢ (xᵢ·x)` into `(Σ cᵢ xᵢ)·x` and therefore agrees to
//! floating-point round-off rather than bit-for-bit.
//!
//! Conversion also picks a [`KernelEngine`] — scalar reference loops
//! or the lane-blocked SIMD form in [`crate::engine`] — and, for the
//! `Lanes` engine, precomputes a feature-major copy of the
//! support-vector buffer. Both engines are bit-identical (that is the
//! [`crate::engine`] determinism contract), so the choice is purely a
//! latency knob: `simd` builds default to `Lanes`, and
//! `EXBOX_KERNEL_ENGINE=scalar|lanes` overrides at runtime.

use crate::engine::{self, KernelEngine};
use crate::kernel::{dot, Kernel};
use crate::svm::SvmModel;
use crate::Classifier;

/// A trained SVM flattened for low-latency serving. Build one with
/// [`CompactSvm::from_model`] (or [`SvmModel::compact`]).
///
/// A `CompactSvm` is plain owned data (no interior mutability, no
/// shared state), so it is `Send + Sync` and its shared-reference
/// [`CompactSvm::decision_value`] can be evaluated from many serving
/// threads at once — the property the concurrent gateway's published
/// model snapshots rely on. This is asserted at compile time below.
///
/// # Memory layout
///
/// * `sv` — support vectors **row-major**: row `i` is
///   `sv[i*dims .. (i+1)*dims]`. This buffer is authoritative: the
///   checkpoint path serialises from it via
///   [`CompactSvm::support_iter`].
/// * `coef`, `norms` — per-row signed coefficients `αᵢyᵢ` and cached
///   `‖svᵢ‖²` (RBF only), aligned with `sv`'s rows.
/// * `lanes` — only under the `Lanes` engine: the same rows regrouped
///   **feature-major in blocks of 4** (`lanes[b*dims*4 + k*4 + j]` is
///   feature `k` of block `b`'s row `j`, zero-padded tail), so the
///   kernel expansion advances four rows per pass over the query. A
///   derived copy, never serialised.
///
/// # Example
///
/// ```
/// use exbox_ml::prelude::*;
///
/// let mut ds = Dataset::new(2);
/// for a in 0..8 {
///     for b in 0..8 {
///         let y = if a + b <= 6 { Label::Pos } else { Label::Neg };
///         ds.push(vec![a as f64, b as f64], y);
///     }
/// }
/// let model = SvmTrainer::new(Kernel::rbf(0.5)).c(10.0).train(&ds);
/// let compact = model.compact();
/// // Same bits as the training-side model, whatever engine was picked
/// // (fast-math builds renounce this and must skip the comparison).
/// let x = [2.0, 3.0];
/// if exbox_ml::determinism_guaranteed() {
///     assert_eq!(
///         model.decision_value(&x).to_bits(),
///         compact.decision_value(&x).to_bits(),
///     );
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CompactSvm {
    kernel: Kernel,
    dims: usize,
    bias: f64,
    /// Support vectors, row-major: row `i` is `sv[i*dims..(i+1)*dims]`.
    sv: Vec<f64>,
    /// Signed coefficients `αᵢyᵢ`, aligned with the rows of `sv`.
    coef: Vec<f64>,
    /// `‖svᵢ‖²` for the RBF fast path (empty otherwise).
    norms: Vec<f64>,
    /// Explicit weight vector for the collapsed linear kernel.
    weights: Option<Vec<f64>>,
    /// Feature-major lane blocks of `sv` (Lanes engine only).
    lanes: Vec<f64>,
    /// Inner-loop implementation picked at conversion time.
    engine: KernelEngine,
    /// Coefficients dropped at conversion time.
    pruned: usize,
}

impl CompactSvm {
    /// Lossless conversion: prunes only exactly-zero coefficients and
    /// collapses the linear kernel. Kernel-expansion decisions
    /// (RBF / polynomial) are bit-exact with the source model. The
    /// kernel engine is chosen by [`KernelEngine::select`] (the `simd`
    /// feature default, overridable via `EXBOX_KERNEL_ENGINE`).
    pub fn from_model(model: &SvmModel) -> Self {
        Self::convert(model, 0.0, KernelEngine::select())
    }

    /// [`CompactSvm::from_model`] with an explicit engine, bypassing
    /// feature/environment selection — benchmarks use this to measure
    /// scalar and lane-blocked evaluation of the *same* model side by
    /// side.
    pub fn from_model_with_engine(model: &SvmModel, engine: KernelEngine) -> Self {
        Self::convert(model, 0.0, engine)
    }

    /// Lossy conversion: additionally prunes every coefficient with
    /// `|αᵢyᵢ| <= tol`. The decision function shifts by at most
    /// `Σ_pruned |cᵢ| · max|K|` (for RBF/poly with bounded inputs a
    /// tiny, testable bound); use when model size matters more than
    /// the last bits of the margin.
    ///
    /// # Panics
    /// Panics if `tol` is negative or not finite.
    pub fn from_model_pruned(model: &SvmModel, tol: f64) -> Self {
        assert!(
            tol >= 0.0 && tol.is_finite(),
            "prune tolerance must be >= 0"
        );
        Self::convert(model, tol, KernelEngine::select())
    }

    fn convert(model: &SvmModel, tol: f64, engine: KernelEngine) -> Self {
        let dims = model.dims();
        let kernel = model.kernel();
        let mut sv = Vec::new();
        let mut coef = Vec::new();
        let mut pruned = 0usize;
        for (c, x) in model.support_iter() {
            if c.abs() <= tol {
                pruned += 1;
                continue;
            }
            coef.push(c);
            sv.extend_from_slice(x);
        }
        let norms = match kernel {
            Kernel::Rbf { .. } => sv.chunks_exact(dims).map(|row| dot(row, row)).collect(),
            _ => Vec::new(),
        };
        let weights = (kernel == Kernel::Linear).then(|| {
            let mut w = vec![0.0; dims];
            for (row, &c) in sv.chunks_exact(dims).zip(&coef) {
                for (wk, &xk) in w.iter_mut().zip(row) {
                    *wk += c * xk;
                }
            }
            w
        });
        // The lane buffer only serves the kernel-expansion paths; a
        // collapsed linear model decides from `weights` alone.
        let lanes = match engine {
            KernelEngine::Lanes if weights.is_none() => engine::interleave_rows(&sv, dims),
            _ => Vec::new(),
        };
        CompactSvm {
            kernel,
            dims,
            bias: model.bias(),
            sv,
            coef,
            norms,
            weights,
            lanes,
            engine,
            pruned,
        }
    }

    /// Support vectors retained after pruning (0 for a collapsed
    /// linear model's storage — the rows are kept only for
    /// introspection there, the decision never touches them).
    pub fn num_support_vectors(&self) -> usize {
        self.coef.len()
    }

    /// Coefficients dropped at conversion.
    pub fn pruned(&self) -> usize {
        self.pruned
    }

    /// Bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The kernel this model evaluates.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The inner-loop engine picked at conversion time.
    pub fn engine(&self) -> KernelEngine {
        self.engine
    }

    /// The collapsed weight vector (linear kernel only).
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// `true` when decisions are a single dot product.
    pub fn is_collapsed(&self) -> bool {
        self.weights.is_some()
    }

    /// `(coefficient, support-vector row)` pairs in serving order.
    /// The checkpoint path serialises the *served* model from these,
    /// so a reload (via [`SvmModel::from_parts`] + [`SvmModel::compact`])
    /// rebuilds identical rows, coefficients and cached norms — and
    /// therefore bit-identical decisions.
    pub fn support_iter(&self) -> impl Iterator<Item = (f64, &[f64])> {
        // `max(1)` keeps chunks_exact well-defined for a degenerate
        // zero-dim model (sv is empty there, so the iterator is too).
        self.coef
            .iter()
            .copied()
            .zip(self.sv.chunks_exact(self.dims.max(1)))
    }
}

impl Classifier for CompactSvm {
    /// Signed margin of `x`. Dispatches on the engine picked at
    /// conversion; both engines produce the same bits (the
    /// [`crate::engine`] determinism contract), so callers never need
    /// to know which one is running.
    fn decision_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims, "input dimensionality mismatch");
        if let Some(w) = &self.weights {
            return match self.engine {
                KernelEngine::Scalar => dot(w, x),
                KernelEngine::Lanes => engine::dot_ordered(w, x),
            } + self.bias;
        }
        if self.engine == KernelEngine::Lanes {
            return match self.kernel {
                Kernel::Rbf { gamma } => engine::rbf_lanes(
                    &self.lanes,
                    self.dims,
                    &self.coef,
                    &self.norms,
                    gamma,
                    x,
                    self.bias,
                ),
                Kernel::Poly {
                    gamma,
                    coef0,
                    degree,
                } => engine::poly_lanes(
                    &self.lanes,
                    self.dims,
                    &self.coef,
                    gamma,
                    coef0,
                    degree,
                    x,
                    self.bias,
                ),
                // Linear always collapses to `weights` above.
                Kernel::Linear => unreachable!("linear kernel is always collapsed"),
            };
        }
        let mut f = self.bias;
        match self.kernel {
            Kernel::Rbf { gamma } => {
                let nx = dot(x, x);
                for ((row, &c), &ns) in self
                    .sv
                    .chunks_exact(self.dims)
                    .zip(&self.coef)
                    .zip(&self.norms)
                {
                    // Same arithmetic as Kernel::eval_with_norms with
                    // the support vector first — keeps compact and
                    // naive evaluation bit-identical.
                    let d2 = (ns + nx - 2.0 * dot(row, x)).max(0.0);
                    f += c * (-gamma * d2).exp();
                }
            }
            Kernel::Linear => {
                for (row, &c) in self.sv.chunks_exact(self.dims).zip(&self.coef) {
                    f += c * dot(row, x);
                }
            }
            Kernel::Poly {
                gamma,
                coef0,
                degree,
            } => {
                for (row, &c) in self.sv.chunks_exact(self.dims).zip(&self.coef) {
                    f += c * (gamma * dot(row, x) + coef0).powi(degree as i32);
                }
            }
        }
        f
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

impl SvmModel {
    /// Convert into the serving-optimised form — see [`CompactSvm`].
    pub fn compact(&self) -> CompactSvm {
        CompactSvm::from_model(self)
    }
}

// Compile-time guarantee for the concurrent serving layer: the compact
// model can be shared by reference across shard threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompactSvm>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, Label};
    use crate::svm::SvmTrainer;

    fn grid_dataset() -> Dataset {
        let mut ds = Dataset::new(2);
        for a in 0..10 {
            for b in 0..10 {
                let y = if 2 * a + 3 * b <= 18 {
                    Label::Pos
                } else {
                    Label::Neg
                };
                ds.push(vec![a as f64, b as f64], y);
            }
        }
        ds
    }

    fn queries() -> Vec<[f64; 2]> {
        let mut q = Vec::new();
        for a in 0..12 {
            for b in 0..12 {
                q.push([a as f64 * 0.7, b as f64 * 0.9]);
            }
        }
        q
    }

    #[test]
    fn rbf_compact_is_bit_exact() {
        if !crate::engine::determinism_guaranteed() {
            eprintln!("skipped: fast-math build forfeits bit-equality");
            return;
        }
        let model = SvmTrainer::new(Kernel::rbf(0.3))
            .c(10.0)
            .train(&grid_dataset());
        let compact = model.compact();
        assert_eq!(compact.num_support_vectors(), model.num_support_vectors());
        for q in queries() {
            assert_eq!(
                model.decision_value(&q).to_bits(),
                compact.decision_value(&q).to_bits(),
                "rbf compact diverged at {q:?}"
            );
        }
    }

    #[test]
    fn poly_compact_is_bit_exact() {
        let model = SvmTrainer::new(Kernel::poly(0.5, 1.0, 2))
            .c(10.0)
            .train(&grid_dataset());
        let compact = model.compact();
        for q in queries() {
            assert_eq!(
                model.decision_value(&q).to_bits(),
                compact.decision_value(&q).to_bits(),
                "poly compact diverged at {q:?}"
            );
        }
    }

    #[test]
    fn linear_collapses_to_single_dot_product() {
        let model = SvmTrainer::new(Kernel::Linear)
            .c(10.0)
            .train(&grid_dataset());
        let compact = model.compact();
        assert!(compact.is_collapsed());
        let w = compact.weights().expect("collapsed weights");
        let model_w = model.linear_weights().expect("linear weights");
        for (a, b) in w.iter().zip(&model_w) {
            assert!((a - b).abs() < 1e-12, "collapsed w diverged: {a} vs {b}");
        }
        for q in queries() {
            let naive = model.decision_value(&q);
            let fast = compact.decision_value(&q);
            assert!(
                (naive - fast).abs() <= 1e-9 * (1.0 + naive.abs()),
                "collapsed linear diverged at {q:?}: {naive} vs {fast}"
            );
        }
    }

    #[test]
    fn zero_coefficients_are_pruned_losslessly() {
        if !crate::engine::determinism_guaranteed() {
            eprintln!("skipped: fast-math build forfeits bit-equality");
            return;
        }
        let support = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let coef = vec![0.5, 0.0, -0.25];
        let model = SvmModel::from_parts(Kernel::rbf(0.4), support, coef, 0.1, 2);
        let compact = model.compact();
        assert_eq!(compact.pruned(), 1);
        assert_eq!(compact.num_support_vectors(), 2);
        for q in queries() {
            assert_eq!(
                model.decision_value(&q).to_bits(),
                compact.decision_value(&q).to_bits()
            );
        }
    }

    #[test]
    fn lossy_pruning_bounds_the_margin_shift() {
        if !crate::engine::determinism_guaranteed() {
            eprintln!("skipped: fast-math build forfeits exact-margin bound");
            return;
        }
        let support = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let coef = vec![1.0, 1e-9, -2.0];
        let model = SvmModel::from_parts(Kernel::rbf(0.5), support, coef, 0.0, 2);
        let compact = CompactSvm::from_model_pruned(&model, 1e-6);
        assert_eq!(compact.pruned(), 1);
        for q in queries() {
            let naive = model.decision_value(&q);
            let fast = compact.decision_value(&q);
            // RBF kernel values are <= 1, so the shift is bounded by
            // the pruned mass.
            assert!((naive - fast).abs() <= 1e-9 + 1e-15);
        }
    }

    #[test]
    fn degenerate_constant_model_compacts() {
        let model = SvmModel::from_parts(Kernel::rbf(1.0), Vec::new(), Vec::new(), -1.0, 3);
        let compact = model.compact();
        assert_eq!(compact.num_support_vectors(), 0);
        assert_eq!(compact.decision_value(&[0.0, 0.0, 0.0]), -1.0);
        assert_eq!(compact.predict(&[9.0, 9.0, 9.0]), Label::Neg);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_dims_panics() {
        let model = SvmModel::from_parts(Kernel::Linear, Vec::new(), Vec::new(), 0.0, 2);
        let _ = model.compact().decision_value(&[1.0]);
    }

    #[test]
    fn lanes_engine_is_bit_identical_to_scalar() {
        // The determinism contract (crate::engine): the lane-blocked
        // engine must reproduce the scalar reference bit for bit over
        // every kernel, including support counts that leave a ragged
        // tail block. fast-math deliberately breaks this for RBF and
        // the test refuses to certify such a build.
        for kernel in [
            Kernel::rbf(0.3),
            Kernel::poly(0.5, 1.0, 2),
            Kernel::poly(1.0 / 2.0, 1.0, 3),
            Kernel::Linear,
        ] {
            if matches!(kernel, Kernel::Rbf { .. }) && !crate::engine::determinism_guaranteed() {
                eprintln!("skipped RBF case: fast-math build forfeits bit-equality");
                continue;
            }
            let model = SvmTrainer::new(kernel).c(10.0).train(&grid_dataset());
            let scalar = CompactSvm::from_model_with_engine(&model, KernelEngine::Scalar);
            let lanes = CompactSvm::from_model_with_engine(&model, KernelEngine::Lanes);
            assert_eq!(scalar.engine(), KernelEngine::Scalar);
            assert_eq!(lanes.engine(), KernelEngine::Lanes);
            for q in queries() {
                assert_eq!(
                    scalar.decision_value(&q).to_bits(),
                    lanes.decision_value(&q).to_bits(),
                    "engines diverged for {kernel:?} at {q:?}"
                );
            }
        }
    }

    #[test]
    fn lanes_engine_handles_ragged_and_degenerate_models() {
        // 1..=9 support vectors: exercises partial, exact and ragged
        // lane blocks (LANES = 4), plus the empty model.
        for n in 0..10usize {
            let support: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![i as f64 * 0.7 - 1.0, (i * i) as f64 * 0.3])
                .collect();
            let coef: Vec<f64> = (0..n).map(|i| (i as f64 - 2.5) * 0.4).collect();
            for kernel in [Kernel::rbf(0.4), Kernel::poly(0.5, 1.0, 2)] {
                if matches!(kernel, Kernel::Rbf { .. }) && !crate::engine::determinism_guaranteed()
                {
                    continue;
                }
                let model = SvmModel::from_parts(kernel, support.clone(), coef.clone(), 0.25, 2);
                let scalar = CompactSvm::from_model_with_engine(&model, KernelEngine::Scalar);
                let lanes = CompactSvm::from_model_with_engine(&model, KernelEngine::Lanes);
                for q in queries() {
                    assert_eq!(
                        scalar.decision_value(&q).to_bits(),
                        lanes.decision_value(&q).to_bits(),
                        "engines diverged for {kernel:?}, n={n}, at {q:?}"
                    );
                }
            }
        }
    }
}
