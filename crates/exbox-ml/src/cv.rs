//! n-fold cross-validation.
//!
//! The Admittance Classifier's bootstrap phase (paper §3.1, Fig. 4)
//! "performs n-fold cross validation on the training set periodically
//! … When a predefined accuracy threshold is reached, ExBox stops the
//! bootstrapping phase." This module provides that machinery for any
//! [`TrainClassifier`].

use crate::data::Dataset;
use crate::metrics::ConfusionMatrix;
use crate::{Classifier, TrainClassifier};

/// Result of one cross-validation run.
#[derive(Debug, Clone, Copy)]
pub struct CvReport {
    /// Number of folds evaluated.
    pub folds: usize,
    /// Pooled confusion matrix over all held-out folds.
    pub confusion: ConfusionMatrix,
    /// Mean held-out accuracy across folds (unweighted).
    pub mean_accuracy: f64,
}

impl CvReport {
    /// Pooled held-out accuracy (all decisions together). This is the
    /// quantity the bootstrap phase compares against its threshold.
    pub fn accuracy(&self) -> f64 {
        self.confusion.metrics().accuracy
    }
}

/// Run deterministic `n`-fold cross-validation: shuffle with `seed`,
/// split into `n` folds, train on `n−1` and evaluate on the held-out
/// fold, pooling the confusion counts. Folds train on the
/// [`exbox_par::ThreadPool::global`] pool; see
/// [`cross_validate_pooled`] to pick the pool explicitly.
///
/// # Panics
/// Panics if `n < 2` or the dataset has fewer than `n` samples.
pub fn cross_validate<T>(trainer: &T, data: &Dataset, n: usize, seed: u64) -> CvReport
where
    T: TrainClassifier + Sync,
{
    cross_validate_pooled(trainer, data, n, seed, &exbox_par::ThreadPool::global())
}

/// [`cross_validate`] with an explicit thread pool: the `n` folds
/// train concurrently (each fold's own training runs inline on its
/// worker — nested parallel sections degrade to serial). Per-fold
/// confusion counts are merged in fold order, so the report is
/// identical for every thread count.
///
/// # Panics
/// Panics if `n < 2` or the dataset has fewer than `n` samples.
pub fn cross_validate_pooled<T>(
    trainer: &T,
    data: &Dataset,
    n: usize,
    seed: u64,
    pool: &exbox_par::ThreadPool,
) -> CvReport
where
    T: TrainClassifier + Sync,
{
    assert!(n >= 2, "cross-validation needs at least 2 folds");
    let mut shuffled = data.clone();
    shuffled.shuffle(seed);
    let folds = shuffled.fold_indices(n);

    let per_fold: Vec<ConfusionMatrix> = pool.parallel_map(n, |held| {
        let mut train_idx = Vec::new();
        for (f, idxs) in folds.iter().enumerate() {
            if f != held {
                train_idx.extend_from_slice(idxs);
            }
        }
        let train = shuffled.subset(&train_idx);
        let test = shuffled.subset(&folds[held]);
        let model = trainer.fit(&train);
        let mut cm = ConfusionMatrix::new();
        for (x, y) in test.iter() {
            cm.record(model.predict(x), y);
        }
        cm
    });

    let mut pooled = ConfusionMatrix::new();
    let mut acc_sum = 0.0;
    for cm in &per_fold {
        acc_sum += cm.metrics().accuracy;
        pooled.merge(cm);
    }

    CvReport {
        folds: n,
        confusion: pooled,
        mean_accuracy: acc_sum / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Label;
    use crate::kernel::Kernel;
    use crate::svm::SvmTrainer;

    fn separable(n: usize) -> Dataset {
        let mut ds = Dataset::new(1);
        for i in 0..n {
            ds.push(vec![-1.0 - i as f64 * 0.01], Label::Pos);
            ds.push(vec![1.0 + i as f64 * 0.01], Label::Neg);
        }
        ds
    }

    #[test]
    fn cv_on_separable_data_is_accurate() {
        let trainer = SvmTrainer::new(Kernel::Linear).c(10.0);
        let report = cross_validate(&trainer, &separable(20), 5, 1);
        assert_eq!(report.folds, 5);
        assert!(report.accuracy() > 0.9, "accuracy {}", report.accuracy());
        assert!(report.mean_accuracy > 0.9);
    }

    #[test]
    fn cv_covers_every_sample_exactly_once() {
        let trainer = SvmTrainer::new(Kernel::Linear);
        let data = separable(10);
        let report = cross_validate(&trainer, &data, 4, 7);
        assert_eq!(report.confusion.total() as usize, data.len());
    }

    #[test]
    fn cv_on_random_labels_is_near_chance() {
        // Same x for both labels => nothing learnable; accuracy ~0.5.
        let mut ds = Dataset::new(1);
        for i in 0..40 {
            let y = if i % 2 == 0 { Label::Pos } else { Label::Neg };
            ds.push(vec![(i % 5) as f64], y);
        }
        let trainer = SvmTrainer::new(Kernel::rbf(1.0));
        let report = cross_validate(&trainer, &ds, 5, 3);
        assert!(
            report.accuracy() < 0.75,
            "unlearnable data scored {}",
            report.accuracy()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let trainer = SvmTrainer::new(Kernel::Linear);
        let data = separable(15);
        let a = cross_validate(&trainer, &data, 3, 42);
        let b = cross_validate(&trainer, &data, 3, 42);
        assert_eq!(a.confusion, b.confusion);
    }

    #[test]
    fn cv_report_is_thread_count_invariant() {
        // Fold parallelism must not change a single confusion count:
        // reports with 1, 2 and 8 threads are identical bit-for-bit.
        let mut ds = Dataset::new(2);
        for a in 0..10 {
            for b in 0..10 {
                let y = if 2 * a + b <= 12 {
                    Label::Pos
                } else {
                    Label::Neg
                };
                ds.push(vec![a as f64, b as f64], y);
            }
        }
        let reports: Vec<CvReport> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                let pool = exbox_par::ThreadPool::new(t);
                let trainer = SvmTrainer::new(Kernel::rbf(0.2)).c(10.0).pool(pool);
                cross_validate_pooled(&trainer, &ds, 5, 11, &pool)
            })
            .collect();
        for r in &reports[1..] {
            assert_eq!(reports[0].confusion, r.confusion);
            assert_eq!(
                reports[0].mean_accuracy.to_bits(),
                r.mean_accuracy.to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_fold_panics() {
        let trainer = SvmTrainer::new(Kernel::Linear);
        let _ = cross_validate(&trainer, &separable(4), 1, 0);
    }
}
