//! Dataset container for binary classification.
//!
//! A [`Dataset`] holds dense `f64` feature vectors with ±1 labels, the
//! exact shape of the Admittance Classifier's training tuples
//! `(X_m, Y_m)` from the paper: `X_m` encodes the traffic matrix plus
//! the arriving flow's (class, SNR-level) and `Y_m ∈ {+1, −1}` records
//! whether admitting the flow kept every flow's QoE acceptable.

use std::fmt;

/// Binary class label, `+1` (admissible) or `−1` (inadmissible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// `+1`: admitting the flow keeps all QoE acceptable.
    Pos,
    /// `−1`: admitting the flow makes some flow's QoE unacceptable.
    Neg,
}

impl Label {
    /// The label as a signed float (`+1.0` / `−1.0`), the form used by
    /// the SMO and SGD solvers.
    #[inline]
    pub fn signum(self) -> f64 {
        match self {
            Label::Pos => 1.0,
            Label::Neg => -1.0,
        }
    }

    /// Build a label from any signed value; `v >= 0` maps to [`Label::Pos`].
    #[inline]
    pub fn from_signum(v: f64) -> Self {
        if v >= 0.0 {
            Label::Pos
        } else {
            Label::Neg
        }
    }

    /// Logical negation of the label.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            Label::Pos => Label::Neg,
            Label::Neg => Label::Pos,
        }
    }

    /// `true` for [`Label::Pos`].
    #[inline]
    pub fn is_pos(self) -> bool {
        matches!(self, Label::Pos)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Pos => write!(f, "+1"),
            Label::Neg => write!(f, "-1"),
        }
    }
}

/// A dense labelled dataset with fixed dimensionality.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    dims: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<Label>,
}

impl Dataset {
    /// Create an empty dataset whose samples will have `dims` features.
    pub fn new(dims: usize) -> Self {
        Dataset {
            dims,
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Build a dataset from parallel feature/label vectors.
    ///
    /// # Panics
    /// Panics if the vectors disagree in length or any row has the
    /// wrong dimensionality.
    pub fn from_rows(dims: usize, xs: Vec<Vec<f64>>, ys: Vec<Label>) -> Self {
        assert_eq!(xs.len(), ys.len(), "feature/label length mismatch");
        let mut ds = Dataset::new(dims);
        for (x, y) in xs.into_iter().zip(ys) {
            ds.push(x, y);
        }
        ds
    }

    /// Append one labelled sample.
    ///
    /// # Panics
    /// Panics if `x.len() != self.dims()` or any feature is non-finite;
    /// non-finite features would silently poison kernel computations.
    pub fn push(&mut self, x: Vec<f64>, y: Label) {
        assert_eq!(
            x.len(),
            self.dims,
            "sample has {} features, dataset expects {}",
            x.len(),
            self.dims
        );
        assert!(
            x.iter().all(|v| v.is_finite()),
            "non-finite feature in sample"
        );
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when the dataset has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Feature vector of sample `i`.
    #[inline]
    pub fn x(&self, i: usize) -> &[f64] {
        &self.xs[i]
    }

    /// Label of sample `i`.
    #[inline]
    pub fn y(&self, i: usize) -> Label {
        self.ys[i]
    }

    /// Iterator over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], Label)> {
        self.xs
            .iter()
            .map(|v| v.as_slice())
            .zip(self.ys.iter().copied())
    }

    /// Count of positive samples.
    pub fn num_pos(&self) -> usize {
        self.ys.iter().filter(|y| y.is_pos()).count()
    }

    /// Count of negative samples.
    pub fn num_neg(&self) -> usize {
        self.len() - self.num_pos()
    }

    /// `true` when both classes are present — a prerequisite for
    /// training any discriminative classifier. The Admittance
    /// Classifier's bootstrap phase keeps observing until this holds.
    pub fn has_both_classes(&self) -> bool {
        self.num_pos() > 0 && self.num_neg() > 0
    }

    /// A new dataset containing the samples at `indices` (cloned).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.dims);
        for &i in indices {
            out.push(self.xs[i].clone(), self.ys[i]);
        }
        out
    }

    /// Deterministically shuffle sample order with an xorshift stream
    /// derived from `seed` (Fisher–Yates).
    pub fn shuffle(&mut self, seed: u64) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for i in (1..self.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            self.xs.swap(i, j);
            self.ys.swap(i, j);
        }
    }

    /// Split into `n` folds with near-equal sizes, preserving current
    /// order (shuffle first for randomised folds). Returns the index
    /// sets of each fold.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > self.len()`.
    pub fn fold_indices(&self, n: usize) -> Vec<Vec<usize>> {
        assert!(n > 0, "fold count must be positive");
        assert!(
            n <= self.len(),
            "cannot split {} samples into {} folds",
            self.len(),
            n
        );
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..self.len() {
            folds[i % n].push(i);
        }
        folds
    }

    /// Squared Euclidean norm `‖xᵢ‖²` of every sample, in index order.
    /// Precomputing these lets RBF kernels evaluate via
    /// `‖x‖² + ‖z‖² − 2·x·z` instead of re-walking the difference
    /// vector on every call (the SMO hot path does millions of evals).
    pub fn squared_norms(&self) -> Vec<f64> {
        self.xs.iter().map(|x| crate::kernel::dot(x, x)).collect()
    }

    /// Concatenate another dataset of the same dimensionality.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.dims, other.dims, "dataset dimensionality mismatch");
        for (x, y) in other.iter() {
            self.push(x.to_vec(), y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(2);
        ds.push(vec![0.0, 0.0], Label::Pos);
        ds.push(vec![1.0, 0.0], Label::Pos);
        ds.push(vec![5.0, 5.0], Label::Neg);
        ds.push(vec![6.0, 5.0], Label::Neg);
        ds
    }

    #[test]
    fn push_and_access() {
        let ds = toy();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.x(2), &[5.0, 5.0]);
        assert_eq!(ds.y(0), Label::Pos);
        assert_eq!(ds.num_pos(), 2);
        assert_eq!(ds.num_neg(), 2);
        assert!(ds.has_both_classes());
    }

    #[test]
    #[should_panic(expected = "features")]
    fn push_wrong_dims_panics() {
        let mut ds = Dataset::new(2);
        ds.push(vec![1.0], Label::Pos);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn push_nan_panics() {
        let mut ds = Dataset::new(1);
        ds.push(vec![f64::NAN], Label::Pos);
    }

    #[test]
    fn label_signum_roundtrip() {
        assert_eq!(Label::from_signum(Label::Pos.signum()), Label::Pos);
        assert_eq!(Label::from_signum(Label::Neg.signum()), Label::Neg);
        assert_eq!(Label::Pos.flip(), Label::Neg);
        assert_eq!(Label::Neg.flip(), Label::Pos);
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a = toy();
        let mut b = toy();
        a.shuffle(7);
        b.shuffle(7);
        for i in 0..a.len() {
            assert_eq!(a.x(i), b.x(i));
            assert_eq!(a.y(i), b.y(i));
        }
        // same multiset of rows
        let mut rows: Vec<Vec<f64>> = (0..a.len()).map(|i| a.x(i).to_vec()).collect();
        rows.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let mut orig: Vec<Vec<f64>> = (0..4).map(|i| toy().x(i).to_vec()).collect();
        orig.sort_by(|p, q| p.partial_cmp(q).unwrap());
        assert_eq!(rows, orig);
    }

    #[test]
    fn shuffle_different_seeds_differ() {
        // With 52 samples, two seeds colliding on the identical
        // permutation is vanishingly unlikely.
        let mut big = Dataset::new(1);
        for i in 0..52 {
            big.push(vec![i as f64], Label::Pos);
        }
        let mut a = big.clone();
        let mut b = big.clone();
        a.shuffle(1);
        b.shuffle(2);
        let same = (0..a.len()).all(|i| a.x(i) == b.x(i));
        assert!(!same);
    }

    #[test]
    fn folds_partition_all_indices() {
        let ds = toy();
        let folds = ds.fold_indices(3);
        let mut all: Vec<usize> = folds.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn subset_extracts_rows() {
        let ds = toy();
        let sub = ds.subset(&[3, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.x(0), &[6.0, 5.0]);
        assert_eq!(sub.y(1), Label::Pos);
    }

    #[test]
    fn extend_from_appends() {
        let mut a = toy();
        let b = toy();
        a.extend_from(&b);
        assert_eq!(a.len(), 8);
    }
}
