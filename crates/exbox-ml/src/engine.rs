//! Kernel evaluation engines: scalar reference vs. lane-blocked SIMD.
//!
//! The Admittance Classifier's decision cost is dominated by the
//! kernel expansion over [`crate::compact::CompactSvm`]'s contiguous
//! support-vector buffer. That loop has two latency problems the
//! scalar form cannot fix:
//!
//! 1. each row's dot product is a *serial* chain of `dims` dependent
//!    additions (6 for the traffic matrix), and
//! 2. rows are separated by an `exp`/`powi` call plus the ordered
//!    accumulation into `f`, so the compiler cannot overlap row `i+1`'s
//!    dot product with row `i`'s tail.
//!
//! The [`KernelEngine::Lanes`] engine restructures the data, not the
//! arithmetic: support vectors are regrouped into blocks of
//! [`LANES`] = 4 rows stored *feature-major* (`block[k*4 + j]` is
//! feature `k` of block-row `j`), so one pass over the query vector
//! advances four independent accumulator chains at unit stride —
//! autovectorisable to `f64x4` where the target has the width, and
//! still ~4-way instruction-level parallelism where it does not. No
//! new dependencies and no `unsafe`: the lane loops are plain chunked
//! slices on stable Rust.
//!
//! # Determinism contract
//!
//! Every float produced by the Lanes engine is **bit-identical** to
//! the Scalar engine (and therefore to [`crate::svm::SvmModel`] and to
//! the committed `results/*.csv`), because lanes are mapped to *rows*,
//! never across a single reduction:
//!
//! * within a block, lane `j` accumulates row `j`'s dot product
//!   sequentially over `k = 0..dims` — the exact operation sequence of
//!   the scalar `dot`;
//! * the kernel transform (`exp` / `powi`) is applied per lane with
//!   the identical expression the scalar path uses;
//! * the final `f += cᵢ·K(svᵢ, x)` accumulation runs strictly
//!   sequentially in row order, block by block, lane by lane.
//!
//! [`dot_ordered`] (used for the collapsed linear weight vector and
//! anywhere else a plain dot product sits on the fast path) likewise
//! evaluates four *products* at a time but folds them into a single
//! accumulator in element order — the same reduction order as the
//! scalar `dot`, hence the same bits.
//!
//! The only sanctioned deviation is the **`fast-math`** cargo feature,
//! which swaps the RBF `exp` in the Lanes engine for a Schraudolph-style
//! approximation (≲4% relative error). It changes margins, therefore
//! verdicts, therefore CSVs; [`determinism_guaranteed`] reports `false`
//! under it and every bit-equality test refuses to run. The Scalar
//! engine is never approximated — it is the reference.
//!
//! Engine choice is made once, at model-compaction time (see
//! [`crate::compact::CompactSvm::from_model`]): the default is `Lanes`
//! when the `simd` feature is enabled and `Scalar` otherwise, and the
//! `EXBOX_KERNEL_ENGINE` environment variable (`scalar` / `lanes`)
//! overrides the default at runtime for A/B measurement.

use crate::kernel::{dot, Kernel};

/// Rows evaluated per lane block. Four `f64`s fill an AVX2 register;
/// on narrower targets the four independent chains still hide FP add
/// latency.
pub const LANES: usize = 4;

/// Which inner-loop implementation a [`crate::compact::CompactSvm`]
/// uses for its decision function. See the [module docs](self) for the
/// determinism contract binding the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelEngine {
    /// Row-at-a-time reference implementation. Always exact; the
    /// arithmetic is shared bit-for-bit with `SvmModel::decision_value`.
    Scalar,
    /// Lane-blocked implementation over the feature-major buffer built
    /// by [`interleave_rows`]. Bit-identical to `Scalar` unless the
    /// `fast-math` feature is enabled.
    Lanes,
}

impl KernelEngine {
    /// The engine compaction selects by default: honours the
    /// `EXBOX_KERNEL_ENGINE` environment variable (`scalar` or
    /// `lanes`; unknown values are ignored), then falls back to
    /// `Lanes` iff the `simd` cargo feature is enabled.
    pub fn select() -> Self {
        match std::env::var("EXBOX_KERNEL_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("scalar") => KernelEngine::Scalar,
            Ok(v) if v.eq_ignore_ascii_case("lanes") || v.eq_ignore_ascii_case("simd") => {
                KernelEngine::Lanes
            }
            _ => {
                if cfg!(feature = "simd") {
                    KernelEngine::Lanes
                } else {
                    KernelEngine::Scalar
                }
            }
        }
    }

    /// Stable lower-case name (`"scalar"` / `"lanes"`), matching the
    /// values `EXBOX_KERNEL_ENGINE` accepts.
    pub fn name(self) -> &'static str {
        match self {
            KernelEngine::Scalar => "scalar",
            KernelEngine::Lanes => "lanes",
        }
    }
}

/// `true` when every engine is bit-identical to the scalar reference —
/// i.e. whenever the `fast-math` feature is **off**. Determinism tests
/// (and any tooling that regenerates `results/*.csv`) must check this
/// and refuse to certify a `fast-math` build.
pub const fn determinism_guaranteed() -> bool {
    !cfg!(feature = "fast-math")
}

/// Dot product with four products in flight but a **single**
/// accumulator folded in element order — bit-identical to
/// [`crate::kernel::dot`] (`LLVM` cannot re-associate float adds, so
/// only the independent multiplies vectorise). Used for the collapsed
/// linear weight vector and the scaler fast path.
#[inline]
pub fn dot_ordered(x: &[f64], z: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), z.len(), "dot_ordered dimension mismatch");
    let head = x.len() - x.len() % LANES;
    // -0.0 is the scalar `sum()` fold identity; starting from +0.0
    // would flip the sign of an all-negative-zero (or empty) sum.
    let mut acc = -0.0;
    for (xs, zs) in x[..head]
        .chunks_exact(LANES)
        .zip(z[..head].chunks_exact(LANES))
    {
        // Independent multiplies (vectorisable) …
        let p = [xs[0] * zs[0], xs[1] * zs[1], xs[2] * zs[2], xs[3] * zs[3]];
        // … folded in element order (not re-associated).
        acc += p[0];
        acc += p[1];
        acc += p[2];
        acc += p[3];
    }
    for (a, b) in x[head..].iter().zip(&z[head..]) {
        acc += a * b;
    }
    acc
}

/// Regroup a row-major support-vector buffer (`rows × dims`) into
/// feature-major lane blocks: block `b` covers rows `b*LANES ..`, and
/// `out[b*dims*LANES + k*LANES + j]` holds feature `k` of the block's
/// row `j`. The tail block is zero-padded; padded lanes are skipped at
/// accumulation time (their coefficients do not exist), so the padding
/// never contributes to a decision.
pub fn interleave_rows(sv: &[f64], dims: usize) -> Vec<f64> {
    if dims == 0 || sv.is_empty() {
        return Vec::new();
    }
    debug_assert_eq!(sv.len() % dims, 0, "ragged support-vector buffer");
    let rows = sv.len() / dims;
    let blocks = rows.div_ceil(LANES);
    let mut out = vec![0.0; blocks * dims * LANES];
    for (r, row) in sv.chunks_exact(dims).enumerate() {
        let base = (r / LANES) * dims * LANES + r % LANES;
        for (k, &v) in row.iter().enumerate() {
            out[base + k * LANES] = v;
        }
    }
    out
}

/// The RBF `exp` used by the Lanes engine. Exact by default; under the
/// `fast-math` feature it is a Schraudolph bit-twiddle approximation
/// (≲4% relative error, monotone) — see the module docs for why that
/// forfeits the determinism contract.
#[inline]
fn exp_kernel(t: f64) -> f64 {
    #[cfg(feature = "fast-math")]
    {
        // Schraudolph (1999) extended to the full f64 mantissa:
        // reinterpret ⌊2⁵²·t/ln2 + 1023·2⁵²⌋ as the bit pattern of
        // 2^(t/ln2) ≈ eᵗ, with the classic 60801-style bias correction
        // scaled up to minimise mean error. RBF arguments are ≤ 0;
        // anything under the subnormal cliff snaps to 0.
        if t < -700.0 {
            return 0.0;
        }
        const A: f64 = 4_503_599_627_370_496.0 / std::f64::consts::LN_2; // 2^52 / ln 2
        const B: f64 = 1023.0 * 4_503_599_627_370_496.0; // exponent bias << 52
        const C: f64 = 60801.0 * 4_294_967_296.0; // error-centering shift
        return f64::from_bits((A * t + (B - C)) as u64);
    }
    #[cfg(not(feature = "fast-math"))]
    t.exp()
}

/// Lanes-engine RBF decision value over an [`interleave_rows`] buffer:
/// `bias + Σᵢ cᵢ·exp(−γ‖svᵢ−x‖²)` with `‖svᵢ−x‖²` recovered from the
/// cached row norms. Bit-identical to the scalar path (see module
/// docs) unless `fast-math` is enabled.
pub fn rbf_lanes(
    lanes: &[f64],
    dims: usize,
    coef: &[f64],
    norms: &[f64],
    gamma: f64,
    x: &[f64],
    bias: f64,
) -> f64 {
    debug_assert_eq!(x.len(), dims);
    debug_assert_eq!(coef.len(), norms.len());
    let nx = dot(x, x);
    let mut f = bias;
    for (b, block) in lanes.chunks_exact(dims * LANES).enumerate() {
        let base = b * LANES;
        // -0.0: the scalar per-row `dot` folds from the float additive
        // identity, and sign-of-zero is part of the bits contract.
        let mut acc = [-0.0f64; LANES];
        for (col, &xk) in block.chunks_exact(LANES).zip(x) {
            for (a, &sv) in acc.iter_mut().zip(col) {
                *a += sv * xk;
            }
        }
        // Ordered tail: kernel transform + accumulation lane by lane,
        // in global row order — the scalar reduction order exactly.
        // (Zipping against the coefficient slice also drops the padded
        // tail lanes, whose coefficients do not exist.)
        let row = &coef[base..coef.len().min(base + LANES)];
        let nrm = &norms[base..base + row.len()];
        for ((&a, &c), &n) in acc.iter().zip(row).zip(nrm) {
            let d2 = (n + nx - 2.0 * a).max(0.0);
            f += c * exp_kernel(-gamma * d2);
        }
    }
    f
}

/// Shared lane loop for the polynomial kernel, generic over the
/// per-lane transform so [`poly_lanes`] can hoist the degree dispatch
/// out of the hot loop (each instantiation monomorphises with its
/// transform inlined — no per-lane branch, no libcall).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn poly_lanes_body(
    lanes: &[f64],
    dims: usize,
    coef: &[f64],
    gamma: f64,
    coef0: f64,
    x: &[f64],
    bias: f64,
    xf: impl Fn(f64) -> f64,
) -> f64 {
    let mut f = bias;
    let full = coef.len() / LANES;
    for (b, block) in lanes.chunks_exact(dims * LANES).enumerate() {
        let base = b * LANES;
        // -0.0: the scalar per-row `dot` folds from the float additive
        // identity, and sign-of-zero is part of the bits contract.
        let mut acc = [-0.0f64; LANES];
        for (col, &xk) in block.chunks_exact(LANES).zip(x) {
            for (a, &sv) in acc.iter_mut().zip(col) {
                *a += sv * xk;
            }
        }
        // Kernel transforms are lane-independent (vectorisable); only
        // the fold below is order-sensitive.
        let mut p = [0.0f64; LANES];
        for (pj, &a) in p.iter_mut().zip(&acc) {
            *pj = xf(gamma * a + coef0);
        }
        // Ordered fold, lane by lane in global row order — the scalar
        // reduction order exactly. Full blocks take the unrolled path;
        // the tail block zips against the coefficient remainder, which
        // also drops the zero-padded lanes (their coefficients do not
        // exist).
        if b < full {
            let c = &coef[base..base + LANES];
            f += c[0] * p[0];
            f += c[1] * p[1];
            f += c[2] * p[2];
            f += c[3] * p[3];
        } else {
            for (&pj, &c) in p.iter().zip(&coef[base..]) {
                f += c * pj;
            }
        }
    }
    f
}

/// Lanes-engine polynomial decision value:
/// `bias + Σᵢ cᵢ·(γ·svᵢ·x + c₀)^d`. Always bit-identical to the
/// scalar path — the low-degree arms below expand the exact product
/// tree the `__powidf2` square-and-multiply libcall behind
/// `f64::powi` evaluates (`b²`, then `b·b²`, `(b²)²`, …;
/// multiplication by 1 is exact and multiplication is commutative per
/// IEEE 754, so the expansion cannot change the bits — it only skips
/// the call overhead). `fast-math` does not touch this path.
#[allow(clippy::too_many_arguments)]
pub fn poly_lanes(
    lanes: &[f64],
    dims: usize,
    coef: &[f64],
    gamma: f64,
    coef0: f64,
    degree: u32,
    x: &[f64],
    bias: f64,
) -> f64 {
    debug_assert_eq!(x.len(), dims);
    match degree {
        1 => poly_lanes_body(lanes, dims, coef, gamma, coef0, x, bias, |t| t),
        2 => poly_lanes_body(lanes, dims, coef, gamma, coef0, x, bias, |t| t * t),
        3 => poly_lanes_body(lanes, dims, coef, gamma, coef0, x, bias, |t| (t * t) * t),
        4 => poly_lanes_body(lanes, dims, coef, gamma, coef0, x, bias, |t| {
            let sq = t * t;
            sq * sq
        }),
        _ => poly_lanes_body(lanes, dims, coef, gamma, coef0, x, bias, |t| {
            t.powi(degree as i32)
        }),
    }
}

/// Shared lane loop for the training-side kernel-row evaluators:
/// accumulate one query row's dot product against every block row,
/// then hand each finished dot to the per-row transform `xf(row, dot)`
/// in global row order. The per-lane accumulation is the exact scalar
/// `dot` operation sequence (see the module docs), so the transform
/// receives bit-identical inputs to a scalar `Kernel::eval_with_norms`
/// walk over the same rows.
#[inline(always)]
fn kernel_rows_body(
    lanes: &[f64],
    dims: usize,
    x: &[f64],
    out: &mut [f64],
    xf: impl Fn(usize, f64) -> f64,
) {
    debug_assert_eq!(x.len(), dims);
    for (b, block) in lanes.chunks_exact(dims * LANES).enumerate() {
        let base = b * LANES;
        if base >= out.len() {
            break;
        }
        // -0.0: the scalar per-row `dot` folds from the float additive
        // identity, and sign-of-zero is part of the bits contract.
        let mut acc = [-0.0f64; LANES];
        for (col, &xk) in block.chunks_exact(LANES).zip(x) {
            for (a, &sv) in acc.iter_mut().zip(col) {
                *a += sv * xk;
            }
        }
        // Clipping to `out` drops the zero-padded tail lanes.
        let row = &mut out[base..];
        for (j, o) in row.iter_mut().take(LANES).enumerate() {
            *o = xf(base + j, acc[j]);
        }
    }
}

/// Lanes-engine **training** kernel row: `out[r] = K(x, rowᵣ)` for
/// every row of an [`interleave_rows`] buffer, the building block of
/// the SIMD Gram construction and the on-demand kernel rows in the
/// SMO's LRU regime. For RBF, `norms[r]` must hold `‖rowᵣ‖²` and `nx`
/// must hold `‖x‖²`; other kernels ignore both.
///
/// Unlike the serving-side [`rbf_lanes`], this path **never** takes
/// the `fast-math` approximation: Gram bits feed warm-start replay and
/// the committed `results/*.csv`, so every value is computed with the
/// exact expression of [`Kernel::eval_with_norms`] and is bit-identical
/// to the scalar path on every build configuration.
pub fn kernel_rows_lanes(
    kernel: Kernel,
    lanes: &[f64],
    dims: usize,
    norms: &[f64],
    x: &[f64],
    nx: f64,
    out: &mut [f64],
) {
    match kernel {
        Kernel::Linear => kernel_rows_body(lanes, dims, x, out, |_, a| a),
        Kernel::Rbf { gamma } => {
            debug_assert!(norms.len() >= out.len(), "RBF rows need per-row norms");
            kernel_rows_body(lanes, dims, x, out, |r, a| {
                let d2 = (nx + norms[r] - 2.0 * a).max(0.0);
                (-gamma * d2).exp()
            })
        }
        Kernel::Poly {
            gamma,
            coef0,
            degree,
        } => kernel_rows_body(lanes, dims, x, out, |_, a| {
            (gamma * a + coef0).powi(degree as i32)
        }),
    }
}

/// Standardise `x` into `out` with four elements in flight:
/// `out[k] = (x[k] − mean[k]) / std[k]`. Element-wise, so chunking is
/// trivially bit-identical to the sequential loop — no feature gate
/// needed.
#[inline]
pub fn scale_lanes(x: &[f64], mean: &[f64], std: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), mean.len());
    debug_assert_eq!(x.len(), std.len());
    debug_assert_eq!(x.len(), out.len());
    let head = x.len() - x.len() % LANES;
    for (((xs, ms), ss), os) in x[..head]
        .chunks_exact(LANES)
        .zip(mean[..head].chunks_exact(LANES))
        .zip(std[..head].chunks_exact(LANES))
        .zip(out[..head].chunks_exact_mut(LANES))
    {
        os[0] = (xs[0] - ms[0]) / ss[0];
        os[1] = (xs[1] - ms[1]) / ss[1];
        os[2] = (xs[2] - ms[2]) / ss[2];
        os[3] = (xs[3] - ms[3]) / ss[3];
    }
    for k in head..x.len() {
        out[k] = (x[k] - mean[k]) / std[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s ^= s >> 12;
                s ^= s << 25;
                s ^= s >> 27;
                (s.wrapping_mul(0x2545_F491_4F6C_DD1D) % 2000) as f64 / 100.0 - 10.0
            })
            .collect()
    }

    #[test]
    fn dot_ordered_is_bit_identical_to_dot() {
        // Cover every tail length 0..LANES, including the empty slice.
        for n in 0..23 {
            let x = pseudo(0xA11CE + n as u64, n);
            let z = pseudo(0xB0B + n as u64, n);
            assert_eq!(
                dot(&x, &z).to_bits(),
                dot_ordered(&x, &z).to_bits(),
                "dot_ordered diverged at n={n}"
            );
        }
    }

    #[test]
    fn interleave_roundtrips_rows() {
        for rows in 0..10usize {
            let dims = 6;
            let sv = pseudo(7 + rows as u64, rows * dims);
            let lanes = interleave_rows(&sv, dims);
            if rows == 0 {
                assert!(lanes.is_empty());
                continue;
            }
            assert_eq!(lanes.len(), rows.div_ceil(LANES) * dims * LANES);
            for r in 0..rows {
                for k in 0..dims {
                    let got = lanes[(r / LANES) * dims * LANES + k * LANES + r % LANES];
                    assert_eq!(got.to_bits(), sv[r * dims + k].to_bits());
                }
            }
        }
    }

    #[test]
    fn rbf_lanes_matches_scalar_reduction() {
        if !determinism_guaranteed() {
            eprintln!("skipped: fast-math build forfeits bit-equality");
            return;
        }
        let dims = 6;
        // 0, partial, exact and ragged block counts.
        for rows in [0usize, 1, 3, 4, 5, 8, 11, 107] {
            let sv = pseudo(42 + rows as u64, rows * dims);
            let coef = pseudo(43 + rows as u64, rows);
            let norms: Vec<f64> = sv.chunks_exact(dims).map(|r| dot(r, r)).collect();
            let lanes = interleave_rows(&sv, dims);
            let x = pseudo(99, dims);
            let gamma = 1.0 / dims as f64;
            let nx = dot(&x, &x);
            let mut expect = 0.125f64;
            for ((row, &c), &ns) in sv.chunks_exact(dims).zip(&coef).zip(&norms) {
                let d2 = (ns + nx - 2.0 * dot(row, &x)).max(0.0);
                expect += c * (-gamma * d2).exp();
            }
            let got = rbf_lanes(&lanes, dims, &coef, &norms, gamma, &x, 0.125);
            assert_eq!(
                expect.to_bits(),
                got.to_bits(),
                "rbf diverged at rows={rows}"
            );
        }
    }

    #[test]
    fn poly_lanes_matches_scalar_reduction() {
        let dims = 6;
        for rows in [0usize, 1, 4, 6, 107] {
            let sv = pseudo(77 + rows as u64, rows * dims);
            let coef = pseudo(78 + rows as u64, rows);
            let lanes = interleave_rows(&sv, dims);
            let x = pseudo(11, dims);
            let (gamma, coef0, degree) = (1.0 / dims as f64, 1.0, 2u32);
            let mut expect = -0.5f64;
            for (row, &c) in sv.chunks_exact(dims).zip(&coef) {
                expect += c * (gamma * dot(row, &x) + coef0).powi(degree as i32);
            }
            let got = poly_lanes(&lanes, dims, &coef, gamma, coef0, degree, &x, -0.5);
            assert_eq!(
                expect.to_bits(),
                got.to_bits(),
                "poly diverged at rows={rows}"
            );
        }
    }

    #[test]
    fn kernel_rows_lanes_matches_eval_with_norms_bitwise() {
        // The training-row evaluator is exact on every build config
        // (it never takes the fast-math approximation), so this test
        // runs unconditionally — unlike the serving-side rbf test.
        let dims = 6;
        for rows in [1usize, 3, 4, 5, 8, 107] {
            let sv = pseudo(21 + rows as u64, rows * dims);
            let norms: Vec<f64> = sv.chunks_exact(dims).map(|r| dot(r, r)).collect();
            let lanes = interleave_rows(&sv, dims);
            let x = pseudo(55, dims);
            let nx = dot(&x, &x);
            for kernel in [
                Kernel::Linear,
                Kernel::rbf(1.0 / dims as f64),
                Kernel::poly(0.5, 1.0, 2),
                Kernel::poly(0.3, 0.5, 4),
            ] {
                let mut got = vec![0.0; rows];
                kernel_rows_lanes(kernel, &lanes, dims, &norms, &x, nx, &mut got);
                for (r, row) in sv.chunks_exact(dims).enumerate() {
                    let want = kernel.eval_with_norms(&x, nx, row, norms[r]);
                    assert_eq!(
                        want.to_bits(),
                        got[r].to_bits(),
                        "row {r}/{rows} diverged for {kernel:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scale_lanes_matches_sequential() {
        for n in 0..13usize {
            let x = pseudo(1 + n as u64, n);
            let mean = pseudo(2 + n as u64, n);
            let std: Vec<f64> = pseudo(3 + n as u64, n)
                .iter()
                .map(|v| v.abs() + 0.5)
                .collect();
            let mut got = vec![0.0; n];
            scale_lanes(&x, &mean, &std, &mut got);
            for k in 0..n {
                let want = (x[k] - mean[k]) / std[k];
                assert_eq!(
                    want.to_bits(),
                    got[k].to_bits(),
                    "scale diverged at {k}/{n}"
                );
            }
        }
    }

    #[cfg(feature = "fast-math")]
    #[test]
    fn fast_math_exp_is_close_but_not_exact() {
        // The approximation must stay within ~4% relative error over
        // the RBF argument range and clamp the underflow tail to zero.
        for i in 0..1000 {
            let t = -(i as f64) / 50.0; // 0 .. -20
            let approx = exp_kernel(t);
            let exact = t.exp();
            assert!(
                (approx - exact).abs() <= 0.05 * exact + 1e-12,
                "approx {approx} vs exact {exact} at t={t}"
            );
        }
        assert_eq!(exp_kernel(-1000.0), 0.0);
    }

    #[test]
    fn select_honours_feature_default() {
        // Can't mutate the environment safely in a threaded test
        // runner; just pin the feature-driven default.
        if std::env::var_os("EXBOX_KERNEL_ENGINE").is_none() {
            let want = if cfg!(feature = "simd") {
                KernelEngine::Lanes
            } else {
                KernelEngine::Scalar
            };
            assert_eq!(KernelEngine::select(), want);
        }
        assert_eq!(KernelEngine::Scalar.name(), "scalar");
        assert_eq!(KernelEngine::Lanes.name(), "lanes");
    }
}
