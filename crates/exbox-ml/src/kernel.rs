//! Kernel functions for the SVM.
//!
//! The Admittance Classifier's capacity-region boundary is generally a
//! curved surface in traffic-matrix space (see the paper's Fig. 2c),
//! so the default kernel is RBF; the linear kernel is kept for
//! ablation (and is markedly faster at prediction time — the paper's
//! §5.3 latency discussion blames "choice of SVM kernel" for its
//! ≈5 ms decision latency).

/// A positive-definite kernel `K(x, z)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `K(x, z) = x·z`
    Linear,
    /// `K(x, z) = exp(−γ‖x−z‖²)`
    Rbf {
        /// Width parameter γ (> 0). Larger γ ⇒ more local fits.
        gamma: f64,
    },
    /// `K(x, z) = (γ x·z + c₀)^d`
    Poly {
        /// Scale on the dot product (> 0).
        gamma: f64,
        /// Additive constant (≥ 0 keeps the kernel PD for integer `degree`).
        coef0: f64,
        /// Polynomial degree (≥ 1).
        degree: u32,
    },
}

impl Kernel {
    /// Convenience constructor for an RBF kernel.
    ///
    /// # Panics
    /// Panics if `gamma` is not strictly positive and finite.
    pub fn rbf(gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        Kernel::Rbf { gamma }
    }

    /// Convenience constructor for a polynomial kernel.
    ///
    /// # Panics
    /// Panics if `gamma <= 0` or `degree == 0`.
    pub fn poly(gamma: f64, coef0: f64, degree: u32) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        assert!(degree >= 1, "degree must be at least 1");
        Kernel::Poly {
            gamma,
            coef0,
            degree,
        }
    }

    /// Evaluate the kernel on two vectors.
    ///
    /// # Panics
    /// Panics (debug builds) on length mismatch via the zip below being
    /// silently truncating is avoided with an explicit assert.
    #[inline]
    pub fn eval(&self, x: &[f64], z: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), z.len(), "kernel arg dimension mismatch");
        match *self {
            Kernel::Linear => dot(x, z),
            Kernel::Rbf { gamma } => (-gamma * sq_dist(x, z)).exp(),
            Kernel::Poly {
                gamma,
                coef0,
                degree,
            } => (gamma * dot(x, z) + coef0).powi(degree as i32),
        }
    }

    /// A sensible default RBF width for `dims`-dimensional
    /// standardised features: `γ = 1/dims`, the scikit-learn "scale"
    /// heuristic for unit-variance inputs.
    pub fn rbf_default(dims: usize) -> Self {
        Kernel::rbf(1.0 / dims.max(1) as f64)
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(x: &[f64], z: &[f64]) -> f64 {
    x.iter().zip(z).map(|(a, b)| a * b).sum()
}

/// Squared Euclidean distance of two equal-length slices.
#[inline]
pub fn sq_dist(x: &[f64], z: &[f64]) -> f64 {
    x.iter()
        .zip(z)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_identity_is_one() {
        let k = Kernel::rbf(0.7);
        let x = [0.3, -1.2, 5.0];
        assert!((k.eval(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Kernel::rbf(1.0);
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[2.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn rbf_symmetry() {
        let k = Kernel::rbf(0.5);
        let a = [1.0, 2.0];
        let b = [-0.5, 4.0];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn poly_matches_manual() {
        let k = Kernel::poly(2.0, 1.0, 2);
        // (2*(1*2) + 1)^2 = 25
        assert_eq!(k.eval(&[1.0], &[2.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rbf_rejects_nonpositive_gamma() {
        let _ = Kernel::rbf(0.0);
    }

    #[test]
    fn default_gamma_scales_with_dims() {
        match Kernel::rbf_default(4) {
            Kernel::Rbf { gamma } => assert!((gamma - 0.25).abs() < 1e-12),
            _ => panic!("expected rbf"),
        }
    }

    #[test]
    fn gram_matrix_is_positive_semidefinite_diagonally_dominant_check() {
        // Weak PSD sanity: all 2x2 principal minors of the Gram matrix
        // are non-negative for the RBF kernel.
        let k = Kernel::rbf(0.3);
        let pts: Vec<Vec<f64>> = vec![vec![0.0, 0.0], vec![1.0, 2.0], vec![-3.0, 0.5]];
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let kii = k.eval(&pts[i], &pts[i]);
                let kjj = k.eval(&pts[j], &pts[j]);
                let kij = k.eval(&pts[i], &pts[j]);
                assert!(kii * kjj - kij * kij >= -1e-12);
            }
        }
    }
}
