//! Kernel functions for the SVM.
//!
//! The Admittance Classifier's capacity-region boundary is generally a
//! curved surface in traffic-matrix space (see the paper's Fig. 2c),
//! so the default kernel is RBF; the linear kernel is kept for
//! ablation (and is markedly faster at prediction time — the paper's
//! §5.3 latency discussion blames "choice of SVM kernel" for its
//! ≈5 ms decision latency).

/// A positive-definite kernel `K(x, z)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `K(x, z) = x·z`
    Linear,
    /// `K(x, z) = exp(−γ‖x−z‖²)`
    Rbf {
        /// Width parameter γ (> 0). Larger γ ⇒ more local fits.
        gamma: f64,
    },
    /// `K(x, z) = (γ x·z + c₀)^d`
    Poly {
        /// Scale on the dot product (> 0).
        gamma: f64,
        /// Additive constant (≥ 0 keeps the kernel PD for integer `degree`).
        coef0: f64,
        /// Polynomial degree (≥ 1).
        degree: u32,
    },
}

impl Kernel {
    /// Convenience constructor for an RBF kernel.
    ///
    /// # Panics
    /// Panics if `gamma` is not strictly positive and finite.
    pub fn rbf(gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        Kernel::Rbf { gamma }
    }

    /// Convenience constructor for a polynomial kernel.
    ///
    /// # Panics
    /// Panics if `gamma <= 0` or `degree == 0`.
    pub fn poly(gamma: f64, coef0: f64, degree: u32) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        assert!(degree >= 1, "degree must be at least 1");
        Kernel::Poly {
            gamma,
            coef0,
            degree,
        }
    }

    /// Evaluate the kernel on two vectors.
    ///
    /// # Panics
    /// Panics (debug builds) on length mismatch via the zip below being
    /// silently truncating is avoided with an explicit assert.
    #[inline]
    pub fn eval(&self, x: &[f64], z: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), z.len(), "kernel arg dimension mismatch");
        match *self {
            Kernel::Linear => dot(x, z),
            Kernel::Rbf { gamma } => (-gamma * sq_dist(x, z)).exp(),
            Kernel::Poly {
                gamma,
                coef0,
                degree,
            } => (gamma * dot(x, z) + coef0).powi(degree as i32),
        }
    }

    /// Evaluate the kernel given precomputed squared norms
    /// `nx = ‖x‖²`, `nz = ‖z‖²`. For RBF this replaces the per-eval
    /// difference walk with a single dot product
    /// (`‖x−z‖² = nx + nz − 2·x·z`); other kernels ignore the norms.
    /// The tiny negative residues floating-point cancellation can
    /// leave are clamped to zero, keeping `K(x, x) = 1` exact.
    #[inline]
    pub fn eval_with_norms(&self, x: &[f64], nx: f64, z: &[f64], nz: f64) -> f64 {
        match *self {
            Kernel::Rbf { gamma } => {
                let d2 = (nx + nz - 2.0 * dot(x, z)).max(0.0);
                (-gamma * d2).exp()
            }
            _ => self.eval(x, z),
        }
    }

    /// A sensible default RBF width for `dims`-dimensional
    /// standardised features: `γ = 1/dims`, the scikit-learn "scale"
    /// heuristic for unit-variance inputs.
    pub fn rbf_default(dims: usize) -> Self {
        Kernel::rbf(1.0 / dims.max(1) as f64)
    }
}

/// Build the full `n × n` Gram matrix `G[i·n + j] = K(xᵢ, xⱼ)` with
/// row blocks of the upper triangle computed in parallel on `pool`
/// and mirrored. The per-cell arithmetic is identical for every
/// thread count, so the result is byte-identical whether built
/// serially or on 8 threads — the determinism guarantee the
/// committed `results/*.csv` rely on.
pub fn gram_matrix(
    kernel: Kernel,
    data: &crate::data::Dataset,
    pool: &exbox_par::ThreadPool,
) -> Vec<f64> {
    let n = data.len();
    let norms = match kernel {
        Kernel::Rbf { .. } => data.squared_norms(),
        _ => Vec::new(),
    };
    let norm = |i: usize| norms.get(i).copied().unwrap_or(0.0);
    // Upper-triangle rows (i..n); ragged lengths balance through the
    // pool's dynamic chunking.
    let rows: Vec<Vec<f64>> = pool.parallel_map(n, |i| {
        let xi = data.x(i);
        let ni = norm(i);
        (i..n)
            .map(|j| kernel.eval_with_norms(xi, ni, data.x(j), norm(j)))
            .collect()
    });
    let mut g = vec![0.0; n * n];
    for (i, row) in rows.iter().enumerate() {
        for (off, &v) in row.iter().enumerate() {
            let j = i + off;
            g[i * n + j] = v;
            g[j * n + i] = v;
        }
    }
    g
}

/// [`gram_matrix`] with an explicit [`KernelEngine`](crate::engine::KernelEngine)
/// choice. `Scalar` is the reference
/// build above; `Lanes` walks the same upper triangle but evaluates
/// each query row against a feature-major lane block of the dataset
/// ([`crate::engine::kernel_rows_lanes`]), advancing four row dot
/// products per pass over the query. The lanes build is
/// **bit-identical** to the scalar build on every configuration — the
/// training path never takes the `fast-math` approximation — so the
/// engine choice is purely a throughput knob (benchmarked as
/// `GramBuild/{scalar,simd}`).
pub fn gram_matrix_with_engine(
    kernel: Kernel,
    data: &crate::data::Dataset,
    pool: &exbox_par::ThreadPool,
    engine: crate::engine::KernelEngine,
) -> Vec<f64> {
    use crate::engine::{interleave_rows, kernel_rows_lanes, KernelEngine, LANES};
    let n = data.len();
    let dims = data.dims();
    if engine == KernelEngine::Scalar || dims == 0 || n == 0 {
        return gram_matrix(kernel, data, pool);
    }
    let norms = match kernel {
        Kernel::Rbf { .. } => data.squared_norms(),
        _ => Vec::new(),
    };
    let norm = |i: usize| norms.get(i).copied().unwrap_or(0.0);
    let mut flat = Vec::with_capacity(n * dims);
    for i in 0..n {
        flat.extend_from_slice(data.x(i));
    }
    let lanes = interleave_rows(&flat, dims);
    // Upper-triangle rows as in `gram_matrix`; each row starts at its
    // lane-block boundary (≤ LANES−1 wasted evaluations per row) and
    // the j < i prefix is skipped at mirror time — draining it here
    // would memmove O(n) per row, an O(n²) tax the scalar build never
    // pays.
    let rows: Vec<Vec<f64>> = pool.parallel_map(n, |i| {
        let start = (i / LANES) * LANES;
        let sub = &lanes[(start / LANES) * dims * LANES..];
        let nsub = if norms.is_empty() {
            &norms[..]
        } else {
            &norms[start..]
        };
        let mut out = vec![0.0; n - start];
        kernel_rows_lanes(kernel, sub, dims, nsub, data.x(i), norm(i), &mut out);
        out
    });
    let mut g = vec![0.0; n * n];
    for (i, row) in rows.iter().enumerate() {
        let start = (i / LANES) * LANES;
        for (off, &v) in row[i - start..].iter().enumerate() {
            let j = i + off;
            g[i * n + j] = v;
            g[j * n + i] = v;
        }
    }
    g
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(x: &[f64], z: &[f64]) -> f64 {
    x.iter().zip(z).map(|(a, b)| a * b).sum()
}

/// Squared Euclidean distance of two equal-length slices.
#[inline]
pub fn sq_dist(x: &[f64], z: &[f64]) -> f64 {
    x.iter()
        .zip(z)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_identity_is_one() {
        let k = Kernel::rbf(0.7);
        let x = [0.3, -1.2, 5.0];
        assert!((k.eval(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Kernel::rbf(1.0);
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[2.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn rbf_symmetry() {
        let k = Kernel::rbf(0.5);
        let a = [1.0, 2.0];
        let b = [-0.5, 4.0];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn poly_matches_manual() {
        let k = Kernel::poly(2.0, 1.0, 2);
        // (2*(1*2) + 1)^2 = 25
        assert_eq!(k.eval(&[1.0], &[2.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rbf_rejects_nonpositive_gamma() {
        let _ = Kernel::rbf(0.0);
    }

    #[test]
    fn default_gamma_scales_with_dims() {
        match Kernel::rbf_default(4) {
            Kernel::Rbf { gamma } => assert!((gamma - 0.25).abs() < 1e-12),
            _ => panic!("expected rbf"),
        }
    }

    #[test]
    fn gram_matrix_is_thread_count_invariant() {
        use crate::data::{Dataset, Label};
        let mut ds = Dataset::new(3);
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for i in 0..97 {
            let x: Vec<f64> = (0..3).map(|_| (next() % 1000) as f64 / 100.0).collect();
            let y = if i % 2 == 0 { Label::Pos } else { Label::Neg };
            ds.push(x, y);
        }
        for kernel in [Kernel::Linear, Kernel::rbf(0.7), Kernel::poly(0.5, 1.0, 3)] {
            let grams: Vec<Vec<f64>> = [1usize, 2, 8]
                .iter()
                .map(|&t| gram_matrix(kernel, &ds, &exbox_par::ThreadPool::new(t)))
                .collect();
            for g in &grams[1..] {
                assert_eq!(grams[0].len(), g.len());
                for (a, b) in grams[0].iter().zip(g) {
                    assert_eq!(a.to_bits(), b.to_bits(), "gram differs across threads");
                }
            }
        }
    }

    #[test]
    fn gram_matrix_engines_agree_bitwise() {
        use crate::data::{Dataset, Label};
        use crate::engine::KernelEngine;
        let mut state = 0x6EA4u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        // Ragged and exact lane-block sample counts.
        for n in [1usize, 4, 5, 31, 64] {
            let mut ds = Dataset::new(5);
            for i in 0..n {
                let x: Vec<f64> = (0..5).map(|_| (next() % 1000) as f64 / 50.0).collect();
                let y = if i % 2 == 0 { Label::Pos } else { Label::Neg };
                ds.push(x, y);
            }
            let pool = exbox_par::ThreadPool::new(2);
            for kernel in [
                Kernel::Linear,
                Kernel::rbf(0.4),
                Kernel::poly(0.5, 1.0, 2),
                Kernel::poly(0.2, 0.0, 3),
            ] {
                let scalar = gram_matrix_with_engine(kernel, &ds, &pool, KernelEngine::Scalar);
                let lanes = gram_matrix_with_engine(kernel, &ds, &pool, KernelEngine::Lanes);
                assert_eq!(scalar.len(), lanes.len());
                for (k, (a, b)) in scalar.iter().zip(&lanes).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "engines diverged at cell {k} for {kernel:?} (n={n})"
                    );
                }
            }
        }
    }

    #[test]
    fn gram_matrix_matches_direct_eval() {
        use crate::data::{Dataset, Label};
        let mut ds = Dataset::new(2);
        ds.push(vec![0.0, 1.0], Label::Pos);
        ds.push(vec![2.0, -1.0], Label::Neg);
        ds.push(vec![-3.0, 0.5], Label::Pos);
        let k = Kernel::rbf(0.4);
        let g = gram_matrix(k, &ds, &exbox_par::ThreadPool::serial());
        for i in 0..3 {
            for j in 0..3 {
                let direct = k.eval(ds.x(i), ds.x(j));
                assert!(
                    (g[i * 3 + j] - direct).abs() < 1e-12,
                    "gram[{i},{j}] = {} vs direct {direct}",
                    g[i * 3 + j]
                );
            }
        }
    }

    #[test]
    fn gram_matrix_is_positive_semidefinite_diagonally_dominant_check() {
        // Weak PSD sanity: all 2x2 principal minors of the Gram matrix
        // are non-negative for the RBF kernel.
        let k = Kernel::rbf(0.3);
        let pts: Vec<Vec<f64>> = vec![vec![0.0, 0.0], vec![1.0, 2.0], vec![-3.0, 0.5]];
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let kii = k.eval(&pts[i], &pts[i]);
                let kjj = k.eval(&pts[j], &pts[j]);
                let kij = k.eval(&pts[i], &pts[j]);
                assert!(kii * kjj - kij * kij >= -1e-12);
            }
        }
    }
}
