//! # exbox-ml — machine-learning substrate for ExBox
//!
//! ExBox's Admittance Classifier (paper §3.1) is a binary classifier
//! over traffic-matrix feature vectors. The paper uses an off-the-shelf
//! SVM with batch online updates; this crate provides that substrate
//! from scratch:
//!
//! * [`svm`] — soft-margin Support Vector Machine trained with the
//!   Sequential Minimal Optimization (SMO) algorithm, with linear,
//!   polynomial and RBF kernels ([`kernel`]).
//! * [`compact`] — a flattened, pruned serving form of a trained SVM
//!   ([`CompactSvm`]) for the per-arrival admission fast path.
//! * [`engine`] — the kernel evaluation engines behind [`CompactSvm`]:
//!   a scalar reference and a lane-blocked SIMD form (`simd` feature)
//!   that is bit-identical to it — see that module's determinism
//!   contract.
//! * [`linear`] — a fast primal solver (Pegasos-style SGD) for linear
//!   SVMs, used when training sets grow large.
//! * [`logreg`] — logistic regression, provided because the paper notes
//!   "the actual learning technique is not central to the concept of
//!   ExBox and can be implemented as a separate module".
//! * [`scale`] — feature standardisation (zero mean / unit variance)
//!   and min-max scaling.
//! * [`cv`] — n-fold cross-validation, used by the bootstrap phase to
//!   decide when the classifier is accurate enough to go online.
//! * [`metrics`] — precision / recall / accuracy / F1, the metrics the
//!   paper evaluates (§5.3 "Macro results").
//! * [`persist`] — text-format save/load of trained models, enabling
//!   the paper's §4.4 model sharing across networks.
//! * [`data`] — dataset container with deterministic shuffling and
//!   stratified splitting.
//!
//! All classifiers implement the [`Classifier`] trait so the
//! Admittance Classifier in `exbox-core` can swap them freely.
//!
//! ## Example
//!
//! ```
//! use exbox_ml::prelude::*;
//!
//! // Learn the boundary x0 + x1 <= 6 (a toy capacity region).
//! let mut ds = Dataset::new(2);
//! for a in 0..8 {
//!     for b in 0..8 {
//!         let y = if a + b <= 6 { Label::Pos } else { Label::Neg };
//!         ds.push(vec![a as f64, b as f64], y);
//!     }
//! }
//! let model = SvmTrainer::new(Kernel::rbf(0.5)).c(10.0).train(&ds);
//! assert_eq!(model.predict(&[1.0, 1.0]), Label::Pos);
//! assert_eq!(model.predict(&[7.0, 7.0]), Label::Neg);
//! ```

pub mod compact;
pub mod cv;
pub mod data;
pub mod engine;
pub mod kernel;
pub mod linear;
pub mod logreg;
pub mod metrics;
pub mod persist;
pub mod scale;
pub mod svm;

pub use compact::CompactSvm;
pub use cv::{cross_validate, cross_validate_pooled, CvReport};
pub use data::{Dataset, Label};
pub use engine::{determinism_guaranteed, KernelEngine};
pub use kernel::{gram_matrix, gram_matrix_with_engine, Kernel};
pub use linear::{LinearSvm, LinearSvmTrainer};
pub use logreg::{LogisticRegression, LogisticRegressionTrainer};
pub use metrics::{BinaryMetrics, ConfusionMatrix};
pub use scale::{MinMaxScaler, StandardScaler};
pub use svm::{PersistentKernelCache, SvmFit, SvmModel, SvmTrainer, WarmStart};

/// A trained binary classifier over dense `f64` feature vectors.
///
/// Implementations must be deterministic: the same model and input
/// always produce the same output. The decision value's sign gives the
/// predicted [`Label`]; its magnitude is a confidence proxy — for SVMs
/// it is proportional to the distance from the separating hyperplane,
/// which ExBox uses for network selection (paper §4.1: pick the network
/// where the test point lies furthest *inside* the capacity region).
pub trait Classifier {
    /// Signed decision value; positive means [`Label::Pos`].
    fn decision_value(&self, x: &[f64]) -> f64;

    /// Predicted label: the sign of [`Classifier::decision_value`].
    /// A decision value of exactly zero is resolved as [`Label::Pos`],
    /// matching the convention `sign(0) = +1` used by libsvm.
    fn predict(&self, x: &[f64]) -> Label {
        if self.decision_value(x) >= 0.0 {
            Label::Pos
        } else {
            Label::Neg
        }
    }

    /// Number of features the classifier expects.
    fn dims(&self) -> usize;
}

/// A training algorithm producing a [`Classifier`].
///
/// Trainers carry hyper-parameters; calling [`TrainClassifier::fit`]
/// consumes a dataset and returns a trained model. Training must be
/// deterministic given the trainer's configured seed.
pub trait TrainClassifier {
    /// The model type this trainer produces.
    type Model: Classifier;

    /// Train on the given dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty or contains inconsistent
    /// dimensionality (enforced by [`Dataset::push`]).
    fn fit(&self, data: &Dataset) -> Self::Model;
}

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::compact::CompactSvm;
    pub use crate::cv::{cross_validate, cross_validate_pooled, CvReport};
    pub use crate::data::{Dataset, Label};
    pub use crate::engine::{determinism_guaranteed, KernelEngine};
    pub use crate::kernel::Kernel;
    pub use crate::linear::{LinearSvm, LinearSvmTrainer};
    pub use crate::logreg::{LogisticRegression, LogisticRegressionTrainer};
    pub use crate::metrics::{BinaryMetrics, ConfusionMatrix};
    pub use crate::scale::{MinMaxScaler, StandardScaler};
    pub use crate::svm::{PersistentKernelCache, SvmFit, SvmModel, SvmTrainer, WarmStart};
    pub use crate::{Classifier, TrainClassifier};
}
