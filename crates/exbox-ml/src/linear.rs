//! Primal linear SVM trained with Pegasos-style stochastic
//! sub-gradient descent.
//!
//! The SMO solver in [`crate::svm`] is exact but O(n²)-ish per
//! retrain; the paper's §5.3 latency study observes exactly this
//! blow-up ("training latency increases to more than 2 seconds when
//! 1000 samples are considered") and cites primal optimisation
//! (Chapelle 2007, their ref. 36) as the fix. This module is that
//! fix: a primal solver whose cost is linear in the number of samples,
//! usable directly or via a quadratic feature map for curved
//! capacity-region boundaries.

use rand_free::XorShift64;

use crate::data::Dataset;
use crate::{Classifier, TrainClassifier};

/// Minimal deterministic RNG so this crate stays dependency-free in
/// its core path (tests use `rand`).
mod rand_free {
    /// xorshift64* PRNG.
    #[derive(Debug, Clone)]
    pub struct XorShift64 {
        state: u64,
    }

    impl XorShift64 {
        /// Seeded constructor; a zero seed is remapped to a fixed
        /// non-zero constant because xorshift has an all-zero fixed
        /// point.
        pub fn new(seed: u64) -> Self {
            XorShift64 {
                state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform index in `0..n`.
        ///
        /// # Panics
        /// Panics if `n == 0`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample from empty range");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Trainer for [`LinearSvm`] using the Pegasos algorithm
/// (Shalev-Shwartz et al.): minimise
/// `λ/2 ‖w‖² + (1/n) Σ max(0, 1 − yᵢ(w·xᵢ + b))`.
#[derive(Debug, Clone)]
pub struct LinearSvmTrainer {
    lambda: f64,
    epochs: u32,
    seed: u64,
}

impl Default for LinearSvmTrainer {
    fn default() -> Self {
        Self::new()
    }
}

impl LinearSvmTrainer {
    /// Defaults: `λ = 1e-3`, 40 epochs.
    pub fn new() -> Self {
        LinearSvmTrainer {
            lambda: 1e-3,
            epochs: 40,
            seed: 0x11_EA,
        }
    }

    /// Regularisation strength λ (> 0); roughly `1/(n·C)` relative to
    /// the dual formulation's `C`.
    ///
    /// # Panics
    /// Panics unless `lambda` is positive and finite.
    pub fn lambda(mut self, lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "lambda must be positive"
        );
        self.lambda = lambda;
        self
    }

    /// Number of passes over the data (each pass takes `n` stochastic
    /// steps).
    pub fn epochs(mut self, epochs: u32) -> Self {
        assert!(epochs > 0, "epochs must be positive");
        self.epochs = epochs;
        self
    }

    /// Seed for the stochastic sampling stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Train a model — inherent alias for [`TrainClassifier::fit`].
    pub fn train(&self, data: &Dataset) -> LinearSvm {
        self.fit(data)
    }
}

impl TrainClassifier for LinearSvmTrainer {
    type Model = LinearSvm;

    fn fit(&self, data: &Dataset) -> LinearSvm {
        assert!(!data.is_empty(), "cannot train on empty dataset");
        let n = data.len();
        let dims = data.dims();

        if !data.has_both_classes() {
            return LinearSvm {
                w: vec![0.0; dims],
                b: data.y(0).signum(),
            };
        }

        let mut rng = XorShift64::new(self.seed);
        // The bias is folded into the weight vector as an augmented
        // constant feature. This lightly regularises it, which keeps
        // the 1/(λt) early steps from flinging the intercept around —
        // the standard Pegasos stabilisation.
        let mut w = vec![0.0f64; dims + 1];
        let total_steps = self.epochs as u64 * n as u64;
        for t in 1..=total_steps {
            let i = rng.index(n);
            let x = data.x(i);
            let y = data.y(i).signum();
            let eta = 1.0 / (self.lambda * t as f64);
            let margin = y * (crate::kernel::dot(&w[..dims], x) + w[dims]);
            for wk in w.iter_mut() {
                *wk *= 1.0 - eta * self.lambda;
            }
            if margin < 1.0 {
                for (wk, &xk) in w.iter_mut().zip(x) {
                    *wk += eta * y * xk;
                }
                w[dims] += eta * y;
            }
        }
        let b = w.pop().expect("augmented bias present");
        LinearSvm { w, b }
    }
}

/// A trained linear SVM: explicit weight vector and bias.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    w: Vec<f64>,
    b: f64,
}

impl LinearSvm {
    /// The weight vector `w`.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// The bias `b`.
    pub fn bias(&self) -> f64 {
        self.b
    }

    /// Reassemble a model from persisted weights (the
    /// checkpoint/restore path). Decisions are bit-identical to the
    /// model the parts came from.
    ///
    /// # Panics
    /// Panics on empty weights or non-finite parameters.
    pub fn from_parts(w: Vec<f64>, b: f64) -> Self {
        assert!(!w.is_empty(), "weights must be non-empty");
        assert!(
            w.iter().all(|v| v.is_finite()) && b.is_finite(),
            "model parameters must be finite"
        );
        LinearSvm { w, b }
    }
}

impl Classifier for LinearSvm {
    fn decision_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.w.len(), "input dimensionality mismatch");
        crate::kernel::dot(&self.w, x) + self.b
    }

    fn dims(&self) -> usize {
        self.w.len()
    }
}

/// Expand a feature vector with all degree-2 monomials:
/// `[x…, xᵢ·xⱼ for i ≤ j]`. Composing this with [`LinearSvmTrainer`]
/// gives a fast approximation of a polynomial-kernel SVM, suitable for
/// the curved ExCR boundaries at large sample counts.
pub fn quadratic_features(x: &[f64]) -> Vec<f64> {
    let d = x.len();
    let mut out = Vec::with_capacity(d + d * (d + 1) / 2);
    out.extend_from_slice(x);
    for i in 0..d {
        for j in i..d {
            out.push(x[i] * x[j]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Label;

    fn split_clusters() -> Dataset {
        let mut ds = Dataset::new(2);
        for i in 0..25 {
            let t = i as f64 * 0.08;
            ds.push(vec![-2.0 - t, t], Label::Pos);
            ds.push(vec![2.0 + t, -t], Label::Neg);
        }
        ds
    }

    #[test]
    fn separates_clusters() {
        let model = LinearSvmTrainer::new().epochs(80).train(&split_clusters());
        for (x, y) in split_clusters().iter() {
            assert_eq!(model.predict(x), y, "misclassified {x:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = split_clusters();
        let a = LinearSvmTrainer::new().seed(3).train(&ds);
        let b = LinearSvmTrainer::new().seed(3).train(&ds);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn one_class_returns_constant() {
        let mut ds = Dataset::new(2);
        ds.push(vec![1.0, 1.0], Label::Neg);
        let model = LinearSvmTrainer::new().train(&ds);
        assert_eq!(model.predict(&[0.0, 0.0]), Label::Neg);
        assert_eq!(model.predict(&[9.0, 9.0]), Label::Neg);
    }

    #[test]
    fn quadratic_features_shape_and_values() {
        let q = quadratic_features(&[2.0, 3.0]);
        assert_eq!(q, vec![2.0, 3.0, 4.0, 6.0, 9.0]);
    }

    #[test]
    fn quadratic_map_solves_circular_boundary() {
        // Inside the circle of radius 2 => Pos. Not linearly separable
        // in raw coordinates, separable after the quadratic map.
        let mut ds = Dataset::new(5);
        for i in -4i32..=4 {
            for j in -4i32..=4 {
                let (x, y) = (i as f64, j as f64);
                let label = if x * x + y * y <= 4.0 {
                    Label::Pos
                } else {
                    Label::Neg
                };
                ds.push(quadratic_features(&[x, y]), label);
            }
        }
        let model = LinearSvmTrainer::new().lambda(1e-4).epochs(300).train(&ds);
        let mut correct = 0;
        for (x, y) in ds.iter() {
            if model.predict(x) == y {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn xorshift_not_constant() {
        let mut r = XorShift64::new(5);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }
}
