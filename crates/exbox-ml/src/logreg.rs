//! Logistic regression — the "alternative learning module".
//!
//! The paper (§3) stresses that "the actual learning technique is not
//! central to the concept of ExBox and can be implemented as a
//! separate module that can be refined as needed". This module makes
//! that claim testable: a second classifier family behind the same
//! [`Classifier`] trait, used by the `ablation_classifier` benchmark
//! to compare against the SVM.

use crate::data::Dataset;
use crate::{Classifier, TrainClassifier};

/// Trainer for L2-regularised logistic regression via full-batch
/// gradient descent. The loss is
/// `(1/n) Σ log(1 + exp(−yᵢ(w·xᵢ + b))) + λ/2 ‖w‖²`.
#[derive(Debug, Clone)]
pub struct LogisticRegressionTrainer {
    lambda: f64,
    lr: f64,
    epochs: u32,
}

impl Default for LogisticRegressionTrainer {
    fn default() -> Self {
        Self::new()
    }
}

impl LogisticRegressionTrainer {
    /// Defaults: `λ = 1e-4`, learning rate 0.5, 300 epochs.
    pub fn new() -> Self {
        LogisticRegressionTrainer {
            lambda: 1e-4,
            lr: 0.5,
            epochs: 300,
        }
    }

    /// L2 regularisation strength (≥ 0).
    pub fn lambda(mut self, lambda: f64) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite(), "lambda must be >= 0");
        self.lambda = lambda;
        self
    }

    /// Gradient-descent step size (> 0).
    pub fn learning_rate(mut self, lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
        self
    }

    /// Number of full-batch gradient steps.
    pub fn epochs(mut self, epochs: u32) -> Self {
        assert!(epochs > 0, "epochs must be positive");
        self.epochs = epochs;
        self
    }

    /// Train a model — inherent alias for [`TrainClassifier::fit`].
    pub fn train(&self, data: &Dataset) -> LogisticRegression {
        self.fit(data)
    }
}

impl TrainClassifier for LogisticRegressionTrainer {
    type Model = LogisticRegression;

    fn fit(&self, data: &Dataset) -> LogisticRegression {
        assert!(!data.is_empty(), "cannot train on empty dataset");
        let n = data.len() as f64;
        let dims = data.dims();
        if !data.has_both_classes() {
            return LogisticRegression {
                w: vec![0.0; dims],
                b: data.y(0).signum(),
            };
        }
        let mut w = vec![0.0f64; dims];
        let mut b = 0.0f64;
        for _ in 0..self.epochs {
            let mut gw = vec![0.0f64; dims];
            let mut gb = 0.0f64;
            for (x, y) in data.iter() {
                let y = y.signum();
                let z = y * (crate::kernel::dot(&w, x) + b);
                // d/dz log(1+e^{-z}) = -sigmoid(-z)
                let s = -sigmoid(-z) * y;
                for (g, &xk) in gw.iter_mut().zip(x) {
                    *g += s * xk;
                }
                gb += s;
            }
            for k in 0..dims {
                w[k] -= self.lr * (gw[k] / n + self.lambda * w[k]);
            }
            b -= self.lr * gb / n;
        }
        LogisticRegression { w, b }
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    // Numerically stable in both tails.
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A trained logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    w: Vec<f64>,
    b: f64,
}

impl LogisticRegression {
    /// Estimated probability that `x` is [`crate::Label::Pos`].
    pub fn probability(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision_value(x))
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.b
    }

    /// Reassemble a model from persisted weights (the
    /// checkpoint/restore path). Decisions are bit-identical to the
    /// model the parts came from.
    ///
    /// # Panics
    /// Panics on empty weights or non-finite parameters.
    pub fn from_parts(w: Vec<f64>, b: f64) -> Self {
        assert!(!w.is_empty(), "weights must be non-empty");
        assert!(
            w.iter().all(|v| v.is_finite()) && b.is_finite(),
            "model parameters must be finite"
        );
        LogisticRegression { w, b }
    }
}

impl Classifier for LogisticRegression {
    fn decision_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.w.len(), "input dimensionality mismatch");
        crate::kernel::dot(&self.w, x) + self.b
    }

    fn dims(&self) -> usize {
        self.w.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Label;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(1);
        for i in 0..10 {
            ds.push(vec![-1.0 - 0.2 * i as f64], Label::Pos);
            ds.push(vec![1.0 + 0.2 * i as f64], Label::Neg);
        }
        ds
    }

    #[test]
    fn separates_1d_clusters() {
        let model = LogisticRegressionTrainer::new().train(&toy());
        assert_eq!(model.predict(&[-2.0]), Label::Pos);
        assert_eq!(model.predict(&[2.0]), Label::Neg);
    }

    #[test]
    fn probabilities_are_calibrated_ordering() {
        let model = LogisticRegressionTrainer::new().train(&toy());
        let p_far_pos = model.probability(&[-3.0]);
        let p_mid = model.probability(&[0.0]);
        let p_far_neg = model.probability(&[3.0]);
        assert!(p_far_pos > p_mid && p_mid > p_far_neg);
        assert!((0.0..=1.0).contains(&p_far_pos));
        assert!((0.0..=1.0).contains(&p_far_neg));
        // Mid-point between symmetric clusters should be near 0.5.
        assert!((p_mid - 0.5).abs() < 0.2);
    }

    #[test]
    fn sigmoid_stability() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn one_class_constant_model() {
        let mut ds = Dataset::new(2);
        ds.push(vec![0.0, 0.0], Label::Pos);
        let m = LogisticRegressionTrainer::new().train(&ds);
        assert_eq!(m.predict(&[5.0, -5.0]), Label::Pos);
    }

    #[test]
    fn regularisation_shrinks_weights() {
        let strong = LogisticRegressionTrainer::new().lambda(1.0).train(&toy());
        let weak = LogisticRegressionTrainer::new().lambda(0.0).train(&toy());
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(strong.weights()) < norm(weak.weights()));
    }
}
