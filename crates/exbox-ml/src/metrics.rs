//! Binary-classification metrics.
//!
//! The paper evaluates admission control with three metrics (§5.3):
//!
//! * **precision** — correctly admitted / all admitted ("few mistakes
//!   in preserving network QoE"),
//! * **recall** — correctly admitted / all that *could* have been
//!   admitted (catches overly conservative controllers),
//! * **accuracy** — fraction of all decisions (admit *or* reject) that
//!   were correct.
//!
//! In this mapping, "admit" is the positive class, so a false positive
//! is a flow that was admitted but degraded someone's QoE.

use crate::data::Label;

/// Counts of the four outcomes of binary decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Admitted and genuinely admissible.
    pub tp: u64,
    /// Admitted but inadmissible (QoE damage — what precision tracks).
    pub fp: u64,
    /// Rejected and genuinely inadmissible.
    pub tn: u64,
    /// Rejected but admissible (lost service — what recall tracks).
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `(predicted, actual)` decision.
    pub fn record(&mut self, predicted: Label, actual: Label) {
        match (predicted, actual) {
            (Label::Pos, Label::Pos) => self.tp += 1,
            (Label::Pos, Label::Neg) => self.fp += 1,
            (Label::Neg, Label::Neg) => self.tn += 1,
            (Label::Neg, Label::Pos) => self.fn_ += 1,
        }
    }

    /// Merge counts from another matrix.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total number of recorded decisions.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Derive the scalar metrics. Undefined ratios (zero denominators)
    /// are reported as 1.0 — a controller that admitted nothing made
    /// no precision mistakes, which matches the paper's framing of
    /// precision as "mistakes in preserving the network QoE".
    pub fn metrics(&self) -> BinaryMetrics {
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        let precision = ratio(self.tp, self.tp + self.fp);
        let recall = ratio(self.tp, self.tp + self.fn_);
        let accuracy = ratio(self.tp + self.tn, self.total());
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        BinaryMetrics {
            precision,
            recall,
            accuracy,
            f1,
        }
    }
}

/// Scalar summary of a [`ConfusionMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryMetrics {
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// (TP + TN) / total.
    pub accuracy: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl std::fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "precision={:.3} recall={:.3} accuracy={:.3} f1={:.3}",
            self.precision, self.recall, self.accuracy, self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let mut cm = ConfusionMatrix::new();
        for _ in 0..5 {
            cm.record(Label::Pos, Label::Pos);
            cm.record(Label::Neg, Label::Neg);
        }
        let m = cm.metrics();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn known_counts() {
        let cm = ConfusionMatrix {
            tp: 8,
            fp: 2,
            tn: 6,
            fn_: 4,
        };
        let m = cm.metrics();
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.recall - 8.0 / 12.0).abs() < 1e-12);
        assert!((m.accuracy - 14.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn conservative_controller_has_high_precision_low_recall() {
        // Rejects everything except one obviously safe flow.
        let cm = ConfusionMatrix {
            tp: 1,
            fp: 0,
            tn: 5,
            fn_: 9,
        };
        let m = cm.metrics();
        assert_eq!(m.precision, 1.0);
        assert!(m.recall < 0.2);
    }

    #[test]
    fn empty_matrix_is_vacuously_perfect() {
        let m = ConfusionMatrix::new().metrics();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.tp, 2);
        assert_eq!(a.fp, 4);
        assert_eq!(a.tn, 6);
        assert_eq!(a.fn_, 8);
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn display_formats() {
        let m = ConfusionMatrix {
            tp: 1,
            fp: 1,
            tn: 1,
            fn_: 1,
        }
        .metrics();
        let s = format!("{m}");
        assert!(s.contains("precision=0.500"));
    }
}
