//! Model persistence: save/load trained models as a plain text format.
//!
//! The paper's §4.4 proposes sharing fitted models "over different
//! networks of similar characteristics. This will reduce the training
//! effort substantially". That requires models to leave the process.
//! The format is deliberately simple — versioned header, one
//! whitespace-separated record per line — so operators can inspect and
//! diff models, and no serialisation dependency is needed.
//!
//! ```text
//! exbox-svm v1
//! kernel rbf 0.25
//! dims 6
//! bias -0.37218
//! sv <coef> <x0> <x1> ... <x5>
//! ...
//! ```

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::kernel::Kernel;
use crate::svm::SvmModel;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serialise a kernel as `name params…`.
fn kernel_to_line(k: &Kernel) -> String {
    match k {
        Kernel::Linear => "linear".to_string(),
        Kernel::Rbf { gamma } => format!("rbf {gamma}"),
        Kernel::Poly {
            gamma,
            coef0,
            degree,
        } => format!("poly {gamma} {coef0} {degree}"),
    }
}

/// Parse a kernel line produced by [`kernel_to_line`].
fn kernel_from_parts(parts: &[&str]) -> io::Result<Kernel> {
    match parts {
        ["linear"] => Ok(Kernel::Linear),
        ["rbf", g] => {
            let gamma: f64 = g.parse().map_err(|_| bad("bad rbf gamma"))?;
            if !(gamma > 0.0 && gamma.is_finite()) {
                return Err(bad("rbf gamma out of range"));
            }
            Ok(Kernel::Rbf { gamma })
        }
        ["poly", g, c0, d] => {
            let gamma: f64 = g.parse().map_err(|_| bad("bad poly gamma"))?;
            let coef0: f64 = c0.parse().map_err(|_| bad("bad poly coef0"))?;
            let degree: u32 = d.parse().map_err(|_| bad("bad poly degree"))?;
            if !(gamma > 0.0 && gamma.is_finite()) || degree == 0 {
                return Err(bad("poly params out of range"));
            }
            Ok(Kernel::Poly {
                gamma,
                coef0,
                degree,
            })
        }
        _ => Err(bad("unknown kernel line")),
    }
}

impl SvmModel {
    /// Write the model in the text format.
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    pub fn save<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(out, "exbox-svm v1")?;
        writeln!(out, "kernel {}", kernel_to_line(&self.kernel()))?;
        writeln!(out, "dims {}", crate::Classifier::dims(self))?;
        writeln!(out, "bias {}", self.bias())?;
        for (coef, sv) in self.support_iter() {
            write!(out, "sv {coef}")?;
            for v in sv {
                write!(out, " {v}")?;
            }
            writeln!(out)?;
        }
        Ok(())
    }

    /// Read a model written by [`SvmModel::save`].
    ///
    /// # Errors
    /// `InvalidData` on malformed input; I/O errors from the reader.
    pub fn load<R: Read>(input: R) -> io::Result<SvmModel> {
        let mut lines = BufReader::new(input).lines();
        let header = lines.next().ok_or_else(|| bad("empty model file"))??;
        if header.trim() != "exbox-svm v1" {
            return Err(bad(format!("unsupported header {header:?}")));
        }

        let mut kernel = None;
        let mut dims = None;
        let mut bias = None;
        let mut support = Vec::new();
        let mut coef = Vec::new();

        for line in lines {
            let line = line?;
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                [] => continue,
                ["kernel", rest @ ..] => {
                    if kernel.is_some() {
                        return Err(bad("duplicate kernel line"));
                    }
                    kernel = Some(kernel_from_parts(rest)?);
                }
                ["dims", d] => {
                    if dims.is_some() {
                        return Err(bad("duplicate dims line"));
                    }
                    dims = Some(d.parse::<usize>().map_err(|_| bad("bad dims"))?);
                }
                ["bias", b] => {
                    if bias.is_some() {
                        return Err(bad("duplicate bias line"));
                    }
                    bias = Some(b.parse::<f64>().map_err(|_| bad("bad bias"))?);
                }
                ["sv", rest @ ..] => {
                    if rest.is_empty() {
                        return Err(bad("empty sv line"));
                    }
                    let c: f64 = rest[0].parse().map_err(|_| bad("bad sv coef"))?;
                    let x: Result<Vec<f64>, _> = rest[1..].iter().map(|v| v.parse()).collect();
                    let x = x.map_err(|_| bad("bad sv coordinate"))?;
                    coef.push(c);
                    support.push(x);
                }
                _ => return Err(bad(format!("unknown line {line:?}"))),
            }
        }

        let kernel = kernel.ok_or_else(|| bad("missing kernel"))?;
        let dims = dims.ok_or_else(|| bad("missing dims"))?;
        let bias = bias.ok_or_else(|| bad("missing bias"))?;
        // The sv/dims lines may arrive in any order, so every row is
        // validated against the final dims here rather than during the
        // line loop (where a row preceding `dims` would slip through).
        if support.iter().any(|x| x.len() != dims) {
            return Err(bad("sv dimensionality mismatch"));
        }
        if !support.iter().all(|x| x.iter().all(|v| v.is_finite()))
            || !coef.iter().all(|c| c.is_finite())
            || !bias.is_finite()
        {
            return Err(bad("non-finite model values"));
        }
        Ok(SvmModel::from_parts(kernel, support, coef, bias, dims))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, Label};
    use crate::svm::SvmTrainer;
    use crate::Classifier;

    fn trained() -> SvmModel {
        let mut ds = Dataset::new(2);
        for i in 0..10 {
            ds.push(vec![-2.0 - 0.1 * i as f64, 0.5], Label::Pos);
            ds.push(vec![2.0 + 0.1 * i as f64, -0.5], Label::Neg);
        }
        SvmTrainer::new(Kernel::rbf(0.7)).c(5.0).train(&ds)
    }

    #[test]
    fn roundtrip_preserves_decisions() {
        let model = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = SvmModel::load(&buf[..]).unwrap();
        assert_eq!(loaded.num_support_vectors(), model.num_support_vectors());
        for x in [[-2.5, 0.0], [2.5, 0.0], [0.1, 0.2], [-0.1, -0.2]] {
            let a = model.decision_value(&x);
            let b = loaded.decision_value(&x);
            assert!((a - b).abs() < 1e-9, "decision diverged: {a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_all_kernels() {
        let mut ds = Dataset::new(1);
        for i in 0..6 {
            ds.push(vec![-1.0 - i as f64 * 0.2], Label::Pos);
            ds.push(vec![1.0 + i as f64 * 0.2], Label::Neg);
        }
        for kernel in [Kernel::Linear, Kernel::rbf(1.3), Kernel::poly(0.5, 1.0, 3)] {
            let model = SvmTrainer::new(kernel).train(&ds);
            let mut buf = Vec::new();
            model.save(&mut buf).unwrap();
            let loaded = SvmModel::load(&buf[..]).unwrap();
            assert_eq!(loaded.kernel(), kernel);
            assert!((loaded.decision_value(&[0.3]) - model.decision_value(&[0.3])).abs() < 1e-9);
        }
    }

    #[test]
    fn format_is_human_readable() {
        let mut buf = Vec::new();
        trained().save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("exbox-svm v1\n"));
        assert!(text.contains("kernel rbf 0.7"));
        assert!(text.contains("dims 2"));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(SvmModel::load(&b"not-a-model\n"[..]).is_err());
        assert!(SvmModel::load(&b""[..]).is_err());
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let text = "exbox-svm v1\nkernel linear\ndims 2\nbias 0\nsv 1.0 0.5\n";
        assert!(SvmModel::load(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_missing_fields() {
        let text = "exbox-svm v1\ndims 2\nbias 0\n";
        assert!(SvmModel::load(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_garbage_numbers() {
        let text = "exbox-svm v1\nkernel rbf nan\ndims 1\nbias 0\n";
        assert!(SvmModel::load(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_non_finite_coefficients() {
        // A NaN/inf *coefficient* must be rejected just like a NaN
        // support coordinate or bias.
        for c in ["NaN", "inf", "-inf"] {
            let text = format!("exbox-svm v1\nkernel linear\ndims 1\nbias 0\nsv {c} 1.0\n");
            let err = SvmModel::load(text.as_bytes()).expect_err("coef must be finite");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
        // Non-finite support coordinates and bias stay rejected too.
        let text = "exbox-svm v1\nkernel linear\ndims 1\nbias 0\nsv 1.0 inf\n";
        assert!(SvmModel::load(text.as_bytes()).is_err());
        let text = "exbox-svm v1\nkernel linear\ndims 1\nbias NaN\nsv 1.0 1.0\n";
        assert!(SvmModel::load(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_sv_before_dims_with_wrong_width() {
        // The sv line precedes dims, so the old in-loop check never
        // ran; the row must still be validated against dims.
        let text = "exbox-svm v1\nkernel linear\nsv 1.0 0.5\ndims 2\nbias 0\n";
        let err = SvmModel::load(text.as_bytes()).expect_err("wrong-width sv must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A correctly sized row before dims is fine.
        let ok = "exbox-svm v1\nkernel linear\nsv 1.0 0.5 0.5\ndims 2\nbias 0\n";
        assert!(SvmModel::load(ok.as_bytes()).is_ok());
    }

    #[test]
    fn rejects_duplicate_keys() {
        for dup in ["kernel linear", "dims 2", "bias 0"] {
            let text = format!("exbox-svm v1\nkernel linear\ndims 2\nbias 0\n{dup}\n");
            let err = SvmModel::load(text.as_bytes()).expect_err("duplicate key must fail");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn rejects_truncated_file() {
        let mut buf = Vec::new();
        trained().save(&mut buf).unwrap();
        // Cutting the file anywhere inside the header/metadata (or mid
        // sv line, leaving a dangling token) must error, never panic.
        for cut in [1, 8, 14, 30, buf.len() * 2 / 3] {
            let prefix = &buf[..cut.min(buf.len())];
            match SvmModel::load(prefix) {
                Ok(m) => {
                    // Only acceptable if the cut landed exactly on a
                    // record boundary past all required fields.
                    assert!(m.num_support_vectors() <= trained().num_support_vectors());
                }
                Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
            }
        }
        // Cut mid-way through the required fields: always an error.
        assert!(SvmModel::load(&b"exbox-svm v1\nkernel rbf 0.7\ndims"[..]).is_err());
    }
}
