//! Feature scaling.
//!
//! SVMs are scale-sensitive: traffic-matrix counts (0–50) and SNR
//! level indices (0–1) live on different ranges, so the Admittance
//! Classifier standardises features before training. Scalers are
//! fitted on the training set only and then applied to incoming test
//! points, exactly as a deployed middlebox must.

use crate::data::Dataset;

/// Zero-mean / unit-variance standardisation.
///
/// Fitted scalers are plain owned data and therefore `Send + Sync`
/// (asserted at compile time below): the concurrent gateway publishes
/// one scaler per model snapshot and every shard transforms features
/// through `&self` concurrently.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

// Compile-time guarantee for the concurrent serving layer.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StandardScaler>();
};

impl StandardScaler {
    /// Fit the scaler on a dataset.
    ///
    /// Features with zero variance get `std = 1` so they pass through
    /// centred but un-scaled (avoids division by zero).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit scaler on empty dataset");
        let d = data.dims();
        let n = data.len() as f64;
        let mut mean = vec![0.0; d];
        for (x, _) in data.iter() {
            for (m, &v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for (x, _) in data.iter() {
            for k in 0..d {
                let dv = x[k] - mean[k];
                var[k] += dv * dv;
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Transform one feature vector.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.transform_into(x, &mut out);
        out
    }

    /// Transform one feature vector into a caller-provided buffer —
    /// the zero-allocation form the admission fast path uses with a
    /// stack scratch array. Runs the lane-chunked loop from
    /// [`crate::engine`]; standardisation is element-wise, so the
    /// result is bit-identical to [`StandardScaler::transform`]
    /// whatever the chunking.
    ///
    /// # Panics
    /// Panics when `x` does not match the fitted dimensionality or
    /// `out` does not match `x` in length.
    pub fn transform_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.mean.len(), "dimensionality mismatch");
        assert_eq!(out.len(), x.len(), "output buffer length mismatch");
        crate::engine::scale_lanes(x, &self.mean, &self.std, out);
    }

    /// Transform a whole dataset (labels preserved).
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new(data.dims());
        for (x, y) in data.iter() {
            out.push(self.transform(x), y);
        }
        out
    }

    /// Reassemble a scaler from persisted statistics (the
    /// checkpoint/restore path). `mean` and `std` must be the values a
    /// fitted scaler reported via [`StandardScaler::means`] /
    /// [`StandardScaler::stds`]; transforms are then bit-identical to
    /// the original scaler's.
    ///
    /// # Panics
    /// Panics when the vectors are empty, differ in length, contain
    /// non-finite values, or any std is not positive.
    pub fn from_parts(mean: Vec<f64>, std: Vec<f64>) -> Self {
        assert!(!mean.is_empty(), "scaler needs at least one feature");
        assert_eq!(mean.len(), std.len(), "mean/std length mismatch");
        assert!(mean.iter().all(|v| v.is_finite()), "means must be finite");
        assert!(
            std.iter().all(|v| v.is_finite() && *v > 0.0),
            "stds must be finite and positive"
        );
        StandardScaler { mean, std }
    }

    /// Per-feature means learned at fit time.
    pub fn means(&self) -> &[f64] {
        &self.mean
    }

    /// Per-feature standard deviations learned at fit time.
    pub fn stds(&self) -> &[f64] {
        &self.std
    }
}

/// Min-max scaling to `[0, 1]` per feature.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    min: Vec<f64>,
    range: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit the scaler on a dataset. Constant features get range 1 so
    /// they map to 0.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit scaler on empty dataset");
        let d = data.dims();
        let mut min = vec![f64::INFINITY; d];
        let mut max = vec![f64::NEG_INFINITY; d];
        for (x, _) in data.iter() {
            for k in 0..d {
                min[k] = min[k].min(x[k]);
                max[k] = max[k].max(x[k]);
            }
        }
        let range = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| {
                let r = hi - lo;
                if r > 1e-12 {
                    r
                } else {
                    1.0
                }
            })
            .collect();
        MinMaxScaler { min, range }
    }

    /// Transform one feature vector. Values outside the fitted range
    /// extrapolate beyond `[0, 1]` (they are *not* clamped, so the
    /// classifier can still see "further outside than ever observed").
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.min.len(), "dimensionality mismatch");
        x.iter()
            .zip(self.min.iter().zip(&self.range))
            .map(|(&v, (&lo, &r))| (v - lo) / r)
            .collect()
    }

    /// Transform a whole dataset (labels preserved).
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new(data.dims());
        for (x, y) in data.iter() {
            out.push(self.transform(x), y);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Label;

    fn ds() -> Dataset {
        let mut d = Dataset::new(2);
        d.push(vec![0.0, 10.0], Label::Pos);
        d.push(vec![2.0, 10.0], Label::Pos);
        d.push(vec![4.0, 10.0], Label::Neg);
        d
    }

    #[test]
    fn standard_scaler_centres_and_scales() {
        let s = StandardScaler::fit(&ds());
        let t = s.transform_dataset(&ds());
        // Column 0: mean 2, population std sqrt(8/3).
        let col0: Vec<f64> = (0..3).map(|i| t.x(i)[0]).collect();
        let mean: f64 = col0.iter().sum::<f64>() / 3.0;
        let var: f64 = col0.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn standard_scaler_constant_feature_passthrough() {
        let s = StandardScaler::fit(&ds());
        // Column 1 is constant 10 -> std forced to 1, transform = v-10.
        assert_eq!(s.transform(&[2.0, 10.0])[1], 0.0);
        assert_eq!(s.transform(&[2.0, 12.0])[1], 2.0);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let s = MinMaxScaler::fit(&ds());
        let lo = s.transform(&[0.0, 10.0]);
        let hi = s.transform(&[4.0, 10.0]);
        assert_eq!(lo[0], 0.0);
        assert_eq!(hi[0], 1.0);
    }

    #[test]
    fn minmax_extrapolates_outside_range() {
        let s = MinMaxScaler::fit(&ds());
        assert!(s.transform(&[8.0, 10.0])[0] > 1.0);
        assert!(s.transform(&[-4.0, 10.0])[0] < 0.0);
    }

    #[test]
    fn scalers_preserve_labels() {
        let s = StandardScaler::fit(&ds());
        let t = s.transform_dataset(&ds());
        assert_eq!(t.y(0), Label::Pos);
        assert_eq!(t.y(2), Label::Neg);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_empty_panics() {
        let _ = StandardScaler::fit(&Dataset::new(1));
    }

    #[test]
    fn from_parts_roundtrips_bit_exact() {
        let s = StandardScaler::fit(&ds());
        let rebuilt = StandardScaler::from_parts(s.means().to_vec(), s.stds().to_vec());
        for x in [[0.0, 10.0], [3.7, 11.2], [-5.0, 9.9]] {
            let a = s.transform(&x);
            let b = rebuilt.transform(&x);
            assert_eq!(a[0].to_bits(), b[0].to_bits());
            assert_eq!(a[1].to_bits(), b[1].to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn from_parts_rejects_zero_std() {
        let _ = StandardScaler::from_parts(vec![0.0], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_parts_rejects_nan_mean() {
        let _ = StandardScaler::from_parts(vec![f64::NAN], vec![1.0]);
    }
}
