//! Soft-margin SVM trained with Sequential Minimal Optimization.
//!
//! This is the learning engine of the paper's Admittance Classifier
//! (§3.1): a binary SVM whose separating hyperplane *is* the boundary
//! of the Experiential Capacity Region. The implementation follows
//! Platt's SMO in the simplified form popularised by the Stanford
//! CS229 notes, extended with:
//!
//! * an incrementally-maintained error cache (`E_i = f(x_i) − y_i`),
//! * an optional precomputed Gram matrix for small/medium datasets,
//! * per-class cost weighting to handle the class imbalance typical of
//!   admission datasets (most observed traffic matrices are
//!   admissible until the network saturates),
//! * deterministic, seedable index selection.
//!
//! The dual problem solved is
//!
//! ```text
//! max Σαᵢ − ½ ΣΣ αᵢαⱼ yᵢyⱼ K(xᵢ,xⱼ)   s.t. 0 ≤ αᵢ ≤ Cᵢ, Σαᵢyᵢ = 0
//! ```

use crate::data::{Dataset, Label};
use crate::kernel::Kernel;
use crate::{Classifier, TrainClassifier};

/// Hyper-parameters and driver for SMO training.
#[derive(Debug, Clone)]
pub struct SvmTrainer {
    kernel: Kernel,
    c: f64,
    pos_weight: f64,
    neg_weight: f64,
    tol: f64,
    max_passes: u32,
    max_iters: u64,
    gram_limit: usize,
    seed: u64,
}

impl SvmTrainer {
    /// Create a trainer with the given kernel and defaults:
    /// `C = 1.0`, tolerance `1e-3`, 5 quiescent passes, balanced class
    /// weights, Gram matrix cached for up to 4096 samples.
    pub fn new(kernel: Kernel) -> Self {
        SvmTrainer {
            kernel,
            c: 1.0,
            pos_weight: 1.0,
            neg_weight: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_iters: 2_000_000,
            gram_limit: 4096,
            seed: 0xE5B0,
        }
    }

    /// Set the soft-margin cost `C` (> 0). Larger values penalise
    /// violations harder and fit the training data more tightly.
    ///
    /// # Panics
    /// Panics unless `c` is positive and finite.
    pub fn c(mut self, c: f64) -> Self {
        assert!(c > 0.0 && c.is_finite(), "C must be positive");
        self.c = c;
        self
    }

    /// Multiply the cost for positive / negative samples, i.e. the
    /// effective costs become `C·w⁺` and `C·w⁻`. Useful when
    /// inadmissible samples are rare but expensive to misclassify.
    ///
    /// # Panics
    /// Panics unless both weights are positive and finite.
    pub fn class_weights(mut self, pos: f64, neg: f64) -> Self {
        assert!(pos > 0.0 && pos.is_finite(), "pos weight must be positive");
        assert!(neg > 0.0 && neg.is_finite(), "neg weight must be positive");
        self.pos_weight = pos;
        self.neg_weight = neg;
        self
    }

    /// KKT violation tolerance (default `1e-3`).
    pub fn tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// Number of consecutive full passes without any α update before
    /// training stops (default 5).
    pub fn max_passes(mut self, passes: u32) -> Self {
        assert!(passes > 0, "max_passes must be positive");
        self.max_passes = passes;
        self
    }

    /// Hard cap on total inner-loop iterations as a divergence backstop.
    pub fn max_iters(mut self, iters: u64) -> Self {
        self.max_iters = iters;
        self
    }

    /// Largest sample count for which the full Gram matrix is
    /// precomputed (`n²` doubles of memory). Above this, kernel values
    /// are recomputed on demand.
    pub fn gram_limit(mut self, limit: usize) -> Self {
        self.gram_limit = limit;
        self
    }

    /// Seed for the deterministic second-index selection stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Train a model — inherent alias for [`TrainClassifier::fit`].
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn train(&self, data: &Dataset) -> SvmModel {
        self.fit(data)
    }

    fn cost_for(&self, y: Label) -> f64 {
        match y {
            Label::Pos => self.c * self.pos_weight,
            Label::Neg => self.c * self.neg_weight,
        }
    }
}

impl TrainClassifier for SvmTrainer {
    type Model = SvmModel;

    fn fit(&self, data: &Dataset) -> SvmModel {
        assert!(!data.is_empty(), "cannot train SVM on empty dataset");
        let n = data.len();
        let dims = data.dims();

        // Degenerate one-class datasets: return a constant classifier
        // at the majority sign. The bootstrap phase guards against
        // this, but figure harnesses may hit it with tiny batches.
        if !data.has_both_classes() {
            let sign = data.y(0).signum();
            return SvmModel {
                kernel: self.kernel,
                support: Vec::new(),
                coef: Vec::new(),
                bias: sign,
                dims,
                smo_iters: 0,
            };
        }

        let ys: Vec<f64> = (0..n).map(|i| data.y(i).signum()).collect();
        let costs: Vec<f64> = (0..n).map(|i| self.cost_for(data.y(i))).collect();

        // Gram cache (row-major upper storage kept simple: full matrix).
        let gram: Option<Vec<f64>> = if n <= self.gram_limit {
            let mut g = vec![0.0; n * n];
            for i in 0..n {
                for j in i..n {
                    let v = self.kernel.eval(data.x(i), data.x(j));
                    g[i * n + j] = v;
                    g[j * n + i] = v;
                }
            }
            Some(g)
        } else {
            None
        };
        let kval = |i: usize, j: usize| -> f64 {
            match &gram {
                Some(g) => g[i * n + j],
                None => self.kernel.eval(data.x(i), data.x(j)),
            }
        };

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        // err[i] = f(x_i) − y_i; with all α = 0, f(x) = b = 0.
        let mut err: Vec<f64> = ys.iter().map(|y| -y).collect();

        // xorshift64* stream for the second-index heuristic.
        let mut rng_state = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next_rand = move || {
            rng_state ^= rng_state >> 12;
            rng_state ^= rng_state << 25;
            rng_state ^= rng_state >> 27;
            rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };

        let mut quiescent_passes = 0u32;
        let mut iters = 0u64;

        while quiescent_passes < self.max_passes && iters < self.max_iters {
            let mut num_changed = 0usize;
            for i in 0..n {
                iters += 1;
                if iters >= self.max_iters {
                    break;
                }
                let ei = err[i];
                let yi = ys[i];
                let ci = costs[i];
                let r = yi * ei;
                // KKT check with tolerance.
                if !((r < -self.tol && alpha[i] < ci) || (r > self.tol && alpha[i] > 0.0)) {
                    continue;
                }

                // Second-choice heuristic: pick j maximising |Ei − Ej|
                // among current non-bound multipliers, falling back to
                // a random index.
                let mut j = usize::MAX;
                let mut best = -1.0;
                for (cand, &e) in err.iter().enumerate() {
                    if cand == i {
                        continue;
                    }
                    if alpha[cand] > 0.0 && alpha[cand] < costs[cand] {
                        let gap = (ei - e).abs();
                        if gap > best {
                            best = gap;
                            j = cand;
                        }
                    }
                }
                if j == usize::MAX {
                    j = (next_rand() % (n as u64 - 1)) as usize;
                    if j >= i {
                        j += 1;
                    }
                }

                let ej = err[j];
                let yj = ys[j];
                let cj = costs[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);

                // Feasible segment for α_j.
                let (lo, hi) = if yi != yj {
                    ((aj_old - ai_old).max(0.0), (cj + aj_old - ai_old).min(cj))
                } else {
                    ((ai_old + aj_old - ci).max(0.0), (ai_old + aj_old).min(cj))
                };
                if hi - lo < 1e-12 {
                    continue;
                }

                let eta = 2.0 * kval(i, j) - kval(i, i) - kval(j, j);
                if eta >= -1e-12 {
                    // Non-negative curvature along the constraint: skip
                    // (full Platt would evaluate the segment ends; the
                    // random restart makes progress regardless).
                    continue;
                }

                let mut aj_new = aj_old - yj * (ei - ej) / eta;
                aj_new = aj_new.clamp(lo, hi);
                if (aj_new - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai_new = ai_old + yi * yj * (aj_old - aj_new);

                // Bias update (Platt eqs. 20–21).
                let b1 = b
                    - ei
                    - yi * (ai_new - ai_old) * kval(i, i)
                    - yj * (aj_new - aj_old) * kval(i, j);
                let b2 = b
                    - ej
                    - yi * (ai_new - ai_old) * kval(i, j)
                    - yj * (aj_new - aj_old) * kval(j, j);
                let b_new = if ai_new > 0.0 && ai_new < ci {
                    b1
                } else if aj_new > 0.0 && aj_new < cj {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };

                // Incremental error-cache update:
                // f(x) gains Δαᵢ yᵢ K(xᵢ,x) + Δαⱼ yⱼ K(xⱼ,x) + Δb.
                let dai = ai_new - ai_old;
                let daj = aj_new - aj_old;
                let db = b_new - b;
                for (t, e) in err.iter_mut().enumerate() {
                    *e += dai * yi * kval(i, t) + daj * yj * kval(j, t) + db;
                }

                alpha[i] = ai_new;
                alpha[j] = aj_new;
                b = b_new;
                num_changed += 1;
            }
            if num_changed == 0 {
                quiescent_passes += 1;
            } else {
                quiescent_passes = 0;
            }
        }

        // Extract support vectors.
        let mut support = Vec::new();
        let mut coef = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support.push(data.x(i).to_vec());
                coef.push(alpha[i] * ys[i]);
            }
        }
        SvmModel {
            kernel: self.kernel,
            support,
            coef,
            bias: b,
            dims,
            smo_iters: iters,
        }
    }
}

/// A trained SVM: support vectors, their signed coefficients
/// `αᵢ yᵢ`, and the bias term.
#[derive(Debug, Clone)]
pub struct SvmModel {
    kernel: Kernel,
    support: Vec<Vec<f64>>,
    coef: Vec<f64>,
    bias: f64,
    dims: usize,
    smo_iters: u64,
}

impl SvmModel {
    /// Number of support vectors retained by training.
    pub fn num_support_vectors(&self) -> usize {
        self.support.len()
    }

    /// Total SMO inner-loop iterations training spent producing this
    /// model (0 for models reassembled via [`SvmModel::from_parts`]).
    pub fn smo_iterations(&self) -> u64 {
        self.smo_iters
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Bias term `b` of the decision function.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Iterate over `(coefficient αᵢ·yᵢ, support vector)` pairs.
    pub fn support_iter(&self) -> impl Iterator<Item = (f64, &[f64])> {
        self.coef
            .iter()
            .copied()
            .zip(self.support.iter().map(|v| v.as_slice()))
    }

    /// Reassemble a model from raw parts (used by persistence).
    ///
    /// # Panics
    /// Panics if `support` and `coef` lengths differ or any support
    /// vector has the wrong dimensionality.
    pub fn from_parts(
        kernel: Kernel,
        support: Vec<Vec<f64>>,
        coef: Vec<f64>,
        bias: f64,
        dims: usize,
    ) -> SvmModel {
        assert_eq!(support.len(), coef.len(), "support/coef length mismatch");
        assert!(
            support.iter().all(|x| x.len() == dims),
            "support vector dimensionality mismatch"
        );
        SvmModel {
            kernel,
            support,
            coef,
            bias,
            dims,
            smo_iters: 0,
        }
    }

    /// For a **linear** kernel, reconstruct the explicit weight vector
    /// `w = Σ αᵢ yᵢ xᵢ`. Returns `None` for non-linear kernels where
    /// `w` lives in feature space.
    pub fn linear_weights(&self) -> Option<Vec<f64>> {
        if self.kernel != Kernel::Linear {
            return None;
        }
        let mut w = vec![0.0; self.dims];
        for (sv, &c) in self.support.iter().zip(&self.coef) {
            for (wk, &xk) in w.iter_mut().zip(sv) {
                *wk += c * xk;
            }
        }
        Some(w)
    }
}

impl Classifier for SvmModel {
    fn decision_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims, "input dimensionality mismatch");
        let mut f = self.bias;
        for (sv, &c) in self.support.iter().zip(&self.coef) {
            f += c * self.kernel.eval(sv, x);
        }
        f
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> Dataset {
        // Two well-separated clusters on the x-axis.
        let mut ds = Dataset::new(2);
        for i in 0..10 {
            ds.push(vec![-3.0 - 0.1 * i as f64, i as f64 * 0.05], Label::Pos);
            ds.push(vec![3.0 + 0.1 * i as f64, -(i as f64) * 0.05], Label::Neg);
        }
        ds
    }

    #[test]
    fn separates_linear_clusters_with_linear_kernel() {
        let model = SvmTrainer::new(Kernel::Linear)
            .c(10.0)
            .train(&linearly_separable());
        assert_eq!(model.predict(&[-3.0, 0.0]), Label::Pos);
        assert_eq!(model.predict(&[3.0, 0.0]), Label::Neg);
        // Margin signs on the training data itself.
        for (x, y) in linearly_separable().iter() {
            assert_eq!(model.predict(x), y, "misclassified training point {x:?}");
        }
    }

    #[test]
    fn training_reports_smo_iterations() {
        let model = SvmTrainer::new(Kernel::Linear)
            .c(10.0)
            .train(&linearly_separable());
        assert!(model.smo_iterations() > 0, "real training must iterate");
        let rebuilt = SvmModel::from_parts(Kernel::Linear, Vec::new(), Vec::new(), 1.0, 2);
        assert_eq!(rebuilt.smo_iterations(), 0);
    }

    #[test]
    fn separates_linear_clusters_with_rbf_kernel() {
        let model = SvmTrainer::new(Kernel::rbf(0.5))
            .c(10.0)
            .train(&linearly_separable());
        for (x, y) in linearly_separable().iter() {
            assert_eq!(model.predict(x), y);
        }
    }

    #[test]
    fn learns_nonlinear_boundary_xor() {
        // XOR demands a non-linear boundary.
        let mut ds = Dataset::new(2);
        for _ in 0..4 {
            ds.push(vec![0.0, 0.0], Label::Pos);
            ds.push(vec![1.0, 1.0], Label::Pos);
            ds.push(vec![0.0, 1.0], Label::Neg);
            ds.push(vec![1.0, 0.0], Label::Neg);
        }
        let model = SvmTrainer::new(Kernel::rbf(4.0)).c(100.0).train(&ds);
        assert_eq!(model.predict(&[0.0, 0.0]), Label::Pos);
        assert_eq!(model.predict(&[1.0, 1.0]), Label::Pos);
        assert_eq!(model.predict(&[0.0, 1.0]), Label::Neg);
        assert_eq!(model.predict(&[1.0, 0.0]), Label::Neg);
    }

    #[test]
    fn learns_capacity_region_like_boundary() {
        // A convex "capacity region": admissible iff 2a + 3b <= 24,
        // the same family of shapes the ExCR takes in Fig. 2c.
        let mut ds = Dataset::new(2);
        for a in 0..12 {
            for b in 0..12 {
                let y = if 2 * a + 3 * b <= 24 {
                    Label::Pos
                } else {
                    Label::Neg
                };
                ds.push(vec![a as f64, b as f64], y);
            }
        }
        let model = SvmTrainer::new(Kernel::rbf(0.05)).c(50.0).train(&ds);
        let mut correct = 0;
        let mut total = 0;
        for (x, y) in ds.iter() {
            total += 1;
            if model.predict(x) == y {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.93, "training accuracy too low: {acc}");
    }

    #[test]
    fn decision_value_sign_matches_predict() {
        let model = SvmTrainer::new(Kernel::Linear).train(&linearly_separable());
        for x in [[-5.0, 1.0], [5.0, -1.0], [0.1, 0.0]] {
            let dv = model.decision_value(&x);
            let p = model.predict(&x);
            assert_eq!(p, Label::from_signum(dv));
        }
    }

    #[test]
    fn one_class_dataset_yields_constant_model() {
        let mut ds = Dataset::new(1);
        ds.push(vec![1.0], Label::Pos);
        ds.push(vec![2.0], Label::Pos);
        let model = SvmTrainer::new(Kernel::Linear).train(&ds);
        assert_eq!(model.predict(&[100.0]), Label::Pos);
        assert_eq!(model.predict(&[-100.0]), Label::Pos);
        assert_eq!(model.num_support_vectors(), 0);
    }

    #[test]
    fn training_is_deterministic() {
        let ds = linearly_separable();
        let m1 = SvmTrainer::new(Kernel::rbf(0.5)).seed(9).train(&ds);
        let m2 = SvmTrainer::new(Kernel::rbf(0.5)).seed(9).train(&ds);
        assert_eq!(m1.bias(), m2.bias());
        assert_eq!(m1.num_support_vectors(), m2.num_support_vectors());
        for x in [[0.5, 0.5], [-2.0, 1.0]] {
            assert_eq!(m1.decision_value(&x), m2.decision_value(&x));
        }
    }

    #[test]
    fn gram_and_on_demand_paths_agree() {
        let ds = linearly_separable();
        let with_gram = SvmTrainer::new(Kernel::rbf(0.5))
            .gram_limit(1000)
            .train(&ds);
        let no_gram = SvmTrainer::new(Kernel::rbf(0.5)).gram_limit(0).train(&ds);
        for x in [[-3.0, 0.0], [3.0, 0.0], [0.0, 0.0]] {
            let a = with_gram.decision_value(&x);
            let b = no_gram.decision_value(&x);
            assert!((a - b).abs() < 1e-9, "gram path diverged: {a} vs {b}");
        }
    }

    #[test]
    fn linear_weights_reconstruction() {
        let model = SvmTrainer::new(Kernel::Linear)
            .c(10.0)
            .train(&linearly_separable());
        let w = model.linear_weights().expect("linear kernel has weights");
        assert_eq!(w.len(), 2);
        // Boundary is near x0 = 0 with Pos on the negative side, so
        // w0 must be strongly negative relative to w1.
        assert!(w[0] < 0.0);
        assert!(w[0].abs() > w[1].abs());
        // w·x + b must match decision_value for linear kernels.
        let x = [1.5, -0.3];
        let manual = w[0] * x[0] + w[1] * x[1] + model.bias();
        assert!((manual - model.decision_value(&x)).abs() < 1e-9);
    }

    #[test]
    fn rbf_weights_are_none() {
        let model = SvmTrainer::new(Kernel::rbf(1.0)).train(&linearly_separable());
        assert!(model.linear_weights().is_none());
    }

    #[test]
    fn class_weighting_shifts_boundary_toward_minority() {
        // 1 negative vs many positives with overlap; upweighting the
        // negative class must recover its neighbourhood.
        let mut ds = Dataset::new(1);
        for i in 0..20 {
            ds.push(vec![i as f64 * 0.1], Label::Pos);
        }
        ds.push(vec![2.5], Label::Neg);
        ds.push(vec![2.6], Label::Neg);
        let balanced = SvmTrainer::new(Kernel::rbf(2.0)).c(1.0).train(&ds);
        let weighted = SvmTrainer::new(Kernel::rbf(2.0))
            .c(1.0)
            .class_weights(1.0, 10.0)
            .train(&ds);
        let dv_b = balanced.decision_value(&[2.55]);
        let dv_w = weighted.decision_value(&[2.55]);
        assert!(
            dv_w < dv_b,
            "upweighting negatives should push decision value down ({dv_w} !< {dv_b})"
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let ds = Dataset::new(1);
        let _ = SvmTrainer::new(Kernel::Linear).train(&ds);
    }
}
