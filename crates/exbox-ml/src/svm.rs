//! Soft-margin SVM trained with Sequential Minimal Optimization.
//!
//! This is the learning engine of the paper's Admittance Classifier
//! (§3.1): a binary SVM whose separating hyperplane *is* the boundary
//! of the Experiential Capacity Region. The implementation follows
//! Platt's SMO in the simplified form popularised by the Stanford
//! CS229 notes, extended with:
//!
//! * an incrementally-maintained error cache (`E_i = f(x_i) − y_i`),
//! * an optional precomputed Gram matrix for small/medium datasets,
//!   built in parallel row blocks on an [`exbox_par::ThreadPool`]
//!   (byte-identical for every thread count),
//! * a bounded LRU kernel-**row** cache for the `n > gram_limit`
//!   regime, sized to the same memory envelope as a full Gram at the
//!   limit,
//! * precomputed squared norms so RBF evaluations reduce to one dot
//!   product (`‖x−z‖² = ‖x‖² + ‖z‖² − 2·x·z`),
//! * **warm starts**: [`SvmTrainer::fit_warm`] accepts the previous
//!   fit's α vector, clamps it into the new box, repairs the
//!   equality constraint `Σαᵢyᵢ = 0`, and rebuilds the error cache —
//!   the basis of the Admittance Classifier's incremental online
//!   retraining,
//! * the standard **shrinking** heuristic: multipliers locked at a
//!   bound with comfortably-satisfied KKT conditions for several
//!   passes drop out of the working set; before convergence is
//!   declared their errors are reconstructed and the full problem is
//!   re-verified,
//! * per-class cost weighting to handle the class imbalance typical of
//!   admission datasets (most observed traffic matrices are
//!   admissible until the network saturates),
//! * deterministic, seedable index selection.
//!
//! The dual problem solved is
//!
//! ```text
//! max Σαᵢ − ½ ΣΣ αᵢαⱼ yᵢyⱼ K(xᵢ,xⱼ)   s.t. 0 ≤ αᵢ ≤ Cᵢ, Σαᵢyᵢ = 0
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Deref;
use std::rc::Rc;

use exbox_par::ThreadPool;

use crate::data::{Dataset, Label};
use crate::engine::{interleave_rows, kernel_rows_lanes, KernelEngine};
use crate::kernel::{dot, gram_matrix_with_engine, Kernel};
use crate::{Classifier, TrainClassifier};

/// Consecutive quiescent-at-bound passes before a multiplier is
/// shrunk out of the working set.
const SHRINK_AFTER: u8 = 3;
/// Problem size below which shrinking bookkeeping is not worth it.
const SHRINK_MIN_SAMPLES: usize = 128;

/// Hyper-parameters and driver for SMO training.
#[derive(Debug, Clone)]
pub struct SvmTrainer {
    kernel: Kernel,
    c: f64,
    pos_weight: f64,
    neg_weight: f64,
    tol: f64,
    max_passes: u32,
    max_iters: u64,
    gram_limit: usize,
    shrinking: bool,
    pool: Option<ThreadPool>,
    seed: u64,
}

impl SvmTrainer {
    /// Create a trainer with the given kernel and defaults:
    /// `C = 1.0`, tolerance `1e-3`, 5 quiescent passes, balanced class
    /// weights, Gram matrix cached for up to 4096 samples, shrinking
    /// on, threads from [`ThreadPool::global`].
    pub fn new(kernel: Kernel) -> Self {
        SvmTrainer {
            kernel,
            c: 1.0,
            pos_weight: 1.0,
            neg_weight: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_iters: 2_000_000,
            gram_limit: 4096,
            shrinking: true,
            pool: None,
            seed: 0xE5B0,
        }
    }

    /// Set the soft-margin cost `C` (> 0). Larger values penalise
    /// violations harder and fit the training data more tightly.
    ///
    /// # Panics
    /// Panics unless `c` is positive and finite.
    pub fn c(mut self, c: f64) -> Self {
        assert!(c > 0.0 && c.is_finite(), "C must be positive");
        self.c = c;
        self
    }

    /// Multiply the cost for positive / negative samples, i.e. the
    /// effective costs become `C·w⁺` and `C·w⁻`. Useful when
    /// inadmissible samples are rare but expensive to misclassify.
    ///
    /// # Panics
    /// Panics unless both weights are positive and finite.
    pub fn class_weights(mut self, pos: f64, neg: f64) -> Self {
        assert!(pos > 0.0 && pos.is_finite(), "pos weight must be positive");
        assert!(neg > 0.0 && neg.is_finite(), "neg weight must be positive");
        self.pos_weight = pos;
        self.neg_weight = neg;
        self
    }

    /// KKT violation tolerance (default `1e-3`).
    pub fn tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// Number of consecutive full passes without any α update before
    /// training stops (default 5).
    pub fn max_passes(mut self, passes: u32) -> Self {
        assert!(passes > 0, "max_passes must be positive");
        self.max_passes = passes;
        self
    }

    /// Hard cap on total inner-loop iterations as a divergence
    /// backstop. A fit that hits the cap reports
    /// [`SvmModel::converged`]` == false`.
    pub fn max_iters(mut self, iters: u64) -> Self {
        self.max_iters = iters;
        self
    }

    /// Largest sample count for which the full Gram matrix is
    /// precomputed (`n²` doubles of memory). Above this, kernel rows
    /// are served from a bounded LRU cache of the same memory budget.
    pub fn gram_limit(mut self, limit: usize) -> Self {
        self.gram_limit = limit;
        self
    }

    /// Enable/disable the shrinking heuristic (default on). Shrinking
    /// never changes the verdict — the full problem is re-verified
    /// before convergence is declared — but skips bound-locked
    /// multipliers in the meantime.
    pub fn shrinking(mut self, on: bool) -> Self {
        self.shrinking = on;
        self
    }

    /// Thread pool for the parallelisable stages (Gram construction,
    /// warm-start error rebuild). Defaults to [`ThreadPool::global`],
    /// i.e. `EXBOX_THREADS` / available cores. Results are
    /// byte-identical for every setting.
    pub fn pool(mut self, pool: ThreadPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Seed for the deterministic second-index selection stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Train a model — inherent alias for [`TrainClassifier::fit`].
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn train(&self, data: &Dataset) -> SvmModel {
        self.fit(data)
    }

    fn cost_for(&self, y: Label) -> f64 {
        match y {
            Label::Pos => self.c * self.pos_weight,
            Label::Neg => self.c * self.neg_weight,
        }
    }

    /// Train with an optional warm start: `warm` carries the α vector
    /// and bias of a previous fit, aligned by sample index (shorter or
    /// longer α vectors are fine — extra entries are ignored, missing
    /// ones start at zero). Carried values are clamped into the new
    /// box `[0, Cᵢ]` and the equality constraint `Σαᵢyᵢ = 0` is
    /// repaired before optimisation, so any α vector is a legal hint.
    ///
    /// Returns the full [`SvmFit`], whose [`SvmFit::warm_start`] feeds
    /// the next retrain.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn fit_warm(&self, data: &Dataset, warm: Option<WarmStart<'_>>) -> SvmFit {
        assert!(!data.is_empty(), "cannot train SVM on empty dataset");
        if let Some(fit) = self.one_class_fit(data) {
            return fit;
        }
        let pool = self.pool.unwrap_or_else(ThreadPool::global);
        let cache = KernelCache::new(self.kernel, data, self.gram_limit, &pool);
        self.smo_optimize(data, warm, &cache, &pool)
    }

    /// [`SvmTrainer::fit_warm`] backed by a [`PersistentKernelCache`]
    /// carried across retrains: the cache is synchronised against
    /// `data` first (bit-exact prefix comparison of the stored feature
    /// rows), so a store that merely grew by Δ rows since the last fit
    /// computes only the Δ new Gram rows/columns — O(Δ·n) kernel
    /// evaluations instead of O(n²) — and an unchanged store computes
    /// none at all. Any prefix mismatch (scaler refit, compaction,
    /// reordering) falls back to a full rebuild inside the cache.
    /// Results are bit-identical to [`SvmTrainer::fit_warm`] in every
    /// case.
    ///
    /// Datasets above [`SvmTrainer::gram_limit`] (the LRU row-cache
    /// regime) and degenerate one-class datasets bypass the persistent
    /// cache and delegate to `fit_warm` unchanged.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn fit_warm_cached(
        &self,
        data: &Dataset,
        warm: Option<WarmStart<'_>>,
        cache: &mut PersistentKernelCache,
    ) -> SvmFit {
        assert!(!data.is_empty(), "cannot train SVM on empty dataset");
        if !data.has_both_classes() || data.len() > self.gram_limit {
            // Bypass regimes never consult the cache again this fit;
            // drop the stale Gram rather than holding O(n²) memory.
            cache.invalidate();
            return self.fit_warm(data, warm);
        }
        let pool = self.pool.unwrap_or_else(ThreadPool::global);
        cache.sync(self.kernel, data, &pool);
        let kc = KernelCache::from_persistent(self.kernel, data, cache);
        self.smo_optimize(data, warm, &kc, &pool)
    }

    /// Degenerate one-class datasets: return a constant classifier
    /// at the majority sign. The bootstrap phase guards against
    /// this, but figure harnesses may hit it with tiny batches.
    fn one_class_fit(&self, data: &Dataset) -> Option<SvmFit> {
        if data.has_both_classes() {
            return None;
        }
        let sign = data.y(0).signum();
        Some(SvmFit {
            model: SvmModel {
                kernel: self.kernel,
                support: Vec::new(),
                coef: Vec::new(),
                support_norms: Vec::new(),
                bias: sign,
                dims: data.dims(),
                smo_iters: 0,
                converged: true,
            },
            alpha: vec![0.0; data.len()],
            warm_carried: 0,
            shrunk_fraction: 0.0,
        })
    }

    /// The SMO driver shared by [`SvmTrainer::fit_warm`] and
    /// [`SvmTrainer::fit_warm_cached`]; `cache` carries the kernel
    /// values (full Gram or LRU rows) however they were built.
    fn smo_optimize(
        &self,
        data: &Dataset,
        warm: Option<WarmStart<'_>>,
        cache: &KernelCache<'_>,
        pool: &ThreadPool,
    ) -> SvmFit {
        let n = data.len();
        let dims = data.dims();
        let ys: Vec<f64> = (0..n).map(|i| data.y(i).signum()).collect();
        let costs: Vec<f64> = (0..n).map(|i| self.cost_for(data.y(i))).collect();

        // ---- α initialisation (warm start) -------------------------
        let mut alpha = vec![0.0f64; n];
        if let Some(init) = warm {
            let init = init.alpha;
            for i in 0..n.min(init.len()) {
                let a = init[i].clamp(0.0, costs[i]);
                if a > 1e-12 {
                    alpha[i] = a;
                }
            }
            // Repair the dual equality constraint Σαᵢyᵢ = 0 (label
            // flips and clamping can unbalance a carried vector):
            // shave the surplus side from the highest indices down —
            // deterministic, stays inside the box.
            let s: f64 = alpha.iter().zip(&ys).map(|(a, y)| a * y).sum();
            if s.abs() > 1e-12 {
                let side = s.signum();
                let mut excess = s.abs();
                for i in (0..n).rev() {
                    if excess <= 0.0 {
                        break;
                    }
                    if ys[i] == side && alpha[i] > 0.0 {
                        let cut = alpha[i].min(excess);
                        alpha[i] -= cut;
                        excess -= cut;
                    }
                }
            }
        }
        let warm_carried = alpha.iter().filter(|&&a| a > 0.0).count();

        // ---- bias + error-cache initialisation ---------------------
        // With all α = 0 and b = 0: f(x) = 0, so err[t] = −y_t. On a
        // warm start we resume the previous (α, b) state verbatim:
        // rebuild f₀(x_t) = Σ αᵢyᵢK(i,t) in parallel and set
        // err[t] = f₀(t) + b − y_t. The error cache is then exactly
        // consistent with the carried decision function, so an
        // unchanged dataset replays the previous quiescent state
        // instead of re-optimising (SMO's bias updates self-correct b
        // as soon as any α moves, so a stale b is a hint, never a
        // wound).
        let mut b = warm.map(|w| w.bias).unwrap_or(0.0);
        let mut err: Vec<f64>;
        if warm_carried > 0 {
            let targets: Vec<usize> = (0..n).collect();
            let f0 = cache.decision_sums(&alpha, &ys, &targets, pool);
            err = (0..n).map(|t| f0[t] + b - ys[t]).collect();
        } else {
            err = ys.iter().map(|y| b - y).collect();
        }

        // xorshift64* stream for the second-index heuristic.
        let mut rng_state = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next_rand = move || {
            rng_state ^= rng_state >> 12;
            rng_state ^= rng_state << 25;
            rng_state ^= rng_state >> 27;
            rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };

        // ---- SMO main loop with shrinking --------------------------
        let shrink_enabled = self.shrinking && n >= SHRINK_MIN_SAMPLES;
        let mut active: Vec<usize> = (0..n).collect();
        let mut shrunk = vec![false; n];
        let mut streak = vec![0u8; n];
        let mut shrunk_peak = 0usize;
        let mut quiescent = 0u32;
        let mut iters = 0u64;
        let mut updates = 0u64;
        let mut capped = false;

        'outer: loop {
            let mut num_changed = 0usize;
            for pos in 0..active.len() {
                if iters >= self.max_iters {
                    capped = true;
                    break 'outer;
                }
                iters += 1;
                let i = active[pos];
                let ei = err[i];
                let yi = ys[i];
                let ci = costs[i];
                let r = yi * ei;
                // KKT check with tolerance.
                if !((r < -self.tol && alpha[i] < ci) || (r > self.tol && alpha[i] > 0.0)) {
                    continue;
                }

                // Attempt a joint step on (i, j); mutates α, b and the
                // error cache and evaluates to `true` on success. A
                // macro rather than a closure so it can borrow the
                // surrounding state mutably.
                macro_rules! try_step {
                    ($cand:expr) => {{
                        let j: usize = $cand;
                        let ei = err[i];
                        let ej = err[j];
                        let yj = ys[j];
                        let cj = costs[j];
                        let (ai_old, aj_old) = (alpha[i], alpha[j]);

                        // Feasible segment for α_j.
                        let (lo, hi) = if yi != yj {
                            ((aj_old - ai_old).max(0.0), (cj + aj_old - ai_old).min(cj))
                        } else {
                            ((ai_old + aj_old - ci).max(0.0), (ai_old + aj_old).min(cj))
                        };
                        let eta = 2.0 * cache.pair(i, j) - cache.diag(i) - cache.diag(j);
                        // Degenerate segment or non-negative curvature:
                        // no usable descent direction on this pair.
                        if hi - lo < 1e-12 || eta >= -1e-12 {
                            false
                        } else {
                            let aj_new = (aj_old - yj * (ei - ej) / eta).clamp(lo, hi);
                            if (aj_new - aj_old).abs() < 1e-7 {
                                false
                            } else {
                                let ai_new = ai_old + yi * yj * (aj_old - aj_new);
                                let kij = cache.pair(i, j);
                                let kii = cache.diag(i);
                                let kjj = cache.diag(j);

                                // Bias update (Platt eqs. 20–21).
                                let b1 = b
                                    - ei
                                    - yi * (ai_new - ai_old) * kii
                                    - yj * (aj_new - aj_old) * kij;
                                let b2 = b
                                    - ej
                                    - yi * (ai_new - ai_old) * kij
                                    - yj * (aj_new - aj_old) * kjj;
                                let b_new = if ai_new > 0.0 && ai_new < ci {
                                    b1
                                } else if aj_new > 0.0 && aj_new < cj {
                                    b2
                                } else {
                                    0.5 * (b1 + b2)
                                };

                                // Incremental error-cache update over the
                                // active set: f(x) gains
                                // Δαᵢ yᵢ K(xᵢ,x) + Δαⱼ yⱼ K(xⱼ,x) + Δb.
                                // Shrunk indices keep stale errors; they
                                // are reconstructed before convergence is
                                // declared.
                                let dai = ai_new - ai_old;
                                let daj = aj_new - aj_old;
                                let db = b_new - b;
                                {
                                    let row_i = cache.row(i);
                                    let row_j = cache.row(j);
                                    for &t in &active {
                                        err[t] += dai * yi * row_i[t] + daj * yj * row_j[t] + db;
                                    }
                                }

                                alpha[i] = ai_new;
                                alpha[j] = aj_new;
                                b = b_new;
                                true
                            }
                        }
                    }};
                }

                // Platt's second-choice hierarchy. 1: the j maximising
                // |Ei − Ej| among active non-bound multipliers (best
                // single-step progress). A deterministic argmax alone
                // can wedge on a pair whose step clips to nothing, so
                // on failure 2: the remaining non-bound candidates from
                // a random offset, then 3: everything else from a
                // random offset.
                let mut stepped = false;
                let mut best_j = usize::MAX;
                {
                    let mut best = -1.0;
                    for &cand in &active {
                        if cand != i && alpha[cand] > 0.0 && alpha[cand] < costs[cand] {
                            let gap = (ei - err[cand]).abs();
                            if gap > best {
                                best = gap;
                                best_j = cand;
                            }
                        }
                    }
                }
                if best_j != usize::MAX {
                    stepped = try_step!(best_j);
                }
                if !stepped && active.len() >= 2 {
                    let offset = (next_rand() % active.len() as u64) as usize;
                    for k in 0..active.len() {
                        let cand = active[(offset + k) % active.len()];
                        if cand == i
                            || cand == best_j
                            || alpha[cand] <= 0.0
                            || alpha[cand] >= costs[cand]
                        {
                            continue;
                        }
                        if try_step!(cand) {
                            stepped = true;
                            break;
                        }
                    }
                }
                if !stepped && active.len() >= 2 {
                    let offset = (next_rand() % active.len() as u64) as usize;
                    for k in 0..active.len() {
                        let cand = active[(offset + k) % active.len()];
                        if cand == i || (alpha[cand] > 0.0 && alpha[cand] < costs[cand]) {
                            continue;
                        }
                        if try_step!(cand) {
                            stepped = true;
                            break;
                        }
                    }
                }
                if stepped {
                    num_changed += 1;
                    updates += 1;
                }
            }

            if num_changed == 0 {
                quiescent += 1;
            } else {
                quiescent = 0;
            }

            if quiescent >= self.max_passes {
                if active.len() < n {
                    // Quiescent on the shrunk problem: reconstruct the
                    // stale errors, reactivate everything and demand
                    // one more clean pass over the full set.
                    let targets: Vec<usize> = (0..n).filter(|&t| shrunk[t]).collect();
                    let sums = cache.decision_sums(&alpha, &ys, &targets, pool);
                    for (k, &t) in targets.iter().enumerate() {
                        err[t] = sums[k] + b - ys[t];
                    }
                    shrunk.iter_mut().for_each(|s| *s = false);
                    streak.iter_mut().for_each(|s| *s = 0);
                    active = (0..n).collect();
                    quiescent = self.max_passes.saturating_sub(1);
                } else {
                    break;
                }
            } else if shrink_enabled && num_changed > 0 {
                // Update bound-lock streaks; shrink indices whose KKT
                // conditions hold with margin for SHRINK_AFTER passes.
                let mut any = false;
                for &i in &active {
                    let r = ys[i] * err[i];
                    let locked_lo = alpha[i] <= 0.0 && r > self.tol;
                    let locked_hi = alpha[i] >= costs[i] && r < -self.tol;
                    if locked_lo || locked_hi {
                        streak[i] = streak[i].saturating_add(1);
                        if streak[i] >= SHRINK_AFTER {
                            shrunk[i] = true;
                            any = true;
                        }
                    } else {
                        streak[i] = 0;
                    }
                }
                if any {
                    active.retain(|&i| !shrunk[i]);
                    shrunk_peak = shrunk_peak.max(n - active.len());
                }
            }
        }

        // ---- bias finalisation (Keerthi et al.) --------------------
        // Pair updates are bias-blind (Eᵢ − Eⱼ cancels b), so the loop
        // can quiesce in a state whose α is optimal while the running
        // Platt-midpoint bias sits outside the KKT-feasible interval —
        // classically when the last step leaves both multipliers at
        // bound. Derive that interval from the KKT inequalities: each
        // sample bounds b via v = y − f₀ (α at 0 / at C pushes b from
        // one side, a free multiplier pins it from both). A bias
        // already inside the tol-relaxed interval is kept bit-exact —
        // every cleanly converged fit lands here, which preserves
        // exact warm-start replay — otherwise snap to the interval
        // midpoint.
        if capped && active.len() < n {
            // A capped run can exit mid-shrink with stale errors;
            // reconstruct them so f₀ below is exact.
            let targets: Vec<usize> = (0..n).filter(|&t| shrunk[t]).collect();
            let sums = cache.decision_sums(&alpha, &ys, &targets, pool);
            for (k, &t) in targets.iter().enumerate() {
                err[t] = sums[k] + b - ys[t];
            }
        }
        let mut b_lo = f64::NEG_INFINITY;
        let mut b_hi = f64::INFINITY;
        for i in 0..n {
            let v = ys[i] - (err[i] + ys[i] - b); // y − f₀
                                                  // Classify against the box with the same 1e-8 slack the
                                                  // support-vector extraction uses: step arithmetic leaves
                                                  // ~1e-17 residues that must not masquerade as free
                                                  // multipliers (a free multiplier pins b exactly).
            let at_lower = alpha[i] <= 1e-8;
            let at_upper = alpha[i] >= costs[i] - 1e-8;
            if (at_lower && ys[i] > 0.0) || (at_upper && ys[i] < 0.0) || (!at_lower && !at_upper) {
                b_lo = b_lo.max(v);
            }
            if (at_lower && ys[i] < 0.0) || (at_upper && ys[i] > 0.0) || (!at_lower && !at_upper) {
                b_hi = b_hi.min(v);
            }
        }
        if !(b >= b_lo - self.tol && b <= b_hi + self.tol) {
            b = if b_lo.is_finite() && b_hi.is_finite() {
                0.5 * (b_lo + b_hi)
            } else if b_lo.is_finite() {
                b_lo
            } else if b_hi.is_finite() {
                b_hi
            } else {
                b
            };
        }
        // Even the best bias cannot satisfy contradictory bounds; that
        // means true KKT violations remain despite pairwise quiescence.
        let kkt_ok = b_lo <= b_hi + 2.0 * self.tol;

        // Extract support vectors.
        let mut support = Vec::new();
        let mut coef = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support.push(data.x(i).to_vec());
                coef.push(alpha[i] * ys[i]);
            }
        }
        let support_norms = support_norms(self.kernel, &support);
        SvmFit {
            model: SvmModel {
                kernel: self.kernel,
                support,
                coef,
                support_norms,
                bias: b,
                dims,
                smo_iters: updates,
                converged: !capped && kkt_ok,
            },
            alpha,
            warm_carried,
            shrunk_fraction: shrunk_peak as f64 / n as f64,
        }
    }
}

impl TrainClassifier for SvmTrainer {
    type Model = SvmModel;

    fn fit(&self, data: &Dataset) -> SvmModel {
        self.fit_warm(data, None).model
    }
}

/// Dual state carried from a previous fit into
/// [`SvmTrainer::fit_warm`]: the multipliers (aligned by sample
/// index) and the bias they were quiescent with. Resuming both is
/// essential — α alone with a re-derived bias would shift every
/// cached error and manufacture KKT "violations" to re-optimise.
#[derive(Debug, Clone, Copy)]
pub struct WarmStart<'a> {
    /// Previous fit's multipliers, aligned to sample indices.
    pub alpha: &'a [f64],
    /// Previous fit's bias term.
    pub bias: f64,
}

/// Result of one [`SvmTrainer::fit_warm`] call: the model plus the
/// training-state the online retraining loop carries forward.
#[derive(Debug, Clone)]
pub struct SvmFit {
    /// The trained model.
    pub model: SvmModel,
    /// Final multipliers, aligned to the input sample order — feed
    /// these back as the next retrain's warm start.
    pub alpha: Vec<f64>,
    /// Number of α values carried in non-zero after clamping and
    /// constraint repair (0 for cold fits).
    pub warm_carried: usize,
    /// Peak fraction of multipliers shrunk out of the working set
    /// (0.0 when shrinking never engaged).
    pub shrunk_fraction: f64,
}

impl SvmFit {
    /// Borrow this fit's final state as the next retrain's warm start.
    pub fn warm_start(&self) -> WarmStart<'_> {
        WarmStart {
            alpha: &self.alpha,
            bias: self.model.bias(),
        }
    }
}

/// Squared norms of the support vectors (RBF fast path); empty for
/// kernels that do not use them.
fn support_norms(kernel: Kernel, support: &[Vec<f64>]) -> Vec<f64> {
    match kernel {
        Kernel::Rbf { .. } => support.iter().map(|sv| dot(sv, sv)).collect(),
        _ => Vec::new(),
    }
}

/// A full Gram matrix either owned by this fit or borrowed from a
/// [`PersistentKernelCache`] that outlives it.
enum GramRef<'a> {
    Owned(Vec<f64>),
    Borrowed(&'a [f64]),
}

impl Deref for GramRef<'_> {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        match self {
            GramRef::Owned(v) => v,
            GramRef::Borrowed(s) => s,
        }
    }
}

/// A kernel matrix carried across retrains. The cache owns bit-exact
/// copies of the (scaled) feature rows its Gram was computed from, so
/// [`PersistentKernelCache::sync`] can decide *by comparison, not by
/// protocol* how much of the matrix is still valid:
///
/// - stored rows are a bit-exact prefix of the new dataset → the old
///   `n₀ × n₀` block is reused verbatim and only the Δ = n − n₀ new
///   rows/columns are evaluated (O(Δ·n) kernel evaluations);
/// - any mismatch — a scaler refit rescaled every row, compaction
///   removed interior rows, the kernel or dimensionality changed — →
///   full rebuild.
///
/// Label flips never invalidate the cache (the Gram is
/// label-independent), and the RBF squared-norm precompute is carried
/// and appended incrementally alongside the matrix. All evaluation
/// routes through the same arithmetic as a cold
/// [`SvmTrainer::fit_warm`], so cached fits are bit-identical to
/// uncached ones.
///
/// Memory: O(n²) for the Gram plus O(n·dims) for the row copies, with
/// `n` capped by [`SvmTrainer::gram_limit`]
/// ([`SvmTrainer::fit_warm_cached`] bypasses the cache above it).
#[derive(Debug, Clone, Default)]
pub struct PersistentKernelCache {
    kernel: Option<Kernel>,
    dims: usize,
    n: usize,
    /// Flattened copies of the feature rows the Gram was built from.
    rows: Vec<f64>,
    /// `‖xᵢ‖²` per row (RBF kernels only; empty otherwise).
    norms: Vec<f64>,
    /// Row-major `n × n` kernel matrix.
    gram: Vec<f64>,
    fresh_rows: usize,
}

impl PersistentKernelCache {
    /// An empty cache; the first [`sync`](Self::sync) fills it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows currently cached.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of Gram rows the last [`sync`](Self::sync) had to
    /// evaluate: 0 for an unchanged store, Δ for an append, the full
    /// `n` after an invalidating change.
    pub fn last_fresh_rows(&self) -> usize {
        self.fresh_rows
    }

    /// The cached row-major `len() × len()` Gram matrix.
    pub fn gram(&self) -> &[f64] {
        &self.gram
    }

    /// Drop everything; the next [`sync`](Self::sync) rebuilds from
    /// scratch.
    pub fn invalidate(&mut self) {
        *self = Self {
            kernel: self.kernel,
            dims: self.dims,
            ..Self::default()
        };
    }

    /// Keep only the first `keep` rows (no-op when `keep >= len`).
    /// Shrinks the Gram in place; used by benches and tests to replay
    /// an append without refeeding a store.
    pub fn truncate(&mut self, keep: usize) {
        if keep >= self.n {
            return;
        }
        let n = self.n;
        for i in 0..keep {
            self.gram.copy_within(i * n..i * n + keep, i * keep);
        }
        self.gram.truncate(keep * keep);
        self.rows.truncate(keep * self.dims);
        self.norms.truncate(keep.min(self.norms.len()));
        self.n = keep;
    }

    fn reset_for(&mut self, kernel: Kernel, dims: usize) {
        self.kernel = Some(kernel);
        self.dims = dims;
        self.n = 0;
        self.rows.clear();
        self.norms.clear();
        self.gram.clear();
    }

    /// Bring the cache up to date with `data`: validate the stored
    /// rows bit-exactly against the dataset prefix, reuse what
    /// matches, evaluate what doesn't (see the type docs for the
    /// reuse/invalidate rules). Returns the number of Gram rows
    /// evaluated. Deterministic and thread-count-invariant like every
    /// other training stage.
    pub fn sync(&mut self, kernel: Kernel, data: &Dataset, pool: &ThreadPool) -> usize {
        let n = data.len();
        let dims = data.dims();
        let prefix_ok = self.kernel == Some(kernel) && self.dims == dims && {
            let keep = self.n.min(n);
            (0..keep).all(|i| {
                self.rows[i * dims..(i + 1) * dims]
                    .iter()
                    .zip(data.x(i))
                    .all(|(a, b)| a.to_bits() == b.to_bits())
            })
        };
        if !prefix_ok {
            self.reset_for(kernel, dims);
        } else if self.n > n {
            self.truncate(n);
        }
        let n0 = self.n;
        self.fresh_rows = n - n0;
        if n0 == n {
            return 0;
        }
        for i in n0..n {
            self.rows.extend_from_slice(data.x(i));
        }
        if matches!(kernel, Kernel::Rbf { .. }) {
            for i in n0..n {
                let x = data.x(i);
                self.norms.push(dot(x, x));
            }
        }
        self.n = n;
        let engine = KernelEngine::select();
        if n0 == 0 {
            // Full rebuild: the triangular builder halves the work.
            self.gram = gram_matrix_with_engine(kernel, data, pool, engine);
            return n;
        }
        // Incremental append: grow the matrix by a strided copy of the
        // old block (O(n²) moves, no kernel evaluations), then compute
        // the Δ fresh rows in full and mirror them into the fresh
        // columns. A fresh cell (i, j) with j < i is evaluated with
        // query xᵢ where the triangular builder uses query xⱼ — equal
        // bits regardless, because IEEE-754 addition and multiplication
        // commute, so K(xᵢ,xⱼ) and K(xⱼ,xᵢ) share every intermediate
        // (asserted bit-exactly by the training property suite).
        let mut g = vec![0.0; n * n];
        for i in 0..n0 {
            g[i * n..i * n + n0].copy_from_slice(&self.gram[i * n0..(i + 1) * n0]);
        }
        let fresh = n - n0;
        let norms = &self.norms;
        let norm = |i: usize| norms.get(i).copied().unwrap_or(0.0);
        let new_rows: Vec<Vec<f64>> = if engine == KernelEngine::Lanes && dims > 0 {
            let mut flat = Vec::with_capacity(n * dims);
            for i in 0..n {
                flat.extend_from_slice(data.x(i));
            }
            let lanes = interleave_rows(&flat, dims);
            pool.parallel_map(fresh, |k| {
                let i = n0 + k;
                let mut out = vec![0.0; n];
                kernel_rows_lanes(kernel, &lanes, dims, norms, data.x(i), norm(i), &mut out);
                out
            })
        } else {
            pool.parallel_map(fresh, |k| {
                let i = n0 + k;
                let xi = data.x(i);
                let ni = norm(i);
                (0..n)
                    .map(|j| kernel.eval_with_norms(xi, ni, data.x(j), norm(j)))
                    .collect()
            })
        };
        for (k, row) in new_rows.iter().enumerate() {
            let i = n0 + k;
            g[i * n..(i + 1) * n].copy_from_slice(row);
            for (j, &v) in row.iter().enumerate().take(i) {
                g[j * n + i] = v;
            }
        }
        self.gram = g;
        fresh
    }
}

/// A kernel-row handle: either a slice of the full Gram matrix or a
/// shared row from the LRU cache.
enum RowHandle<'g> {
    Slice(&'g [f64]),
    Shared(Rc<Vec<f64>>),
}

impl Deref for RowHandle<'_> {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        match self {
            RowHandle::Slice(s) => s,
            RowHandle::Shared(r) => r,
        }
    }
}

/// Bounded LRU cache of full kernel rows for the `n > gram_limit`
/// regime. Eviction scans for the oldest stamp — capacities are small
/// (the budget keeps `cap · n ≤ gram_limit²` values), so O(cap) is
/// fine.
struct RowCache {
    cap: usize,
    stamp: u64,
    rows: HashMap<usize, (u64, Rc<Vec<f64>>)>,
}

impl RowCache {
    fn get(&mut self, i: usize) -> Option<Rc<Vec<f64>>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.rows.get_mut(&i).map(|e| {
            e.0 = stamp;
            Rc::clone(&e.1)
        })
    }

    fn insert(&mut self, i: usize, row: Rc<Vec<f64>>) {
        if self.rows.len() >= self.cap {
            if let Some(&oldest) = self
                .rows
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k)
            {
                self.rows.remove(&oldest);
            }
        }
        self.stamp += 1;
        self.rows.insert(i, (self.stamp, row));
    }
}

/// Unified kernel-value access for the SMO: full Gram below the
/// limit (owned, or borrowed from a [`PersistentKernelCache`]),
/// LRU-cached rows above it, RBF norms precomputed either way. All
/// evaluations route through [`Kernel::eval_with_norms`] or the
/// bit-identical [`kernel_rows_lanes`] path, so the regimes, engines
/// and every thread count agree bit-for-bit.
struct KernelCache<'a> {
    kernel: Kernel,
    data: &'a Dataset,
    engine: KernelEngine,
    norms: Vec<f64>,
    diag: Vec<f64>,
    gram: Option<GramRef<'a>>,
    /// Lazily-built feature-major lane buffer for on-demand rows in
    /// the LRU regime (lanes engine only).
    lanes: RefCell<Option<Rc<Vec<f64>>>>,
    lru: RefCell<RowCache>,
}

impl<'a> KernelCache<'a> {
    fn new(kernel: Kernel, data: &'a Dataset, gram_limit: usize, pool: &ThreadPool) -> Self {
        let n = data.len();
        let engine = KernelEngine::select();
        let norms = match kernel {
            Kernel::Rbf { .. } => data.squared_norms(),
            _ => Vec::new(),
        };
        let gram = (n <= gram_limit)
            .then(|| GramRef::Owned(gram_matrix_with_engine(kernel, data, pool, engine)));
        let diag: Vec<f64> = match &gram {
            Some(g) => (0..n).map(|i| g[i * n + i]).collect(),
            None => (0..n)
                .map(|i| {
                    let x = data.x(i);
                    let nx = norms.get(i).copied().unwrap_or(0.0);
                    kernel.eval_with_norms(x, nx, x, nx)
                })
                .collect(),
        };
        // Same memory envelope as a full Gram at the limit:
        // cap · n ≤ max(gram_limit, 64)² values.
        let cap = if gram.is_some() {
            0
        } else {
            (gram_limit.max(64).pow(2) / n.max(1)).clamp(8, n)
        };
        KernelCache {
            kernel,
            data,
            engine,
            norms,
            diag,
            gram,
            lanes: RefCell::new(None),
            lru: RefCell::new(RowCache {
                cap,
                stamp: 0,
                rows: HashMap::new(),
            }),
        }
    }

    /// Wrap a synced [`PersistentKernelCache`]: borrow its Gram and
    /// reuse its squared-norm precompute instead of recomputing
    /// either. Caller must have called [`PersistentKernelCache::sync`]
    /// on `cache` with this exact `(kernel, data)` first.
    fn from_persistent(
        kernel: Kernel,
        data: &'a Dataset,
        cache: &'a PersistentKernelCache,
    ) -> Self {
        let n = data.len();
        debug_assert_eq!(cache.len(), n, "persistent cache not synced to dataset");
        let diag: Vec<f64> = (0..n).map(|i| cache.gram[i * n + i]).collect();
        KernelCache {
            kernel,
            data,
            engine: KernelEngine::select(),
            norms: cache.norms.clone(),
            diag,
            gram: Some(GramRef::Borrowed(&cache.gram)),
            lanes: RefCell::new(None),
            lru: RefCell::new(RowCache {
                cap: 0,
                stamp: 0,
                rows: HashMap::new(),
            }),
        }
    }

    /// Interleaved feature-major copy of the whole dataset, built on
    /// first use (LRU regime + lanes engine only).
    fn lanes_buf(&self) -> Rc<Vec<f64>> {
        let mut cell = self.lanes.borrow_mut();
        if let Some(l) = cell.as_ref() {
            return Rc::clone(l);
        }
        let dims = self.data.dims();
        let n = self.data.len();
        let mut flat = Vec::with_capacity(n * dims);
        for i in 0..n {
            flat.extend_from_slice(self.data.x(i));
        }
        let l = Rc::new(interleave_rows(&flat, dims));
        *cell = Some(Rc::clone(&l));
        l
    }

    #[inline]
    fn norm(&self, i: usize) -> f64 {
        self.norms.get(i).copied().unwrap_or(0.0)
    }

    #[inline]
    fn eval_idx(&self, i: usize, j: usize) -> f64 {
        self.kernel
            .eval_with_norms(self.data.x(i), self.norm(i), self.data.x(j), self.norm(j))
    }

    #[inline]
    fn diag(&self, i: usize) -> f64 {
        self.diag[i]
    }

    /// `K(xᵢ, xⱼ)` — Gram lookup, cached-row peek, or direct eval.
    fn pair(&self, i: usize, j: usize) -> f64 {
        match &self.gram {
            Some(g) => g[i * self.data.len() + j],
            None => {
                {
                    let lru = self.lru.borrow();
                    if let Some((_, r)) = lru.rows.get(&i) {
                        return r[j];
                    }
                    if let Some((_, r)) = lru.rows.get(&j) {
                        return r[i];
                    }
                }
                self.eval_idx(i, j)
            }
        }
    }

    /// The full row `K(xᵢ, ·)`, computed and LRU-cached on demand in
    /// the row-cache regime.
    fn row(&self, i: usize) -> RowHandle<'_> {
        let n = self.data.len();
        match &self.gram {
            Some(g) => RowHandle::Slice(&g[i * n..(i + 1) * n]),
            None => {
                if let Some(r) = self.lru.borrow_mut().get(i) {
                    return RowHandle::Shared(r);
                }
                let row = if self.engine == KernelEngine::Lanes && self.data.dims() > 0 {
                    let lanes = self.lanes_buf();
                    let mut out = vec![0.0; n];
                    kernel_rows_lanes(
                        self.kernel,
                        &lanes,
                        self.data.dims(),
                        &self.norms,
                        self.data.x(i),
                        self.norm(i),
                        &mut out,
                    );
                    Rc::new(out)
                } else {
                    Rc::new((0..n).map(|t| self.eval_idx(i, t)).collect::<Vec<f64>>())
                };
                self.lru.borrow_mut().insert(i, Rc::clone(&row));
                RowHandle::Shared(row)
            }
        }
    }

    /// `Σᵢ αᵢyᵢK(i, t)` for each `t` in `targets`, computed in
    /// parallel over targets with a fixed serial summation order per
    /// target — deterministic for every thread count. Used to rebuild
    /// the error cache on warm starts and un-shrinks.
    fn decision_sums(
        &self,
        alpha: &[f64],
        ys: &[f64],
        targets: &[usize],
        pool: &ThreadPool,
    ) -> Vec<f64> {
        let sv: Vec<usize> = (0..alpha.len()).filter(|&i| alpha[i] > 0.0).collect();
        // Capture plain slices (the RefCell row cache is not Sync).
        let kernel = self.kernel;
        let data = self.data;
        let norms = &self.norms;
        let gram = self.gram.as_deref();
        let n = data.len();
        let norm = |i: usize| norms.get(i).copied().unwrap_or(0.0);
        pool.parallel_map(targets.len(), |k| {
            let t = targets[k];
            let mut sum = 0.0;
            match gram {
                Some(g) => {
                    for &i in &sv {
                        sum += alpha[i] * ys[i] * g[i * n + t];
                    }
                }
                None => {
                    let xt = data.x(t);
                    let nt = norm(t);
                    for &i in &sv {
                        sum +=
                            alpha[i] * ys[i] * kernel.eval_with_norms(data.x(i), norm(i), xt, nt);
                    }
                }
            }
            sum
        })
    }
}

/// A trained SVM: support vectors, their signed coefficients
/// `αᵢ yᵢ`, and the bias term.
#[derive(Debug, Clone)]
pub struct SvmModel {
    kernel: Kernel,
    support: Vec<Vec<f64>>,
    coef: Vec<f64>,
    /// `‖svᵢ‖²` for the RBF fast path (empty for other kernels).
    support_norms: Vec<f64>,
    bias: f64,
    dims: usize,
    smo_iters: u64,
    converged: bool,
}

impl SvmModel {
    /// Number of support vectors retained by training.
    pub fn num_support_vectors(&self) -> usize {
        self.support.len()
    }

    /// Number of α-pair optimisation steps training performed
    /// (libsvm-style iteration count; 0 for models reassembled via
    /// [`SvmModel::from_parts`], and near 0 for warm restarts that
    /// only re-verify KKT conditions).
    pub fn smo_iterations(&self) -> u64 {
        self.smo_iters
    }

    /// `false` when training stopped at the `max_iters` divergence
    /// backstop instead of reaching KKT quiescence — the partial
    /// pass's progress is kept, but the model may be short of the
    /// dual optimum. Models reassembled via [`SvmModel::from_parts`]
    /// report `true`.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Bias term `b` of the decision function.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Iterate over `(coefficient αᵢ·yᵢ, support vector)` pairs.
    pub fn support_iter(&self) -> impl Iterator<Item = (f64, &[f64])> {
        self.coef
            .iter()
            .copied()
            .zip(self.support.iter().map(|v| v.as_slice()))
    }

    /// Reassemble a model from raw parts (used by persistence).
    ///
    /// # Panics
    /// Panics if `support` and `coef` lengths differ or any support
    /// vector has the wrong dimensionality.
    pub fn from_parts(
        kernel: Kernel,
        support: Vec<Vec<f64>>,
        coef: Vec<f64>,
        bias: f64,
        dims: usize,
    ) -> SvmModel {
        assert_eq!(support.len(), coef.len(), "support/coef length mismatch");
        assert!(
            support.iter().all(|x| x.len() == dims),
            "support vector dimensionality mismatch"
        );
        let support_norms = support_norms(kernel, &support);
        SvmModel {
            kernel,
            support,
            coef,
            support_norms,
            bias,
            dims,
            smo_iters: 0,
            converged: true,
        }
    }

    /// For a **linear** kernel, reconstruct the explicit weight vector
    /// `w = Σ αᵢ yᵢ xᵢ`. Returns `None` for non-linear kernels where
    /// `w` lives in feature space.
    pub fn linear_weights(&self) -> Option<Vec<f64>> {
        if self.kernel != Kernel::Linear {
            return None;
        }
        let mut w = vec![0.0; self.dims];
        for (sv, &c) in self.support.iter().zip(&self.coef) {
            for (wk, &xk) in w.iter_mut().zip(sv) {
                *wk += c * xk;
            }
        }
        Some(w)
    }
}

impl Classifier for SvmModel {
    fn decision_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims, "input dimensionality mismatch");
        let mut f = self.bias;
        match self.kernel {
            Kernel::Rbf { .. } => {
                // Norm-precomputed path: one dot per support vector.
                let nx = dot(x, x);
                for ((sv, &c), &ns) in self.support.iter().zip(&self.coef).zip(&self.support_norms)
                {
                    f += c * self.kernel.eval_with_norms(sv, ns, x, nx);
                }
            }
            _ => {
                for (sv, &c) in self.support.iter().zip(&self.coef) {
                    f += c * self.kernel.eval(sv, x);
                }
            }
        }
        f
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> Dataset {
        // Two well-separated clusters on the x-axis.
        let mut ds = Dataset::new(2);
        for i in 0..10 {
            ds.push(vec![-3.0 - 0.1 * i as f64, i as f64 * 0.05], Label::Pos);
            ds.push(vec![3.0 + 0.1 * i as f64, -(i as f64) * 0.05], Label::Neg);
        }
        ds
    }

    /// A noisy capacity-region-like dataset big enough to engage
    /// shrinking (n >= SHRINK_MIN_SAMPLES).
    fn capacity_region(n: usize) -> Dataset {
        let mut ds = Dataset::new(3);
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..n {
            let x: Vec<f64> = (0..3).map(|_| (next() % 10) as f64).collect();
            let y = if x.iter().sum::<f64>() <= 13.0 {
                Label::Pos
            } else {
                Label::Neg
            };
            ds.push(x, y);
        }
        ds
    }

    #[test]
    fn separates_linear_clusters_with_linear_kernel() {
        let model = SvmTrainer::new(Kernel::Linear)
            .c(10.0)
            .train(&linearly_separable());
        assert_eq!(model.predict(&[-3.0, 0.0]), Label::Pos);
        assert_eq!(model.predict(&[3.0, 0.0]), Label::Neg);
        // Margin signs on the training data itself.
        for (x, y) in linearly_separable().iter() {
            assert_eq!(model.predict(x), y, "misclassified training point {x:?}");
        }
    }

    #[test]
    fn training_reports_smo_iterations_and_convergence() {
        let model = SvmTrainer::new(Kernel::Linear)
            .c(10.0)
            .train(&linearly_separable());
        assert!(model.smo_iterations() > 0, "real training must iterate");
        assert!(model.converged(), "easy problem must converge");
        let rebuilt = SvmModel::from_parts(Kernel::Linear, Vec::new(), Vec::new(), 1.0, 2);
        assert_eq!(rebuilt.smo_iterations(), 0);
        assert!(rebuilt.converged());
    }

    #[test]
    fn iteration_cap_marks_nonconvergence() {
        let model = SvmTrainer::new(Kernel::rbf(0.5))
            .c(10.0)
            .max_iters(3)
            .train(&linearly_separable());
        assert!(!model.converged(), "capped fit must report nonconvergence");
    }

    #[test]
    fn separates_linear_clusters_with_rbf_kernel() {
        let model = SvmTrainer::new(Kernel::rbf(0.5))
            .c(10.0)
            .train(&linearly_separable());
        for (x, y) in linearly_separable().iter() {
            assert_eq!(model.predict(x), y);
        }
    }

    #[test]
    fn learns_nonlinear_boundary_xor() {
        // XOR demands a non-linear boundary.
        let mut ds = Dataset::new(2);
        for _ in 0..4 {
            ds.push(vec![0.0, 0.0], Label::Pos);
            ds.push(vec![1.0, 1.0], Label::Pos);
            ds.push(vec![0.0, 1.0], Label::Neg);
            ds.push(vec![1.0, 0.0], Label::Neg);
        }
        let model = SvmTrainer::new(Kernel::rbf(4.0)).c(100.0).train(&ds);
        assert_eq!(model.predict(&[0.0, 0.0]), Label::Pos);
        assert_eq!(model.predict(&[1.0, 1.0]), Label::Pos);
        assert_eq!(model.predict(&[0.0, 1.0]), Label::Neg);
        assert_eq!(model.predict(&[1.0, 0.0]), Label::Neg);
    }

    #[test]
    fn learns_capacity_region_like_boundary() {
        // A convex "capacity region": admissible iff 2a + 3b <= 24,
        // the same family of shapes the ExCR takes in Fig. 2c.
        let mut ds = Dataset::new(2);
        for a in 0..12 {
            for b in 0..12 {
                let y = if 2 * a + 3 * b <= 24 {
                    Label::Pos
                } else {
                    Label::Neg
                };
                ds.push(vec![a as f64, b as f64], y);
            }
        }
        let model = SvmTrainer::new(Kernel::rbf(0.05)).c(50.0).train(&ds);
        let mut correct = 0;
        let mut total = 0;
        for (x, y) in ds.iter() {
            total += 1;
            if model.predict(x) == y {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.93, "training accuracy too low: {acc}");
    }

    #[test]
    fn decision_value_sign_matches_predict() {
        let model = SvmTrainer::new(Kernel::Linear).train(&linearly_separable());
        for x in [[-5.0, 1.0], [5.0, -1.0], [0.1, 0.0]] {
            let dv = model.decision_value(&x);
            let p = model.predict(&x);
            assert_eq!(p, Label::from_signum(dv));
        }
    }

    #[test]
    fn one_class_dataset_yields_constant_model() {
        let mut ds = Dataset::new(1);
        ds.push(vec![1.0], Label::Pos);
        ds.push(vec![2.0], Label::Pos);
        let model = SvmTrainer::new(Kernel::Linear).train(&ds);
        assert_eq!(model.predict(&[100.0]), Label::Pos);
        assert_eq!(model.predict(&[-100.0]), Label::Pos);
        assert_eq!(model.num_support_vectors(), 0);
    }

    #[test]
    fn training_is_deterministic() {
        let ds = linearly_separable();
        let m1 = SvmTrainer::new(Kernel::rbf(0.5)).seed(9).train(&ds);
        let m2 = SvmTrainer::new(Kernel::rbf(0.5)).seed(9).train(&ds);
        assert_eq!(m1.bias(), m2.bias());
        assert_eq!(m1.num_support_vectors(), m2.num_support_vectors());
        for x in [[0.5, 0.5], [-2.0, 1.0]] {
            assert_eq!(m1.decision_value(&x), m2.decision_value(&x));
        }
    }

    #[test]
    fn gram_and_on_demand_paths_agree() {
        let ds = linearly_separable();
        let with_gram = SvmTrainer::new(Kernel::rbf(0.5))
            .gram_limit(1000)
            .train(&ds);
        let no_gram = SvmTrainer::new(Kernel::rbf(0.5)).gram_limit(0).train(&ds);
        for x in [[-3.0, 0.0], [3.0, 0.0], [0.0, 0.0]] {
            let a = with_gram.decision_value(&x);
            let b = no_gram.decision_value(&x);
            assert!((a - b).abs() < 1e-9, "gram path diverged: {a} vs {b}");
        }
    }

    #[test]
    fn row_cache_regime_matches_gram_regime_exactly() {
        // Same dataset through the full-Gram and tiny-LRU regimes;
        // every evaluation routes through eval_with_norms either way,
        // so the fits agree bit-for-bit.
        let ds = capacity_region(150);
        let gram = SvmTrainer::new(Kernel::rbf(0.3))
            .c(5.0)
            .gram_limit(4096)
            .train(&ds);
        let lru = SvmTrainer::new(Kernel::rbf(0.3))
            .c(5.0)
            .gram_limit(0)
            .train(&ds);
        assert_eq!(gram.bias().to_bits(), lru.bias().to_bits());
        assert_eq!(gram.num_support_vectors(), lru.num_support_vectors());
        for x in [[1.0, 2.0, 3.0], [5.0, 5.0, 5.0]] {
            assert_eq!(
                gram.decision_value(&x).to_bits(),
                lru.decision_value(&x).to_bits()
            );
        }
    }

    #[test]
    fn shrinking_does_not_change_predictions() {
        let ds = capacity_region(300);
        let on = SvmTrainer::new(Kernel::rbf(0.2)).c(5.0).train(&ds);
        let off = SvmTrainer::new(Kernel::rbf(0.2))
            .c(5.0)
            .shrinking(false)
            .train(&ds);
        let mut agree = 0;
        for (x, _) in ds.iter() {
            if on.predict(x) == off.predict(x) {
                agree += 1;
            }
        }
        // Both converge to the same dual optimum up to tolerance;
        // allow a sliver of boundary cells to differ.
        assert!(
            agree as f64 / ds.len() as f64 > 0.98,
            "shrinking changed {} / {} predictions",
            ds.len() - agree,
            ds.len()
        );
    }

    #[test]
    fn warm_start_from_own_alpha_converges_almost_instantly() {
        let ds = capacity_region(300);
        let trainer = SvmTrainer::new(Kernel::rbf(0.2)).c(5.0);
        let cold = trainer.fit_warm(&ds, None);
        let warm = trainer.fit_warm(&ds, Some(cold.warm_start()));
        assert!(warm.warm_carried > 0, "no multipliers carried");
        assert!(
            warm.model.smo_iterations() < cold.model.smo_iterations() / 2,
            "warm restart should re-verify, not re-optimise: {} !< {}/2",
            warm.model.smo_iterations(),
            cold.model.smo_iterations()
        );
        // Both fits satisfy KKT within tol, so they agree everywhere
        // except (at most) a sliver of boundary cells.
        let agree = ds
            .iter()
            .filter(|(x, _)| warm.model.predict(x) == cold.model.predict(x))
            .count();
        assert!(
            agree as f64 / ds.len() as f64 > 0.98,
            "warm/cold predictions diverged on {} / {} samples",
            ds.len() - agree,
            ds.len()
        );
    }

    #[test]
    fn warm_start_repairs_violated_constraint() {
        // A deliberately unbalanced warm vector (all-ones) violates
        // Σαy = 0; fit_warm must repair it and still learn.
        let ds = linearly_separable();
        let bogus = vec![1.0; ds.len()];
        let fit = SvmTrainer::new(Kernel::rbf(0.5)).c(10.0).fit_warm(
            &ds,
            Some(WarmStart {
                alpha: &bogus,
                bias: 0.0,
            }),
        );
        for (x, y) in ds.iter() {
            assert_eq!(fit.model.predict(x), y);
        }
        let s: f64 = fit
            .alpha
            .iter()
            .enumerate()
            .map(|(i, a)| a * ds.y(i).signum())
            .sum();
        assert!(s.abs() < 1e-6, "equality constraint violated: {s}");
    }

    #[test]
    fn fit_is_thread_count_invariant() {
        let ds = capacity_region(200);
        let fits: Vec<SvmModel> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                SvmTrainer::new(Kernel::rbf(0.2))
                    .c(5.0)
                    .pool(ThreadPool::new(t))
                    .train(&ds)
            })
            .collect();
        for m in &fits[1..] {
            assert_eq!(fits[0].bias().to_bits(), m.bias().to_bits());
            assert_eq!(fits[0].num_support_vectors(), m.num_support_vectors());
            for x in [[0.0, 0.0, 0.0], [4.0, 4.0, 4.0], [9.0, 1.0, 2.0]] {
                assert_eq!(
                    fits[0].decision_value(&x).to_bits(),
                    m.decision_value(&x).to_bits()
                );
            }
        }
    }

    #[test]
    fn linear_weights_reconstruction() {
        let model = SvmTrainer::new(Kernel::Linear)
            .c(10.0)
            .train(&linearly_separable());
        let w = model.linear_weights().expect("linear kernel has weights");
        assert_eq!(w.len(), 2);
        // Boundary is near x0 = 0 with Pos on the negative side, so
        // w0 must be strongly negative relative to w1.
        assert!(w[0] < 0.0);
        assert!(w[0].abs() > w[1].abs());
        // w·x + b must match decision_value for linear kernels.
        let x = [1.5, -0.3];
        let manual = w[0] * x[0] + w[1] * x[1] + model.bias();
        assert!((manual - model.decision_value(&x)).abs() < 1e-9);
    }

    #[test]
    fn rbf_weights_are_none() {
        let model = SvmTrainer::new(Kernel::rbf(1.0)).train(&linearly_separable());
        assert!(model.linear_weights().is_none());
    }

    #[test]
    fn class_weighting_shifts_boundary_toward_minority() {
        // 1 negative vs many positives with overlap; upweighting the
        // negative class must recover its neighbourhood.
        let mut ds = Dataset::new(1);
        for i in 0..20 {
            ds.push(vec![i as f64 * 0.1], Label::Pos);
        }
        ds.push(vec![2.5], Label::Neg);
        ds.push(vec![2.6], Label::Neg);
        let balanced = SvmTrainer::new(Kernel::rbf(2.0)).c(1.0).train(&ds);
        let weighted = SvmTrainer::new(Kernel::rbf(2.0))
            .c(1.0)
            .class_weights(1.0, 10.0)
            .train(&ds);
        let dv_b = balanced.decision_value(&[2.55]);
        let dv_w = weighted.decision_value(&[2.55]);
        assert!(
            dv_w < dv_b,
            "upweighting negatives should push decision value down ({dv_w} !< {dv_b})"
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let ds = Dataset::new(1);
        let _ = SvmTrainer::new(Kernel::Linear).train(&ds);
    }

    #[test]
    fn fit_warm_cached_matches_fit_warm_bitwise() {
        let full = capacity_region(320);
        let mut prefix = Dataset::new(3);
        for (x, y) in full.iter().take(300) {
            prefix.push(x.to_vec(), y);
        }
        let trainer = SvmTrainer::new(Kernel::rbf(0.05)).c(10.0);
        let mut cache = PersistentKernelCache::new();

        let cold = trainer.fit_warm_cached(&prefix, None, &mut cache);
        assert_eq!(cache.len(), 300);
        assert_eq!(cache.last_fresh_rows(), 300, "first sync is a full build");
        let cold_ref = trainer.fit_warm(&prefix, None);
        assert_eq!(cold.model.bias().to_bits(), cold_ref.model.bias().to_bits());

        // Grow by Δ = 20 rows: only the fresh rows may be evaluated,
        // and the fit must be bit-identical to the uncached path.
        let warm = WarmStart {
            alpha: &cold.alpha,
            bias: cold.model.bias(),
        };
        let inc = trainer.fit_warm_cached(&full, Some(warm), &mut cache);
        assert_eq!(cache.len(), 320);
        assert_eq!(cache.last_fresh_rows(), 20, "append must be incremental");
        let warm_ref = WarmStart {
            alpha: &cold.alpha,
            bias: cold.model.bias(),
        };
        let reference = trainer.fit_warm(&full, Some(warm_ref));
        assert_eq!(inc.model.bias().to_bits(), reference.model.bias().to_bits());
        assert_eq!(inc.alpha.len(), reference.alpha.len());
        for (a, b) in inc.alpha.iter().zip(&reference.alpha) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (x, _) in full.iter() {
            assert_eq!(
                inc.model.decision_value(x).to_bits(),
                reference.model.decision_value(x).to_bits()
            );
        }
    }

    #[test]
    fn persistent_cache_truncate_then_resync_is_incremental_and_exact() {
        let data = capacity_region(120);
        let pool = ThreadPool::new(3);
        let kernel = Kernel::rbf(0.1);
        let mut cache = PersistentKernelCache::new();
        cache.sync(kernel, &data, &pool);
        let full_gram = cache.gram.clone();

        cache.truncate(90);
        assert_eq!(cache.len(), 90);
        let fresh = cache.sync(kernel, &data, &pool);
        assert_eq!(fresh, 30, "resync after truncate recomputes only Δ");
        assert_eq!(cache.gram.len(), full_gram.len());
        for (a, b) in cache.gram.iter().zip(&full_gram) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "incremental gram must match full build"
            );
        }
    }

    #[test]
    fn persistent_cache_invalidates_on_changed_prefix_and_kernel() {
        let data = capacity_region(60);
        let pool = ThreadPool::new(2);
        let kernel = Kernel::rbf(0.1);
        let mut cache = PersistentKernelCache::new();
        cache.sync(kernel, &data, &pool);
        assert_eq!(
            cache.sync(kernel, &data, &pool),
            0,
            "unchanged store is free"
        );

        // A changed interior row (compaction, scaler refit) forces a
        // full rebuild.
        let mut changed = Dataset::new(3);
        for (i, (x, y)) in data.iter().enumerate() {
            let mut x = x.to_vec();
            if i == 10 {
                x[0] += 1.0;
            }
            changed.push(x, y);
        }
        assert_eq!(
            cache.sync(kernel, &changed, &pool),
            60,
            "changed prefix rebuilds"
        );

        // A kernel change also rebuilds.
        assert_eq!(cache.sync(Kernel::rbf(0.2), &changed, &pool), 60);
        assert_eq!(cache.last_fresh_rows(), 60);
    }
}
