//! Property-based tests for exbox-ml invariants.

use exbox_ml::prelude::*;
use proptest::prelude::*;

fn finite_vec(dims: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, dims)
}

proptest! {
    /// RBF kernel values always lie in [0, 1] (0 only by floating-point
    /// underflow at extreme distances) and K(x,x) == 1.
    #[test]
    fn rbf_kernel_bounded(x in finite_vec(4), z in finite_vec(4), gamma in 0.01f64..5.0) {
        let k = Kernel::rbf(gamma);
        let v = k.eval(&x, &z);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "K = {v}");
        prop_assert!((k.eval(&x, &x) - 1.0).abs() < 1e-12);
    }

    /// Kernels are symmetric.
    #[test]
    fn kernel_symmetry(x in finite_vec(3), z in finite_vec(3), gamma in 0.01f64..2.0) {
        for k in [Kernel::Linear, Kernel::rbf(gamma), Kernel::poly(gamma, 1.0, 2)] {
            prop_assert!((k.eval(&x, &z) - k.eval(&z, &x)).abs() < 1e-9);
        }
    }

    /// StandardScaler output has ~zero mean and ~unit variance on each
    /// non-constant column of the data it was fitted on.
    #[test]
    fn scaler_normalises(rows in prop::collection::vec(finite_vec(3), 5..40)) {
        let mut ds = Dataset::new(3);
        for r in &rows {
            ds.push(r.clone(), Label::Pos);
        }
        let scaler = StandardScaler::fit(&ds);
        let t = scaler.transform_dataset(&ds);
        let n = t.len() as f64;
        for col in 0..3 {
            let vals: Vec<f64> = (0..t.len()).map(|i| t.x(i)[col]).collect();
            let mean = vals.iter().sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-6, "column {col} mean {mean}");
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            // Either ~unit variance or a constant column (var 0).
            prop_assert!((var - 1.0).abs() < 1e-6 || var < 1e-6, "column {col} var {var}");
        }
    }

    /// Confusion-matrix metrics are always in [0, 1].
    #[test]
    fn metrics_bounded(tp in 0u64..500, fp in 0u64..500, tn in 0u64..500, fn_ in 0u64..500) {
        let cm = ConfusionMatrix { tp, fp, tn, fn_ };
        let m = cm.metrics();
        for v in [m.precision, m.recall, m.accuracy, m.f1] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
        }
    }

    /// An SVM trained on well-separated clusters classifies cluster
    /// centroids correctly regardless of where the clusters sit.
    #[test]
    fn svm_separates_arbitrary_separated_clusters(
        centre in -20.0f64..20.0,
        gap in 4.0f64..20.0,
        jitter in 0.0f64..0.5,
    ) {
        let mut ds = Dataset::new(1);
        for i in 0..8 {
            let e = jitter * ((i % 3) as f64 - 1.0);
            ds.push(vec![centre - gap / 2.0 + e], Label::Pos);
            ds.push(vec![centre + gap / 2.0 + e], Label::Neg);
        }
        let model = SvmTrainer::new(Kernel::Linear).c(10.0).train(&ds);
        prop_assert_eq!(model.predict(&[centre - gap / 2.0]), Label::Pos);
        prop_assert_eq!(model.predict(&[centre + gap / 2.0]), Label::Neg);
    }

    /// Dataset shuffling never loses or duplicates samples.
    #[test]
    fn shuffle_preserves_multiset(vals in prop::collection::vec(-50.0f64..50.0, 1..60), seed in any::<u64>()) {
        let mut ds = Dataset::new(1);
        for &v in &vals {
            ds.push(vec![v], Label::Pos);
        }
        let mut shuffled = ds.clone();
        shuffled.shuffle(seed);
        let mut a: Vec<f64> = (0..ds.len()).map(|i| ds.x(i)[0]).collect();
        let mut b: Vec<f64> = (0..shuffled.len()).map(|i| shuffled.x(i)[0]).collect();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        prop_assert_eq!(a, b);
    }

    /// Fold indices always partition the dataset.
    #[test]
    fn folds_partition(n_samples in 2usize..50, folds in 2usize..10) {
        prop_assume!(folds <= n_samples);
        let mut ds = Dataset::new(1);
        for i in 0..n_samples {
            ds.push(vec![i as f64], Label::Pos);
        }
        let fs = ds.fold_indices(folds);
        let mut all: Vec<usize> = fs.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..n_samples).collect();
        prop_assert_eq!(all, expect);
    }

    /// The zero-allocation scaler path is bit-identical to the
    /// allocating one.
    #[test]
    fn scaler_transform_into_matches_transform(
        rows in prop::collection::vec(finite_vec(3), 2..20),
        q in finite_vec(3),
    ) {
        let mut ds = Dataset::new(3);
        for r in &rows {
            ds.push(r.clone(), Label::Pos);
        }
        let s = StandardScaler::fit(&ds);
        let heap = s.transform(&q);
        let mut stack = [0.0f64; 3];
        s.transform_into(&q, &mut stack);
        for (a, b) in heap.iter().zip(&stack) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Logistic-regression probabilities are monotone in the decision
    /// value and bounded.
    #[test]
    fn logreg_probability_monotone(a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let mut ds = Dataset::new(1);
        for i in 0..6 {
            ds.push(vec![-1.0 - i as f64 * 0.3], Label::Pos);
            ds.push(vec![1.0 + i as f64 * 0.3], Label::Neg);
        }
        let m = LogisticRegressionTrainer::new().epochs(100).train(&ds);
        let (lo, hi) = if m.decision_value(&[a]) <= m.decision_value(&[b]) { (a, b) } else { (b, a) };
        prop_assert!(m.probability(&[lo]) <= m.probability(&[hi]) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&m.probability(&[a])));
    }
}

// SVM training is the expensive part of these properties, so they run
// in their own block with a reduced case count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CompactSvm decisions are bit-exact with the source SvmModel for
    /// the kernel-expansion kernels (RBF / polynomial) on arbitrary
    /// training data and query points.
    #[test]
    fn compact_svm_matches_model_bitwise(
        rows in prop::collection::vec(finite_vec(3), 8..20),
        queries in prop::collection::vec(finite_vec(3), 1..4),
        gamma in 0.05f64..2.0,
    ) {
        let mut ds = Dataset::new(3);
        for (i, r) in rows.iter().enumerate() {
            // Alternating labels guarantee both classes are present.
            let y = if i % 2 == 0 { Label::Pos } else { Label::Neg };
            ds.push(r.clone(), y);
        }
        for kernel in [Kernel::rbf(gamma), Kernel::poly(gamma, 1.0, 2)] {
            // fast-math builds approximate the Lanes-engine RBF exp and
            // explicitly forfeit bit-equality; refuse to certify them.
            if matches!(kernel, Kernel::Rbf { .. }) && !exbox_ml::determinism_guaranteed() {
                continue;
            }
            let model = SvmTrainer::new(kernel).c(5.0).train(&ds);
            let compact = model.compact();
            for q in &queries {
                prop_assert_eq!(
                    model.decision_value(q).to_bits(),
                    compact.decision_value(q).to_bits(),
                    "compact diverged for {:?} at {:?}", kernel, q
                );
            }
        }
    }

    /// The collapsed linear form agrees with the naive kernel
    /// expansion to floating-point round-off and never flips a label
    /// away from the margin.
    #[test]
    fn compact_linear_collapse_agrees(
        rows in prop::collection::vec(finite_vec(3), 8..20),
        queries in prop::collection::vec(finite_vec(3), 1..4),
    ) {
        let mut ds = Dataset::new(3);
        for (i, r) in rows.iter().enumerate() {
            let y = if i % 2 == 0 { Label::Pos } else { Label::Neg };
            ds.push(r.clone(), y);
        }
        let model = SvmTrainer::new(Kernel::Linear).c(5.0).train(&ds);
        let compact = model.compact();
        prop_assert!(compact.is_collapsed());
        for q in &queries {
            let naive = model.decision_value(q);
            let fast = compact.decision_value(q);
            // Support vectors and queries are bounded by ±100, so an
            // absolute tolerance scaled by the margin magnitude holds.
            prop_assert!(
                (naive - fast).abs() <= 1e-7 * (1.0 + naive.abs()),
                "collapsed linear diverged at {:?}: {} vs {}", q, naive, fast
            );
        }
    }
}
