//! Property tests for the retrain fast path (DESIGN.md §8): the
//! persistent incremental kernel cache and the lane-blocked Gram
//! engine must be bit-identical to the scalar full-rebuild reference
//! under every mutation sequence a bounded sample store can produce —
//! appends, label flips and seeded compactions in any order.

use exbox_ml::prelude::*;
use exbox_ml::{gram_matrix, gram_matrix_with_engine, PersistentKernelCache};
use exbox_par::ThreadPool;
use proptest::prelude::*;

const DIMS: usize = 4;

fn finite_vec(dims: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, dims)
}

/// The kernel matrix exercised by `gram_and_on_demand_paths_agree`
/// and the engine unit tests: one of each family plus degree/width
/// variants.
fn kernels() -> [Kernel; 5] {
    [
        Kernel::Linear,
        Kernel::rbf(0.5),
        Kernel::rbf_default(DIMS),
        Kernel::poly(0.5, 1.0, 2),
        Kernel::poly(0.3, 0.5, 4),
    ]
}

/// One mutation of a sample store, as the admittance classifier
/// produces them.
#[derive(Debug, Clone)]
enum Op {
    /// Append fresh rows (labels alternate).
    Append(Vec<Vec<f64>>),
    /// Flip one sample's label — features unchanged, so the Gram must
    /// survive untouched.
    Flip(usize),
    /// Seeded stratum-free reservoir compaction down to `keep`
    /// survivors in store order.
    Compact { seed: u64, keep: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(finite_vec(DIMS), 1..8).prop_map(Op::Append),
        prop::collection::vec(finite_vec(DIMS), 1..8).prop_map(Op::Append),
        (0usize..64).prop_map(Op::Flip),
        (0u64..u64::MAX, 2usize..32).prop_map(|(seed, keep)| Op::Compact { seed, keep }),
    ]
}

fn apply(store: &mut Vec<(Vec<f64>, Label)>, op: &Op) {
    match op {
        Op::Append(rows) => {
            for r in rows {
                let label = if store.len().is_multiple_of(2) {
                    Label::Pos
                } else {
                    Label::Neg
                };
                store.push((r.clone(), label));
            }
        }
        Op::Flip(i) => {
            if !store.is_empty() {
                let i = i % store.len();
                store[i].1 = match store[i].1 {
                    Label::Pos => Label::Neg,
                    Label::Neg => Label::Pos,
                };
            }
        }
        Op::Compact { seed, keep } => {
            if store.len() <= *keep {
                return;
            }
            // Partial Fisher-Yates over the indices, survivors kept in
            // store order — the classifier's compaction shape.
            let mut idx: Vec<usize> = (0..store.len()).collect();
            let mut state = *seed | 1;
            let n = idx.len();
            for i in 0..*keep {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                let j = i + (r % (n - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(*keep);
            idx.sort_unstable();
            *store = idx.iter().map(|&i| store[i].clone()).collect();
        }
    }
}

fn dataset(store: &[(Vec<f64>, Label)]) -> Dataset {
    let mut ds = Dataset::new(DIMS);
    for (x, y) in store {
        ds.push(x.clone(), *y);
    }
    ds
}

proptest! {
    /// Tentpole invariant: after ANY sequence of appends, label flips
    /// and compactions, the incrementally-maintained Gram is bit-equal
    /// to a scalar from-scratch rebuild, label flips cost zero fresh
    /// rows, and clean appends cost exactly Δ.
    #[test]
    fn incremental_gram_matches_full_rebuild_bitwise(
        initial in prop::collection::vec(finite_vec(DIMS), 1..12),
        ops in prop::collection::vec(op_strategy(), 1..10),
        kernel_idx in 0usize..5,
    ) {
        let kernel = kernels()[kernel_idx];
        let pool = ThreadPool::new(2);
        let mut cache = PersistentKernelCache::new();
        let mut store: Vec<(Vec<f64>, Label)> = Vec::new();
        apply(&mut store, &Op::Append(initial));
        cache.sync(kernel, &dataset(&store), &pool);

        for op in &ops {
            let before = store.len();
            apply(&mut store, op);
            let ds = dataset(&store);
            let fresh = cache.sync(kernel, &ds, &pool);
            match op {
                Op::Flip(_) => prop_assert_eq!(
                    fresh, 0,
                    "label flips leave the (label-independent) Gram valid"
                ),
                Op::Append(rows) => prop_assert_eq!(
                    fresh, rows.len(),
                    "a clean append evaluates exactly the new rows"
                ),
                Op::Compact { .. } => prop_assert!(
                    fresh <= store.len(),
                    "compaction may rebuild, never more than the store"
                ),
            }
            prop_assert!(store.len() <= before || matches!(op, Op::Append(_)));
            let reference = gram_matrix(kernel, &ds, &pool);
            prop_assert_eq!(cache.gram().len(), reference.len());
            for (a, b) in cache.gram().iter().zip(&reference) {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "incremental Gram diverged from full rebuild"
                );
            }
        }
    }

    /// Engine invariant: the lane-blocked Gram builder is bit-equal to
    /// the scalar one on every kernel in the matrix, on both build
    /// configs (the lanes code is always compiled; the `simd` feature
    /// only changes the default selection).
    #[test]
    fn lanes_and_scalar_gram_agree_bitwise(
        rows in prop::collection::vec(finite_vec(DIMS), 1..40),
        threads in 1usize..4,
    ) {
        let mut ds = Dataset::new(DIMS);
        for (i, r) in rows.iter().enumerate() {
            ds.push(r.clone(), if i % 2 == 0 { Label::Pos } else { Label::Neg });
        }
        let pool = ThreadPool::new(threads);
        for kernel in kernels() {
            let scalar = gram_matrix_with_engine(kernel, &ds, &pool, KernelEngine::Scalar);
            let lanes = gram_matrix_with_engine(kernel, &ds, &pool, KernelEngine::Lanes);
            let plain = gram_matrix(kernel, &ds, &pool);
            for ((a, b), c) in scalar.iter().zip(&lanes).zip(&plain) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "lanes diverged under {:?}", kernel);
                prop_assert_eq!(a.to_bits(), c.to_bits(), "engine wrapper diverged");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end: a cached warm fit after a random mutation history
    /// is bit-identical to the uncached trainer on the same store.
    #[test]
    fn cached_fit_matches_uncached_after_mutations(
        initial in prop::collection::vec(finite_vec(DIMS), 8..24),
        ops in prop::collection::vec(op_strategy(), 1..6),
        kernel_idx in 0usize..5,
    ) {
        let kernel = kernels()[kernel_idx];
        let trainer = SvmTrainer::new(kernel).c(5.0);
        let mut cache = PersistentKernelCache::new();
        let mut store: Vec<(Vec<f64>, Label)> = Vec::new();
        apply(&mut store, &Op::Append(initial));
        let mut prev: Option<SvmFit> = None;
        for op in &ops {
            apply(&mut store, op);
            let ds = dataset(&store);
            let warm = prev.as_ref().filter(|f| f.alpha.len() == ds.len()).map(|f| WarmStart {
                alpha: &f.alpha,
                bias: f.model.bias(),
            });
            let warm2 = warm;
            let cached = trainer.fit_warm_cached(&ds, warm, &mut cache);
            let direct = trainer.fit_warm(&ds, warm2);
            prop_assert_eq!(cached.model.bias().to_bits(), direct.model.bias().to_bits());
            for (a, b) in cached.alpha.iter().zip(&direct.alpha) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "alphas diverged");
            }
            for (x, _) in ds.iter() {
                prop_assert_eq!(
                    cached.model.decision_value(x).to_bits(),
                    direct.model.decision_value(x).to_bits(),
                    "cached decision diverged"
                );
            }
            prev = Some(cached);
        }
    }
}
