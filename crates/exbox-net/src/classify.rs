//! Early traffic classification.
//!
//! ExBox "assumes a priori knowledge of the application class to which
//! a flow belongs" (paper §7) and leans on the early-classification
//! literature (their refs 41, 58, 69, 47, 42, 67, 54, 32, 33):
//! the first few packets of a flow are enough to identify the
//! application, even for encrypted traffic, because sizes, directions
//! and timing leak the application's shape. This module implements
//! such a classifier: a server-endpoint hint map (the DNS/SNI prior
//! every production classifier leans on — video CDNs, conferencing
//! relays and web origins are disjoint endpoint sets) backed by
//! statistical features over the first `N` packets fed to a
//! nearest-centroid model for unknown endpoints.
//!
//! §4.2 of the paper: "a flow needs to be admitted briefly before any
//! admission control decision is made" — mirrored here by
//! [`EarlyClassifier::observe`] returning `None` until it has seen
//! enough packets and `Some(class)` exactly once thereafter.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::packet::{Direction, FlowKey, Packet};

/// Lazily-bound global counters (classification fires once per flow,
/// so a relaxed atomic behind a `OnceLock` is plenty).
mod metrics {
    use std::sync::{Arc, OnceLock};

    use exbox_obs::Counter;

    /// `net.flows_classified` — flows that received a class.
    pub fn classified() -> &'static Arc<Counter> {
        static C: OnceLock<Arc<Counter>> = OnceLock::new();
        C.get_or_init(|| exbox_obs::global().counter("net.flows_classified"))
    }

    /// `net.hint_classified` — flows classified via the endpoint prior.
    pub fn hint_classified() -> &'static Arc<Counter> {
        static C: OnceLock<Arc<Counter>> = OnceLock::new();
        C.get_or_init(|| exbox_obs::global().counter("net.hint_classified"))
    }
}
use crate::time::Instant;

/// Application classes used throughout the reproduction — the three
/// classes the paper evaluates (§5.2): their QoE depends on different
/// underlying network attributes (latency for web, throughput for
/// streaming, both for conferencing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppClass {
    /// Web browsing; QoE metric: page load time.
    Web,
    /// Video streaming (YouTube-like); QoE metric: startup delay.
    Streaming,
    /// Video conferencing (Skype/Hangouts-like); QoE metric: PSNR.
    Conferencing,
}

impl AppClass {
    /// All classes in canonical order (matches the paper's traffic
    /// matrix ordering `<a_web, a_streaming, a_conferencing>`).
    pub const ALL: [AppClass; 3] = [AppClass::Web, AppClass::Streaming, AppClass::Conferencing];

    /// Number of application classes (`k` in the paper's notation).
    pub const COUNT: usize = 3;

    /// Canonical index in `0..COUNT`.
    pub const fn index(self) -> usize {
        match self {
            AppClass::Web => 0,
            AppClass::Streaming => 1,
            AppClass::Conferencing => 2,
        }
    }

    /// Inverse of [`AppClass::index`].
    ///
    /// # Panics
    /// Panics if `i >= COUNT`.
    pub fn from_index(i: usize) -> AppClass {
        Self::ALL[i]
    }

    /// Short lowercase name (stable; used in CSV output).
    pub const fn name(self) -> &'static str {
        match self {
            AppClass::Web => "web",
            AppClass::Streaming => "streaming",
            AppClass::Conferencing => "conferencing",
        }
    }
}

impl std::fmt::Display for AppClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Statistical features over the first packets of a flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowFeatures {
    /// Mean downlink packet size in bytes.
    pub mean_down_size: f64,
    /// Standard deviation of downlink packet sizes.
    pub std_down_size: f64,
    /// Mean inter-arrival time between consecutive packets, ms.
    pub mean_iat_ms: f64,
    /// Uplink-to-total packet-count ratio in `[0, 1]`.
    pub uplink_ratio: f64,
    /// Coefficient of variation of inter-arrival times (std/mean) —
    /// the burstiness signature that separates paced media streams
    /// (≈0) from request/response traffic and framed video (≫1).
    pub iat_cov: f64,
}

/// One observed packet: arrival time, size in bytes, direction.
pub type PacketRecord = (Instant, u32, Direction);

impl FlowFeatures {
    /// Compute features from packet records (any direction mix).
    ///
    /// # Panics
    /// Panics if `packets` is empty.
    pub fn from_packets(packets: &[PacketRecord]) -> FlowFeatures {
        assert!(!packets.is_empty(), "need at least one packet");
        let down: Vec<f64> = packets
            .iter()
            .filter(|(_, _, d)| *d == Direction::Downlink)
            .map(|(_, s, _)| *s as f64)
            .collect();
        let (mean_down_size, std_down_size) = if down.is_empty() {
            (0.0, 0.0)
        } else {
            let m = down.iter().sum::<f64>() / down.len() as f64;
            let v = down.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / down.len() as f64;
            (m, v.sqrt())
        };
        let mut iats = Vec::new();
        for w in packets.windows(2) {
            iats.push(w[1].0.saturating_since(w[0].0).as_secs_f64() * 1e3);
        }
        let (mean_iat_ms, iat_cov) = if iats.is_empty() {
            (0.0, 0.0)
        } else {
            let m = iats.iter().sum::<f64>() / iats.len() as f64;
            let var = iats.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / iats.len() as f64;
            let cov = if m > 1e-9 { var.sqrt() / m } else { 0.0 };
            (m, cov)
        };
        let ups = packets
            .iter()
            .filter(|(_, _, d)| *d == Direction::Uplink)
            .count();
        FlowFeatures {
            mean_down_size,
            std_down_size,
            mean_iat_ms,
            uplink_ratio: ups as f64 / packets.len() as f64,
            iat_cov,
        }
    }

    /// Feature vector used for centroid distance (normalised scales:
    /// sizes /1500, IAT /100 ms, CoV /4 so all coordinates are O(1)).
    fn as_vector(&self) -> [f64; 5] {
        [
            self.mean_down_size / 1500.0,
            self.std_down_size / 1500.0,
            self.mean_iat_ms / 100.0,
            self.uplink_ratio,
            self.iat_cov / 4.0,
        ]
    }
}

/// Per-class centroid in normalised feature space.
#[derive(Debug, Clone, Copy)]
struct Profile {
    class: AppClass,
    centroid: [f64; 5],
}

/// Early flow classifier: buffers the first `window` packets of each
/// flow, then emits a one-shot classification.
#[derive(Debug)]
pub struct EarlyClassifier {
    window: usize,
    profiles: Vec<Profile>,
    /// Server-endpoint prior learned at training time: flows to a
    /// known video CDN / conferencing relay / web origin classify by
    /// endpoint, as production classifiers do via DNS/SNI.
    server_hints: HashMap<Ipv4Addr, AppClass>,
    pending: HashMap<FlowKey, Vec<PacketRecord>>,
    decided: HashMap<FlowKey, AppClass>,
}

impl EarlyClassifier {
    /// Classifier with hand-built default profiles matched to the
    /// three workload generators in `exbox-traffic`:
    ///
    /// * web — mixed sizes, bursty, notable uplink share (requests),
    /// * streaming — MTU-sized downlink, tight spacing within chunks,
    /// * conferencing — mid-size frames at a steady ≈20–30 ms cadence.
    pub fn with_default_profiles(window: usize) -> Self {
        assert!(window >= 2, "classification window needs >= 2 packets");
        EarlyClassifier {
            window,
            profiles: vec![
                Profile {
                    class: AppClass::Web,
                    // The burstiness coordinate is window-length dependent, so the
                    // hand-built defaults keep it neutral; trained centroids use it.
                    centroid: [700.0 / 1500.0, 450.0 / 1500.0, 12.0 / 100.0, 0.30, 0.5],
                },
                Profile {
                    class: AppClass::Streaming,
                    centroid: [1400.0 / 1500.0, 120.0 / 1500.0, 3.0 / 100.0, 0.05, 0.5],
                },
                Profile {
                    class: AppClass::Conferencing,
                    centroid: [1000.0 / 1500.0, 220.0 / 1500.0, 25.0 / 100.0, 0.10, 0.5],
                },
            ],
            server_hints: HashMap::new(),
            pending: HashMap::new(),
            decided: HashMap::new(),
        }
    }

    /// Train centroids from labelled example flows, replacing the
    /// defaults. Each example is (class, packets-of-one-flow).
    /// Endpoint hints are *not* learnt through this entry point (the
    /// tuples carry no addresses); see
    /// [`EarlyClassifier::learn_server_hint`].
    ///
    /// # Panics
    /// Panics if any class has no examples or any example is empty.
    pub fn train(window: usize, examples: &[(AppClass, Vec<PacketRecord>)]) -> Self {
        assert!(window >= 2, "classification window needs >= 2 packets");
        let mut sums: HashMap<AppClass, ([f64; 5], usize)> = HashMap::new();
        for (class, pkts) in examples {
            let truncated: Vec<_> = pkts.iter().copied().take(window).collect();
            let v = FlowFeatures::from_packets(&truncated).as_vector();
            let entry = sums.entry(*class).or_insert(([0.0; 5], 0));
            for (acc, x) in entry.0.iter_mut().zip(v) {
                *acc += x;
            }
            entry.1 += 1;
        }
        let mut profiles = Vec::new();
        for class in AppClass::ALL {
            let (sum, n) = sums
                .get(&class)
                .unwrap_or_else(|| panic!("no training examples for {class}"));
            let mut centroid = [0.0; 5];
            for k in 0..5 {
                centroid[k] = sum[k] / *n as f64;
            }
            profiles.push(Profile { class, centroid });
        }
        EarlyClassifier {
            window,
            profiles,
            server_hints: HashMap::new(),
            pending: HashMap::new(),
            decided: HashMap::new(),
        }
    }

    /// Register a known server endpoint (the DNS/SNI prior): flows to
    /// this address classify by endpoint without waiting for the full
    /// statistical window.
    pub fn learn_server_hint(&mut self, server: Ipv4Addr, class: AppClass) {
        self.server_hints.insert(server, class);
    }

    /// Number of registered endpoint hints.
    pub fn num_server_hints(&self) -> usize {
        self.server_hints.len()
    }

    /// Feed one packet. Returns `Some(class)` exactly once per flow —
    /// immediately for known endpoints, otherwise on the packet that
    /// completes its statistical window.
    pub fn observe(&mut self, pkt: &Packet) -> Option<AppClass> {
        if self.decided.contains_key(&pkt.flow) {
            return None;
        }
        if let Some(&class) = self.server_hints.get(&pkt.flow.server_ip) {
            self.pending.remove(&pkt.flow);
            self.decided.insert(pkt.flow, class);
            metrics::hint_classified().inc();
            metrics::classified().inc();
            return Some(class);
        }
        let buf = self.pending.entry(pkt.flow).or_default();
        buf.push((pkt.timestamp, pkt.size, pkt.direction));
        if buf.len() < self.window {
            return None;
        }
        let feats = FlowFeatures::from_packets(buf);
        let class = self.classify_features(&feats);
        self.pending.remove(&pkt.flow);
        self.decided.insert(pkt.flow, class);
        metrics::classified().inc();
        Some(class)
    }

    /// Classify a feature vector directly (nearest centroid).
    pub fn classify_features(&self, feats: &FlowFeatures) -> AppClass {
        let v = feats.as_vector();
        self.profiles
            .iter()
            .min_by(|a, b| {
                let da: f64 = a
                    .centroid
                    .iter()
                    .zip(&v)
                    .map(|(c, x)| (c - x) * (c - x))
                    .sum();
                let db: f64 = b
                    .centroid
                    .iter()
                    .zip(&v)
                    .map(|(c, x)| (c - x) * (c - x))
                    .sum();
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("profiles non-empty")
            .class
    }

    /// The class previously decided for a flow, if any.
    pub fn class_of(&self, key: &FlowKey) -> Option<AppClass> {
        self.decided.get(key).copied()
    }

    /// Drop state for a finished flow.
    pub fn forget(&mut self, key: &FlowKey) {
        self.pending.remove(key);
        self.decided.remove(key);
    }

    /// Number of packets buffered before deciding.
    pub fn window(&self) -> usize {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Protocol;

    fn mk_pkt(key: FlowKey, ms: u64, size: u32, dir: Direction) -> Packet {
        Packet::new(Instant::from_millis(ms), size, key, dir, 0)
    }

    /// Streaming-shaped flow: MTU downlink packets, 2 ms apart.
    fn streaming_packets(key: FlowKey, n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| mk_pkt(key, 2 * i as u64, 1400, Direction::Downlink))
            .collect()
    }

    /// Conferencing-shaped flow: ~1000 B frames, 25 ms apart.
    fn conferencing_packets(key: FlowKey, n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| mk_pkt(key, 25 * i as u64, 1000, Direction::Downlink))
            .collect()
    }

    /// Web-shaped flow: small uplink requests then mixed responses.
    fn web_packets(key: FlowKey, n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    mk_pkt(key, 12 * i as u64, 250, Direction::Uplink)
                } else {
                    mk_pkt(
                        key,
                        12 * i as u64,
                        300 + 700 * (i as u32 % 2),
                        Direction::Downlink,
                    )
                }
            })
            .collect()
    }

    #[test]
    fn app_class_index_roundtrip() {
        for c in AppClass::ALL {
            assert_eq!(AppClass::from_index(c.index()), c);
        }
        assert_eq!(AppClass::COUNT, 3);
    }

    #[test]
    fn classifies_each_default_shape() {
        let mut clf = EarlyClassifier::with_default_profiles(8);
        let cases = [
            (
                streaming_packets(FlowKey::synthetic(1, 1, 1, Protocol::Tcp), 8),
                AppClass::Streaming,
            ),
            (
                conferencing_packets(FlowKey::synthetic(2, 2, 2, Protocol::Udp), 8),
                AppClass::Conferencing,
            ),
            (
                web_packets(FlowKey::synthetic(3, 3, 3, Protocol::Tcp), 8),
                AppClass::Web,
            ),
        ];
        for (pkts, expect) in cases {
            let mut decided = None;
            for p in &pkts {
                if let Some(c) = clf.observe(p) {
                    decided = Some(c);
                }
            }
            assert_eq!(decided, Some(expect));
        }
    }

    #[test]
    fn decision_is_one_shot_per_flow() {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        let mut clf = EarlyClassifier::with_default_profiles(4);
        let pkts = streaming_packets(key, 10);
        let decisions: Vec<_> = pkts.iter().filter_map(|p| clf.observe(p)).collect();
        assert_eq!(decisions.len(), 1);
        assert_eq!(clf.class_of(&key), Some(AppClass::Streaming));
    }

    #[test]
    fn no_decision_before_window_fills() {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        let mut clf = EarlyClassifier::with_default_profiles(6);
        for p in streaming_packets(key, 5) {
            assert_eq!(clf.observe(&p), None);
        }
        assert_eq!(clf.class_of(&key), None);
    }

    #[test]
    fn trained_profiles_beat_arbitrary_shapes() {
        // Train on deliberately odd shapes the defaults would confuse.
        let mk = |ms_step: u64, size: u32| -> Vec<PacketRecord> {
            (0..8)
                .map(|i| (Instant::from_millis(ms_step * i), size, Direction::Downlink))
                .collect()
        };
        let examples = vec![
            (AppClass::Web, mk(1, 60)),
            (AppClass::Streaming, mk(50, 600)),
            (AppClass::Conferencing, mk(200, 1500)),
        ];
        let clf = EarlyClassifier::train(8, &examples);
        let f = FlowFeatures::from_packets(&mk(200, 1500));
        assert_eq!(clf.classify_features(&f), AppClass::Conferencing);
        let f = FlowFeatures::from_packets(&mk(1, 60));
        assert_eq!(clf.classify_features(&f), AppClass::Web);
    }

    #[test]
    fn forget_allows_reclassification() {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        let mut clf = EarlyClassifier::with_default_profiles(4);
        for p in streaming_packets(key, 4) {
            clf.observe(&p);
        }
        assert!(clf.class_of(&key).is_some());
        clf.forget(&key);
        assert_eq!(clf.class_of(&key), None);
    }

    #[test]
    fn features_from_mixed_directions() {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        let pkts = vec![
            (Instant::from_millis(0), 100u32, Direction::Uplink),
            (Instant::from_millis(10), 1000, Direction::Downlink),
            (Instant::from_millis(20), 1000, Direction::Downlink),
            (Instant::from_millis(30), 100, Direction::Uplink),
        ];
        let _ = key;
        let f = FlowFeatures::from_packets(&pkts);
        assert_eq!(f.mean_down_size, 1000.0);
        assert_eq!(f.uplink_ratio, 0.5);
        assert!((f.mean_iat_ms - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn empty_features_panic() {
        let _ = FlowFeatures::from_packets(&[]);
    }
}
