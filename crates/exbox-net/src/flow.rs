//! Gateway flow table.
//!
//! The middlebox watches every packet crossing the gateway and keeps
//! per-flow accounting — the passive, network-side view that the
//! paper's blackbox stance requires ("the network must be probed to
//! learn its characteristics", §2.1). The table also performs idle
//! eviction so long-running gateways do not accumulate dead flows.

use std::collections::HashMap;

use crate::packet::{Direction, FlowKey, Packet};
use crate::time::{Duration, Instant};

/// Accumulated statistics for one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStats {
    /// First packet timestamp.
    pub first_seen: Instant,
    /// Most recent packet timestamp.
    pub last_seen: Instant,
    /// Packets counted per direction (uplink, downlink).
    pub packets_up: u64,
    /// Downlink packet count.
    pub packets_down: u64,
    /// Uplink byte count.
    pub bytes_up: u64,
    /// Downlink byte count.
    pub bytes_down: u64,
}

impl FlowStats {
    fn new(ts: Instant) -> Self {
        FlowStats {
            first_seen: ts,
            last_seen: ts,
            packets_up: 0,
            packets_down: 0,
            bytes_up: 0,
            bytes_down: 0,
        }
    }

    /// Total packets in both directions.
    pub fn packets(&self) -> u64 {
        self.packets_up + self.packets_down
    }

    /// Total bytes in both directions.
    pub fn bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    /// Flow age from first to last packet.
    pub fn duration(&self) -> Duration {
        self.last_seen.saturating_since(self.first_seen)
    }

    /// Mean downlink throughput in bits/s over the flow lifetime.
    /// Zero-length flows report 0 rather than dividing by zero.
    pub fn mean_downlink_bps(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes_down as f64 * 8.0 / secs
        }
    }
}

/// Flow table keyed by 5-tuple.
#[derive(Debug, Default)]
pub struct FlowTable {
    flows: HashMap<FlowKey, FlowStats>,
}

impl FlowTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one packet, creating the flow entry on first sight.
    /// Returns `true` when this packet created a new flow — the signal
    /// the middlebox uses to kick off classification and admission.
    pub fn observe(&mut self, pkt: &Packet) -> bool {
        let is_new = !self.flows.contains_key(&pkt.flow);
        let stats = self
            .flows
            .entry(pkt.flow)
            .or_insert_with(|| FlowStats::new(pkt.timestamp));
        stats.last_seen = stats.last_seen.max(pkt.timestamp);
        match pkt.direction {
            Direction::Uplink => {
                stats.packets_up += 1;
                stats.bytes_up += pkt.size as u64;
            }
            Direction::Downlink => {
                stats.packets_down += 1;
                stats.bytes_down += pkt.size as u64;
            }
        }
        is_new
    }

    /// Look up a flow's stats.
    pub fn get(&self, key: &FlowKey) -> Option<&FlowStats> {
        self.flows.get(key)
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// `true` when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Remove a flow explicitly (e.g. when the admission controller
    /// discontinues it). Returns the final stats if it existed.
    pub fn remove(&mut self, key: &FlowKey) -> Option<FlowStats> {
        self.flows.remove(key)
    }

    /// Evict flows idle since before `now − idle_timeout`; returns the
    /// evicted `(key, stats)` pairs sorted by key for deterministic
    /// iteration order downstream.
    pub fn evict_idle(
        &mut self,
        now: Instant,
        idle_timeout: Duration,
    ) -> Vec<(FlowKey, FlowStats)> {
        let cutoff = Instant::from_nanos(now.as_nanos().saturating_sub(idle_timeout.as_nanos()));
        let dead: Vec<FlowKey> = self
            .flows
            .iter()
            .filter(|(_, s)| s.last_seen < cutoff)
            .map(|(k, _)| *k)
            .collect();
        let mut out: Vec<(FlowKey, FlowStats)> = dead
            .into_iter()
            .map(|k| {
                let s = self.flows.remove(&k).expect("key collected above");
                (k, s)
            })
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Iterate over all `(key, stats)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, &FlowStats)> {
        self.flows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Protocol;

    fn pkt(ts_ms: u64, size: u32, flow_id: u32, dir: Direction) -> Packet {
        Packet::new(
            Instant::from_millis(ts_ms),
            size,
            FlowKey::synthetic(1, flow_id, 1, Protocol::Udp),
            dir,
            0,
        )
    }

    #[test]
    fn observe_creates_then_updates() {
        let mut t = FlowTable::new();
        assert!(t.observe(&pkt(0, 100, 1, Direction::Downlink)));
        assert!(!t.observe(&pkt(10, 200, 1, Direction::Downlink)));
        assert!(t.observe(&pkt(20, 300, 2, Direction::Uplink)));
        assert_eq!(t.len(), 2);
        let s = t.get(&FlowKey::synthetic(1, 1, 1, Protocol::Udp)).unwrap();
        assert_eq!(s.packets_down, 2);
        assert_eq!(s.bytes_down, 300);
        assert_eq!(s.packets_up, 0);
        assert_eq!(s.duration(), Duration::from_millis(10));
    }

    #[test]
    fn direction_accounting_is_separate() {
        let mut t = FlowTable::new();
        t.observe(&pkt(0, 100, 1, Direction::Uplink));
        t.observe(&pkt(1, 900, 1, Direction::Downlink));
        let s = t.get(&FlowKey::synthetic(1, 1, 1, Protocol::Udp)).unwrap();
        assert_eq!(s.bytes_up, 100);
        assert_eq!(s.bytes_down, 900);
        assert_eq!(s.packets(), 2);
        assert_eq!(s.bytes(), 1000);
    }

    #[test]
    fn mean_downlink_bps() {
        let mut t = FlowTable::new();
        t.observe(&pkt(0, 1250, 1, Direction::Downlink));
        t.observe(&pkt(1000, 1250, 1, Direction::Downlink));
        let s = t.get(&FlowKey::synthetic(1, 1, 1, Protocol::Udp)).unwrap();
        // 2500 bytes over 1 s = 20 kbps.
        assert!((s.mean_downlink_bps() - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_flow_reports_zero_rate() {
        let mut t = FlowTable::new();
        t.observe(&pkt(5, 100, 1, Direction::Downlink));
        let s = t.get(&FlowKey::synthetic(1, 1, 1, Protocol::Udp)).unwrap();
        assert_eq!(s.mean_downlink_bps(), 0.0);
    }

    #[test]
    fn evict_idle_removes_only_stale() {
        let mut t = FlowTable::new();
        t.observe(&pkt(0, 100, 1, Direction::Downlink));
        t.observe(&pkt(5_000, 100, 2, Direction::Downlink));
        let evicted = t.evict_idle(Instant::from_millis(6_000), Duration::from_millis(2_000));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, FlowKey::synthetic(1, 1, 1, Protocol::Udp));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn evict_idle_handles_timeout_longer_than_clock() {
        let mut t = FlowTable::new();
        t.observe(&pkt(100, 100, 1, Direction::Downlink));
        let evicted = t.evict_idle(Instant::from_millis(200), Duration::from_secs(60));
        assert!(evicted.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_returns_stats() {
        let mut t = FlowTable::new();
        t.observe(&pkt(0, 42, 1, Direction::Uplink));
        let s = t
            .remove(&FlowKey::synthetic(1, 1, 1, Protocol::Udp))
            .unwrap();
        assert_eq!(s.bytes_up, 42);
        assert!(t.is_empty());
    }

    #[test]
    fn out_of_order_timestamps_do_not_regress_last_seen() {
        let mut t = FlowTable::new();
        t.observe(&pkt(100, 10, 1, Direction::Downlink));
        t.observe(&pkt(50, 10, 1, Direction::Downlink));
        let s = t.get(&FlowKey::synthetic(1, 1, 1, Protocol::Udp)).unwrap();
        assert_eq!(s.last_seen, Instant::from_millis(100));
    }
}
