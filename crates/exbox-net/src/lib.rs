//! # exbox-net — gateway datapath substrate
//!
//! ExBox is deployed as a middlebox collocated with gateway devices
//! (paper Fig. 1): a WiFi controller or LTE PDN gateway through which
//! all client traffic flows. This crate is that datapath, built from
//! scratch:
//!
//! * [`time`] — nanosecond-precision simulated clock types shared by
//!   the whole workspace.
//! * [`packet`] — packets and 5-tuple flow keys.
//! * [`flow`] — the gateway flow table with per-flow accounting and
//!   idle eviction (the paper's `tcpdump`-style passive monitoring).
//! * [`qos`] — per-flow QoS meters: throughput, delay, loss, and the
//!   paper's scalar `QoS = throughput / delay` index (§5.3).
//! * [`shaper`] — token-bucket rate limiting plus netem-style constant
//!   delay and random loss; stands in for the paper's use of the Linux
//!   `tc`/`netem` utilities to throttle testbeds (Fig. 11, Fig. 12).
//! * [`classify`] — early traffic classification from the first few
//!   packets of a flow (the paper assumes such a module, citing its
//!   refs. 41, 58, 69, …; §4.2 "a flow needs to be admitted briefly before
//!   any admission control decision is made").
//! * [`pcap`] — classic-format pcap writer/reader so datapath traffic
//!   can be dumped and replayed, mirroring the paper's
//!   `tcpdump`/`tcpreplay` workflow.

pub mod classify;
pub mod flow;
pub mod packet;
pub mod pcap;
pub mod qos;
pub mod shaper;
pub mod time;

pub use classify::{AppClass, EarlyClassifier, FlowFeatures};
pub use flow::{FlowStats, FlowTable};
pub use packet::{Direction, FlowKey, Packet, Protocol};
pub use qos::{QosMeter, QosSample};
pub use shaper::{NetemLink, TokenBucket};
pub use time::{Duration, Instant};
