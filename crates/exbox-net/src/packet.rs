//! Packets and flow keys.
//!
//! The datapath models packets as metadata records — timestamp, size,
//! 5-tuple, direction — rather than byte buffers. Everything the
//! middlebox does (flow accounting, QoS metering, classification,
//! shaping, admission) depends only on this metadata; the paper's own
//! classification citations note the techniques "work for encrypted
//! traffic as well", i.e. they never inspect payloads either. The
//! [`crate::pcap`] module synthesises real header bytes when a trace
//! must leave the process.

use std::fmt;
use std::net::Ipv4Addr;

use crate::time::Instant;

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// Transmission Control Protocol (IP proto 6).
    Tcp,
    /// User Datagram Protocol (IP proto 17).
    Udp,
}

impl Protocol {
    /// The IPv4 protocol number.
    pub const fn ip_proto(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }

    /// Parse from an IPv4 protocol number.
    pub const fn from_ip_proto(p: u8) -> Option<Self> {
        match p {
            6 => Some(Protocol::Tcp),
            17 => Some(Protocol::Udp),
            _ => None,
        }
    }
}

/// Direction of a packet relative to the wireless client:
/// downlink is gateway → client (the dominant direction for the
/// paper's workloads; §6.2 "we only use the downlink flows").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → network.
    Uplink,
    /// Network → client.
    Downlink,
}

impl Direction {
    /// The opposite direction.
    pub const fn reverse(self) -> Self {
        match self {
            Direction::Uplink => Direction::Downlink,
            Direction::Downlink => Direction::Uplink,
        }
    }
}

/// Canonical 5-tuple identifying a flow. By convention `client_*` is
/// the wireless-device side and `server_*` the remote side, so one key
/// covers both directions of the conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Wireless client address.
    pub client_ip: Ipv4Addr,
    /// Client-side transport port.
    pub client_port: u16,
    /// Remote server address.
    pub server_ip: Ipv4Addr,
    /// Server-side transport port.
    pub server_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FlowKey {
    /// Construct a flow key.
    pub fn new(
        client_ip: Ipv4Addr,
        client_port: u16,
        server_ip: Ipv4Addr,
        server_port: u16,
        protocol: Protocol,
    ) -> Self {
        FlowKey {
            client_ip,
            client_port,
            server_ip,
            server_port,
            protocol,
        }
    }

    /// A synthetic key for simulations: client `10.0.c.d`, server
    /// `192.168.1.s`, ports derived from the ids. Distinct ids give
    /// distinct keys.
    pub fn synthetic(client_id: u32, flow_id: u32, server_id: u8, protocol: Protocol) -> Self {
        FlowKey {
            client_ip: Ipv4Addr::new(10, 0, (client_id >> 8) as u8, client_id as u8),
            client_port: 40_000 + (flow_id % 20_000) as u16,
            server_ip: Ipv4Addr::new(192, 168, 1, server_id),
            server_port: 443,
            protocol,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} <-> {}:{}/{}",
            self.client_ip,
            self.client_port,
            self.server_ip,
            self.server_port,
            match self.protocol {
                Protocol::Tcp => "tcp",
                Protocol::Udp => "udp",
            }
        )
    }
}

/// One packet observed at the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// When the packet crossed the observation point.
    pub timestamp: Instant,
    /// Total size on the wire in bytes (IP header included).
    pub size: u32,
    /// Owning flow.
    pub flow: FlowKey,
    /// Travel direction.
    pub direction: Direction,
    /// Monotone per-flow sequence number (used for loss accounting).
    pub seq: u64,
}

impl Packet {
    /// Construct a packet record.
    pub fn new(
        timestamp: Instant,
        size: u32,
        flow: FlowKey,
        direction: Direction,
        seq: u64,
    ) -> Self {
        Packet {
            timestamp,
            size,
            flow,
            direction,
            seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_numbers_roundtrip() {
        for p in [Protocol::Tcp, Protocol::Udp] {
            assert_eq!(Protocol::from_ip_proto(p.ip_proto()), Some(p));
        }
        assert_eq!(Protocol::from_ip_proto(1), None);
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::Uplink.reverse().reverse(), Direction::Uplink);
        assert_eq!(Direction::Downlink.reverse(), Direction::Uplink);
    }

    #[test]
    fn synthetic_keys_distinct() {
        let a = FlowKey::synthetic(1, 1, 1, Protocol::Udp);
        let b = FlowKey::synthetic(1, 2, 1, Protocol::Udp);
        let c = FlowKey::synthetic(2, 1, 1, Protocol::Udp);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_key_encodes_client_id_beyond_u8() {
        let k = FlowKey::synthetic(300, 0, 1, Protocol::Tcp);
        assert_eq!(k.client_ip, Ipv4Addr::new(10, 0, 1, 44));
    }

    #[test]
    fn display_formats() {
        let k = FlowKey::synthetic(1, 1, 2, Protocol::Tcp);
        let s = format!("{k}");
        assert!(s.contains("tcp"));
        assert!(s.contains("192.168.1.2:443"));
    }
}
