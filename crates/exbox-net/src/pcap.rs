//! Classic-format pcap trace I/O.
//!
//! The paper's methodology leans on `tcpdump` captures and
//! `tcpreplay` injection (§5.1, §6.2). This module provides the
//! equivalent: datapath [`Packet`] records can be dumped to a
//! libpcap-classic file and read back. Files use the nanosecond magic
//! (`0xa1b23c4d`) to preserve full [`Instant`] resolution and
//! `LINKTYPE_RAW` (101) frames: a bare IPv4 header plus UDP/TCP
//! header, snap-length captured (payload bytes are not materialised;
//! the original length rides in `orig_len` / the IP total-length
//! field, exactly like a `tcpdump -s 64` capture).
//!
//! Conventions for round-tripping datapath metadata:
//!
//! * the client side of a [`FlowKey`] is whichever endpoint lies in
//!   `10.0.0.0/8` (the synthetic client range); packets sourced there
//!   are uplink,
//! * the low 16 bits of the per-flow sequence number ride in the IPv4
//!   identification field (higher bits are not representable and are
//!   lost on round-trip).

use std::io::{self, Read, Write};
use std::net::Ipv4Addr;

use crate::packet::{Direction, FlowKey, Packet, Protocol};
use crate::time::Instant;

/// Nanosecond-resolution classic pcap magic.
const MAGIC_NS: u32 = 0xa1b2_3c4d;
/// Microsecond-resolution magic (accepted on read).
const MAGIC_US: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets start with the IPv4 header.
const LINKTYPE_RAW: u32 = 101;
const IPV4_HEADER_LEN: usize = 20;
const UDP_HEADER_LEN: usize = 8;
const TCP_HEADER_LEN: usize = 20;

/// Streaming pcap writer.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    out: W,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&MAGIC_NS.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter { out })
    }

    /// Append one packet record.
    pub fn write_packet(&mut self, pkt: &Packet) -> io::Result<()> {
        let headers = synthesize_headers(pkt);
        let ns = pkt.timestamp.as_nanos();
        let (sec, nsec) = ((ns / 1_000_000_000) as u32, (ns % 1_000_000_000) as u32);
        self.out.write_all(&sec.to_le_bytes())?;
        self.out.write_all(&nsec.to_le_bytes())?;
        self.out.write_all(&(headers.len() as u32).to_le_bytes())?;
        // orig_len carries the true on-wire size (snap capture).
        let orig = (pkt.size as usize).max(headers.len()) as u32;
        self.out.write_all(&orig.to_le_bytes())?;
        self.out.write_all(&headers)?;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Build the snap-captured header bytes for a packet.
fn synthesize_headers(pkt: &Packet) -> Vec<u8> {
    let (src, dst, sport, dport) = match pkt.direction {
        Direction::Uplink => (
            pkt.flow.client_ip,
            pkt.flow.server_ip,
            pkt.flow.client_port,
            pkt.flow.server_port,
        ),
        Direction::Downlink => (
            pkt.flow.server_ip,
            pkt.flow.client_ip,
            pkt.flow.server_port,
            pkt.flow.client_port,
        ),
    };
    let transport_len = match pkt.flow.protocol {
        Protocol::Udp => UDP_HEADER_LEN,
        Protocol::Tcp => TCP_HEADER_LEN,
    };
    let mut buf = Vec::with_capacity(IPV4_HEADER_LEN + transport_len);

    // --- IPv4 header ---
    buf.push(0x45); // version 4, IHL 5
    buf.push(0); // DSCP/ECN
    let total_len = (pkt.size as usize).max(IPV4_HEADER_LEN + transport_len) as u16;
    buf.extend_from_slice(&total_len.to_be_bytes());
    buf.extend_from_slice(&(pkt.seq as u16).to_be_bytes()); // identification
    buf.extend_from_slice(&0u16.to_be_bytes()); // flags/fragment
    buf.push(64); // TTL
    buf.push(pkt.flow.protocol.ip_proto());
    buf.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    buf.extend_from_slice(&src.octets());
    buf.extend_from_slice(&dst.octets());
    // Fill in the header checksum.
    let csum = ipv4_checksum(&buf[..IPV4_HEADER_LEN]);
    buf[10..12].copy_from_slice(&csum.to_be_bytes());

    // --- transport header ---
    match pkt.flow.protocol {
        Protocol::Udp => {
            buf.extend_from_slice(&sport.to_be_bytes());
            buf.extend_from_slice(&dport.to_be_bytes());
            let udp_len = (total_len as usize - IPV4_HEADER_LEN) as u16;
            buf.extend_from_slice(&udp_len.to_be_bytes());
            buf.extend_from_slice(&0u16.to_be_bytes()); // checksum omitted
        }
        Protocol::Tcp => {
            buf.extend_from_slice(&sport.to_be_bytes());
            buf.extend_from_slice(&dport.to_be_bytes());
            buf.extend_from_slice(&(pkt.seq as u32).to_be_bytes()); // seq
            buf.extend_from_slice(&0u32.to_be_bytes()); // ack
            buf.push(0x50); // data offset 5
            buf.push(0x10); // ACK flag
            buf.extend_from_slice(&0xFFFFu16.to_be_bytes()); // window
            buf.extend_from_slice(&0u16.to_be_bytes()); // checksum
            buf.extend_from_slice(&0u16.to_be_bytes()); // urgent
        }
    }
    buf
}

/// RFC 1071 internet checksum over a header slice.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Streaming pcap reader for files produced by [`PcapWriter`] (and
/// any LINKTYPE_RAW classic capture with IPv4 + UDP/TCP packets).
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    input: R,
    ns_resolution: bool,
}

impl<R: Read> PcapReader<R> {
    /// Open a reader, validating the global header.
    ///
    /// # Errors
    /// Returns `InvalidData` on a bad magic or non-RAW link type.
    pub fn new(mut input: R) -> io::Result<Self> {
        let mut hdr = [0u8; 24];
        input.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let ns_resolution = match magic {
            MAGIC_NS => true,
            MAGIC_US => false,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unsupported pcap magic {magic:#x}"),
                ))
            }
        };
        let linktype = u32::from_le_bytes([hdr[20], hdr[21], hdr[22], hdr[23]]);
        if linktype != LINKTYPE_RAW {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported link type {linktype} (want LINKTYPE_RAW)"),
            ));
        }
        Ok(PcapReader {
            input,
            ns_resolution,
        })
    }

    /// Read the next packet; `Ok(None)` at clean EOF.
    ///
    /// # Errors
    /// `InvalidData` for malformed records or unsupported protocols.
    pub fn read_packet(&mut self) -> io::Result<Option<Packet>> {
        let mut rec = [0u8; 16];
        match self.input.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let sec = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]) as u64;
        let frac = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]) as u64;
        let incl = u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]]) as usize;
        let orig = u32::from_le_bytes([rec[12], rec[13], rec[14], rec[15]]);
        let nanos = sec * 1_000_000_000
            + if self.ns_resolution {
                frac
            } else {
                frac * 1_000
            };

        let mut data = vec![0u8; incl];
        self.input.read_exact(&mut data)?;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if data.len() < IPV4_HEADER_LEN || data[0] >> 4 != 4 {
            return Err(bad("not an IPv4 packet"));
        }
        let ihl = ((data[0] & 0x0F) as usize) * 4;
        if data.len() < ihl + 4 {
            return Err(bad("truncated transport header"));
        }
        let proto = Protocol::from_ip_proto(data[9]).ok_or_else(|| bad("unsupported protocol"))?;
        let ident = u16::from_be_bytes([data[4], data[5]]);
        let src = Ipv4Addr::new(data[12], data[13], data[14], data[15]);
        let dst = Ipv4Addr::new(data[16], data[17], data[18], data[19]);
        let sport = u16::from_be_bytes([data[ihl], data[ihl + 1]]);
        let dport = u16::from_be_bytes([data[ihl + 2], data[ihl + 3]]);

        // Client-side convention: 10.0.0.0/8 addresses are clients.
        let (direction, flow) = if src.octets()[0] == 10 {
            (
                Direction::Uplink,
                FlowKey::new(src, sport, dst, dport, proto),
            )
        } else {
            (
                Direction::Downlink,
                FlowKey::new(dst, dport, src, sport, proto),
            )
        };
        Ok(Some(Packet {
            timestamp: Instant::from_nanos(nanos),
            size: orig,
            flow,
            direction,
            seq: ident as u64,
        }))
    }

    /// Collect all remaining packets.
    pub fn read_all(&mut self) -> io::Result<Vec<Packet>> {
        let mut out = Vec::new();
        while let Some(p) = self.read_packet()? {
            out.push(p);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        let udp = FlowKey::synthetic(3, 7, 1, Protocol::Udp);
        let tcp = FlowKey::synthetic(4, 8, 2, Protocol::Tcp);
        vec![
            Packet::new(
                Instant::from_nanos(123_456_789),
                1400,
                udp,
                Direction::Downlink,
                5,
            ),
            Packet::new(Instant::from_millis(200), 60, udp, Direction::Uplink, 6),
            Packet::new(Instant::from_secs(3), 900, tcp, Direction::Downlink, 7),
        ]
    }

    fn roundtrip(pkts: &[Packet]) -> Vec<Packet> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for p in pkts {
            w.write_packet(p).unwrap();
        }
        let bytes = w.finish().unwrap();
        PcapReader::new(&bytes[..]).unwrap().read_all().unwrap()
    }

    #[test]
    fn roundtrip_preserves_metadata() {
        let pkts = sample_packets();
        let back = roundtrip(&pkts);
        assert_eq!(back.len(), pkts.len());
        for (a, b) in pkts.iter().zip(&back) {
            assert_eq!(a.timestamp, b.timestamp, "timestamp");
            assert_eq!(a.size, b.size, "size");
            assert_eq!(a.flow, b.flow, "flow key");
            assert_eq!(a.direction, b.direction, "direction");
            assert_eq!(a.seq & 0xFFFF, b.seq, "sequence (low 16 bits)");
        }
    }

    #[test]
    fn global_header_is_valid_classic_pcap() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 24);
        assert_eq!(
            u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            MAGIC_NS
        );
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 4);
    }

    #[test]
    fn checksum_matches_reference_vector() {
        // Reference example from RFC 1071 discussions: a known header.
        let mut hdr = vec![
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let sum = ipv4_checksum(&hdr);
        assert_eq!(sum, 0xb861);
        // Verifying: with the checksum in place, the sum is zero.
        hdr[10..12].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(ipv4_checksum(&hdr), 0);
    }

    #[test]
    fn written_ipv4_checksum_validates() {
        let p = sample_packets()[0];
        let hdr = synthesize_headers(&p);
        assert_eq!(ipv4_checksum(&hdr[..IPV4_HEADER_LEN]), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = [0u8; 24];
        let err = PcapReader::new(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_record_is_error() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(&sample_packets()[0]).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 3);
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert!(r.read_packet().is_err());
    }

    #[test]
    fn empty_capture_reads_empty() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        let pkts = PcapReader::new(&bytes[..]).unwrap().read_all().unwrap();
        assert!(pkts.is_empty());
    }

    #[test]
    fn small_packet_size_clamps_to_header_length() {
        // A 10-byte "packet" can't be smaller than its headers; the
        // writer clamps orig_len so the file stays self-consistent.
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Udp);
        let p = Packet::new(Instant::ZERO, 10, key, Direction::Uplink, 0);
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(&p).unwrap();
        let bytes = w.finish().unwrap();
        let back = PcapReader::new(&bytes[..]).unwrap().read_all().unwrap();
        assert_eq!(back[0].size as usize, IPV4_HEADER_LEN + UDP_HEADER_LEN);
    }
}
