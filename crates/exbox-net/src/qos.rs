//! Per-flow QoS metering.
//!
//! The QoE Estimator needs network-side QoS measurements: the paper
//! models "QoS … as the ratio of average throughput to delay" (§5.3)
//! and polls "throughput, delay, loss" when re-evaluating admitted
//! flows (§4.3). [`QosMeter`] accumulates those three quantities for
//! one flow from delivery/drop events, and [`QosSample`] is the
//! snapshot handed to the estimator.

use crate::time::{Duration, Instant};

/// Lazily-bound global counters for the per-packet metering path: a
/// `OnceLock` read plus one relaxed atomic add per event.
mod metrics {
    use std::sync::{Arc, OnceLock};

    use exbox_obs::Counter;

    /// `net.deliveries` — packets metered as delivered, all flows.
    pub fn deliveries() -> &'static Arc<Counter> {
        static C: OnceLock<Arc<Counter>> = OnceLock::new();
        C.get_or_init(|| exbox_obs::global().counter("net.deliveries"))
    }

    /// `net.drops` — packets metered as dropped, all flows.
    pub fn drops() -> &'static Arc<Counter> {
        static C: OnceLock<Arc<Counter>> = OnceLock::new();
        C.get_or_init(|| exbox_obs::global().counter("net.drops"))
    }
}

/// Snapshot of a flow's QoS over an observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSample {
    /// Average delivered throughput in bits per second.
    pub throughput_bps: f64,
    /// Mean one-way delay of delivered packets.
    pub mean_delay: Duration,
    /// Fraction of packets dropped, in `[0, 1]`.
    pub loss_ratio: f64,
}

impl QosSample {
    /// The paper's scalar QoS index: average throughput divided by
    /// delay (bits/s per second of delay). Returns 0 for an idle flow
    /// and caps at `f64::MAX` rather than dividing by zero when no
    /// delay has been observed.
    pub fn qos_index(&self) -> f64 {
        let d = self.mean_delay.as_secs_f64();
        if self.throughput_bps <= 0.0 {
            0.0
        } else if d <= 0.0 {
            f64::MAX
        } else {
            self.throughput_bps / d
        }
    }

    /// Normalise the QoS index onto `[0, 1]` against a reference
    /// "excellent" index (values above the reference clamp to 1). The
    /// motivation study (Fig. 2) normalises QoE the same way.
    pub fn normalized_qos(&self, reference_index: f64) -> f64 {
        assert!(
            reference_index > 0.0,
            "reference QoS index must be positive"
        );
        (self.qos_index() / reference_index).clamp(0.0, 1.0)
    }
}

/// Accumulator for one flow's QoS statistics.
///
/// Feed it [`QosMeter::deliver`] for each packet that reached the
/// client and [`QosMeter::drop_packet`] for each loss; snapshot with
/// [`QosMeter::sample`]. `reset()` begins a fresh window, which the
/// middlebox does at each periodic poll.
#[derive(Debug, Clone)]
pub struct QosMeter {
    window_start: Option<Instant>,
    last_delivery: Option<Instant>,
    bytes: u64,
    delivered: u64,
    dropped: u64,
    delay_sum: Duration,
}

impl Default for QosMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl QosMeter {
    /// Fresh meter with an empty window.
    pub fn new() -> Self {
        QosMeter {
            window_start: None,
            last_delivery: None,
            bytes: 0,
            delivered: 0,
            dropped: 0,
            delay_sum: Duration::ZERO,
        }
    }

    /// Record a delivered packet: `sent` / `received` timestamps at
    /// the two ends of the measured segment, `size` bytes on the wire.
    ///
    /// The throughput window opens at the first *send* time so a
    /// single packet still has a meaningful (transmission-delay-long)
    /// window.
    pub fn deliver(&mut self, sent: Instant, received: Instant, size: u32) {
        if self.window_start.is_none() {
            self.window_start = Some(sent);
        }
        self.last_delivery = Some(match self.last_delivery {
            Some(prev) => prev.max(received),
            None => received,
        });
        self.bytes += size as u64;
        self.delivered += 1;
        self.delay_sum += received.saturating_since(sent);
        metrics::deliveries().inc();
    }

    /// Record a dropped packet.
    pub fn drop_packet(&mut self) {
        self.dropped += 1;
        metrics::drops().inc();
    }

    /// Number of delivered packets in the current window.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of dropped packets in the current window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Snapshot the current window. An idle meter reports all-zero
    /// QoS (and loss 0 — no evidence either way).
    pub fn sample(&self) -> QosSample {
        let total = self.delivered + self.dropped;
        let loss_ratio = if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        };
        let mean_delay = if self.delivered == 0 {
            Duration::ZERO
        } else {
            self.delay_sum / self.delivered
        };
        let throughput_bps = match (self.window_start, self.last_delivery) {
            (Some(start), Some(end)) => {
                let span = end.saturating_since(start).as_secs_f64();
                if span > 0.0 {
                    self.bytes as f64 * 8.0 / span
                } else {
                    0.0
                }
            }
            _ => 0.0,
        };
        QosSample {
            throughput_bps,
            mean_delay,
            loss_ratio,
        }
    }

    /// Clear the window and start accumulating afresh.
    pub fn reset(&mut self) {
        *self = QosMeter::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_meter_reports_zeros() {
        let s = QosMeter::new().sample();
        assert_eq!(s.throughput_bps, 0.0);
        assert_eq!(s.mean_delay, Duration::ZERO);
        assert_eq!(s.loss_ratio, 0.0);
        assert_eq!(s.qos_index(), 0.0);
    }

    #[test]
    fn throughput_over_window() {
        let mut m = QosMeter::new();
        // 1250 bytes sent at t=0 delivered t=10ms; another at t=1s.
        m.deliver(Instant::ZERO, Instant::from_millis(10), 1250);
        m.deliver(Instant::from_millis(990), Instant::from_secs(1), 1250);
        let s = m.sample();
        // 2500 bytes over 1 s window = 20 kbps.
        assert!((s.throughput_bps - 20_000.0).abs() < 1e-6);
        assert_eq!(s.mean_delay, Duration::from_millis(10));
    }

    #[test]
    fn loss_ratio_counts_drops() {
        let mut m = QosMeter::new();
        m.deliver(Instant::ZERO, Instant::from_millis(1), 100);
        m.drop_packet();
        m.drop_packet();
        m.deliver(Instant::from_millis(2), Instant::from_millis(3), 100);
        let s = m.sample();
        assert!((s.loss_ratio - 0.5).abs() < 1e-12);
        assert_eq!(m.delivered(), 2);
        assert_eq!(m.dropped(), 2);
    }

    #[test]
    fn qos_index_is_throughput_over_delay() {
        let s = QosSample {
            throughput_bps: 1_000_000.0,
            mean_delay: Duration::from_millis(100),
            loss_ratio: 0.0,
        };
        assert!((s.qos_index() - 10_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn qos_index_zero_delay_is_capped_not_nan() {
        let s = QosSample {
            throughput_bps: 1.0,
            mean_delay: Duration::ZERO,
            loss_ratio: 0.0,
        };
        assert_eq!(s.qos_index(), f64::MAX);
    }

    #[test]
    fn normalized_qos_clamps() {
        let s = QosSample {
            throughput_bps: 1_000_000.0,
            mean_delay: Duration::from_millis(100),
            loss_ratio: 0.0,
        };
        let idx = s.qos_index();
        assert!((s.normalized_qos(idx * 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.normalized_qos(idx / 2.0), 1.0);
    }

    #[test]
    fn reset_clears_window() {
        let mut m = QosMeter::new();
        m.deliver(Instant::ZERO, Instant::from_millis(5), 500);
        m.drop_packet();
        m.reset();
        let s = m.sample();
        assert_eq!(s.loss_ratio, 0.0);
        assert_eq!(s.throughput_bps, 0.0);
    }

    #[test]
    fn out_of_order_delivery_keeps_window_monotone() {
        let mut m = QosMeter::new();
        m.deliver(Instant::ZERO, Instant::from_millis(100), 100);
        m.deliver(Instant::from_millis(10), Instant::from_millis(50), 100);
        let s = m.sample();
        // Window stays [0, 100ms].
        assert!((s.throughput_bps - 200.0 * 8.0 / 0.1).abs() < 1e-6);
    }
}
