//! Traffic shaping: token bucket + netem-style impairments.
//!
//! The paper shapes its testbeds with the Linux `tc` and `netem`
//! utilities — throttling bandwidth, adding latency and injecting
//! loss — to (a) sweep QoS profiles for IQX model fitting (Fig. 12)
//! and (b) change network behaviour mid-run to test online adaptation
//! (Fig. 11). [`NetemLink`] is the equivalent knob in this codebase:
//! a deterministic, seeded model of a shaped bottleneck link.

use crate::time::{Duration, Instant};

/// Classic token-bucket rate limiter.
///
/// Tokens are bytes; the bucket refills at `rate_bps / 8` bytes per
/// second up to `burst_bytes`. A packet conforms when enough tokens
/// are available at its arrival instant.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: u64,
    burst_bytes: u64,
    tokens: f64,
    last_update: Instant,
}

impl TokenBucket {
    /// Create a bucket that starts full.
    ///
    /// # Panics
    /// Panics if `rate_bps == 0` or `burst_bytes == 0`.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Self {
        assert!(rate_bps > 0, "rate must be positive");
        assert!(burst_bytes > 0, "burst must be positive");
        TokenBucket {
            rate_bps,
            burst_bytes,
            tokens: burst_bytes as f64,
            last_update: Instant::ZERO,
        }
    }

    /// Refill tokens up to `now`. Out-of-order calls are ignored
    /// (time never flows backwards for the bucket).
    fn refill(&mut self, now: Instant) {
        if now <= self.last_update {
            return;
        }
        let elapsed = (now - self.last_update).as_secs_f64();
        self.tokens =
            (self.tokens + elapsed * self.rate_bps as f64 / 8.0).min(self.burst_bytes as f64);
        self.last_update = now;
    }

    /// Try to send `size` bytes at `now`; returns `true` and consumes
    /// tokens when the packet conforms.
    pub fn try_consume(&mut self, now: Instant, size: u32) -> bool {
        self.refill(now);
        if self.tokens >= size as f64 {
            self.tokens -= size as f64;
            true
        } else {
            false
        }
    }

    /// Current token level in bytes (after refilling to `now`).
    pub fn tokens_at(&mut self, now: Instant) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Configured rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }
}

/// A shaped bottleneck link: serialisation at a configured rate
/// through a FIFO of bounded depth, plus constant added delay and
/// Bernoulli random loss — the `tc tbf` + `netem delay/loss`
/// combination from the paper's methodology.
#[derive(Debug, Clone)]
pub struct NetemLink {
    rate_bps: u64,
    added_delay: Duration,
    loss_prob: f64,
    queue_limit_bytes: u64,
    /// Time at which the serialiser frees up.
    busy_until: Instant,
    /// Bytes currently queued (including the packet in service).
    queued_bytes: u64,
    rng_state: u64,
}

/// Outcome of offering one packet to a [`NetemLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Packet will be delivered at the contained instant.
    Deliver(Instant),
    /// Packet was dropped by random loss.
    RandomLoss,
    /// Packet was dropped because the queue overflowed.
    QueueOverflow,
}

impl NetemLink {
    /// Create a link.
    ///
    /// * `rate_bps` — serialisation rate (0 is invalid).
    /// * `added_delay` — constant propagation delay added to every
    ///   delivered packet.
    /// * `loss_prob` — i.i.d. drop probability in `[0, 1)`.
    /// * `queue_limit_bytes` — FIFO depth; arrivals beyond it tail-drop.
    /// * `seed` — RNG seed for the loss process.
    ///
    /// # Panics
    /// Panics on a zero rate, an out-of-range loss probability, or a
    /// zero queue limit.
    pub fn new(
        rate_bps: u64,
        added_delay: Duration,
        loss_prob: f64,
        queue_limit_bytes: u64,
        seed: u64,
    ) -> Self {
        assert!(rate_bps > 0, "rate must be positive");
        assert!(
            (0.0..1.0).contains(&loss_prob),
            "loss probability must be in [0, 1)"
        );
        assert!(queue_limit_bytes > 0, "queue limit must be positive");
        NetemLink {
            rate_bps,
            added_delay,
            loss_prob,
            queue_limit_bytes,
            busy_until: Instant::ZERO,
            queued_bytes: 0,
            rng_state: seed | 1,
        }
    }

    fn next_uniform(&mut self) -> f64 {
        // xorshift64* mapped to [0, 1).
        self.rng_state ^= self.rng_state >> 12;
        self.rng_state ^= self.rng_state << 25;
        self.rng_state ^= self.rng_state >> 27;
        let v = self.rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (v >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Offer a packet of `size` bytes arriving at `arrival`; returns
    /// its fate. Delivery time accounts for queueing behind earlier
    /// packets, serialisation at the link rate, and the added delay.
    pub fn offer(&mut self, arrival: Instant, size: u32) -> LinkVerdict {
        // Drain the queue model: whatever has fully serialised by
        // `arrival` is no longer occupying the FIFO.
        if arrival >= self.busy_until {
            self.queued_bytes = 0;
        }
        if self.next_uniform() < self.loss_prob {
            return LinkVerdict::RandomLoss;
        }
        if self.queued_bytes + size as u64 > self.queue_limit_bytes {
            return LinkVerdict::QueueOverflow;
        }
        let start = self.busy_until.max(arrival);
        let done = start + Duration::transmission(size as u64, self.rate_bps);
        self.busy_until = done;
        self.queued_bytes += size as u64;
        LinkVerdict::Deliver(done + self.added_delay)
    }

    /// Reconfigure the link mid-run — this is the Fig. 11 experiment's
    /// "throttle the network with `tc`" step. Queue state carries over.
    pub fn reconfigure(&mut self, rate_bps: u64, added_delay: Duration, loss_prob: f64) {
        assert!(rate_bps > 0, "rate must be positive");
        assert!(
            (0.0..1.0).contains(&loss_prob),
            "loss probability must be in [0, 1)"
        );
        self.rate_bps = rate_bps;
        self.added_delay = added_delay;
        self.loss_prob = loss_prob;
    }

    /// Configured serialisation rate.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Configured constant delay.
    pub fn added_delay(&self) -> Duration {
        self.added_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_starts_full_and_drains() {
        let mut b = TokenBucket::new(8_000, 1_000); // 1000 B/s refill
        assert!(b.try_consume(Instant::ZERO, 600));
        assert!(b.try_consume(Instant::ZERO, 400));
        assert!(!b.try_consume(Instant::ZERO, 1));
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut b = TokenBucket::new(8_000, 1_000);
        assert!(b.try_consume(Instant::ZERO, 1_000));
        assert!(!b.try_consume(Instant::from_millis(1), 500));
        // After 0.5 s, 500 bytes of tokens have accumulated.
        assert!(b.try_consume(Instant::from_millis(500), 500));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(8_000, 1_000);
        b.try_consume(Instant::ZERO, 1_000);
        // 1 hour passes; tokens must cap at burst, not accumulate.
        assert!((b.tokens_at(Instant::from_secs(3600)) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_ignores_time_reversal() {
        let mut b = TokenBucket::new(8_000, 1_000);
        b.try_consume(Instant::from_secs(1), 1_000);
        // An out-of-order query at t=0 must not panic or refill.
        assert!(!b.try_consume(Instant::ZERO, 100));
    }

    #[test]
    fn link_serialises_back_to_back() {
        // 1 Mbps link, 1250-byte packets => 10 ms each.
        let mut l = NetemLink::new(1_000_000, Duration::ZERO, 0.0, 1 << 20, 7);
        let a = l.offer(Instant::ZERO, 1250);
        let b = l.offer(Instant::ZERO, 1250);
        assert_eq!(a, LinkVerdict::Deliver(Instant::from_millis(10)));
        assert_eq!(b, LinkVerdict::Deliver(Instant::from_millis(20)));
    }

    #[test]
    fn link_adds_constant_delay() {
        let mut l = NetemLink::new(1_000_000, Duration::from_millis(50), 0.0, 1 << 20, 7);
        match l.offer(Instant::ZERO, 1250) {
            LinkVerdict::Deliver(t) => assert_eq!(t, Instant::from_millis(60)),
            v => panic!("unexpected verdict {v:?}"),
        }
    }

    #[test]
    fn link_idle_gap_resets_queue() {
        let mut l = NetemLink::new(1_000_000, Duration::ZERO, 0.0, 2_000, 7);
        assert!(matches!(
            l.offer(Instant::ZERO, 1250),
            LinkVerdict::Deliver(_)
        ));
        // Arrives long after the first finished: queue empty again.
        match l.offer(Instant::from_secs(1), 1250) {
            LinkVerdict::Deliver(t) => {
                assert_eq!(t, Instant::from_secs(1) + Duration::from_millis(10));
            }
            v => panic!("unexpected verdict {v:?}"),
        }
    }

    #[test]
    fn link_overflows_bounded_queue() {
        let mut l = NetemLink::new(1_000_000, Duration::ZERO, 0.0, 3_000, 7);
        assert!(matches!(
            l.offer(Instant::ZERO, 1250),
            LinkVerdict::Deliver(_)
        ));
        assert!(matches!(
            l.offer(Instant::ZERO, 1250),
            LinkVerdict::Deliver(_)
        ));
        // Third back-to-back packet exceeds 3000 queued bytes.
        assert_eq!(l.offer(Instant::ZERO, 1250), LinkVerdict::QueueOverflow);
    }

    #[test]
    fn link_loss_rate_approximates_configured() {
        let mut l = NetemLink::new(1_000_000_000, Duration::ZERO, 0.25, 1 << 30, 42);
        let mut lost = 0;
        let n = 20_000;
        for i in 0..n {
            if matches!(
                l.offer(Instant::from_millis(i), 100),
                LinkVerdict::RandomLoss
            ) {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn link_loss_is_deterministic_per_seed() {
        let run = |seed| {
            let mut l = NetemLink::new(1_000_000, Duration::ZERO, 0.5, 1 << 30, seed);
            (0..64)
                .map(|i| {
                    matches!(
                        l.offer(Instant::from_millis(i), 10),
                        LinkVerdict::RandomLoss
                    )
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn reconfigure_changes_rate() {
        let mut l = NetemLink::new(1_000_000, Duration::ZERO, 0.0, 1 << 20, 7);
        l.reconfigure(500_000, Duration::from_millis(200), 0.0);
        match l.offer(Instant::ZERO, 1250) {
            // 20 ms serialisation at 500 kbps + 200 ms delay.
            LinkVerdict::Deliver(t) => assert_eq!(t, Instant::from_millis(220)),
            v => panic!("unexpected verdict {v:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_panics() {
        let _ = NetemLink::new(1_000, Duration::ZERO, 1.5, 1, 0);
    }
}
